#include "tadl/annotator.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace patty::tadl {

using lang::Stmt;
using lang::StmtKind;

namespace {

/// Find the block directly containing the statement with `stmt_id`, and the
/// statement's position within it.
struct BlockSlot {
  lang::Block* block = nullptr;
  std::size_t index = 0;
};

BlockSlot find_slot(lang::Block& block, int stmt_id);

BlockSlot find_in_stmt(Stmt& st, int stmt_id) {
  switch (st.kind) {
    case StmtKind::Block:
      return find_slot(st.as<lang::Block>(), stmt_id);
    case StmtKind::If: {
      auto& i = st.as<lang::If>();
      BlockSlot slot = find_in_stmt(*i.then_branch, stmt_id);
      if (slot.block) return slot;
      if (i.else_branch) return find_in_stmt(*i.else_branch, stmt_id);
      return {};
    }
    case StmtKind::While:
      return find_in_stmt(*st.as<lang::While>().body, stmt_id);
    case StmtKind::For: {
      auto& f = st.as<lang::For>();
      return find_in_stmt(*f.body, stmt_id);
    }
    case StmtKind::Foreach:
      return find_in_stmt(*st.as<lang::Foreach>().body, stmt_id);
    default:
      return {};
  }
}

BlockSlot find_slot(lang::Block& block, int stmt_id) {
  for (std::size_t i = 0; i < block.stmts.size(); ++i) {
    if (block.stmts[i]->id == stmt_id) return {&block, i};
    BlockSlot nested = find_in_stmt(*block.stmts[i], stmt_id);
    if (nested.block) return nested;
  }
  return {};
}

BlockSlot find_slot_in_program(lang::Program& program, int stmt_id) {
  for (auto& cls : program.classes) {
    for (auto& m : cls->methods) {
      BlockSlot slot = find_slot(*m->body, stmt_id);
      if (slot.block) return slot;
    }
  }
  return {};
}

lang::AstPtr<lang::Annotation> make_annotation(lang::Program& program,
                                               std::string text,
                                               SourceRange near) {
  auto ann = program.make<lang::Annotation>();
  ann->id = program.next_node_id++;
  ann->range = near;
  ann->text = std::move(text);
  return ann;
}

}  // namespace

bool insert_annotations(lang::Program& program,
                        const patterns::Candidate& candidate) {
  if (!candidate.anchor) return false;
  BlockSlot loop_slot = find_slot_in_program(program, candidate.anchor->id);
  if (!loop_slot.block) return false;

  // Stage labels inside the loop body first (indices shift as we insert).
  if (candidate.kind == patterns::PatternKind::Pipeline) {
    for (const patterns::StageSpec& stage : candidate.stages) {
      if (stage.stmt_ids.empty()) continue;
      BlockSlot first = find_slot_in_program(program, stage.stmt_ids.front());
      if (!first.block) return false;
      first.block->stmts.insert(
          first.block->stmts.begin() + static_cast<std::ptrdiff_t>(first.index),
          make_annotation(program, "stage " + stage.label,
                          candidate.anchor->range));
    }
  }

  // `@tadl` before and `@end` after the loop. Re-find the slot: the body
  // insertions above may have shifted positions in the same block when the
  // loop body is the block itself (it is not: stages live in the loop's
  // body block), but re-finding keeps this robust either way.
  loop_slot = find_slot_in_program(program, candidate.anchor->id);
  if (!loop_slot.block) return false;
  auto at = loop_slot.block->stmts.begin() +
            static_cast<std::ptrdiff_t>(loop_slot.index);
  at = loop_slot.block->stmts.insert(
      at, make_annotation(program, "tadl " + candidate.tadl,
                          candidate.anchor->range));
  // After the loop (skip the inserted annotation + the loop itself).
  loop_slot.block->stmts.insert(
      at + 2, make_annotation(program, "end", candidate.anchor->range));
  return true;
}

std::size_t strip_annotations(lang::Program& program) {
  std::size_t removed = 0;
  struct Stripper {
    std::size_t* removed;
    void strip_block(lang::Block& block) {
      auto it = std::remove_if(block.stmts.begin(), block.stmts.end(),
                               [](const lang::StmtPtr& s) {
                                 return s->kind == StmtKind::Annotation;
                               });
      *removed += static_cast<std::size_t>(block.stmts.end() - it);
      block.stmts.erase(it, block.stmts.end());
      for (auto& s : block.stmts) strip_stmt(*s);
    }
    void strip_stmt(Stmt& st) {
      switch (st.kind) {
        case StmtKind::Block:
          strip_block(st.as<lang::Block>());
          break;
        case StmtKind::If: {
          auto& i = st.as<lang::If>();
          strip_stmt(*i.then_branch);
          if (i.else_branch) strip_stmt(*i.else_branch);
          break;
        }
        case StmtKind::While:
          strip_stmt(*st.as<lang::While>().body);
          break;
        case StmtKind::For:
          strip_stmt(*st.as<lang::For>().body);
          break;
        case StmtKind::Foreach:
          strip_stmt(*st.as<lang::Foreach>().body);
          break;
        default:
          break;
      }
    }
  };
  Stripper s{&removed};
  for (auto& cls : program.classes)
    for (auto& m : cls->methods) s.strip_block(*m->body);
  return removed;
}

std::vector<TadlRegion> extract_regions(const lang::Program& program,
                                        std::vector<std::string>* errors) {
  std::vector<TadlRegion> regions;
  auto report = [&](const std::string& message) {
    if (errors) errors->push_back(message);
  };

  struct Scanner {
    std::vector<TadlRegion>& regions;
    const std::function<void(const std::string&)>& report;

    void scan_block(const lang::Block& block) {
      for (std::size_t i = 0; i < block.stmts.size(); ++i) {
        const Stmt& st = *block.stmts[i];
        if (st.kind == StmtKind::Annotation) {
          const std::string& text = st.as<lang::Annotation>().text;
          if (text.rfind("tadl ", 0) == 0) {
            handle_region(block, i, text.substr(5));
          }
          continue;
        }
        scan_stmt(st);
      }
    }

    void handle_region(const lang::Block& block, std::size_t ann_index,
                       const std::string& expr_text) {
      // The next non-annotation statement must be a loop.
      const Stmt* loop = nullptr;
      for (std::size_t j = ann_index + 1; j < block.stmts.size(); ++j) {
        if (block.stmts[j]->kind == StmtKind::Annotation) continue;
        loop = block.stmts[j].get();
        break;
      }
      if (!loop || (loop->kind != StmtKind::For &&
                    loop->kind != StmtKind::While &&
                    loop->kind != StmtKind::Foreach)) {
        report("@tadl at " + block.stmts[ann_index]->range.str() +
               " is not followed by a loop");
        return;
      }
      std::string error;
      TadlPtr expr = parse_tadl(expr_text, &error);
      if (!expr) {
        report("@tadl at " + block.stmts[ann_index]->range.str() +
               ": bad expression: " + error);
        return;
      }
      TadlRegion region;
      region.loop = loop;
      region.expr = std::move(expr);

      // Collect stage labels inside the loop body: statements after a
      // `@stage X` annotation belong to X until the next annotation.
      const Stmt* body = nullptr;
      switch (loop->kind) {
        case StmtKind::For: body = loop->as<lang::For>().body.get(); break;
        case StmtKind::While: body = loop->as<lang::While>().body.get(); break;
        case StmtKind::Foreach:
          body = loop->as<lang::Foreach>().body.get();
          break;
        default:
          break;
      }
      if (body && body->kind == StmtKind::Block) {
        std::string current_label;
        for (const auto& s : body->as<lang::Block>().stmts) {
          if (s->kind == StmtKind::Annotation) {
            const std::string& t = s->as<lang::Annotation>().text;
            if (t.rfind("stage ", 0) == 0) current_label = t.substr(6);
            else current_label.clear();
            continue;
          }
          if (!current_label.empty())
            region.stages[current_label].push_back(s->id);
        }
      }
      regions.push_back(std::move(region));
    }

    void scan_stmt(const Stmt& st) {
      switch (st.kind) {
        case StmtKind::Block:
          scan_block(st.as<lang::Block>());
          break;
        case StmtKind::If: {
          const auto& i = st.as<lang::If>();
          scan_stmt(*i.then_branch);
          if (i.else_branch) scan_stmt(*i.else_branch);
          break;
        }
        case StmtKind::While:
          scan_stmt(*st.as<lang::While>().body);
          break;
        case StmtKind::For:
          scan_stmt(*st.as<lang::For>().body);
          break;
        case StmtKind::Foreach:
          scan_stmt(*st.as<lang::Foreach>().body);
          break;
        default:
          break;
      }
    }
  };

  const std::function<void(const std::string&)> reporter = report;
  Scanner scanner{regions, reporter};
  for (const auto& cls : program.classes)
    for (const auto& m : cls->methods) scanner.scan_block(*m->body);
  return regions;
}

}  // namespace patty::tadl
