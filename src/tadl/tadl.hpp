#pragma once
// TADL — the Tunable Architecture Description Language (paper §2.1, after
// Schaefer et al.'s TADL [23]). A TADL expression describes a tunable
// parallel architecture over named code regions:
//
//   expr := seq
//   seq  := par ("=>" par)*          pipeline stage chaining
//   par  := atom ("||" atom)*        master/worker (concurrent sections)
//   atom := NAME "+"? | "(" expr ")" "+"?
//
// `+` marks a region as replicable (StageReplication admissible). The
// canonical example from the paper: (A || B || C+) => D => E.

#include <memory>
#include <string>
#include <vector>

namespace patty::tadl {

struct TadlNode;
using TadlPtr = std::unique_ptr<TadlNode>;

struct TadlNode {
  enum class Kind : std::uint8_t { Task, Parallel, Sequence };
  Kind kind = Kind::Task;
  std::string name;            // Task only
  bool replicable = false;     // `+` suffix
  std::vector<TadlPtr> children;  // Parallel / Sequence

  static TadlPtr task(std::string name, bool replicable = false);
  static TadlPtr parallel(std::vector<TadlPtr> children);
  static TadlPtr sequence(std::vector<TadlPtr> children);

  /// All task names, left to right.
  [[nodiscard]] std::vector<std::string> task_names() const;
  /// Deep structural equality.
  [[nodiscard]] bool equals(const TadlNode& other) const;
};

/// Canonical rendering, e.g. "(A || B || C+) => D => E".
std::string print_tadl(const TadlNode& node);

/// Parse a TADL expression; nullptr + *error on failure.
TadlPtr parse_tadl(const std::string& text, std::string* error = nullptr);

}  // namespace patty::tadl
