#pragma once
// Source annotation with TADL regions (paper §2.1, figure 3b).
//
// The detector's candidates are written back into the program as annotation
// statements at the exact location they were found — the paper's argument
// for program comprehensibility. The annotated program still parses,
// type-checks and runs identically (annotations are transparent).
//
// The same machinery works in reverse for operation mode 2 (architecture-
// based parallel programming): an engineer writes `@tadl`/`@stage`
// annotations by hand and extract_regions() recovers the structures the
// transformation phase consumes.
//
// Annotation grammar (statement position):
//   @tadl <tadl-expression>     immediately before the annotated loop
//   @stage <LABEL>              before the first statement of each stage
//   @end                        immediately after the annotated loop

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "patterns/candidate.hpp"
#include "tadl/tadl.hpp"

namespace patty::tadl {

/// A recovered annotated region.
struct TadlRegion {
  const lang::Stmt* loop = nullptr;    // the annotated loop statement
  TadlPtr expr;                        // parsed TADL expression
  /// Stage label -> top-level body statement ids, in program order.
  std::map<std::string, std::vector<int>> stages;
};

/// Insert `@tadl`/`@stage`/`@end` annotations for a pipeline candidate into
/// the program (in place; existing statements keep their ids). Returns
/// false when the candidate's loop is not found in this program.
bool insert_annotations(lang::Program& program,
                        const patterns::Candidate& candidate);

/// Remove every annotation statement. Returns the number removed.
std::size_t strip_annotations(lang::Program& program);

/// Find all annotated regions in a (possibly hand-annotated) program.
/// Malformed regions are reported through `errors` and skipped.
std::vector<TadlRegion> extract_regions(const lang::Program& program,
                                        std::vector<std::string>* errors = nullptr);

}  // namespace patty::tadl
