#include "tadl/tadl.hpp"

#include <cctype>

namespace patty::tadl {

TadlPtr TadlNode::task(std::string name, bool replicable) {
  auto n = std::make_unique<TadlNode>();
  n->kind = Kind::Task;
  n->name = std::move(name);
  n->replicable = replicable;
  return n;
}

TadlPtr TadlNode::parallel(std::vector<TadlPtr> children) {
  auto n = std::make_unique<TadlNode>();
  n->kind = Kind::Parallel;
  n->children = std::move(children);
  return n;
}

TadlPtr TadlNode::sequence(std::vector<TadlPtr> children) {
  auto n = std::make_unique<TadlNode>();
  n->kind = Kind::Sequence;
  n->children = std::move(children);
  return n;
}

std::vector<std::string> TadlNode::task_names() const {
  std::vector<std::string> names;
  if (kind == Kind::Task) {
    names.push_back(name);
    return names;
  }
  for (const TadlPtr& c : children) {
    auto sub = c->task_names();
    names.insert(names.end(), sub.begin(), sub.end());
  }
  return names;
}

bool TadlNode::equals(const TadlNode& other) const {
  if (kind != other.kind || replicable != other.replicable ||
      name != other.name || children.size() != other.children.size())
    return false;
  for (std::size_t i = 0; i < children.size(); ++i)
    if (!children[i]->equals(*other.children[i])) return false;
  return true;
}

namespace {

std::string print_node(const TadlNode& node, bool parenthesize) {
  switch (node.kind) {
    case TadlNode::Kind::Task:
      return node.name + (node.replicable ? "+" : "");
    case TadlNode::Kind::Parallel: {
      std::string out;
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i) out += " || ";
        out += print_node(*node.children[i], true);
      }
      if (parenthesize) out = "(" + out + ")";
      if (node.replicable) out += "+";
      return out;
    }
    case TadlNode::Kind::Sequence: {
      std::string out;
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i) out += " => ";
        out += print_node(*node.children[i], true);
      }
      if (parenthesize) out = "(" + out + ")";
      if (node.replicable) out += "+";
      return out;
    }
  }
  return "?";
}

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  TadlPtr parse() {
    TadlPtr result = parse_seq();
    if (!result) return nullptr;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("unexpected trailing input at position " + std::to_string(pos_));
      return nullptr;
    }
    return result;
  }

 private:
  void fail(const std::string& message) {
    if (error_ && error_->empty()) *error_ = message;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool accept(const std::string& token) {
    skip_ws();
    if (text_.compare(pos_, token.size(), token) == 0) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  TadlPtr parse_seq() {
    TadlPtr first = parse_par();
    if (!first) return nullptr;
    std::vector<TadlPtr> parts;
    parts.push_back(std::move(first));
    while (accept("=>")) {
      TadlPtr next = parse_par();
      if (!next) return nullptr;
      parts.push_back(std::move(next));
    }
    if (parts.size() == 1) return std::move(parts[0]);
    return TadlNode::sequence(std::move(parts));
  }

  TadlPtr parse_par() {
    TadlPtr first = parse_atom();
    if (!first) return nullptr;
    std::vector<TadlPtr> parts;
    parts.push_back(std::move(first));
    while (accept("||")) {
      TadlPtr next = parse_atom();
      if (!next) return nullptr;
      parts.push_back(std::move(next));
    }
    if (parts.size() == 1) return std::move(parts[0]);
    return TadlNode::parallel(std::move(parts));
  }

  TadlPtr parse_atom() {
    skip_ws();
    if (accept("(")) {
      TadlPtr inner = parse_seq();
      if (!inner) return nullptr;
      if (!accept(")")) {
        fail("expected ')'");
        return nullptr;
      }
      if (accept("+")) inner->replicable = true;
      return inner;
    }
    std::string name;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      name += text_[pos_++];
    }
    if (name.empty()) {
      fail("expected a region name at position " + std::to_string(pos_));
      return nullptr;
    }
    bool replicable = false;
    if (pos_ < text_.size() && text_[pos_] == '+') {
      replicable = true;
      ++pos_;
    }
    return TadlNode::task(std::move(name), replicable);
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string print_tadl(const TadlNode& node) {
  return print_node(node, /*parenthesize=*/false);
}

TadlPtr parse_tadl(const std::string& text, std::string* error) {
  std::string local_error;
  Parser p(text, error ? error : &local_error);
  return p.parse();
}

}  // namespace patty::tadl
