#pragma once
// Small descriptive-statistics helpers used by the study simulator and the
// benchmark harnesses (means, sample standard deviations, quantiles).

#include <vector>

namespace patty {

double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double sample_stddev(const std::vector<double>& xs);

/// Linear-interpolated quantile, q in [0,1]. xs need not be sorted.
double quantile(std::vector<double> xs, double q);

/// Sorted-input variant of `quantile`: no copy, no re-sort. xs must be
/// sorted ascending and non-empty.
double quantile_sorted(const std::vector<double>& xs, double q);

/// Sorts the sample once so several quantiles can be read without the
/// per-call copy+sort that `quantile` pays. Use whenever more than one
/// quantile of the same sample is needed (q25/q75 pairs, histogram
/// snapshots reporting p50/p90/p99, ...).
class Quantiles {
 public:
  explicit Quantiles(std::vector<double> xs);

  /// Linear-interpolated quantile, q in [0,1]. The sample must be non-empty.
  [[nodiscard]] double q(double quantile) const;

  [[nodiscard]] std::size_t size() const { return sorted_.size(); }
  [[nodiscard]] bool empty() const { return sorted_.empty(); }

 private:
  std::vector<double> sorted_;
};

double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

}  // namespace patty
