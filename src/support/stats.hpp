#pragma once
// Small descriptive-statistics helpers used by the study simulator and the
// benchmark harnesses (means, sample standard deviations, quantiles).

#include <vector>

namespace patty {

double mean(const std::vector<double>& xs);

/// Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples.
double sample_stddev(const std::vector<double>& xs);

/// Linear-interpolated quantile, q in [0,1]. xs need not be sorted.
double quantile(std::vector<double> xs, double q);

double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

}  // namespace patty
