#include "support/failpoint.hpp"

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

namespace patty::support::failpoint {

namespace {

struct Entry {
  Spec spec;
  std::uint64_t hits = 0;
  bool fired = false;
};

struct State {
  std::mutex mutex;
  std::map<std::string, Entry> sites;
};

State& state() {
  static State s;
  return s;
}

/// PATTY_FAULTS is parsed once, before main touches any failpoint, so env
/// armings are visible from the very first site hit. A malformed entry is a
/// hard error: a fault test whose injection silently didn't arm would pass
/// for the wrong reason.
struct EnvLoader {
  EnvLoader() {
    const char* env = std::getenv("PATTY_FAULTS");
    if (!env || !*env) return;
    std::string error;
    arm_from_env(env, &error);
    if (!error.empty()) {
      std::fprintf(stderr, "patty: bad PATTY_FAULTS entry: %s\n",
                   error.c_str());
      std::abort();
    }
  }
};
EnvLoader g_env_loader;

}  // namespace

namespace detail {

std::atomic<int> g_armed{0};

bool hit(const char* site) {
  Spec triggered;
  bool fire = false;
  {
    State& s = state();
    std::lock_guard<std::mutex> lock(s.mutex);
    auto it = s.sites.find(site);
    if (it == s.sites.end()) return false;
    Entry& e = it->second;
    ++e.hits;
    if (!e.fired && e.hits == e.spec.nth) {
      e.fired = true;
      fire = true;
      triggered = e.spec;
    }
  }
  if (!fire) return false;
  switch (triggered.kind) {
    case ActionKind::Throw:
      throw FailpointError(site);
    case ActionKind::Delay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(triggered.delay_ms));
      return false;
    case ActionKind::Wake:
      return true;
  }
  return false;
}

}  // namespace detail

void arm(const std::string& site, Spec spec) {
  if (spec.nth == 0) spec.nth = 1;
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  auto [it, inserted] = s.sites.insert_or_assign(site, Entry{spec, 0, false});
  (void)it;
  if (inserted) detail::g_armed.fetch_add(1, std::memory_order_relaxed);
}

bool arm_from_string(const std::string& entry, std::string* error) {
  auto fail = [&](const std::string& why) {
    if (error) *error = "'" + entry + "': " + why;
    return false;
  };
  const std::size_t eq = entry.find('=');
  if (eq == std::string::npos || eq == 0) return fail("expected site=action");
  const std::string site = entry.substr(0, eq);
  std::string action = entry.substr(eq + 1);
  Spec spec;
  const std::size_t at = action.find('@');
  std::string ms;
  if (at != std::string::npos) {
    std::string nth = action.substr(at + 1);
    action.resize(at);
    const std::size_t colon = nth.find(':');
    if (colon != std::string::npos) {
      ms = nth.substr(colon + 1);
      nth.resize(colon);
    }
    try {
      spec.nth = std::stoull(nth);
    } catch (...) {
      return fail("bad hit count '" + nth + "'");
    }
    if (spec.nth == 0) return fail("hit count must be >= 1");
  }
  if (action == "throw") {
    spec.kind = ActionKind::Throw;
  } else if (action == "delay") {
    spec.kind = ActionKind::Delay;
    if (ms.empty()) return fail("delay needs ':<ms>'");
  } else if (action == "wake") {
    spec.kind = ActionKind::Wake;
  } else {
    return fail("unknown action '" + action + "'");
  }
  if (!ms.empty()) {
    try {
      spec.delay_ms = std::stoull(ms);
    } catch (...) {
      return fail("bad delay '" + ms + "'");
    }
  }
  arm(site, spec);
  return true;
}

std::size_t arm_from_env(const std::string& value, std::string* error) {
  std::size_t armed = 0;
  std::size_t start = 0;
  while (start < value.size()) {
    std::size_t end = value.find_first_of(";,", start);
    if (end == std::string::npos) end = value.size();
    const std::string entry = value.substr(start, end - start);
    if (!entry.empty()) {
      if (!arm_from_string(entry, error)) return armed;
      ++armed;
    }
    start = end + 1;
  }
  return armed;
}

void disarm(const std::string& site) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.sites.erase(site) > 0)
    detail::g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  detail::g_armed.fetch_sub(static_cast<int>(s.sites.size()),
                            std::memory_order_relaxed);
  s.sites.clear();
}

std::uint64_t hits(const std::string& site) {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.sites.find(site);
  return it == s.sites.end() ? 0 : it->second.hits;
}

std::vector<std::string> armed_sites() {
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<std::string> names;
  names.reserve(s.sites.size());
  for (const auto& [name, entry] : s.sites) {
    (void)entry;
    names.push_back(name);
  }
  return names;
}

}  // namespace patty::support::failpoint
