#pragma once
// Global string interning.
//
// A Symbol is a 32-bit handle to a process-wide interned string. Equality
// is one integer compare, hashing is identity, and the spelling is
// recovered in O(1) without a lock — which is what lets the front-end key
// its hot maps (identifier lookup, member resolution, effect locations)
// by integer instead of by std::string.
//
// The table is shared and thread-safe: the corpus pipeline lexes many
// programs concurrently, so interning takes a per-shard mutex (16 shards,
// so parse-stage replicas rarely collide). Lookup by id (`Symbol::str()`)
// is lock-free: each shard stores its strings in append-only blocks whose
// pointers are published with release stores, and an interned string is
// never moved or freed for the life of the process.
//
// Determinism invariant (see DESIGN.md "Memory layout & granularity"):
// symbol *ids* depend on interning order, which varies across threads and
// processes. Ids therefore never feed ordered output — anything sorted or
// printed compares the interned text (Symbol::view()), and fingerprints
// only ever contain spellings, never ids.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace patty::support {

class Interner;

/// Handle to one interned string. Default-constructed == empty string.
class Symbol {
 public:
  constexpr Symbol() = default;

  /// Intern `text` (thread-safe) and return its stable handle.
  static Symbol intern(std::string_view text);

  /// Rebuild a handle from a previously obtained id (e.g. a memo cache).
  static constexpr Symbol from_id(std::uint32_t id) { return Symbol(id); }

  [[nodiscard]] const std::string& str() const;
  [[nodiscard]] std::string_view view() const { return str(); }
  [[nodiscard]] const char* c_str() const { return str().c_str(); }
  [[nodiscard]] bool empty() const { return id_ == 0; }
  [[nodiscard]] std::size_t size() const { return str().size(); }
  [[nodiscard]] std::uint32_t id() const { return id_; }

  /// Implicit view as the interned spelling; keeps string-consuming call
  /// sites (diagnostics, map<string> keys) source-compatible.
  operator const std::string&() const { return str(); }  // NOLINT

  friend bool operator==(Symbol a, Symbol b) { return a.id_ == b.id_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.id_ != b.id_; }
  friend bool operator==(Symbol a, std::string_view b) { return a.view() == b; }
  friend bool operator==(std::string_view a, Symbol b) { return a == b.view(); }
  friend bool operator!=(Symbol a, std::string_view b) { return a.view() != b; }
  friend bool operator!=(std::string_view a, Symbol b) { return a != b.view(); }

  // Non-template concatenation overloads: the std::string operator+ /
  // operator== templates don't deduce through a user-defined conversion,
  // so message-building code like `"class '" + cls.name + "'"` needs
  // these spelled out.
  friend std::string operator+(const char* lhs, Symbol rhs) {
    return lhs + rhs.str();
  }
  friend std::string operator+(Symbol lhs, const char* rhs) {
    return lhs.str() + rhs;
  }
  friend std::string operator+(const std::string& lhs, Symbol rhs) {
    return lhs + rhs.str();
  }
  friend std::string operator+(Symbol lhs, const std::string& rhs) {
    return lhs.str() + rhs;
  }
  friend std::string operator+(std::string&& lhs, Symbol rhs) {
    return std::move(lhs) + rhs.str();
  }

  /// Deterministic text order (never id order — ids vary run to run).
  static bool text_less(Symbol a, Symbol b) {
    return a.id_ != b.id_ && a.view() < b.view();
  }

 private:
  friend class Interner;
  explicit constexpr Symbol(std::uint32_t id) : id_(id) {}
  std::uint32_t id_ = 0;
};

/// Identity hash for unordered containers keyed by Symbol. Use only where
/// iteration order does not reach any output (ids are not deterministic).
struct SymbolHash {
  std::size_t operator()(Symbol s) const noexcept { return s.id(); }
};

/// The process-wide intern table backing Symbol.
class Interner {
 public:
  static Interner& global();

  Symbol intern(std::string_view text);
  [[nodiscard]] const std::string& str(std::uint32_t id) const;

  struct Stats {
    std::uint64_t symbols = 0;  // distinct interned strings
    std::uint64_t bytes = 0;    // total interned character data
  };
  [[nodiscard]] Stats stats() const;

 private:
  Interner();
  Interner(const Interner&) = delete;
  Interner& operator=(const Interner&) = delete;

  static constexpr std::uint32_t kShardBits = 4;
  static constexpr std::uint32_t kShards = 1u << kShardBits;
  static constexpr std::uint32_t kBlockSize = 1024;
  static constexpr std::uint32_t kMaxBlocks = 4096;  // 4M symbols per shard

  struct Shard {
    mutable std::mutex mutex;
    // Keys view into the block storage below; entries are never removed.
    std::unordered_map<std::string_view, std::uint32_t> map;
    // Append-only storage. Blocks are allocated under the mutex and
    // published with a release store so id->string lookup never locks.
    std::array<std::atomic<std::string*>, kMaxBlocks> blocks{};
    std::uint32_t count = 0;               // guarded by mutex
    std::atomic<std::uint64_t> bytes{0};
  };

  std::array<Shard, kShards> shards_;
};

inline Symbol Symbol::intern(std::string_view text) {
  return Interner::global().intern(text);
}

inline const std::string& Symbol::str() const {
  return Interner::global().str(id_);
}

}  // namespace patty::support
