#include "support/rng.hpp"

#include <cmath>

#include "support/diagnostics.hpp"

namespace patty {

std::uint64_t Rng::next_u64() {
  state_ += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) fatal("Rng::next_below(0)");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % bound);
  std::uint64_t v = next_u64();
  while (v > limit) v = next_u64();
  return v % bound;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double stddev) {
  // Box-Muller; regenerate until u1 is nonzero so log() is defined.
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * 3.14159265358979323846 * u2);
}

int Rng::int_in(int lo, int hi) {
  if (hi < lo) fatal("Rng::int_in: empty range");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next_below(span));
}

bool Rng::chance(double p) { return next_double() < p; }

Rng Rng::split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace patty
