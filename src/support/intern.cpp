#include "support/intern.hpp"

#include "support/diagnostics.hpp"

namespace patty::support {

Interner& Interner::global() {
  static Interner instance;
  return instance;
}

Interner::Interner() {
  // Reserve id 0 (shard 0, slot 0) for the empty string so a
  // default-constructed Symbol is valid and prints as "".
  Shard& shard = shards_[0];
  auto* block = new std::string[kBlockSize];
  shard.blocks[0].store(block, std::memory_order_release);
  shard.count = 1;
  shard.map.emplace(std::string_view(block[0]), 0u);
}

Symbol Interner::intern(std::string_view text) {
  if (text.empty()) return Symbol(0);
  const std::size_t h = std::hash<std::string_view>{}(text);
  const auto shard_index =
      static_cast<std::uint32_t>(h & (kShards - 1));
  Shard& shard = shards_[shard_index];

  std::scoped_lock lock(shard.mutex);
  auto it = shard.map.find(text);
  if (it != shard.map.end()) return Symbol(it->second);

  const std::uint32_t slot = shard.count;
  const std::uint32_t block_index = slot / kBlockSize;
  if (block_index >= kMaxBlocks) fatal("intern table shard overflow");
  std::string* block = shard.blocks[block_index].load(std::memory_order_relaxed);
  if (block == nullptr) {
    block = new std::string[kBlockSize];
    shard.blocks[block_index].store(block, std::memory_order_release);
  }
  std::string& stored = block[slot % kBlockSize];
  stored.assign(text.data(), text.size());
  ++shard.count;
  shard.bytes.fetch_add(text.size(), std::memory_order_relaxed);

  const std::uint32_t id = (slot << kShardBits) | shard_index;
  shard.map.emplace(std::string_view(stored), id);
  return Symbol(id);
}

const std::string& Interner::str(std::uint32_t id) const {
  const Shard& shard = shards_[id & (kShards - 1)];
  const std::uint32_t slot = id >> kShardBits;
  const std::string* block =
      shard.blocks[slot / kBlockSize].load(std::memory_order_acquire);
  return block[slot % kBlockSize];
}

Interner::Stats Interner::stats() const {
  Stats s;
  for (const Shard& shard : shards_) {
    std::scoped_lock lock(shard.mutex);
    s.symbols += shard.count;
    s.bytes += shard.bytes.load(std::memory_order_relaxed);
  }
  s.symbols -= 1;  // don't count the reserved empty string
  return s;
}

}  // namespace patty::support
