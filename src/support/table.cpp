#include "support/table.hpp"

#include <cstdio>

#include "support/diagnostics.hpp"

namespace patty {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) fatal("Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    fatal("Table row has " + std::to_string(cells.size()) + " cells, want " +
          std::to_string(headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) out += std::string(widths[c] - row[c].size() + 2, ' ');
    }
    out += "\n";
  };

  std::string out;
  emit_row(headers_, out);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::csv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) line += ",";
    }
    return line + "\n";
  };
  std::string out = join(headers_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

}  // namespace patty
