#pragma once
// ASCII table emitter. Every bench binary renders the paper's table/figure
// rows through this so `bench_output.txt` reads like the paper's artifacts.

#include <string>
#include <vector>

namespace patty {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with a header rule and right-padded columns.
  [[nodiscard]] std::string str() const;

  /// Render as CSV (no quoting of commas; cells must not contain commas).
  [[nodiscard]] std::string csv() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("2.17", "-0.25").
std::string fmt(double value, int decimals = 2);

}  // namespace patty
