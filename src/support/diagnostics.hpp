#pragma once
// Diagnostic sink shared by the MiniOO frontend, the analyses and the
// detectors. Collects errors/warnings/notes with source ranges instead of
// throwing from deep inside recursive-descent code.

#include <string>
#include <vector>

#include "support/source_location.hpp"

namespace patty {

enum class Severity { Note, Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceRange range;
  std::string message;
};

class DiagnosticSink {
 public:
  void error(SourceRange range, std::string message);
  void warning(SourceRange range, std::string message);
  void note(SourceRange range, std::string message);

  [[nodiscard]] bool has_errors() const { return error_count_ > 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }

  /// Render every diagnostic as "severity line:col message", one per line.
  [[nodiscard]] std::string to_string() const;

  void clear();

 private:
  std::vector<Diagnostic> diags_;
  std::size_t error_count_ = 0;
};

/// Internal invariant violation; used instead of assert so tests can check it.
[[noreturn]] void fatal(const std::string& message);

}  // namespace patty
