#include "support/arena.hpp"

#include <mutex>

namespace patty::support {

std::atomic<std::uint64_t> Arena::global_bytes_{0};
std::atomic<std::uint64_t> Arena::global_chunks_{0};
Arena::ChunkHeader* Arena::pool_head_ = nullptr;

namespace {

/// Recycle-pool cap: 32 max-size chunks. Enough that a corpus pipeline's
/// working set of concurrent Program arenas cycles entirely through the
/// pool, small enough that a one-off giant program doesn't pin memory.
constexpr std::size_t kPoolCapBytes = 8 * 1024 * 1024;

std::mutex g_pool_mutex;
bool g_recycling = true;                      // guarded by g_pool_mutex
std::size_t g_pool_bytes = 0;                 // guarded by g_pool_mutex
std::atomic<std::uint64_t> g_recycled{0};

}  // namespace

void* Arena::allocate_slow(std::size_t size, std::size_t align) {
  // Oversized requests get a dedicated chunk; normal requests get the next
  // geometric chunk (so tiny programs stay at one 16K chunk while large
  // generated ones amortize toward 256K mappings).
  std::size_t payload = next_chunk_bytes_;
  const std::size_t need = size + align;
  if (need > payload) payload = need;
  if (next_chunk_bytes_ < kMaxChunk) next_chunk_bytes_ *= 2;

  ChunkHeader* header = pool_take(need);
  if (header != nullptr) {
    payload = header->size;  // reuse at the parked chunk's own capacity
  } else {
    auto* raw =
        static_cast<char*>(::operator new(sizeof(ChunkHeader) + payload));
    header = reinterpret_cast<ChunkHeader*>(raw);
    header->size = payload;
  }
  header->next = head_;
  head_ = header;
  ptr_ = reinterpret_cast<char*>(header) + sizeof(ChunkHeader);
  end_ = ptr_ + payload;
  bytes_reserved_ += payload;
  ++chunks_;
  // Recycled chunks count again: the globals are "handed to arenas over the
  // process lifetime", so monitoring (and tests) see monotone growth.
  global_bytes_.fetch_add(payload, std::memory_order_relaxed);
  global_chunks_.fetch_add(1, std::memory_order_relaxed);

  auto p = reinterpret_cast<std::uintptr_t>(ptr_);
  const std::uintptr_t aligned = (p + (align - 1)) & ~(align - 1);
  ptr_ = reinterpret_cast<char*>(aligned + size);
  bytes_used_ += size + (aligned - p);
  return reinterpret_cast<void*>(aligned);
}

void Arena::release_all() {
  ChunkHeader* chunk = head_;
  while (chunk != nullptr) {
    ChunkHeader* next = chunk->next;
    if (!pool_put(chunk)) ::operator delete(static_cast<void*>(chunk));
    chunk = next;
  }
}

Arena::ChunkHeader* Arena::pool_take(std::size_t need) {
  std::scoped_lock lock(g_pool_mutex);
  if (!g_recycling) return nullptr;
  // First fit: chunk sizes only span 16K..256K, so fragmentation from
  // taking a bigger-than-needed chunk is bounded and short-lived.
  ChunkHeader** prev = &pool_head_;
  for (ChunkHeader* c = pool_head_; c != nullptr; prev = &c->next, c = c->next) {
    if (c->size >= need) {
      *prev = c->next;
      g_pool_bytes -= c->size;
      g_recycled.fetch_add(1, std::memory_order_relaxed);
      return c;
    }
  }
  return nullptr;
}

bool Arena::pool_put(ChunkHeader* chunk) {
  std::scoped_lock lock(g_pool_mutex);
  if (!g_recycling || chunk->size > kMaxChunk ||
      g_pool_bytes + chunk->size > kPoolCapBytes)
    return false;
  chunk->next = pool_head_;
  pool_head_ = chunk;
  g_pool_bytes += chunk->size;
  return true;
}

std::uint64_t Arena::total_recycled_chunks() {
  return g_recycled.load(std::memory_order_relaxed);
}

std::uint64_t Arena::recycle_pool_bytes() {
  std::scoped_lock lock(g_pool_mutex);
  return g_pool_bytes;
}

std::size_t Arena::drain_recycle_pool() {
  std::scoped_lock lock(g_pool_mutex);
  const std::size_t freed = g_pool_bytes;
  ChunkHeader* c = pool_head_;
  while (c != nullptr) {
    ChunkHeader* next = c->next;
    ::operator delete(static_cast<void*>(c));
    c = next;
  }
  pool_head_ = nullptr;
  g_pool_bytes = 0;
  return freed;
}

void Arena::set_chunk_recycling(bool on) {
  {
    std::scoped_lock lock(g_pool_mutex);
    g_recycling = on;
  }
  if (!on) drain_recycle_pool();
}

}  // namespace patty::support
