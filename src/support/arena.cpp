#include "support/arena.hpp"

namespace patty::support {

std::atomic<std::uint64_t> Arena::global_bytes_{0};
std::atomic<std::uint64_t> Arena::global_chunks_{0};

void* Arena::allocate_slow(std::size_t size, std::size_t align) {
  // Oversized requests get a dedicated chunk; normal requests get the next
  // geometric chunk (so tiny programs stay at one 16K chunk while large
  // generated ones amortize toward 256K mappings).
  std::size_t payload = next_chunk_bytes_;
  const std::size_t need = size + align;
  if (need > payload) payload = need;
  if (next_chunk_bytes_ < kMaxChunk) next_chunk_bytes_ *= 2;

  auto* raw = static_cast<char*>(::operator new(sizeof(ChunkHeader) + payload));
  auto* header = reinterpret_cast<ChunkHeader*>(raw);
  header->next = head_;
  header->size = payload;
  head_ = header;
  ptr_ = raw + sizeof(ChunkHeader);
  end_ = ptr_ + payload;
  bytes_reserved_ += payload;
  ++chunks_;
  global_bytes_.fetch_add(payload, std::memory_order_relaxed);
  global_chunks_.fetch_add(1, std::memory_order_relaxed);

  auto p = reinterpret_cast<std::uintptr_t>(ptr_);
  const std::uintptr_t aligned = (p + (align - 1)) & ~(align - 1);
  ptr_ = reinterpret_cast<char*>(aligned + size);
  bytes_used_ += size + (aligned - p);
  return reinterpret_cast<void*>(aligned);
}

void Arena::release_all() {
  ChunkHeader* chunk = head_;
  while (chunk != nullptr) {
    ChunkHeader* next = chunk->next;
    ::operator delete(static_cast<void*>(chunk));
    chunk = next;
  }
}

}  // namespace patty::support
