#pragma once
// Bump allocator for the analysis front-end.
//
// An Arena owns chunks of raw memory and hands out aligned slices with a
// pointer bump — no per-node malloc, no per-node free. The front-end
// allocates every AST node of a program (and the semantic model's side
// objects) from one arena, so:
//
//  * allocation in the parse/model hot path is ~4 instructions,
//  * nodes of one program are contiguous (locality for the tree walks the
//    detectors do), and
//  * a program's whole analysis state is released in one chunk-list drop
//    when the owner (lang::Program / analysis::SemanticModel) dies.
//
// Ownership rule (DESIGN.md "Memory layout & granularity"): arena-placed
// objects are still *destroyed* individually — ArenaPtr runs the
// destructor (members like std::vector own heap memory) but returns the
// node's bytes to nothing; the memory goes away with the arena. The arena
// member must therefore be declared FIRST in its owner so it is destroyed
// LAST, after every node destructor has run.
//
// Arenas are single-owner and NOT thread-safe; concurrent stages each
// build into their own program's arena. Global byte/chunk counters are
// atomic so observe can report fleet-wide allocation pressure.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>

namespace patty::support {

class Arena {
 public:
  Arena() = default;
  ~Arena() { release_all(); }
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Aligned raw allocation; never returns null (throws std::bad_alloc).
  void* allocate(std::size_t size, std::size_t align) {
    auto p = reinterpret_cast<std::uintptr_t>(ptr_);
    const std::uintptr_t aligned = (p + (align - 1)) & ~(align - 1);
    if (aligned + size <= reinterpret_cast<std::uintptr_t>(end_)) {
      ptr_ = reinterpret_cast<char*>(aligned + size);
      bytes_used_ += size + (aligned - p);
      return reinterpret_cast<void*>(aligned);
    }
    return allocate_slow(size, align);
  }

  /// Construct a T in the arena. The caller owns the object's lifetime
  /// (wrap in ArenaPtr or call the destructor manually); memory is
  /// reclaimed only by reset()/destruction of the arena.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    void* mem = allocate(sizeof(T), alignof(T));
    return new (mem) T(std::forward<Args>(args)...);
  }

  /// Drop every chunk (chunk sizing restarts small). All objects placed in
  /// the arena must already be destroyed.
  void reset() {
    release_all();
    head_ = nullptr;
    ptr_ = end_ = nullptr;
    next_chunk_bytes_ = kMinChunk;
    bytes_used_ = 0;
    bytes_reserved_ = 0;
    chunks_ = 0;
  }

  [[nodiscard]] std::size_t bytes_used() const { return bytes_used_; }
  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }
  [[nodiscard]] std::size_t chunk_count() const { return chunks_; }

  /// Process-wide counters (all arenas, lifetime totals) for observe.
  /// Recycled chunks count again on reuse: the totals are "bytes/chunks
  /// handed to arenas over the process lifetime", monotone either way.
  static std::uint64_t total_bytes_reserved() {
    return global_bytes_.load(std::memory_order_relaxed);
  }
  static std::uint64_t total_chunks() {
    return global_chunks_.load(std::memory_order_relaxed);
  }

  // --- Cross-arena chunk recycling -----------------------------------------
  // A released arena's normal-sized chunks park in a small process-wide
  // free list instead of going back to the allocator; the next arena's
  // first chunk misses then come from the list. The corpus pipeline builds
  // and drops one Program arena per synthetic program, so without this
  // every program pays the same mmap/madvise churn its predecessor just
  // paid. Oversized (dedicated) chunks and overflow past the pool cap are
  // freed as before.

  /// Chunks ever served from the pool instead of ::operator new.
  static std::uint64_t total_recycled_chunks();
  /// Bytes currently parked in the pool.
  static std::uint64_t recycle_pool_bytes();
  /// Free every parked chunk; returns the bytes released (tests, and
  /// leak-checker friendliness at shutdown).
  static std::size_t drain_recycle_pool();
  /// Toggle recycling (default on). Turning it off drains the pool.
  static void set_chunk_recycling(bool on);

 private:
  static constexpr std::size_t kMinChunk = 16 * 1024;
  static constexpr std::size_t kMaxChunk = 256 * 1024;

  struct ChunkHeader {
    ChunkHeader* next;
    std::size_t size;  // payload bytes following the header
  };

  void* allocate_slow(std::size_t size, std::size_t align);
  void release_all();
  static ChunkHeader* pool_take(std::size_t need);
  static bool pool_put(ChunkHeader* chunk);
  static ChunkHeader* pool_head_;

  char* ptr_ = nullptr;
  char* end_ = nullptr;
  ChunkHeader* head_ = nullptr;
  std::size_t next_chunk_bytes_ = kMinChunk;
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
  std::size_t chunks_ = 0;

  static std::atomic<std::uint64_t> global_bytes_;
  static std::atomic<std::uint64_t> global_chunks_;
};

/// Deleter that runs the destructor but returns no memory (the arena owns
/// the bytes). Works through base-class pointers because the AST roots
/// have virtual destructors.
struct ArenaDestroy {
  template <typename T>
  void operator()(T* p) const noexcept {
    if (p) p->~T();
  }
};

/// Owning pointer to an arena-placed object: unique_ptr semantics for the
/// object's lifetime, arena semantics for its memory.
template <typename T>
using ArenaPtr = std::unique_ptr<T, ArenaDestroy>;

template <typename T, typename... Args>
ArenaPtr<T> make_in(Arena& arena, Args&&... args) {
  return ArenaPtr<T>(arena.make<T>(std::forward<Args>(args)...));
}

}  // namespace patty::support
