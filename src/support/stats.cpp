#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/diagnostics.hpp"

namespace patty {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double sample_stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double quantile_sorted(const std::vector<double>& xs, double q) {
  if (xs.empty()) fatal("quantile of empty vector");
  if (q <= 0.0) return xs.front();
  if (q >= 1.0) return xs.back();
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) fatal("quantile of empty vector");
  std::sort(xs.begin(), xs.end());
  return quantile_sorted(xs, q);
}

Quantiles::Quantiles(std::vector<double> xs) : sorted_(std::move(xs)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Quantiles::q(double quantile) const {
  return quantile_sorted(sorted_, quantile);
}

double min_of(const std::vector<double>& xs) {
  if (xs.empty()) fatal("min_of empty");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  if (xs.empty()) fatal("max_of empty");
  return *std::max_element(xs.begin(), xs.end());
}

}  // namespace patty
