#pragma once
// Source positions and ranges for MiniOO programs. Every AST node, semantic
// model entry, detected pattern and tuning parameter carries one of these so
// results can always be reflected back to the source text (requirement R1 of
// the paper: comprehensible parallelization).

#include <cstdint>
#include <string>

namespace patty {

/// A 1-based line/column position inside one source file.
struct SourcePos {
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  friend bool operator==(const SourcePos&, const SourcePos&) = default;
  friend auto operator<=>(const SourcePos&, const SourcePos&) = default;
};

/// A half-open [begin, end) range inside one source file.
struct SourceRange {
  SourcePos begin;
  SourcePos end;

  [[nodiscard]] bool valid() const { return begin.line != 0; }
  friend bool operator==(const SourceRange&, const SourceRange&) = default;

  /// "line:col-line:col" rendering used in diagnostics and tuning configs.
  [[nodiscard]] std::string str() const {
    if (!valid()) return "<unknown>";
    return std::to_string(begin.line) + ":" + std::to_string(begin.column) +
           "-" + std::to_string(end.line) + ":" + std::to_string(end.column);
  }
};

}  // namespace patty
