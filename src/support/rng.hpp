#pragma once
// Deterministic random number generation. Everything stochastic in the repo
// (study simulation, tuner exploration, corpus generation, input-data
// synthesis) draws from a SplitMix64 stream seeded explicitly, so every
// table and figure regenerates bit-identically.

#include <cstdint>
#include <vector>

namespace patty {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value (SplitMix64).
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean, double stddev);

  /// Uniform int in [lo, hi] inclusive.
  int int_in(int lo, int hi);

  /// True with probability p.
  bool chance(double p);

  /// Derive an independent child stream (for per-participant streams etc.).
  Rng split();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_;
};

}  // namespace patty
