#pragma once
// Failpoint injection harness: named fault sites compiled into the runtime
// so tests can deterministically exercise every unwind path — throw inside a
// pipeline stage between pop and push, delay a tuner candidate past its
// deadline, force a spurious wakeup out of a queue park.
//
// Sites exist only when built with -DPATTY_FAILPOINTS (CMake option
// PATTY_FAILPOINTS, ON by default in this tree, OFF for release builds,
// where the macros compile to nothing). While nothing is armed a compiled-in
// site costs one relaxed atomic load of a process-global counter; the
// registry mutex is touched only while at least one failpoint is armed.
//
// Arm programmatically (failpoint::arm) or through the PATTY_FAULTS
// environment variable, parsed once at process start:
//
//   PATTY_FAULTS="pipeline.worker.body=throw@3;stage_queue.pop.park=wake@1"
//
// Spec grammar, per site:   <action>@<nth>[:<delay_ms>]
//   throw@N       throw FailpointError on the Nth hit of the site
//   delay@N:MS    sleep MS milliseconds on the Nth hit
//   wake@N        report a spurious wakeup on the Nth hit (the site's
//                 PATTY_FAILPOINT_WAKE expression yields true once)
// Triggers are one-shot: hits before and after the Nth pass through.
//
// The compiled-in site catalog lives where the sites live; grep for
// PATTY_FAILPOINT( across src/ or see DESIGN.md "Fault model".

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace patty::support::failpoint {

/// Thrown by a site armed with the `throw` action. Runtime fault tests use
/// it to prove an exception raised at an arbitrary internal point unwinds
/// cleanly to the region's join.
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& site)
      : std::runtime_error("failpoint '" + site + "' fired"), site_(site) {}
  [[nodiscard]] const std::string& site() const { return site_; }

 private:
  std::string site_;
};

enum class ActionKind : std::uint8_t { Throw, Delay, Wake };

struct Spec {
  ActionKind kind = ActionKind::Throw;
  std::uint64_t nth = 1;       // 1-based hit number that triggers
  std::uint64_t delay_ms = 0;  // Delay only
};

/// Arm `site`; replaces any existing arming of the same site.
void arm(const std::string& site, Spec spec);
/// Parse one "site=action@n[:ms]" entry; false + *error on bad syntax.
bool arm_from_string(const std::string& entry, std::string* error = nullptr);
/// Parse a PATTY_FAULTS-style list (separators ';' or ','); returns how many
/// sites were armed, stops at the first malformed entry.
std::size_t arm_from_env(const std::string& value,
                         std::string* error = nullptr);
void disarm(const std::string& site);
void disarm_all();

/// Total hits observed at `site` while it was armed (trigger or not).
std::uint64_t hits(const std::string& site);
/// Names of currently armed sites.
std::vector<std::string> armed_sites();

namespace detail {
/// Number of armed sites; the macro's fast-path gate.
extern std::atomic<int> g_armed;
/// Slow path behind the gate. Throws on a triggered Throw, sleeps on a
/// triggered Delay; returns true only for a triggered Wake.
bool hit(const char* site);
}  // namespace detail

}  // namespace patty::support::failpoint

#ifdef PATTY_FAILPOINTS
/// Statement site: may throw FailpointError or sleep when armed.
#define PATTY_FAILPOINT(site)                                         \
  do {                                                                \
    if (::patty::support::failpoint::detail::g_armed.load(            \
            std::memory_order_relaxed) != 0)                          \
      (void)::patty::support::failpoint::detail::hit(site);           \
  } while (0)
/// Expression site for wait loops: true = treat as a spurious wakeup and
/// skip the park once. May also throw/sleep like PATTY_FAILPOINT.
#define PATTY_FAILPOINT_WAKE(site)                                    \
  (::patty::support::failpoint::detail::g_armed.load(                 \
       std::memory_order_relaxed) != 0 &&                             \
   ::patty::support::failpoint::detail::hit(site))
#else
#define PATTY_FAILPOINT(site) \
  do {                        \
  } while (0)
#define PATTY_FAILPOINT_WAKE(site) false
#endif
