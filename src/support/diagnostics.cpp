#include "support/diagnostics.hpp"

#include <stdexcept>

namespace patty {

namespace {
const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "?";
}
}  // namespace

void DiagnosticSink::error(SourceRange range, std::string message) {
  diags_.push_back({Severity::Error, range, std::move(message)});
  ++error_count_;
}

void DiagnosticSink::warning(SourceRange range, std::string message) {
  diags_.push_back({Severity::Warning, range, std::move(message)});
}

void DiagnosticSink::note(SourceRange range, std::string message) {
  diags_.push_back({Severity::Note, range, std::move(message)});
}

std::string DiagnosticSink::to_string() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    out += severity_name(d.severity);
    out += " ";
    out += d.range.str();
    out += ": ";
    out += d.message;
    out += "\n";
  }
  return out;
}

void DiagnosticSink::clear() {
  diags_.clear();
  error_count_ = 0;
}

void fatal(const std::string& message) {
  throw std::logic_error("patty internal error: " + message);
}

}  // namespace patty
