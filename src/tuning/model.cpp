#include "tuning/model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <set>
#include <thread>

#include "observe/trace.hpp"
#include "tuning/search_internal.hpp"

namespace patty::tuning {

namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", v * 100.0);
  return buf;
}

double clamp(double v, double lo, double hi) {
  return std::max(lo, std::min(hi, v));
}

/// "Class.Method.pipeline@38.buffer" -> "Class.Method.pipeline@38."
/// (including the trailing dot); bare names like the benches use -> "".
std::string knob_prefix_of(const std::string& name) {
  for (const char* marker : {"pipeline@", "parfor@", "masterworker@"}) {
    const std::size_t pos = name.find(marker);
    if (pos == std::string::npos) continue;
    const std::size_t dot = name.find('.', pos);
    if (dot != std::string::npos) return name.substr(0, dot + 1);
  }
  return "";
}

// ---- Pipeline model -------------------------------------------------------

class PipelineModel final : public CostModel {
 public:
  explicit PipelineModel(PipelineModelParams p) : p_(std::move(p)) {}

  [[nodiscard]] std::string family() const override { return "pipeline"; }

  [[nodiscard]] double predict(const rt::TuningConfig& k,
                               const Hardware& hw) const override {
    const std::string& px = p_.knob_prefix;
    const double n = std::max(1.0, p_.elements);
    // Effective per-stage service: own body plus the nested region's
    // predicted cost per outer item (TADL composition).
    std::vector<double> svc(p_.stages.size(), 0.0);
    double total_svc = 0.0;
    for (std::size_t i = 0; i < p_.stages.size(); ++i) {
      svc[i] = p_.stages[i].service_us +
               (p_.stages[i].inner ? p_.stages[i].inner->predict(k, hw) : 0.0);
      total_svc += svc[i];
    }
    if (k.get_bool_or(px + "sequential", false))
      return p_.startup_us + n * total_svc;

    // StageFusion merges adjacent stages (chains merge runs), mirroring the
    // runtime Pipeline: service times sum, replication takes the max of the
    // members' knobs (non-replicable members pin theirs at 1), and order
    // preservation is ORed across replicated members.
    struct Group {
      double service = 0.0;
      double replication = 1.0;
      bool ordered = false;
    };
    std::vector<Group> groups;
    for (std::size_t i = 0; i < p_.stages.size(); ++i) {
      const StageCost& st = p_.stages[i];
      double r = 1.0;
      bool ordered = false;
      if (st.replicable) {
        r = static_cast<double>(std::max<std::int64_t>(
            1, k.get_or(px + "stage" + st.label + ".replication", 1)));
        ordered = r > 1.0 &&
                  k.get_bool_or(px + "stage" + st.label + ".order", true);
      }
      const bool fused =
          i > 0 && k.get_bool_or(
                       px + "fuse" + p_.stages[i - 1].label + st.label, false);
      if (fused && !groups.empty()) {
        Group& g = groups.back();
        g.service += svc[i];
        g.replication = std::max(g.replication, r);
        g.ordered = g.ordered || ordered;
      } else {
        groups.push_back({svc[i], r, ordered});
      }
    }

    const double batch =
        static_cast<double>(std::max<std::int64_t>(1, k.get_or(px + "batch", 1)));
    const double buffer = static_cast<double>(
        std::max<std::int64_t>(1, k.get_or(px + "buffer", 16)));
    // Queue hop per item per edge: batching divides it, shallow buffers add
    // back-pressure stalls on top.
    const double transfer =
        p_.transfer_us * (1.0 / batch) * (1.0 + 2.0 / buffer);
    const double edges = static_cast<double>(groups.size() - 1);

    double workers = 0.0;
    double fill = 0.0;
    double work = edges * transfer;  // per-item serial work
    double bottleneck = 0.0;
    for (const Group& g : groups) {
      workers += g.replication;
      fill += g.service;
      const double reorder = g.ordered ? p_.reorder_us : 0.0;
      work += g.service + reorder;
      bottleneck = std::max(bottleneck, g.service / g.replication + reorder);
    }
    if (edges > 0.0) bottleneck += transfer;

    const double c = static_cast<double>(hw.effective());
    double per_item = std::max(bottleneck, work / c);
    if (workers > c) per_item += p_.oversub_us * (workers - c);
    return p_.startup_us * workers + fill + n * per_item;
  }

  [[nodiscard]] std::string describe() const override {
    std::string s = "pipeline N=" + num(p_.elements) + " stages[";
    for (std::size_t i = 0; i < p_.stages.size(); ++i) {
      if (i) s += ' ';
      s += p_.stages[i].label + "=" + num(p_.stages[i].service_us) + "us";
      if (p_.stages[i].inner) s += "(+inner " + p_.stages[i].inner->family() + ")";
    }
    s += "] transfer=" + num(p_.transfer_us) +
         "us reorder=" + num(p_.reorder_us) +
         "us startup=" + num(p_.startup_us) + "us";
    return s;
  }

 private:
  PipelineModelParams p_;
};

// ---- Data-parallel loop model ---------------------------------------------

class LoopModel final : public CostModel {
 public:
  explicit LoopModel(LoopModelParams p) : p_(std::move(p)) {}

  [[nodiscard]] std::string family() const override { return "loop"; }

  [[nodiscard]] double predict(const rt::TuningConfig& k,
                               const Hardware& hw) const override {
    const std::string& px = p_.knob_prefix;
    const double n = std::max(1.0, p_.elements);
    const double iter =
        p_.iter_us + (p_.inner ? p_.inner->predict(k, hw) : 0.0);
    if (k.get_bool_or(px + "sequential", false))
      return p_.startup_us + n * iter;
    const double c = static_cast<double>(hw.effective());
    double t = static_cast<double>(k.get_or(px + "threads", 0));
    if (t <= 0.0) t = c;
    const double e = std::max(1.0, std::min(t, c));
    if (e <= 1.0) return p_.startup_us + n * iter;
    double g = static_cast<double>(k.get_or(px + "grain", 0));
    // Auto grain mirrors the runtime: ~8 chunks per thread, floor 1.
    if (g <= 0.0) g = std::max(1.0, std::floor(n / (t * 8.0)));
    g = std::min(g, n);
    const double chunks = std::ceil(n / g);
    // Perfect split of the work, plus spawn/steal per chunk, plus the tail:
    // the last chunk straggles for up to one grain while e-1 threads idle.
    double cost = n * iter / e + chunks * p_.spawn_us +
                  g * iter * (e - 1.0) / e + p_.startup_us * e;
    if (t > c) cost += (t - c) * p_.spawn_us;  // oversubscription nuisance
    return cost;
  }

  [[nodiscard]] std::string describe() const override {
    std::string s = "loop N=" + num(p_.elements) + " iter=" + num(p_.iter_us) +
                    "us spawn=" + num(p_.spawn_us) +
                    "us startup=" + num(p_.startup_us) + "us";
    if (p_.inner) s += " (+inner " + p_.inner->family() + ")";
    return s;
  }

 private:
  LoopModelParams p_;
};

// ---- Master/worker model --------------------------------------------------

class MasterWorkerModel final : public CostModel {
 public:
  explicit MasterWorkerModel(MasterWorkerModelParams p) : p_(std::move(p)) {}

  [[nodiscard]] std::string family() const override { return "master-worker"; }

  [[nodiscard]] double predict(const rt::TuningConfig& k,
                               const Hardware& hw) const override {
    const std::string& px = p_.knob_prefix;
    const double t = std::max(1.0, p_.tasks);
    const double c = static_cast<double>(hw.effective());
    double w = static_cast<double>(k.get_or(px + "workers", 0));
    if (w <= 0.0) w = c;  // 0 = shared pool: one lane per hardware thread
    const double e = std::max(1.0, std::min({w, c, t}));
    if (e <= 1.0) return p_.startup_us + t * (p_.task_us + p_.dispatch_us);
    // Service shared across e effective workers; every task still pays the
    // injector hop, which contends harder the more workers poll it.
    return p_.startup_us * w + t * p_.task_us / e +
           t * p_.dispatch_us * (1.0 + p_.contention * std::max(0.0, w - 1.0));
  }

  [[nodiscard]] std::string describe() const override {
    return "master-worker tasks=" + num(p_.tasks) +
           " task=" + num(p_.task_us) +
           "us dispatch=" + num(p_.dispatch_us) +
           "us contention=" + num(p_.contention);
  }

 private:
  MasterWorkerModelParams p_;
};

// ---- Sum model ------------------------------------------------------------

class SumModel final : public CostModel {
 public:
  explicit SumModel(std::vector<std::shared_ptr<const CostModel>> parts)
      : parts_(std::move(parts)) {}

  [[nodiscard]] std::string family() const override { return "sum"; }

  [[nodiscard]] double predict(const rt::TuningConfig& k,
                               const Hardware& hw) const override {
    double total = 0.0;
    for (const auto& p : parts_) total += p->predict(k, hw);
    return total;
  }

  [[nodiscard]] std::string describe() const override {
    std::string s = "sum of " + std::to_string(parts_.size()) + ": ";
    for (std::size_t i = 0; i < parts_.size(); ++i) {
      if (i) s += "; ";
      s += parts_[i]->describe();
    }
    return s;
  }

 private:
  std::vector<std::shared_ptr<const CostModel>> parts_;
};

}  // namespace

int Hardware::effective() const {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::unique_ptr<CostModel> make_pipeline_model(PipelineModelParams params) {
  return std::make_unique<PipelineModel>(std::move(params));
}
std::unique_ptr<CostModel> make_loop_model(LoopModelParams params) {
  return std::make_unique<LoopModel>(std::move(params));
}
std::unique_ptr<CostModel> make_master_worker_model(
    MasterWorkerModelParams params) {
  return std::make_unique<MasterWorkerModel>(std::move(params));
}
std::unique_ptr<CostModel> make_sum_model(
    std::vector<std::shared_ptr<const CostModel>> parts) {
  return std::make_unique<SumModel>(std::move(parts));
}

// ---- Fitting from observe telemetry ---------------------------------------

PipelineModelParams fit_pipeline(const observe::PipelineObservation& obs,
                                 std::string knob_prefix, Hardware hw) {
  PipelineModelParams p;
  p.knob_prefix = std::move(knob_prefix);
  p.elements = std::max<double>(1.0, static_cast<double>(obs.elements));
  double fill = 0.0;
  double bottleneck = 0.0;
  for (const observe::StageObservation& so : obs.stages) {
    const double service =
        so.items > 0
            ? so.busy_ms * 1000.0 / static_cast<double>(so.items)
            : 0.0;
    p.stages.push_back({so.name, service, true, nullptr});
    fill += service;
    bottleneck =
        std::max(bottleneck, service / std::max(1, so.replication));
  }
  // Whatever wall-clock the ideal bottleneck model cannot explain is
  // per-item plumbing: attribute it to the queue-transfer cost.
  const double edges = static_cast<double>(
      p.stages.size() > 1 ? p.stages.size() - 1 : 0);
  if (edges > 0.0 && !obs.sequential && obs.wall_ms > 0.0) {
    const double wall_us = obs.wall_ms * 1000.0;
    const double ideal_us = fill + p.elements * bottleneck;
    const double residual = wall_us - ideal_us;
    p.transfer_us = clamp(residual / (p.elements * edges), 0.05, 100.0);
  }
  p.reorder_us = p.transfer_us / 2.0;
  (void)hw;
  return p;
}

LoopModelParams fit_loop(const observe::TelemetryDelta& window,
                         double elements, double measured_wall_us,
                         std::string knob_prefix) {
  LoopModelParams p;
  p.knob_prefix = std::move(knob_prefix);
  const std::uint64_t iterations = window.counter("parallel_for.iterations");
  if (elements <= 0.0) elements = static_cast<double>(iterations);
  p.elements = std::max(1.0, elements);
  const observe::WindowStats chunks =
      window.histogram("parallel_for.chunk_us");
  if (iterations > 0 && chunks.count > 0) {
    p.iter_us = chunks.sum / static_cast<double>(iterations);
    const observe::WindowStats wait =
        window.histogram("threadpool.queue_wait_us");
    if (wait.count > 0) p.spawn_us = clamp(wait.mean, 0.5, 50.0);
  } else if (measured_wall_us > 0.0) {
    // The probe degenerated to the sequential path (e.g. 1-core host):
    // the wall clock over the trip count is still the per-iteration cost.
    p.iter_us = measured_wall_us / p.elements;
  }
  return p;
}

MasterWorkerModelParams fit_master_worker(
    const observe::TelemetryDelta& window, std::string knob_prefix) {
  MasterWorkerModelParams p;
  p.knob_prefix = std::move(knob_prefix);
  p.tasks = std::max<double>(
      1.0, static_cast<double>(window.counter("master_worker.tasks")));
  const observe::WindowStats task = window.histogram("master_worker.task_us");
  if (task.count > 0) p.task_us = task.mean;
  const observe::WindowStats wait =
      window.histogram("threadpool.queue_wait_us");
  if (wait.count > 0) p.dispatch_us = clamp(wait.mean, 0.5, 50.0);
  return p;
}

double mean_relative_error(
    const CostModel& model, const Hardware& hw,
    const std::vector<std::pair<rt::TuningConfig, double>>& measured) {
  // Model units are microseconds, measured units are whatever the MeasureFn
  // returns: compare after the least-squares scale (min_s sum(s*p - m)^2).
  double pm = 0.0, pp = 0.0;
  std::vector<std::pair<double, double>> points;
  for (const auto& [config, score] : measured) {
    if (!(score > 0.0) || !std::isfinite(score)) continue;
    const double pred = model.predict(config, hw);
    if (!(pred > 0.0) || !std::isfinite(pred)) continue;
    points.emplace_back(pred, score);
    pm += pred * score;
    pp += pred * pred;
  }
  if (points.empty() || pp <= 0.0) return 0.0;
  const double s = pm / pp;
  double err = 0.0;
  for (const auto& [pred, meas] : points)
    err += std::fabs(s * pred - meas) / meas;
  return err / static_cast<double>(points.size());
}

// ---- Design-time prediction -----------------------------------------------

namespace {

/// Nominal units for design-time models: the profiler gives runtime SHARES,
/// not absolute times, so one loop-body item is normalized to 100us and the
/// stream to 256 items. Speedup is a ratio, so only the balance between
/// modeled work and the fixed overhead constants depends on this choice.
constexpr double kNominalBodyUs = 100.0;
constexpr double kNominalElements = 256.0;

std::string candidate_prefix(const patterns::Candidate& c) {
  return c.tuning.empty() ? "" : knob_prefix_of(c.tuning.front().name);
}

/// Design-time model with per-stage service discounts (1.0 = undiscounted):
/// annotate_predicted_speedups shrinks the share of a stage that contains an
/// already-predicted nested candidate.
std::shared_ptr<const CostModel> candidate_model_scaled(
    const patterns::Candidate& c, const std::vector<double>& stage_scale,
    double body_scale) {
  const std::string prefix = candidate_prefix(c);
  switch (c.kind) {
    case patterns::PatternKind::Pipeline: {
      PipelineModelParams p;
      p.knob_prefix = prefix;
      p.elements = kNominalElements;
      for (std::size_t i = 0; i < c.stages.size(); ++i) {
        const patterns::StageSpec& s = c.stages[i];
        const double scale =
            i < stage_scale.size() ? stage_scale[i] : 1.0;
        p.stages.push_back(
            {s.label,
             std::max(0.01, s.runtime_share) * kNominalBodyUs * scale,
             s.replicable && !s.writes_io, nullptr});
      }
      return std::shared_ptr<const CostModel>(
          make_pipeline_model(std::move(p)));
    }
    case patterns::PatternKind::DataParallelLoop: {
      LoopModelParams p;
      p.knob_prefix = prefix;
      p.elements = kNominalElements;
      p.iter_us = kNominalBodyUs * body_scale;
      return std::shared_ptr<const CostModel>(make_loop_model(std::move(p)));
    }
    case patterns::PatternKind::MasterWorker: {
      MasterWorkerModelParams p;
      p.knob_prefix = prefix;
      p.tasks = std::max<double>(2.0, static_cast<double>(
                                          c.task_stmt_ids.size()));
      p.task_us = kNominalBodyUs * body_scale;
      return std::shared_ptr<const CostModel>(
          make_master_worker_model(std::move(p)));
    }
  }
  return nullptr;
}

/// Enumerate (or coordinate-descend, for huge spaces) the config's domain
/// under `model` and report the predicted best against the sequential cost.
SpeedupPrediction predict_over_space(
    const std::shared_ptr<const CostModel>& model, rt::TuningConfig config,
    const std::string& prefix, const Hardware& hw) {
  SpeedupPrediction out;
  if (!model) return out;
  // Sequential reference: the pattern's own escape hatch (the sequential
  // knob, or a single worker for master/worker).
  rt::TuningConfig seq = config;
  if (seq.has(prefix + "sequential")) seq.set(prefix + "sequential", 1);
  if (seq.has(prefix + "workers")) seq.set(prefix + "workers", 1);
  if (seq.has(prefix + "threads")) seq.set(prefix + "threads", 1);
  out.sequential_cost = model->predict(seq, hw);

  const detail::Space space(config);
  rt::TuningConfig scratch = config;
  auto predict_idx = [&](const std::vector<std::size_t>& idx) {
    space.apply(idx, &scratch);
    return model->predict(scratch, hw);
  };
  std::vector<std::size_t> best = space.indices_of(config);
  double best_cost = predict_idx(best);
  const std::uint64_t total = space.size();
  if (space.dims() > 0 && total <= 4096) {
    std::vector<std::size_t> idx(space.dims(), 0);
    while (true) {
      const double cost = predict_idx(idx);
      if (cost < best_cost) {
        best_cost = cost;
        best = idx;
      }
      std::size_t d = 0;
      while (d < space.dims() && ++idx[d] == space.domains[d].size()) {
        idx[d] = 0;
        ++d;
      }
      if (d == space.dims()) break;
    }
  } else if (space.dims() > 0) {
    // Prediction-only coordinate descent: free, so sweep until fixpoint.
    bool improved = true;
    while (improved) {
      improved = false;
      for (std::size_t d = 0; d < space.dims(); ++d) {
        std::size_t best_i = best[d];
        for (std::size_t i = 0; i < space.domains[d].size(); ++i) {
          if (i == best[d]) continue;
          std::vector<std::size_t> probe = best;
          probe[d] = i;
          const double cost = predict_idx(probe);
          if (cost < best_cost) {
            best_cost = cost;
            best_i = i;
          }
        }
        if (best_i != best[d]) {
          best[d] = best_i;
          improved = true;
        }
      }
    }
  }
  space.apply(best, &config);
  out.best = config;
  out.best_cost = best_cost;
  out.speedup =
      best_cost > 0.0 ? std::max(1.0, out.sequential_cost / best_cost) : 1.0;
  out.summary = model->family() + ": predicted " + num(out.speedup) +
                "x on " + std::to_string(hw.effective()) + " threads (" +
                num(out.sequential_cost) + "us -> " + num(best_cost) + "us)";
  return out;
}

}  // namespace

std::shared_ptr<const CostModel> model_for_candidate(
    const patterns::Candidate& candidate) {
  return candidate_model_scaled(candidate, {}, 1.0);
}

SpeedupPrediction predict_candidate_speedup(const patterns::Candidate& c,
                                            Hardware hw) {
  rt::TuningConfig config;
  for (const rt::TuningParameter& p : c.tuning) config.define(p);
  return predict_over_space(model_for_candidate(c), std::move(config),
                            candidate_prefix(c), hw);
}

void annotate_predicted_speedups(std::vector<patterns::Candidate>& candidates,
                                 Hardware hw) {
  // Innermost first (shortest source range), so an outer region composes
  // over its nested candidates' already-computed predictions.
  std::vector<std::size_t> order(candidates.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto span_lines = [&](std::size_t i) {
    const lang::Stmt* a = candidates[i].anchor;
    return a ? static_cast<long>(a->range.end.line) -
                   static_cast<long>(a->range.begin.line)
             : 0L;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return span_lines(a) < span_lines(b);
                   });

  auto contains = [](const patterns::Candidate& outer,
                     const patterns::Candidate& inner) {
    if (!outer.anchor || !inner.anchor || outer.anchor == inner.anchor)
      return false;
    return outer.anchor->range.begin <= inner.anchor->range.begin &&
           inner.anchor->range.end <= outer.anchor->range.end;
  };

  for (std::size_t oi : order) {
    patterns::Candidate& c = candidates[oi];
    // Discount work a nested, already-predicted candidate will absorb:
    // profiler shares are inclusive, so the inner region's share of the
    // enclosing stage shrinks by its own predicted speedup.
    std::vector<double> stage_scale(c.stages.size(), 1.0);
    double body_scale = 1.0;
    for (std::size_t ii = 0; ii < candidates.size(); ++ii) {
      const patterns::Candidate& in = candidates[ii];
      if (ii == oi || in.predicted_speedup <= 0.0 || !contains(c, in))
        continue;
      const double f =
          c.runtime_share > 0.0
              ? clamp(in.runtime_share / c.runtime_share, 0.0, 1.0)
              : 0.0;
      if (f <= 0.0) continue;
      const double spd = std::max(1.0, in.predicted_speedup);
      if (c.kind == patterns::PatternKind::Pipeline && in.anchor) {
        for (std::size_t s = 0; s < c.stages.size(); ++s) {
          const auto& ids = c.stages[s].stmt_ids;
          if (std::find(ids.begin(), ids.end(), in.anchor->id) == ids.end())
            continue;
          const double share = std::max(0.01, c.stages[s].runtime_share);
          const double frac = std::min(f, share) / share;
          stage_scale[s] = std::max(
              0.05, stage_scale[s] * (1.0 - frac + frac / spd));
        }
      } else {
        body_scale = std::max(0.05, body_scale * (1.0 - f + f / spd));
      }
    }
    rt::TuningConfig config;
    for (const rt::TuningParameter& p : c.tuning) config.define(p);
    const SpeedupPrediction pred = predict_over_space(
        candidate_model_scaled(c, stage_scale, body_scale), std::move(config),
        candidate_prefix(c), hw);
    c.predicted_speedup = pred.speedup;
  }
}

// ---- Model-guided tuner ---------------------------------------------------

namespace {

/// Which pattern family a knob space belongs to, judged by the tails the
/// detector emits. Empty = unrecognizable (generic objective): no model.
std::string classify_space(const std::vector<std::string>& names,
                           std::string* prefix_out,
                           std::vector<std::string>* labels_out) {
  std::string prefix;
  for (const std::string& n : names) {
    prefix = knob_prefix_of(n);
    if (!prefix.empty()) break;
  }
  bool pipeline = false, loop = false, mw = false;
  std::vector<std::string> labels;
  for (const std::string& n : names) {
    std::string tail =
        n.rfind(prefix, 0) == 0 ? n.substr(prefix.size()) : n;
    if (tail == "buffer" || tail == "batch" || tail.rfind("fuse", 0) == 0)
      pipeline = true;
    if (tail.rfind("stage", 0) == 0) {
      pipeline = true;
      const std::size_t dot = tail.find('.');
      if (dot != std::string::npos && dot > 5)
        labels.push_back(tail.substr(5, dot - 5));
    }
    if (tail == "grain" || tail == "threads") loop = true;
    if (tail == "workers") mw = true;
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  *prefix_out = prefix;
  *labels_out = labels;
  if (pipeline) return "pipeline";
  if (loop) return "loop";
  if (mw) return "master-worker";
  return "";
}

/// The most recent telemetry-published pipeline observation whose stage
/// names cover the knob space's stage labels.
std::optional<observe::PipelineObservation> matching_observation(
    const std::vector<std::string>& labels) {
  const std::vector<observe::PipelineObservation> recent =
      observe::recent_pipelines();
  for (auto it = recent.rbegin(); it != recent.rend(); ++it) {
    std::set<std::string> names;
    for (const observe::StageObservation& so : it->stages)
      names.insert(so.name);
    bool all = !it->stages.empty();
    for (const std::string& l : labels)
      if (!names.count(l)) all = false;
    if (all) return *it;
  }
  if (!recent.empty()) return recent.back();
  return std::nullopt;
}

class ModelGuidedTuner final : public Tuner {
 public:
  explicit ModelGuidedTuner(ModelGuidedOptions opts)
      : opts_(std::move(opts)) {}

  [[nodiscard]] std::string name() const override { return "model-guided"; }

  TuningRun tune(rt::TuningConfig config, const MeasureFn& measure,
                 std::size_t budget) override {
    const detail::Space space(config);
    detail::Evaluator ev(space, config, measure, budget, options_);
    const std::vector<std::size_t> start = space.indices_of(config);
    ModelFitInfo& info = ev.run.model;
    const Hardware hw = opts_.hardware;

    auto fallback = [&](std::string why) {
      info.used = false;
      info.family = "fallback-linear";
      info.description = std::move(why);
      detail::linear_descend(ev, space, start);
      return std::move(ev.run);
    };

    std::shared_ptr<const CostModel> model = opts_.model;
    std::string family = model ? "injected" : "";
    std::string prefix;
    std::vector<std::string> labels;
    if (!model) {
      family = classify_space(space.names, &prefix, &labels);
      if (family.empty())
        return fallback("no pattern knobs recognized in the search space");
    }

    // One probe of the starting configuration. Without an injected model it
    // runs with telemetry forced on and fits the model from the window; with
    // one it still calibrates the score scale.
    double probe_score = 0.0;
    if (!model) {
      const bool was = observe::enabled();
      observe::set_enabled(true);
      if (family == "pipeline") observe::clear_pipelines();
      const observe::MetricsSnapshot before = observe::capture();
      const std::uint64_t t0 = observe::now_us();
      probe_score = ev.eval(start);
      const double wall_us = static_cast<double>(observe::now_us() - t0);
      const observe::TelemetryDelta window = observe::delta_since(before);
      observe::set_enabled(was);
      if (!std::isfinite(probe_score))
        return fallback("probe evaluation failed");
      if (family == "pipeline") {
        const std::optional<observe::PipelineObservation> obs =
            matching_observation(labels);
        if (!obs)
          return fallback("probe published no pipeline observation");
        model = std::shared_ptr<const CostModel>(
            make_pipeline_model(fit_pipeline(*obs, prefix, hw)));
      } else if (family == "loop") {
        const LoopModelParams p = fit_loop(window, 0.0, wall_us, prefix);
        if (p.iter_us <= 0.0)
          return fallback("probe produced no loop telemetry");
        model = std::shared_ptr<const CostModel>(make_loop_model(p));
      } else {
        const MasterWorkerModelParams p = fit_master_worker(window, prefix);
        if (p.task_us <= 0.0)
          return fallback("probe produced no master/worker telemetry");
        model =
            std::shared_ptr<const CostModel>(make_master_worker_model(p));
      }
    } else {
      probe_score = ev.eval(start);
      if (!std::isfinite(probe_score))
        return fallback("probe evaluation failed");
    }
    info.probe_evaluations = 1;

    // Rank the WHOLE space by prediction (no measurements), then validate
    // one representative per distinct predicted score, best first.
    rt::TuningConfig scratch = config;
    auto predict_idx = [&](const std::vector<std::size_t>& idx) {
      space.apply(idx, &scratch);
      return model->predict(scratch, hw);
    };
    const double pred_start = predict_idx(start);
    info.scale = pred_start > 0.0 ? probe_score / pred_start : 1.0;
    info.predicted_default = info.scale * pred_start;

    std::vector<std::pair<double, std::vector<std::size_t>>> ranked;
    const std::uint64_t total = space.size();
    if (space.dims() > 0 && total <= opts_.max_enumeration) {
      ranked.reserve(static_cast<std::size_t>(total));
      std::vector<std::size_t> idx(space.dims(), 0);
      while (true) {
        ranked.emplace_back(predict_idx(idx), idx);
        std::size_t d = 0;
        while (d < space.dims() && ++idx[d] == space.domains[d].size()) {
          idx[d] = 0;
          ++d;
        }
        if (d == space.dims()) break;
      }
    } else {
      // Too big to enumerate: prediction-only coordinate descent from the
      // start, ranking every point the descent visits.
      std::set<std::vector<std::size_t>> visited;
      std::vector<std::size_t> cur = start;
      double cur_pred = pred_start;
      visited.insert(cur);
      ranked.emplace_back(cur_pred, cur);
      bool improved = true;
      while (improved) {
        improved = false;
        for (std::size_t d = 0; d < space.dims(); ++d) {
          std::size_t best_i = cur[d];
          for (std::size_t i = 0; i < space.domains[d].size(); ++i) {
            if (i == cur[d]) continue;
            std::vector<std::size_t> probe = cur;
            probe[d] = i;
            if (!visited.insert(probe).second) continue;
            const double pred = predict_idx(probe);
            ranked.emplace_back(pred, probe);
            if (pred < cur_pred) {
              cur_pred = pred;
              best_i = i;
            }
          }
          if (best_i != cur[d]) {
            cur[d] = best_i;
            improved = true;
          }
        }
      }
    }
    std::sort(ranked.begin(), ranked.end());

    info.predicted_best = info.scale * ranked.front().first;
    info.predicted_speedup = ranked.front().first > 0.0
                                 ? pred_start / ranked.front().first
                                 : 1.0;

    // Validate: ties in the prediction need only one measurement (on a
    // host where the model says "sequential wins", the whole sequential
    // slice collapses into one run).
    double prev_pred = std::numeric_limits<double>::quiet_NaN();
    std::size_t validated = 0;
    for (const auto& [pred, idx] : ranked) {
      if (validated >= opts_.top_k || ev.exhausted()) break;
      if (!std::isnan(prev_pred) &&
          std::fabs(pred - prev_pred) <=
              1e-9 * std::max(1.0, std::fabs(prev_pred)))
        continue;
      prev_pred = pred;
      ++validated;
      if (idx == start) {
        info.validations.emplace_back(info.scale * pred, probe_score);
        continue;  // already measured by the probe
      }
      const std::size_t before_evals = ev.run.evaluations;
      const double measured = ev.eval(idx);
      if (!std::isfinite(measured)) continue;
      info.validations.emplace_back(info.scale * pred, measured);
      info.validation_evaluations += ev.run.evaluations - before_evals;
    }

    // Prediction quality over the validated points, least-squares scaled
    // (same convention as mean_relative_error).
    double pm = 0.0, pp = 0.0;
    for (const auto& [pred, meas] : info.validations) {
      if (!(meas > 0.0)) continue;
      pm += pred * meas;
      pp += pred * pred;
    }
    if (pp > 0.0) {
      const double s = pm / pp;
      double err = 0.0;
      std::size_t n = 0;
      for (const auto& [pred, meas] : info.validations) {
        if (!(meas > 0.0)) continue;
        err += std::fabs(s * pred - meas) / meas;
        ++n;
      }
      if (n > 0) info.fit_error = err / static_cast<double>(n);
    }

    info.used = true;
    info.family = family;
    info.description = model->describe();
    return std::move(ev.run);
  }

 private:
  ModelGuidedOptions opts_;
};

}  // namespace

std::unique_ptr<Tuner> make_model_guided_tuner(ModelGuidedOptions opts) {
  return std::make_unique<ModelGuidedTuner>(std::move(opts));
}

std::string explain_model(const TuningRun& run) {
  const ModelFitInfo& m = run.model;
  std::string out = "model-guided tuning report\n";
  if (!m.used) {
    out += "  no model used (" +
           (m.description.empty() ? std::string("search-based run")
                                  : m.description) +
           ")\n";
    out += "  evaluations: " + std::to_string(run.evaluations) +
           ", best score: " + num(run.best_score) + "\n";
    return out;
  }
  out += "  family: " + m.family + "\n";
  out += "  model:  " + m.description + "\n";
  out += "  calibration: " + num(m.scale) + " score units/us; predicted " +
         num(m.predicted_default) + " (default) -> " + num(m.predicted_best) +
         " (best), " + num(m.predicted_speedup) + "x predicted speedup\n";
  out += "  evaluations: " + std::to_string(run.evaluations) + " (" +
         std::to_string(m.probe_evaluations) + " probe + " +
         std::to_string(m.validation_evaluations) + " validation), " +
         std::to_string(run.cache_hits) + " cache hits\n";
  if (!m.validations.empty()) {
    out += "  validation (predicted vs measured):\n";
    for (std::size_t i = 0; i < m.validations.size(); ++i) {
      const auto& [pred, meas] = m.validations[i];
      out += "    #" + std::to_string(i + 1) + "  pred=" + num(pred) +
             "  meas=" + num(meas);
      if (meas > 0.0)
        out += "  (" + pct(std::fabs(pred - meas) / meas) + " off)";
      out += "\n";
    }
    out += "  mean relative prediction error: " + pct(m.fit_error) + "\n";
  }
  out += "  best measured score: " + num(run.best_score) + "\n";
  return out;
}

}  // namespace patty::tuning
