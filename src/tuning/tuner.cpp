#include "tuning/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <utility>

#include "support/diagnostics.hpp"
#include "tuning/search_internal.hpp"

namespace patty::tuning {

namespace {

using detail::Evaluator;
using detail::Space;

class LinearTuner final : public Tuner {
 public:
  [[nodiscard]] std::string name() const override { return "linear"; }

  TuningRun tune(rt::TuningConfig config, const MeasureFn& measure,
                 std::size_t budget) override {
    const Space space(config);
    Evaluator ev(space, config, measure, budget, options_);
    detail::linear_descend(ev, space, space.indices_of(config));
    return std::move(ev.run);
  }
};

class RandomTuner final : public Tuner {
 public:
  explicit RandomTuner(std::uint64_t seed) : seed_(seed) {}
  [[nodiscard]] std::string name() const override { return "random"; }

  TuningRun tune(rt::TuningConfig config, const MeasureFn& measure,
                 std::size_t budget) override {
    const Space space(config);
    Evaluator ev(space, config, measure, budget, options_);
    Rng rng(seed_);
    ev.eval(space.indices_of(config));  // include the starting point
    // The whole space may be smaller than the budget: stop once every
    // point has been visited (duplicates cost no budget).
    const std::uint64_t total = space.size();
    while (!ev.exhausted() && ev.seen.size() < total) {
      std::vector<std::size_t> idx(space.dims());
      for (std::size_t d = 0; d < space.dims(); ++d)
        idx[d] = static_cast<std::size_t>(
            rng.next_below(space.domains[d].size()));
      if (ev.seen.count(idx)) continue;  // free; try another point
      ev.eval(idx);
    }
    return std::move(ev.run);
  }

 private:
  std::uint64_t seed_;
};

class NelderMeadTuner final : public Tuner {
 public:
  explicit NelderMeadTuner(std::uint64_t seed) : seed_(seed) {}
  [[nodiscard]] std::string name() const override { return "nelder-mead"; }

  TuningRun tune(rt::TuningConfig config, const MeasureFn& measure,
                 std::size_t budget) override {
    const Space space(config);
    Evaluator ev(space, config, measure, budget, options_);
    Rng rng(seed_);
    const std::size_t n = space.dims();

    auto clamp_round = [&](const std::vector<double>& x) {
      std::vector<std::size_t> idx(n);
      for (std::size_t d = 0; d < n; ++d) {
        const double hi = static_cast<double>(space.domains[d].size() - 1);
        double v = std::round(x[d]);
        v = std::max(0.0, std::min(hi, v));
        idx[d] = static_cast<std::size_t>(v);
      }
      return idx;
    };

    struct Point {
      std::vector<double> x;
      double score;
    };

    // One simplex descent; restarts from random points reuse it while
    // budget remains (discrete/boolean dimensions strand plain NM easily).
    auto descend = [&](std::vector<double> x0) {
      std::vector<Point> simplex;
      simplex.push_back({x0, ev.eval(clamp_round(x0))});
      for (std::size_t d = 0; d < n && !ev.exhausted(); ++d) {
        std::vector<double> x = x0;
        const double span = static_cast<double>(space.domains[d].size() - 1);
        x[d] += std::max(1.0, span / 2.0) * (rng.chance(0.5) ? 1.0 : -1.0);
        simplex.push_back({x, ev.eval(clamp_round(x))});
      }
      // Cached re-evaluations are free, so the budget alone does not bound
      // the loop: cap iterations so converged simplexes stop spinning.
      std::size_t iterations_left = budget + 16;
      while (!ev.exhausted() && simplex.size() >= 2 && iterations_left-- > 0) {
        std::sort(simplex.begin(), simplex.end(),
                  [](const Point& a, const Point& b) { return a.score < b.score; });
        const Point& worst = simplex.back();
        std::vector<double> centroid(n, 0.0);
        for (std::size_t i = 0; i + 1 < simplex.size(); ++i)
          for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[i].x[d];
        for (double& c : centroid)
          c /= static_cast<double>(simplex.size() - 1);

        auto blend = [&](double alpha) {
          std::vector<double> x(n);
          for (std::size_t d = 0; d < n; ++d)
            x[d] = centroid[d] + alpha * (centroid[d] - worst.x[d]);
          return x;
        };
        std::vector<double> reflected = blend(1.0);
        const double r_score = ev.eval(clamp_round(reflected));
        if (r_score < simplex.front().score && !ev.exhausted()) {
          std::vector<double> expanded = blend(2.0);
          const double e_score = ev.eval(clamp_round(expanded));
          simplex.back() = e_score < r_score ? Point{expanded, e_score}
                                             : Point{reflected, r_score};
        } else if (r_score < worst.score) {
          simplex.back() = Point{reflected, r_score};
        } else if (!ev.exhausted()) {
          std::vector<double> contracted = blend(-0.5);
          const double c_score = ev.eval(clamp_round(contracted));
          if (c_score < worst.score) {
            simplex.back() = Point{contracted, c_score};
          } else {
            // Shrink toward the best vertex; a fully collapsed simplex
            // means this descent converged.
            bool moved = false;
            for (std::size_t i = 1; i < simplex.size() && !ev.exhausted();
                 ++i) {
              for (std::size_t d = 0; d < n; ++d) {
                const double mid = (simplex[i].x[d] + simplex[0].x[d]) / 2.0;
                if (std::fabs(mid - simplex[i].x[d]) > 1e-9) moved = true;
                simplex[i].x[d] = mid;
              }
              simplex[i].score = ev.eval(clamp_round(simplex[i].x));
            }
            if (!moved) return;
          }
        }
      }
    };

    const std::vector<std::size_t> start = space.indices_of(config);
    std::vector<double> x0(n);
    for (std::size_t d = 0; d < n; ++d) x0[d] = static_cast<double>(start[d]);
    descend(std::move(x0));
    while (!ev.exhausted()) {
      std::vector<double> xr(n);
      for (std::size_t d = 0; d < n; ++d)
        xr[d] = static_cast<double>(rng.next_below(space.domains[d].size()));
      const std::size_t before = ev.run.evaluations;
      descend(std::move(xr));
      if (ev.run.evaluations == before) break;  // space exhausted via cache
    }
    return std::move(ev.run);
  }

 private:
  std::uint64_t seed_;
};

class TabuTuner final : public Tuner {
 public:
  TabuTuner(std::uint64_t seed, std::size_t tenure)
      : seed_(seed), tenure_(tenure) {}
  [[nodiscard]] std::string name() const override { return "tabu"; }

  TuningRun tune(rt::TuningConfig config, const MeasureFn& measure,
                 std::size_t budget) override {
    const Space space(config);
    Evaluator ev(space, config, measure, budget, options_);
    Rng rng(seed_);
    std::vector<std::size_t> current = space.indices_of(config);
    double current_score = ev.eval(current);
    std::deque<std::pair<std::size_t, std::size_t>> tabu;  // (dim, index)

    auto is_tabu = [&](std::size_t d, std::size_t i) {
      for (const auto& [td, ti] : tabu)
        if (td == d && ti == i) return true;
      return false;
    };

    while (!ev.exhausted()) {
      // Neighborhood: +-1 step in each dimension.
      std::vector<std::pair<std::size_t, std::size_t>> moves;
      for (std::size_t d = 0; d < space.dims(); ++d) {
        if (current[d] + 1 < space.domains[d].size())
          moves.emplace_back(d, current[d] + 1);
        if (current[d] > 0) moves.emplace_back(d, current[d] - 1);
      }
      if (moves.empty()) break;
      rng.shuffle(moves);

      bool moved = false;
      std::size_t best_d = 0, best_i = 0;
      double best_score = 0.0;
      bool have_best = false;
      for (const auto& [d, i] : moves) {
        if (ev.exhausted()) break;
        std::vector<std::size_t> probe = current;
        probe[d] = i;
        const double score = ev.eval(probe);
        const bool aspiration = score < ev.run.best_score;
        if (is_tabu(d, i) && !aspiration) continue;
        if (!have_best || score < best_score) {
          have_best = true;
          best_score = score;
          best_d = d;
          best_i = i;
        }
      }
      if (!have_best) break;
      tabu.emplace_back(best_d, current[best_d]);  // forbid moving back
      while (tabu.size() > tenure_) tabu.pop_front();
      current[best_d] = best_i;
      current_score = best_score;
      (void)current_score;
      moved = true;
      (void)moved;
    }
    return std::move(ev.run);
  }

 private:
  std::uint64_t seed_;
  std::size_t tenure_;
};

}  // namespace

std::unique_ptr<Tuner> make_linear_tuner() {
  return std::make_unique<LinearTuner>();
}
std::unique_ptr<Tuner> make_random_tuner(std::uint64_t seed) {
  return std::make_unique<RandomTuner>(seed);
}
std::unique_ptr<Tuner> make_nelder_mead_tuner(std::uint64_t seed) {
  return std::make_unique<NelderMeadTuner>(seed);
}
std::unique_ptr<Tuner> make_tabu_tuner(std::uint64_t seed,
                                       std::size_t tenure) {
  return std::make_unique<TabuTuner>(seed, tenure);
}

}  // namespace patty::tuning
