#include "tuning/tuner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <optional>

#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "runtime/cancellation.hpp"
#include "support/diagnostics.hpp"

namespace patty::tuning {

namespace {

/// Flattened view of a TuningConfig: name-sorted parameters with their
/// admissible value lists. Tuners work on index vectors into the domains.
struct Space {
  std::vector<std::string> names;
  std::vector<std::vector<std::int64_t>> domains;

  explicit Space(const rt::TuningConfig& config) {
    for (const auto& [name, p] : config.params()) {
      names.push_back(name);
      domains.push_back(p.domain());
    }
  }

  [[nodiscard]] std::size_t dims() const { return names.size(); }

  [[nodiscard]] std::vector<std::size_t> indices_of(
      const rt::TuningConfig& config) const {
    std::vector<std::size_t> idx(dims(), 0);
    for (std::size_t d = 0; d < dims(); ++d) {
      const std::int64_t v = config.get_or(names[d], domains[d].front());
      auto it = std::find(domains[d].begin(), domains[d].end(), v);
      idx[d] = it == domains[d].end()
                   ? 0
                   : static_cast<std::size_t>(it - domains[d].begin());
    }
    return idx;
  }

  void apply(const std::vector<std::size_t>& idx,
             rt::TuningConfig* config) const {
    for (std::size_t d = 0; d < dims(); ++d)
      config->set(names[d], domains[d][idx[d]]);
  }

  [[nodiscard]] std::vector<std::int64_t> values(
      const std::vector<std::size_t>& idx) const {
    std::vector<std::int64_t> out(dims());
    for (std::size_t d = 0; d < dims(); ++d) out[d] = domains[d][idx[d]];
    return out;
  }
};

/// Shared evaluation bookkeeping: caching, budget, history, and candidate
/// hardening — a measurement that throws or outruns the deadline becomes a
/// failed evaluation (score +inf) instead of aborting the search.
struct Evaluator {
  const Space& space;
  rt::TuningConfig config;
  const MeasureFn& measure;
  std::size_t budget;
  TunerOptions options;
  TuningRun run;
  std::map<std::vector<std::size_t>, double> cache;

  Evaluator(const Space& s, rt::TuningConfig c, const MeasureFn& m,
            std::size_t b, TunerOptions o = {})
      : space(s), config(std::move(c)), measure(m), budget(b), options(o) {}

  [[nodiscard]] bool exhausted() const { return run.evaluations >= budget; }

  double eval(const std::vector<std::size_t>& idx) {
    auto it = cache.find(idx);
    if (it != cache.end()) return it->second;
    space.apply(idx, &config);
    // One trace span per MeasureFn call, with the probed configuration
    // (and afterwards the score) attached: the tuning cycle becomes a row
    // of "tuner.eval" slices in the Chrome trace.
    const bool telemetry = observe::enabled();
    observe::Span span("tuner.eval", "tuning");
    // Candidate watchdog: on deadline expiry the StopSource installed as
    // the ambient token fires, every region the measurement runs (they all
    // read current_stop_token()) cancels cooperatively, and the resulting
    // OperationCancelled lands in the catch below.
    double score = 0.0;
    bool failed = false;
    std::string failure;
    {
      rt::StopSource stop;
      std::optional<rt::Watchdog> watchdog;
      if (options.candidate_deadline_ms > 0)
        watchdog.emplace(
            std::chrono::milliseconds(options.candidate_deadline_ms),
            [&stop] { stop.request_stop(); });
      rt::StopScope ambient(stop.token());
      try {
        score = measure(config);
      } catch (const std::exception& e) {
        failed = true;
        failure = e.what();
      } catch (...) {
        failed = true;
        failure = "unknown exception";
      }
      if (watchdog) {
        watchdog->disarm();
        if (watchdog->fired()) {
          failed = true;
          failure = "deadline exceeded";
        }
      }
    }
    if (failed) {
      score = std::numeric_limits<double>::infinity();
      ++run.failed_evaluations;
      if (telemetry)
        observe::Registry::global().counter("tuner.failed_evaluations").add();
    }
    if (telemetry) {
      // Score first (it must survive the detail cap), then the probed
      // values with the shared qualifier prefix stripped — parameter names
      // like "VideoApp.Process.pipeline@38.buffer" would otherwise crowd
      // the whole configuration out of the span.
      std::size_t prefix = 0;
      if (space.dims() > 1) {
        const std::string& first = space.names.front();
        std::size_t common = first.size();
        for (const std::string& n : space.names)
          common = std::min(
              common,
              static_cast<std::size_t>(
                  std::mismatch(first.begin(),
                                first.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        std::min(common, n.size())),
                                n.begin())
                      .first -
                  first.begin()));
        const std::size_t dot = first.rfind('.', common);
        if (dot != std::string::npos) prefix = dot + 1;
      }
      std::string detail = "score=" + std::to_string(score);
      for (std::size_t d = 0; d < space.dims(); ++d) {
        detail += ' ';
        detail += space.names[d].substr(prefix) + "=" +
                  std::to_string(space.domains[d][idx[d]]);
      }
      span.set_detail(detail);
      observe::Registry::global().counter("tuner.evaluations").add();
      observe::Registry::global().histogram("tuner.score").record(score);
    }
    ++run.evaluations;
    cache[idx] = score;
    run.history.push_back({space.values(idx), score, failed, failure});
    // A failed candidate (score +inf) can only become "best" as the very
    // first entry, and any finite score later replaces it.
    if (run.history.size() == 1 || score < run.best_score) {
      run.best_score = score;
      run.best = config;
    }
    return score;
  }
};

class LinearTuner final : public Tuner {
 public:
  [[nodiscard]] std::string name() const override { return "linear"; }

  TuningRun tune(rt::TuningConfig config, const MeasureFn& measure,
                 std::size_t budget) override {
    const Space space(config);
    Evaluator ev(space, config, measure, budget, options_);
    std::vector<std::size_t> current = space.indices_of(config);
    double current_score = ev.eval(current);

    bool improved = true;
    while (improved && !ev.exhausted()) {
      improved = false;
      for (std::size_t d = 0; d < space.dims() && !ev.exhausted(); ++d) {
        std::size_t best_i = current[d];
        for (std::size_t i = 0; i < space.domains[d].size(); ++i) {
          if (i == current[d]) continue;
          if (ev.exhausted()) break;
          std::vector<std::size_t> probe = current;
          probe[d] = i;
          const double score = ev.eval(probe);
          if (score < current_score) {
            current_score = score;
            best_i = i;
          }
        }
        if (best_i != current[d]) {
          current[d] = best_i;
          improved = true;
        }
      }
    }
    return std::move(ev.run);
  }
};

class RandomTuner final : public Tuner {
 public:
  explicit RandomTuner(std::uint64_t seed) : seed_(seed) {}
  [[nodiscard]] std::string name() const override { return "random"; }

  TuningRun tune(rt::TuningConfig config, const MeasureFn& measure,
                 std::size_t budget) override {
    const Space space(config);
    Evaluator ev(space, config, measure, budget, options_);
    Rng rng(seed_);
    ev.eval(space.indices_of(config));  // include the starting point
    // The whole space may be smaller than the budget: stop once every
    // point has been evaluated (duplicates cost no budget).
    std::uint64_t total = 1;
    for (std::size_t d = 0; d < space.dims(); ++d)
      total *= static_cast<std::uint64_t>(space.domains[d].size());
    while (!ev.exhausted() && ev.cache.size() < total) {
      std::vector<std::size_t> idx(space.dims());
      for (std::size_t d = 0; d < space.dims(); ++d)
        idx[d] = static_cast<std::size_t>(
            rng.next_below(space.domains[d].size()));
      if (ev.cache.count(idx)) continue;  // free; try another point
      ev.eval(idx);
    }
    return std::move(ev.run);
  }

 private:
  std::uint64_t seed_;
};

class NelderMeadTuner final : public Tuner {
 public:
  explicit NelderMeadTuner(std::uint64_t seed) : seed_(seed) {}
  [[nodiscard]] std::string name() const override { return "nelder-mead"; }

  TuningRun tune(rt::TuningConfig config, const MeasureFn& measure,
                 std::size_t budget) override {
    const Space space(config);
    Evaluator ev(space, config, measure, budget, options_);
    Rng rng(seed_);
    const std::size_t n = space.dims();

    auto clamp_round = [&](const std::vector<double>& x) {
      std::vector<std::size_t> idx(n);
      for (std::size_t d = 0; d < n; ++d) {
        const double hi = static_cast<double>(space.domains[d].size() - 1);
        double v = std::round(x[d]);
        v = std::max(0.0, std::min(hi, v));
        idx[d] = static_cast<std::size_t>(v);
      }
      return idx;
    };

    struct Point {
      std::vector<double> x;
      double score;
    };

    // One simplex descent; restarts from random points reuse it while
    // budget remains (discrete/boolean dimensions strand plain NM easily).
    auto descend = [&](std::vector<double> x0) {
      std::vector<Point> simplex;
      simplex.push_back({x0, ev.eval(clamp_round(x0))});
      for (std::size_t d = 0; d < n && !ev.exhausted(); ++d) {
        std::vector<double> x = x0;
        const double span = static_cast<double>(space.domains[d].size() - 1);
        x[d] += std::max(1.0, span / 2.0) * (rng.chance(0.5) ? 1.0 : -1.0);
        simplex.push_back({x, ev.eval(clamp_round(x))});
      }
      // Cached re-evaluations are free, so the budget alone does not bound
      // the loop: cap iterations so converged simplexes stop spinning.
      std::size_t iterations_left = budget + 16;
      while (!ev.exhausted() && simplex.size() >= 2 && iterations_left-- > 0) {
        std::sort(simplex.begin(), simplex.end(),
                  [](const Point& a, const Point& b) { return a.score < b.score; });
        const Point& worst = simplex.back();
        std::vector<double> centroid(n, 0.0);
        for (std::size_t i = 0; i + 1 < simplex.size(); ++i)
          for (std::size_t d = 0; d < n; ++d) centroid[d] += simplex[i].x[d];
        for (double& c : centroid)
          c /= static_cast<double>(simplex.size() - 1);

        auto blend = [&](double alpha) {
          std::vector<double> x(n);
          for (std::size_t d = 0; d < n; ++d)
            x[d] = centroid[d] + alpha * (centroid[d] - worst.x[d]);
          return x;
        };
        std::vector<double> reflected = blend(1.0);
        const double r_score = ev.eval(clamp_round(reflected));
        if (r_score < simplex.front().score && !ev.exhausted()) {
          std::vector<double> expanded = blend(2.0);
          const double e_score = ev.eval(clamp_round(expanded));
          simplex.back() = e_score < r_score ? Point{expanded, e_score}
                                             : Point{reflected, r_score};
        } else if (r_score < worst.score) {
          simplex.back() = Point{reflected, r_score};
        } else if (!ev.exhausted()) {
          std::vector<double> contracted = blend(-0.5);
          const double c_score = ev.eval(clamp_round(contracted));
          if (c_score < worst.score) {
            simplex.back() = Point{contracted, c_score};
          } else {
            // Shrink toward the best vertex; a fully collapsed simplex
            // means this descent converged.
            bool moved = false;
            for (std::size_t i = 1; i < simplex.size() && !ev.exhausted();
                 ++i) {
              for (std::size_t d = 0; d < n; ++d) {
                const double mid = (simplex[i].x[d] + simplex[0].x[d]) / 2.0;
                if (std::fabs(mid - simplex[i].x[d]) > 1e-9) moved = true;
                simplex[i].x[d] = mid;
              }
              simplex[i].score = ev.eval(clamp_round(simplex[i].x));
            }
            if (!moved) return;
          }
        }
      }
    };

    const std::vector<std::size_t> start = space.indices_of(config);
    std::vector<double> x0(n);
    for (std::size_t d = 0; d < n; ++d) x0[d] = static_cast<double>(start[d]);
    descend(std::move(x0));
    while (!ev.exhausted()) {
      std::vector<double> xr(n);
      for (std::size_t d = 0; d < n; ++d)
        xr[d] = static_cast<double>(rng.next_below(space.domains[d].size()));
      const std::size_t before = ev.run.evaluations;
      descend(std::move(xr));
      if (ev.run.evaluations == before) break;  // space exhausted via cache
    }
    return std::move(ev.run);
  }

 private:
  std::uint64_t seed_;
};

class TabuTuner final : public Tuner {
 public:
  TabuTuner(std::uint64_t seed, std::size_t tenure)
      : seed_(seed), tenure_(tenure) {}
  [[nodiscard]] std::string name() const override { return "tabu"; }

  TuningRun tune(rt::TuningConfig config, const MeasureFn& measure,
                 std::size_t budget) override {
    const Space space(config);
    Evaluator ev(space, config, measure, budget, options_);
    Rng rng(seed_);
    std::vector<std::size_t> current = space.indices_of(config);
    double current_score = ev.eval(current);
    std::deque<std::pair<std::size_t, std::size_t>> tabu;  // (dim, index)

    auto is_tabu = [&](std::size_t d, std::size_t i) {
      for (const auto& [td, ti] : tabu)
        if (td == d && ti == i) return true;
      return false;
    };

    while (!ev.exhausted()) {
      // Neighborhood: +-1 step in each dimension.
      std::vector<std::pair<std::size_t, std::size_t>> moves;
      for (std::size_t d = 0; d < space.dims(); ++d) {
        if (current[d] + 1 < space.domains[d].size())
          moves.emplace_back(d, current[d] + 1);
        if (current[d] > 0) moves.emplace_back(d, current[d] - 1);
      }
      if (moves.empty()) break;
      rng.shuffle(moves);

      bool moved = false;
      std::size_t best_d = 0, best_i = 0;
      double best_score = 0.0;
      bool have_best = false;
      for (const auto& [d, i] : moves) {
        if (ev.exhausted()) break;
        std::vector<std::size_t> probe = current;
        probe[d] = i;
        const double score = ev.eval(probe);
        const bool aspiration = score < ev.run.best_score;
        if (is_tabu(d, i) && !aspiration) continue;
        if (!have_best || score < best_score) {
          have_best = true;
          best_score = score;
          best_d = d;
          best_i = i;
        }
      }
      if (!have_best) break;
      tabu.emplace_back(best_d, current[best_d]);  // forbid moving back
      while (tabu.size() > tenure_) tabu.pop_front();
      current[best_d] = best_i;
      current_score = best_score;
      (void)current_score;
      moved = true;
      (void)moved;
    }
    return std::move(ev.run);
  }

 private:
  std::uint64_t seed_;
  std::size_t tenure_;
};

}  // namespace

std::unique_ptr<Tuner> make_linear_tuner() {
  return std::make_unique<LinearTuner>();
}
std::unique_ptr<Tuner> make_random_tuner(std::uint64_t seed) {
  return std::make_unique<RandomTuner>(seed);
}
std::unique_ptr<Tuner> make_nelder_mead_tuner(std::uint64_t seed) {
  return std::make_unique<NelderMeadTuner>(seed);
}
std::unique_ptr<Tuner> make_tabu_tuner(std::uint64_t seed,
                                       std::size_t tenure) {
  return std::make_unique<TabuTuner>(seed, tenure);
}

}  // namespace patty::tuning
