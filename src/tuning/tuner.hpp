#pragma once
// Auto-tuning (paper §2.1 "performance validation" / figure 4c).
//
// The tuner repeatedly initializes the tuning configuration, measures the
// program, and proposes new values — the cycle Patty's IDE panel shows.
// The paper's implementation "explores the search space linearly in each
// dimension"; the references it names as future work are also implemented
// here (Nelder-Mead simplex [30], tabu search [31]) plus seeded random
// search as a baseline, so the tuner-convergence bench can compare them.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "runtime/tuning.hpp"
#include "support/rng.hpp"

namespace patty::tuning {

/// Measures one configuration; smaller is better (e.g. runtime in seconds).
using MeasureFn = std::function<double(const rt::TuningConfig&)>;

struct Evaluation {
  std::vector<std::int64_t> values;  // one per parameter, name-sorted
  double score = 0.0;
  /// A candidate that threw or exceeded the deadline. Its score is
  /// +infinity so it never becomes the best; the search continues.
  bool failed = false;
  std::string failure;  // exception message or "deadline exceeded"
};

/// Measured scores keyed by the name-sorted value vector. Every tuner
/// dedups its own evaluations through one of these; handing the SAME cache
/// to several tuners (TunerOptions::shared_cache) makes cross-tuner
/// comparisons reuse each other's measurements, so an already-visited point
/// costs neither budget nor wall-clock in any later run.
struct EvalCache {
  std::map<std::vector<std::int64_t>, double> scores;
};

/// What the model-guided tuner fit and how well it predicted (empty /
/// used == false for the search-based tuners).
struct ModelFitInfo {
  bool used = false;
  /// "pipeline" | "loop" | "master-worker" | "injected" | "fallback-linear".
  std::string family;
  std::string description;  // fitted parameters, human-readable
  /// Score units per predicted microsecond, calibrated on the probe run.
  double scale = 0.0;
  /// Mean relative |predicted - measured| / measured over the validations.
  double fit_error = 0.0;
  double predicted_best = 0.0;     // calibrated score of the ranked-best point
  double predicted_default = 0.0;  // calibrated score of the starting point
  double predicted_speedup = 1.0;  // predicted_default / predicted_best
  std::size_t probe_evaluations = 0;
  std::size_t validation_evaluations = 0;
  std::vector<std::pair<double, double>> validations;  // (predicted, measured)
};

struct TuningRun {
  rt::TuningConfig best;
  double best_score = 0.0;
  std::size_t evaluations = 0;
  std::size_t failed_evaluations = 0;
  /// Evaluations answered from a pre-populated shared cache (never counted
  /// in `evaluations` and absent from `history`).
  std::size_t cache_hits = 0;
  std::vector<Evaluation> history;  // in evaluation order
  ModelFitInfo model;               // model-guided tuner only
};

/// Hardening knobs shared by all tuners.
struct TunerOptions {
  /// 0 = unlimited; otherwise a candidate measurement that runs longer is
  /// cancelled (its region's StopToken fires, cooperative) and scored as a
  /// failed evaluation with reason "deadline exceeded".
  std::int64_t candidate_deadline_ms = 0;
  /// Optional cross-run memo: measured points land here and pre-existing
  /// entries are served without measuring (or spending budget). Null keeps
  /// the classic per-run private cache.
  std::shared_ptr<EvalCache> shared_cache;
};

class Tuner {
 public:
  virtual ~Tuner() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Optimize starting from `config`'s current values; at most `budget`
  /// calls to `measure`.
  virtual TuningRun tune(rt::TuningConfig config, const MeasureFn& measure,
                         std::size_t budget) = 0;

  void set_options(TunerOptions options) { options_ = options; }
  [[nodiscard]] const TunerOptions& options() const { return options_; }

 protected:
  TunerOptions options_;
};

/// The paper's algorithm: sweep each dimension in turn, keeping the best
/// value found, until a full pass improves nothing or the budget runs out.
std::unique_ptr<Tuner> make_linear_tuner();

/// Uniform random sampling of the search space (baseline).
std::unique_ptr<Tuner> make_random_tuner(std::uint64_t seed);

/// Nelder-Mead simplex on the index space of each parameter's domain,
/// rounded to admissible values (ref [30]).
std::unique_ptr<Tuner> make_nelder_mead_tuner(std::uint64_t seed);

/// Tabu search over single-step neighborhood moves (ref [31]).
std::unique_ptr<Tuner> make_tabu_tuner(std::uint64_t seed,
                                       std::size_t tabu_tenure = 8);

}  // namespace patty::tuning
