#pragma once
// Auto-tuning (paper §2.1 "performance validation" / figure 4c).
//
// The tuner repeatedly initializes the tuning configuration, measures the
// program, and proposes new values — the cycle Patty's IDE panel shows.
// The paper's implementation "explores the search space linearly in each
// dimension"; the references it names as future work are also implemented
// here (Nelder-Mead simplex [30], tabu search [31]) plus seeded random
// search as a baseline, so the tuner-convergence bench can compare them.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "runtime/tuning.hpp"
#include "support/rng.hpp"

namespace patty::tuning {

/// Measures one configuration; smaller is better (e.g. runtime in seconds).
using MeasureFn = std::function<double(const rt::TuningConfig&)>;

struct Evaluation {
  std::vector<std::int64_t> values;  // one per parameter, name-sorted
  double score = 0.0;
  /// A candidate that threw or exceeded the deadline. Its score is
  /// +infinity so it never becomes the best; the search continues.
  bool failed = false;
  std::string failure;  // exception message or "deadline exceeded"
};

struct TuningRun {
  rt::TuningConfig best;
  double best_score = 0.0;
  std::size_t evaluations = 0;
  std::size_t failed_evaluations = 0;
  std::vector<Evaluation> history;  // in evaluation order
};

/// Hardening knobs shared by all tuners.
struct TunerOptions {
  /// 0 = unlimited; otherwise a candidate measurement that runs longer is
  /// cancelled (its region's StopToken fires, cooperative) and scored as a
  /// failed evaluation with reason "deadline exceeded".
  std::int64_t candidate_deadline_ms = 0;
};

class Tuner {
 public:
  virtual ~Tuner() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Optimize starting from `config`'s current values; at most `budget`
  /// calls to `measure`.
  virtual TuningRun tune(rt::TuningConfig config, const MeasureFn& measure,
                         std::size_t budget) = 0;

  void set_options(TunerOptions options) { options_ = options; }
  [[nodiscard]] const TunerOptions& options() const { return options_; }

 protected:
  TunerOptions options_;
};

/// The paper's algorithm: sweep each dimension in turn, keeping the best
/// value found, until a full pass improves nothing or the budget runs out.
std::unique_ptr<Tuner> make_linear_tuner();

/// Uniform random sampling of the search space (baseline).
std::unique_ptr<Tuner> make_random_tuner(std::uint64_t seed);

/// Nelder-Mead simplex on the index space of each parameter's domain,
/// rounded to admissible values (ref [30]).
std::unique_ptr<Tuner> make_nelder_mead_tuner(std::uint64_t seed);

/// Tabu search over single-step neighborhood moves (ref [31]).
std::unique_ptr<Tuner> make_tabu_tuner(std::uint64_t seed,
                                       std::size_t tabu_tenure = 8);

}  // namespace patty::tuning
