#pragma once
// Shared search machinery of the tuners (tuner.cpp) and the model-guided
// tuner (model.cpp): the flattened knob space, the budget/cache/hardening
// evaluator, and the paper's linear per-dimension descent (the model-guided
// tuner falls back to it when no cost model can be fit).
//
// Internal header — not part of the tuning library's public surface.

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "runtime/cancellation.hpp"
#include "tuning/tuner.hpp"

namespace patty::tuning::detail {

/// Flattened view of a TuningConfig: name-sorted parameters with their
/// admissible value lists. Tuners work on index vectors into the domains.
struct Space {
  std::vector<std::string> names;
  std::vector<std::vector<std::int64_t>> domains;

  explicit Space(const rt::TuningConfig& config) {
    for (const auto& [name, p] : config.params()) {
      names.push_back(name);
      domains.push_back(p.domain());
    }
  }

  [[nodiscard]] std::size_t dims() const { return names.size(); }

  [[nodiscard]] std::vector<std::size_t> indices_of(
      const rt::TuningConfig& config) const {
    std::vector<std::size_t> idx(dims(), 0);
    for (std::size_t d = 0; d < dims(); ++d) {
      const std::int64_t v = config.get_or(names[d], domains[d].front());
      auto it = std::find(domains[d].begin(), domains[d].end(), v);
      idx[d] = it == domains[d].end()
                   ? 0
                   : static_cast<std::size_t>(it - domains[d].begin());
    }
    return idx;
  }

  void apply(const std::vector<std::size_t>& idx,
             rt::TuningConfig* config) const {
    for (std::size_t d = 0; d < dims(); ++d)
      config->set(names[d], domains[d][idx[d]]);
  }

  [[nodiscard]] std::vector<std::int64_t> values(
      const std::vector<std::size_t>& idx) const {
    std::vector<std::int64_t> out(dims());
    for (std::size_t d = 0; d < dims(); ++d) out[d] = domains[d][idx[d]];
    return out;
  }

  [[nodiscard]] std::uint64_t size() const {
    std::uint64_t total = 1;
    for (const auto& dom : domains)
      total *= static_cast<std::uint64_t>(dom.size());
    return total;
  }
};

/// Shared evaluation bookkeeping: caching, budget, history, and candidate
/// hardening — a measurement that throws or outruns the deadline becomes a
/// failed evaluation (score +inf) instead of aborting the search.
///
/// The dedup memo is keyed by the name-sorted VALUE vector (not the index
/// vector), so it can be shared across tuner instances and even across
/// differently-discretized views of the same space: pass the same
/// TunerOptions::shared_cache to every tuner and any already-visited point
/// is answered from the memo without measuring or spending budget.
struct Evaluator {
  const Space& space;
  rt::TuningConfig config;
  const MeasureFn& measure;
  std::size_t budget;
  TunerOptions options;
  TuningRun run;
  EvalCache local_cache;
  EvalCache* cache;
  /// Distinct points this run has requested (cached or measured) — the
  /// termination signal for exhaustive-coverage tuners (random), which must
  /// not be confused by shared-cache entries from other spaces.
  std::set<std::vector<std::size_t>> seen;
  /// Keys this run measured itself (to tell shared-cache hits apart from
  /// plain revisits when counting run.cache_hits).
  std::set<std::vector<std::int64_t>> own;

  Evaluator(const Space& s, rt::TuningConfig c, const MeasureFn& m,
            std::size_t b, TunerOptions o = {})
      : space(s),
        config(std::move(c)),
        measure(m),
        budget(b),
        options(std::move(o)),
        cache(options.shared_cache ? options.shared_cache.get()
                                   : &local_cache) {}

  [[nodiscard]] bool exhausted() const { return run.evaluations >= budget; }

  [[nodiscard]] bool known(const std::vector<std::size_t>& idx) const {
    return cache->scores.count(space.values(idx)) != 0;
  }

  double eval(const std::vector<std::size_t>& idx) {
    seen.insert(idx);
    const std::vector<std::int64_t> key = space.values(idx);
    auto it = cache->scores.find(key);
    if (it != cache->scores.end()) {
      if (options.shared_cache && !own.count(key)) {
        ++run.cache_hits;
        // A shared-cache point this run never measured can still be its
        // best answer (the whole point of the memo: duplicates are free).
        if (run.history.empty() && run.evaluations == 0 &&
            run.cache_hits == 1) {
          run.best_score = it->second;
          space.apply(idx, &config);
          run.best = config;
        } else if (it->second < run.best_score) {
          run.best_score = it->second;
          space.apply(idx, &config);
          run.best = config;
        }
      }
      return it->second;
    }
    space.apply(idx, &config);
    // One trace span per MeasureFn call, with the probed configuration
    // (and afterwards the score) attached: the tuning cycle becomes a row
    // of "tuner.eval" slices in the Chrome trace.
    const bool telemetry = observe::enabled();
    observe::Span span("tuner.eval", "tuning");
    // Candidate watchdog: on deadline expiry the StopSource installed as
    // the ambient token fires, every region the measurement runs (they all
    // read current_stop_token()) cancels cooperatively, and the resulting
    // OperationCancelled lands in the catch below.
    double score = 0.0;
    bool failed = false;
    std::string failure;
    {
      rt::StopSource stop;
      std::optional<rt::Watchdog> watchdog;
      if (options.candidate_deadline_ms > 0)
        watchdog.emplace(
            std::chrono::milliseconds(options.candidate_deadline_ms),
            [&stop] { stop.request_stop(); });
      rt::StopScope ambient(stop.token());
      try {
        score = measure(config);
      } catch (const std::exception& e) {
        failed = true;
        failure = e.what();
      } catch (...) {
        failed = true;
        failure = "unknown exception";
      }
      if (watchdog) {
        watchdog->disarm();
        if (watchdog->fired()) {
          failed = true;
          failure = "deadline exceeded";
        }
      }
    }
    if (failed) {
      score = std::numeric_limits<double>::infinity();
      ++run.failed_evaluations;
      if (telemetry)
        observe::Registry::global().counter("tuner.failed_evaluations").add();
    }
    if (telemetry) {
      // Score first (it must survive the detail cap), then the probed
      // values with the shared qualifier prefix stripped — parameter names
      // like "VideoApp.Process.pipeline@38.buffer" would otherwise crowd
      // the whole configuration out of the span.
      std::size_t prefix = 0;
      if (space.dims() > 1) {
        const std::string& first = space.names.front();
        std::size_t common = first.size();
        for (const std::string& n : space.names)
          common = std::min(
              common,
              static_cast<std::size_t>(
                  std::mismatch(first.begin(),
                                first.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        std::min(common, n.size())),
                                n.begin())
                      .first -
                  first.begin()));
        const std::size_t dot = first.rfind('.', common);
        if (dot != std::string::npos) prefix = dot + 1;
      }
      std::string detail = "score=" + std::to_string(score);
      for (std::size_t d = 0; d < space.dims(); ++d) {
        detail += ' ';
        detail += space.names[d].substr(prefix) + "=" +
                  std::to_string(space.domains[d][idx[d]]);
      }
      span.set_detail(detail);
      observe::Registry::global().counter("tuner.evaluations").add();
      observe::Registry::global().histogram("tuner.score").record(score);
    }
    ++run.evaluations;
    cache->scores[key] = score;
    own.insert(key);
    run.history.push_back({key, score, failed, failure});
    // A failed candidate (score +inf) can only become "best" as the very
    // first entry, and any finite score later replaces it.
    if ((run.history.size() == 1 && run.cache_hits == 0) ||
        score < run.best_score) {
      run.best_score = score;
      run.best = config;
    }
    return score;
  }
};

/// The paper's linear per-dimension descent, from `current`: sweep each
/// dimension keeping the best value, until a full pass improves nothing or
/// the budget runs out. Used by the linear tuner and as the model-guided
/// tuner's no-model fallback.
inline void linear_descend(Evaluator& ev, const Space& space,
                           std::vector<std::size_t> current) {
  double current_score = ev.eval(current);
  bool improved = true;
  while (improved && !ev.exhausted()) {
    improved = false;
    for (std::size_t d = 0; d < space.dims() && !ev.exhausted(); ++d) {
      std::size_t best_i = current[d];
      for (std::size_t i = 0; i < space.domains[d].size(); ++i) {
        if (i == current[d]) continue;
        if (ev.exhausted()) break;
        std::vector<std::size_t> probe = current;
        probe[d] = i;
        const double score = ev.eval(probe);
        if (score < current_score) {
          current_score = score;
          best_i = i;
        }
      }
      if (best_i != current[d]) {
        current[d] = best_i;
        improved = true;
      }
    }
  }
}

}  // namespace patty::tuning::detail
