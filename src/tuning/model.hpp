#pragma once
// Compositional cost models for model-guided autotuning.
//
// The paper's tuner explores the knob space linearly in each dimension, so
// tuning costs O(dimensions x domain values) real measurement runs. This
// module replaces most of those runs with analytical per-pattern
// performance models in the style of the Extra-P line of work: one
// telemetry-enabled probe run fits the model's parameters (per-stage
// service times, chunk costs, queue-transfer overhead) from the observe
// layer's own metrics, the model then predicts a score for EVERY point of
// the knob space in microseconds, and only the top-K model-ranked
// configurations are re-measured as validation runs. Model forms:
//
//   Pipeline       N * max(max_g(service_g / r_g) + transfer,
//                          (sum_g service_g + edges*transfer + reorder) / C)
//                  + fill + startup, with batch/buffer scaling the transfer
//                  term and an oversubscription penalty past C hw threads
//   Data-parallel  N*iter/min(t,C) + chunks*spawn + tail-imbalance + startup
//   Master/worker  T*task/min(w,C,T) + T*dispatch*(1+contention(w)) + startup
//
// Models COMPOSE over the detected TADL nesting: a stage (or iteration)
// that contains a nested region carries that region's model, and the outer
// prediction uses the inner model's prediction as the stage's service time.
// The same models answer "predicted speedup before transformation": see
// predict_candidate_speedup / annotate_predicted_speedups, which work from
// the profiler's runtime shares alone (design-time, no telemetry needed).

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "observe/explain.hpp"
#include "observe/snapshot.hpp"
#include "patterns/candidate.hpp"
#include "runtime/tuning.hpp"
#include "tuning/tuner.hpp"

namespace patty::tuning {

/// The machine the prediction is for. threads == 0 resolves to
/// std::thread::hardware_concurrency() (minimum 1).
struct Hardware {
  int threads = 0;
  [[nodiscard]] int effective() const;
};

class CostModel {
 public:
  virtual ~CostModel() = default;
  /// "pipeline" | "loop" | "master-worker" | "sum".
  [[nodiscard]] virtual std::string family() const = 0;
  /// Predicted wall-clock cost (microseconds) of running the modeled
  /// region's whole stream under `knobs` on `hw`. Only relative order
  /// matters to the tuner; absolute units are calibrated against one
  /// measured probe.
  [[nodiscard]] virtual double predict(const rt::TuningConfig& knobs,
                                       const Hardware& hw) const = 0;
  /// Fitted parameters, one line, for explain_model().
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// One pipeline stage's fitted cost. `label` must match the knob naming the
/// detector emits: <prefix>stage<label>.replication / .order and
/// <prefix>fuse<label1><label2> for consecutive pairs.
struct StageCost {
  std::string label;
  double service_us = 0.0;  // per item, one worker, inner region excluded
  bool replicable = true;
  /// Nested region inside this stage (TADL nesting): predicts the cost of
  /// the inner region PER OUTER ITEM under the same TuningConfig (the inner
  /// knobs live there under their own prefix). Composition rule: the
  /// stage's effective service time is service_us + inner->predict(...).
  std::shared_ptr<const CostModel> inner;
};

struct PipelineModelParams {
  /// Knob-name prefix, e.g. "VideoApp.Process.pipeline@38." ("" for bare
  /// names like the tuner-convergence bench uses).
  std::string knob_prefix;
  double elements = 1.0;    // stream length N
  std::vector<StageCost> stages;
  double transfer_us = 1.0;  // queue hop per item per edge (batch 1)
  double reorder_us = 0.5;   // per item behind a replicated ordered stage
  double startup_us = 50.0;  // per worker thread: fork/join amortization
  double oversub_us = 1.0;   // per item per thread beyond hw concurrency
};
std::unique_ptr<CostModel> make_pipeline_model(PipelineModelParams params);

struct LoopModelParams {
  std::string knob_prefix;
  double elements = 1.0;  // iteration count N
  double iter_us = 0.0;   // one iteration's body, inner region excluded
  double spawn_us = 2.0;  // submit+steal per spawned chunk
  double startup_us = 20.0;
  /// Nested region per iteration (e.g. Pipeline(Map) the other way round).
  std::shared_ptr<const CostModel> inner;
};
std::unique_ptr<CostModel> make_loop_model(LoopModelParams params);

struct MasterWorkerModelParams {
  std::string knob_prefix;
  double tasks = 1.0;
  double task_us = 0.0;
  double dispatch_us = 2.0;  // injector hop per task
  double contention = 0.1;   // extra dispatch fraction per worker beyond 1
  double startup_us = 20.0;
};
std::unique_ptr<CostModel> make_master_worker_model(
    MasterWorkerModelParams params);

/// Sum of independent regions sharing one TuningConfig (a program with
/// several detected candidates tunes them jointly).
std::unique_ptr<CostModel> make_sum_model(
    std::vector<std::shared_ptr<const CostModel>> parts);

// ---- Fitting from observe telemetry --------------------------------------

/// Fit per-stage service times and the queue-transfer overhead from one
/// telemetry-enabled run's observation. Stage labels are taken from the
/// observation's stage names (the plan executor and the benches name stages
/// by their detector label, so knobs resolve). The wall-clock residual that
/// the ideal model cannot explain is attributed to per-item transfer cost.
PipelineModelParams fit_pipeline(const observe::PipelineObservation& obs,
                                 std::string knob_prefix = "",
                                 Hardware hw = {});

/// Fit a data-parallel loop model from a telemetry window. When the window
/// holds no chunk telemetry (the probe degenerated to the sequential path,
/// e.g. on a 1-core host), the per-iteration cost falls back to
/// measured_wall_us / elements.
LoopModelParams fit_loop(const observe::TelemetryDelta& window,
                         double elements, double measured_wall_us = 0.0,
                         std::string knob_prefix = "");

/// Fit a master/worker model from a telemetry window (master_worker.task_us
/// service histogram, threadpool.queue_wait_us as the dispatch cost).
MasterWorkerModelParams fit_master_worker(
    const observe::TelemetryDelta& window, std::string knob_prefix = "");

/// Mean relative error of the model against measured (config, score)
/// points, after a least-squares scale calibration (model units are us,
/// measured units are whatever the MeasureFn returns).
double mean_relative_error(
    const CostModel& model, const Hardware& hw,
    const std::vector<std::pair<rt::TuningConfig, double>>& measured);

// ---- Design-time prediction (before transformation) ----------------------

struct SpeedupPrediction {
  double speedup = 1.0;      // predicted sequential cost / best tuned cost
  rt::TuningConfig best;     // the predicted-best knob settings
  double best_cost = 0.0;    // model units
  double sequential_cost = 0.0;
  std::string summary;       // one line for reports
};

/// Build a cost model for a detected candidate from the profiler's runtime
/// shares (StageSpec::runtime_share) — no telemetry needed, this is the
/// design-time "is this region worth parallelizing on this machine" answer.
std::shared_ptr<const CostModel> model_for_candidate(
    const patterns::Candidate& candidate);

/// Enumerate the candidate's own tuning domain under its model and report
/// the predicted best configuration and its speedup over sequential.
SpeedupPrediction predict_candidate_speedup(const patterns::Candidate& c,
                                            Hardware hw = {});

/// Fill Candidate::predicted_speedup for every candidate. Nested candidates
/// (anchor statement inside an outer candidate's stage) compose: the inner
/// region's predicted-best cost replaces its share of the enclosing stage's
/// service time before the outer prediction runs.
void annotate_predicted_speedups(std::vector<patterns::Candidate>& candidates,
                                 Hardware hw = {});

// ---- Model-guided tuner ---------------------------------------------------

struct ModelGuidedOptions {
  /// Validation runs: the top-K model-ranked configurations (one
  /// representative per distinct predicted score) are actually measured.
  std::size_t top_k = 5;
  /// Full knob-space enumeration cap; larger spaces are searched by
  /// prediction-only coordinate descent (still zero measurements).
  std::size_t max_enumeration = 1u << 16;
  Hardware hardware;
  /// Injected model (tests, or a caller that already fit one): skips the
  /// telemetry probe fitting, but the starting configuration is still
  /// measured once to calibrate the score scale.
  std::shared_ptr<const CostModel> model;
};

/// The model-guided tuner: one telemetry-enabled probe of the starting
/// configuration fits the pattern's cost model, the model ranks the whole
/// space, and only the top-K distinct predictions are measured. Measured
/// evaluations are therefore O(1 + K) instead of O(dims x values). When no
/// model can be fit (no recognizable knobs or no telemetry), degrades to
/// the linear search so the tuner contract still holds.
std::unique_ptr<Tuner> make_model_guided_tuner(ModelGuidedOptions opts = {});

/// observe::explain-style text report of a model-guided run: fitted model,
/// calibration scale, predicted-vs-measured for each validation point, the
/// mean relative prediction error, and the predicted speedup.
std::string explain_model(const TuningRun& run);

}  // namespace patty::tuning
