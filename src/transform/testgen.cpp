#include "transform/testgen.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "analysis/interpreter.hpp"
#include "analysis/profiler.hpp"
#include "lang/sema.hpp"
#include "race/explorer.hpp"
#include "transform/plan.hpp"

namespace patty::transform {

using patterns::Candidate;
using patterns::PatternKind;

namespace {

rt::TuningConfig config_with(const Candidate& c,
                             const std::map<std::string, std::int64_t>&
                                 overrides_by_suffix) {
  rt::TuningConfig config = default_tuning({c});
  for (const auto& [name, p] : config.params()) {
    (void)p;
    for (const auto& [suffix, value] : overrides_by_suffix) {
      if (name.size() >= suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        config.set(name, value);
      }
    }
  }
  return config;
}

}  // namespace

std::vector<ParallelUnitTest> generate_unit_tests(
    const std::vector<Candidate>& candidates, TestGenOptions options) {
  std::vector<ParallelUnitTest> tests;
  const std::int64_t R = options.max_replication;

  for (const Candidate& c : candidates) {
    const std::string base = std::string(pattern_kind_name(c.kind)) + "@" +
                             c.location();
    switch (c.kind) {
      case PatternKind::Pipeline: {
        tests.push_back({base + "/default", &c, default_tuning({c}), false});
        tests.push_back({base + "/max-replication-ordered", &c,
                         config_with(c, {{".replication", R}, {".order", 1}}),
                         false});
        tests.push_back({base + "/fused", &c,
                         config_with(c, {{".replication", 1}}),
                         false});
        // Turn on every fusion flag.
        {
          rt::TuningConfig fused = default_tuning({c});
          for (const auto& [name, p] : fused.params()) {
            (void)p;
            if (name.find(".fuse") != std::string::npos) fused.set(name, 1);
          }
          tests.back().config = std::move(fused);
        }
        tests.push_back({base + "/tiny-buffers", &c,
                         config_with(c, {{".buffer", 1}, {".replication", R}}),
                         false});
        if (options.include_order_violation_probe) {
          tests.push_back(
              {base + "/order-preservation-off", &c,
               config_with(c, {{".replication", R}, {".order", 0}}),
               /*expects_possible_order_violation=*/true});
        }
        break;
      }
      case PatternKind::DataParallelLoop: {
        tests.push_back({base + "/default", &c, default_tuning({c}), false});
        tests.push_back({base + "/many-threads-fine-grain", &c,
                         config_with(c, {{".threads", R}, {".grain", 1}}),
                         false});
        tests.push_back({base + "/two-threads-coarse", &c,
                         config_with(c, {{".threads", 2}, {".grain", 64}}),
                         false});
        break;
      }
      case PatternKind::MasterWorker: {
        tests.push_back({base + "/shared-pool", &c, default_tuning({c}), false});
        tests.push_back({base + "/dedicated-crew", &c,
                         config_with(c, {{".workers", R}}), false});
        break;
      }
    }
  }
  return tests;
}

TestOutcome run_unit_test(const lang::Program& program,
                          const ParallelUnitTest& test,
                          std::size_t repetitions) {
  TestOutcome outcome;
  outcome.repetitions = repetitions;

  // Sequential reference.
  analysis::Interpreter reference(program);
  analysis::Value ref_result;
  try {
    ref_result = reference.run_main();
  } catch (const analysis::RuntimeError& e) {
    outcome.detail = "sequential reference failed: " + e.message;
    return outcome;
  }
  const std::string ref_output = reference.output();

  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    ParallelPlanExecutor executor(program, {*test.candidate}, &test.config);
    analysis::Value result;
    try {
      result = executor.run_main();
    } catch (const analysis::RuntimeError& e) {
      outcome.detail = "parallel run failed: " + e.message;
      return outcome;
    }
    if (!result.equals(ref_result)) {
      outcome.detail = "result mismatch on repetition " + std::to_string(rep) +
                       ": sequential=" + ref_result.str() +
                       " parallel=" + result.str();
      return outcome;
    }
    if (executor.output() != ref_output) {
      outcome.detail = "output mismatch on repetition " + std::to_string(rep);
      return outcome;
    }
  }
  outcome.passed = true;
  outcome.detail = "equivalent over " + std::to_string(repetitions) + " runs";
  return outcome;
}

namespace {

/// Last configured value for any parameter whose name ends in `suffix`.
std::int64_t config_suffix_or(const rt::TuningConfig& config,
                              const std::string& suffix,
                              std::int64_t fallback) {
  std::int64_t value = fallback;
  for (const auto& [name, p] : config.params()) {
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0)
      value = p.value;
  }
  return value;
}

}  // namespace

bool same_failure_class(const std::string& a, const std::string& b) {
  auto failure_class = [](std::string_view msg) {
    const auto pos = msg.rfind(": ");
    return pos == std::string_view::npos ? msg : msg.substr(pos + 2);
  };
  return failure_class(a) == failure_class(b);
}

ExplorationOutcome explore_order_probe(const ParallelUnitTest& test,
                                       int preemption_bound) {
  const auto replication =
      static_cast<int>(config_suffix_or(test.config, ".replication", 1));
  const bool ordered = config_suffix_or(test.config, ".order", 1) != 0;

  // Each worker of the replicated stage emits one item. Ordered emission
  // reassembles by the item's sequence number (worker i owns slot i);
  // unordered emission appends at a shared cursor, so the slot a worker
  // lands in depends on the schedule — landing anywhere but slot i is the
  // order violation the probe is hunting.
  std::vector<race::TaskFn> workers;
  for (int i = 0; i < std::max(replication, 1); ++i) {
    workers.push_back([i, ordered](race::TaskContext& ctx) {
      if (ordered) {
        ctx.write("out" + std::to_string(i), i);
      } else {
        const std::int64_t pos = ctx.fetch_add("cursor", 1);
        ctx.write("out" + std::to_string(pos), i);
        ctx.check(pos == i, "item " + std::to_string(i) + " emitted at slot " +
                                std::to_string(pos) + ": order violated");
      }
    });
  }

  race::ExploreOptions opts;
  opts.preemption_bound = preemption_bound;
  const race::ExploreResult result = race::explore(workers, opts);

  ExplorationOutcome outcome;
  outcome.schedules_explored = result.schedules_explored;
  outcome.exhausted = result.exhausted;
  outcome.order_violation_possible = !result.assertion_failures.empty();
  if (outcome.order_violation_possible) {
    outcome.detail = result.assertion_failures.front();
    for (const race::ScheduleFailure& f : result.failing_schedules) {
      if (f.kind == race::ScheduleFailure::Kind::Assertion &&
          f.detail == outcome.detail) {
        outcome.failing_schedule = f.schedule.to_string();
        break;
      }
    }
    // The serialized schedule is only evidence if it replays: round-trip
    // through the textual form and re-execute standalone.
    if (const auto parsed = race::Schedule::from_string(
            outcome.failing_schedule)) {
      // Compare on failure class, not message bytes: the replay re-executes
      // every worker, so the violation may surface on a different item/slot
      // pair while still being the identical kind of failure at the same
      // site — previously such replays were silently reported unverified.
      const race::ReplayResult rep = race::replay(workers, *parsed, opts);
      for (const std::string& msg : rep.assertion_failures)
        if (same_failure_class(msg, outcome.detail))
          outcome.replay_verified = true;
    }
  }
  return outcome;
}

std::vector<std::size_t> select_covering_inputs(
    const std::vector<std::string>& variant_sources, std::string* error) {
  // Profile each variant; collect its covered branch outcomes as
  // (stmt line, taken) pairs — line-keyed so distinct parses align.
  using Outcome = std::pair<std::uint32_t, bool>;
  std::vector<std::set<Outcome>> covered(variant_sources.size());
  std::set<Outcome> universe;

  for (std::size_t v = 0; v < variant_sources.size(); ++v) {
    DiagnosticSink diags;
    auto program = lang::parse_and_check(variant_sources[v], diags);
    if (!program) {
      if (error) *error = "variant " + std::to_string(v) + ": " + diags.to_string();
      return {};
    }
    analysis::Profiler profiler(*program);
    analysis::Interpreter interp(*program, &profiler);
    try {
      interp.run_main();
    } catch (const analysis::RuntimeError& e) {
      if (error) *error = "variant " + std::to_string(v) + ": " + e.message;
      return {};
    }
    for (const auto& [stmt_id, branch] : profiler.branches()) {
      // Key by source line: ids differ across parses of different variants.
      const lang::Stmt* st = nullptr;
      for (const auto& cls : program->classes)
        for (const auto& m : cls->methods)
          lang::for_each_stmt(*m->body, [&](const lang::Stmt& s) {
            if (s.id == stmt_id) st = &s;
          });
      const std::uint32_t line = st ? st->range.begin.line : 0;
      if (branch.taken > 0) {
        covered[v].insert({line, true});
        universe.insert({line, true});
      }
      if (branch.not_taken > 0) {
        covered[v].insert({line, false});
        universe.insert({line, false});
      }
    }
  }

  // Greedy set cover.
  std::vector<std::size_t> chosen;
  std::set<Outcome> remaining = universe;
  std::vector<bool> used(variant_sources.size(), false);
  while (!remaining.empty()) {
    std::size_t best = variant_sources.size();
    std::size_t best_gain = 0;
    for (std::size_t v = 0; v < variant_sources.size(); ++v) {
      if (used[v]) continue;
      std::size_t gain = 0;
      for (const Outcome& o : covered[v])
        if (remaining.count(o)) ++gain;
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    if (best == variant_sources.size()) break;  // nothing adds coverage
    used[best] = true;
    chosen.push_back(best);
    for (const Outcome& o : covered[best]) remaining.erase(o);
  }
  return chosen;
}

}  // namespace patty::transform
