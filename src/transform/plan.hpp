#pragma once
// Target pattern transformation, executable form (paper §2.1 phase 2).
//
// The paper transforms annotated C# into code that instantiates its
// parallel runtime library (figure 3d). Here the equivalent artifact is a
// ParallelPlanExecutor: it runs the program through the interpreter but
// intercepts every detected loop and executes it on patty::rt instead —
// pipeline, data-parallel loop (incl. reductions), or master/worker —
// honouring the candidate's tuning parameters from a TuningConfig.
//
// Element model. The loop header becomes the StreamGenerator (paper §2.2
// PLPL): it runs sequentially in the outer frame and snapshots the locals
// into one Frame per stream element. Heap state (objects, arrays, lists) is
// shared across elements through the reference values inside the snapshot —
// exactly the aliasing the dependence analysis reasoned about. Scalar
// loop-carried state in outer locals cannot be expressed this way; the plan
// builder detects it and falls back to sequential execution for that loop
// (the SequentialExecution tuning parameter exists for precisely this kind
// of bail-out), except for recognized reductions, which run as
// parallel-reduce with per-chunk identity accumulators.

#include <memory>
#include <string>
#include <vector>

#include "analysis/interpreter.hpp"
#include "patterns/candidate.hpp"
#include "runtime/tuning.hpp"

namespace patty::transform {

struct PlanReport {
  int loop_stmt_id = -1;
  patterns::PatternKind kind = patterns::PatternKind::Pipeline;
  bool ran_parallel = false;     // false = sequential fallback taken
  std::string note;              // why, when a fallback happened
  std::uint64_t elements = 0;    // stream elements / iterations processed
  std::size_t runs = 0;          // times the loop was entered
  /// Design-time cost-model prediction for this machine (before any run):
  /// best tuned configuration's speedup over sequential. 1.0 for regions
  /// that degrade to sequential; 0 when no prediction was made.
  double predicted_speedup = 0.0;
};

class ParallelPlanExecutor : public analysis::StmtInterceptor {
 public:
  /// `tuning` may be null (defaults apply). Candidates must come from a
  /// detection run over this same program.
  ParallelPlanExecutor(const lang::Program& program,
                       std::vector<patterns::Candidate> candidates,
                       const rt::TuningConfig* tuning = nullptr);
  ~ParallelPlanExecutor() override;

  /// Execute main() with all plans armed. Returns main's result.
  analysis::Value run_main(analysis::InterpreterOptions options = {});

  /// Program output of the last run_main().
  [[nodiscard]] std::string output() const;

  [[nodiscard]] std::vector<PlanReport> reports() const;

  // StmtInterceptor:
  bool intercept(const lang::Stmt& st, analysis::Frame& frame,
                 analysis::Interpreter& interp,
                 analysis::ExecSignal* signal) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Derive the default tuning configuration for a set of candidates (all
/// parameters at their defaults) — the artifact written next to the
/// transformed program (figure 3c).
rt::TuningConfig default_tuning(const std::vector<patterns::Candidate>& candidates);

/// One concurrently schedulable unit of a region: a pipeline stage, the
/// whole data-parallel loop body, or one master/worker task.
struct StageShape {
  std::string label;
  /// Concurrent instances of the stage under the tuning. 0 means the
  /// runtime default (one worker per hardware thread) — i.e. "more than
  /// one" for any machine this matters on.
  int replication = 1;
  /// Pipeline stages only: whether the stage preserves element order.
  bool preserve_order = true;
  std::vector<const lang::Stmt*> stmts;
};

/// Geometry of the fork-join region the executor would create for one
/// candidate under a given tuning: which statements run concurrently and at
/// what replication, or why the region degrades to sequential. This is the
/// plan's structure with the execution machinery stripped away — the MHP
/// certifier builds its region graph from it (transform/certify).
///
/// Stream generation (the loop header) is not a stage: the executor
/// materializes every element in the outer frame before the region forks,
/// so header effects are ordered before all stage effects.
struct RegionShape {
  const patterns::Candidate* candidate = nullptr;
  /// Method whose body contains the region's statements.
  const lang::MethodDecl* method = nullptr;
  /// True when the executor would take the sequential fallback for this
  /// candidate (unsafe plan or SequentialExecution tuning) — the region
  /// never forks, so nothing in it overlaps.
  bool sequential = false;
  std::string sequential_reason;
  /// Canonical element-index slot snapshotted into stage frames, -1 if none.
  int induction_slot = -1;
  /// Privatized reduction accumulator slot, -1 if none.
  int reduction_slot = -1;
  std::vector<StageShape> stages;
};

/// Compute the region shapes the executor's plan builder would arm for
/// these candidates, honouring `tuning` exactly like the executor does
/// (same safety bail-outs, same parameter lookups). Shapes alias the
/// program's AST and the candidate vector — keep both alive.
std::vector<RegionShape> plan_region_shapes(
    const lang::Program& program,
    const std::vector<patterns::Candidate>& candidates,
    const rt::TuningConfig* tuning = nullptr);

}  // namespace patty::transform
