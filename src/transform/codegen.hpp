#pragma once
// Parallel source-code generation (paper figure 3d).
//
// Produces the textual transformation artifact: the containing method
// rewritten to instantiate the parallel runtime library (Item, MasterWorker,
// Pipeline, ParallelFor) in place of the sequential loop. The executable
// counterpart of this artifact is ParallelPlanExecutor (plan.hpp); this
// text is what the engineer reviews in the IDE.

#include <string>

#include "patterns/candidate.hpp"

namespace patty::transform {

/// Rewritten method body for one candidate, rendered as source text.
std::string generate_parallel_source(const lang::Program& program,
                                     const patterns::Candidate& candidate);

/// Full artifact bundle for a candidate: annotated source region, parallel
/// code, and the tuning configuration — everything figure 3 shows.
struct TransformationArtifacts {
  std::string annotated_source;   // figure 3b
  std::string tuning_file;        // figure 3c
  std::string parallel_source;    // figure 3d
};

TransformationArtifacts make_artifacts(const lang::Program& program,
                                       const patterns::Candidate& candidate);

}  // namespace patty::transform
