#include "transform/certify.hpp"

#include <mutex>

#include "analysis/callgraph.hpp"
#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "race/explorer.hpp"
#include "transform/testgen.hpp"

namespace patty::transform {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::CertifiedStatic: return "certified-static";
    case Verdict::CertifiedExplored: return "certified-explored";
    case Verdict::ResidueRaced: return "residue-raced";
  }
  return "?";
}

analysis::MhpGraph build_region_graph(const std::vector<RegionShape>& shapes) {
  analysis::MhpGraph graph;
  for (std::size_t r = 0; r < shapes.size(); ++r) {
    const RegionShape& shape = shapes[r];
    bool any_parallel_instances = false;
    for (const StageShape& stage : shape.stages) {
      analysis::MhpNode node;
      node.label = "region" + std::to_string(r) + "." + stage.label;
      node.region = static_cast<int>(r);
      node.multiplicity = stage.replication == 0 ? 2 : stage.replication;
      node.induction_slot = shape.induction_slot;
      node.stmts = stage.stmts;
      node.method = shape.method;
      if (node.multiplicity > 1) any_parallel_instances = true;
      graph.nodes.push_back(std::move(node));
    }
    if (!shape.sequential &&
        (shape.stages.size() > 1 || any_parallel_instances))
      graph.concurrent_regions.insert(static_cast<int>(r));
  }
  return graph;
}

namespace {

/// Lower one residue pair into an explorer conflict probe. Opaque residue
/// assumes worst-case aliasing: both instances hit the same cell, and the
/// vector-clock detector reports the conflict unless some modeled
/// synchronization orders them (there is none — region instances share no
/// locks). Non-opaque residue (pure index arithmetic) places each instance
/// on its own cell: the schedules the explorer enumerates then certify
/// that nothing else in the probe conflicts.
ProbeOutcome run_conflict_probe(const analysis::ConflictPair& pair,
                                std::size_t pair_index) {
  ProbeOutcome probe;
  probe.label = "pair" + std::to_string(pair_index) + ":" + pair.loc.key();

  const std::string cell = pair.loc.key();
  const bool opaque = pair.opaque;
  std::vector<race::TaskFn> tasks;
  for (int i = 0; i < 2; ++i) {
    tasks.push_back([cell, opaque, i](race::TaskContext& ctx) {
      const std::string target =
          opaque ? cell : cell + "#" + std::to_string(i);
      ctx.write(target, i);
      ctx.read(target);
    });
  }
  const race::ExploreResult result = race::explore(tasks);
  probe.schedules_explored = result.schedules_explored;
  probe.raced = !result.races.empty();
  if (probe.raced) {
    const race::RaceReport& r = result.races.front();
    probe.detail = (r.write_write ? "write-write race on '"
                                  : "read-write race on '") +
                   r.var + "'";
  }
  return probe;
}

/// Structural order residue: a replicated stage with order preservation
/// off. The systematic order probe (testgen) enumerates schedules and
/// returns the violating one when it exists.
ProbeOutcome run_order_probe(const RegionShape& shape,
                             const StageShape& stage) {
  ProbeOutcome probe;
  probe.label = "order:" + stage.label;

  ParallelUnitTest test;
  test.candidate = shape.candidate;
  test.name = probe.label;
  rt::TuningParameter rep;
  rep.name = "probe.replication";
  rep.value = stage.replication == 0 ? 2 : stage.replication;
  test.config.define(rep);
  rt::TuningParameter order;
  order.name = "probe.order";
  order.kind = rt::TuningKind::Bool;
  order.value = 0;
  test.config.define(order);

  const ExplorationOutcome outcome = explore_order_probe(test);
  probe.schedules_explored = outcome.schedules_explored;
  probe.raced = outcome.order_violation_possible;
  probe.detail = outcome.detail;
  return probe;
}

void publish_counters(const CertificationTotals& t) {
  if (!observe::enabled()) return;
  observe::Registry& reg = observe::Registry::global();
  reg.counter("mhp.programs").add(t.programs);
  reg.counter("mhp.certified_static").add(t.certified_static);
  reg.counter("mhp.certified_explored").add(t.certified_explored);
  reg.counter("mhp.residue_raced").add(t.residue_raced);
  reg.counter("mhp.pairs").add(t.pairs);
  reg.counter("mhp.pairs.ordered").add(t.ordered);
  reg.counter("mhp.pairs.disjoint").add(t.disjoint);
  reg.counter("mhp.pairs.private_fresh").add(t.private_or_fresh);
  reg.counter("mhp.pairs.residue").add(t.residue);
  reg.counter("mhp.probes").add(t.probes);
  reg.counter("mhp.probes.raced").add(t.probes_raced);
}

}  // namespace

ProgramCertificate certify_program(
    const lang::Program& program,
    const std::vector<patterns::Candidate>& candidates,
    const rt::TuningConfig* tuning, const std::string& name) {
  ProgramCertificate cert;
  cert.program = name;

  const std::vector<RegionShape> shapes =
      plan_region_shapes(program, candidates, tuning);
  const analysis::MhpGraph graph = build_region_graph(shapes);
  const analysis::MhpFacts facts(graph);
  const analysis::CallGraph cg = analysis::build_call_graph(program);
  const analysis::EffectAnalysis effects(program, cg);
  const analysis::FreshnessAnalysis freshness(program, cg, effects);
  cert.summary = analysis::enumerate_conflicts(graph, facts, effects,
                                               freshness);

  // Lower the effect residue into conflict probes.
  for (std::size_t i = 0; i < cert.summary.pairs.size(); ++i) {
    const analysis::ConflictPair& pair = cert.summary.pairs[i];
    if (pair.discharge != analysis::Discharge::Residue) continue;
    cert.probes.push_back(run_conflict_probe(pair, i));
  }
  // Lower the structural order residue.
  for (const RegionShape& shape : shapes) {
    if (shape.sequential) continue;
    for (const StageShape& stage : shape.stages) {
      const bool replicated = stage.replication == 0 || stage.replication > 1;
      if (replicated && !stage.preserve_order)
        cert.probes.push_back(run_order_probe(shape, stage));
    }
  }

  bool any_raced = false;
  for (const ProbeOutcome& probe : cert.probes) any_raced |= probe.raced;
  if (any_raced)
    cert.verdict = Verdict::ResidueRaced;
  else if (!cert.probes.empty())
    cert.verdict = Verdict::CertifiedExplored;
  else
    cert.verdict = Verdict::CertifiedStatic;
  return cert;
}

CorpusCertification certify_corpus(
    const std::vector<const corpus::CorpusProgram*>& programs,
    corpus::FrontendConfig base) {
  CorpusCertification result;
  result.programs.resize(programs.size());

  std::mutex mutex;
  base.inspect = [&](const corpus::ProgramInspection& in) {
    ProgramCertificate cert =
        certify_program(*in.parsed, in.detection->candidates,
                        /*tuning=*/nullptr, in.program->name);
    std::scoped_lock lock(mutex);
    result.programs[in.index] = std::move(cert);
  };
  const corpus::CorpusReport report = corpus::evaluate_corpus(programs, base);

  CertificationTotals& t = result.totals;
  for (std::size_t i = 0; i < report.programs.size(); ++i) {
    ProgramCertificate& cert = result.programs[i];
    if (!report.programs[i].error.empty()) {
      cert.program = report.programs[i].name;
      cert.error = report.programs[i].error;
      ++t.errors;
      continue;
    }
    ++t.programs;
    switch (cert.verdict) {
      case Verdict::CertifiedStatic: ++t.certified_static; break;
      case Verdict::CertifiedExplored: ++t.certified_explored; break;
      case Verdict::ResidueRaced: ++t.residue_raced; break;
    }
    t.pairs += cert.summary.total();
    t.ordered += cert.summary.ordered;
    t.disjoint += cert.summary.disjoint;
    t.private_or_fresh += cert.summary.private_or_fresh;
    t.residue += cert.summary.residue;
    t.probes += cert.probes.size();
    for (const ProbeOutcome& probe : cert.probes)
      if (probe.raced) ++t.probes_raced;
  }
  publish_counters(t);
  return result;
}

}  // namespace patty::transform
