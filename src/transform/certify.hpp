#pragma once
// MHP certification of transformed programs: prove, then probe.
//
// For every candidate a detection run produced, the certifier reconstructs
// the fork-join region the plan executor would run (plan_region_shapes),
// computes the may-happen-in-parallel relation over its node graph
// (analysis/mhp), and intersects it with the effect analysis to enumerate
// candidate conflicting access pairs. Pairs proven ordered by the fork-join
// structure, or disjoint/private by the effect + freshness machinery, are
// discharged statically; only the residue is lowered into systematic
// interleaving probes on the CHESS-style explorer (patty::race):
//
//  * conflict probes — each residue pair becomes a task set touching the
//    cells the pair names. Opaque residue (subscripts that load memory,
//    call-summary-only accesses, shared field writes) must assume
//    worst-case aliasing, so both instances share one cell and the
//    vector-clock detector decides; non-opaque residue (pure index
//    arithmetic beyond the uniform refinement) models the instances on the
//    distinct cells its element indices name — the explorer then certifies
//    that the region's structure around them admits no other conflict.
//  * order probes — a pipeline stage tuned to replication > 1 with order
//    preservation off is a structural residue (the undecidable case the
//    paper defers to testing); explore_order_probe hunts the
//    emission-order-violating schedule.
//
// Verdict ladder: certified-static (no residue at all), certified-explored
// (residue, every probe clean), residue-raced (some probe provoked a race
// or violation). A program's verdict is the worst over its candidates.

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/mhp.hpp"
#include "corpus/corpus.hpp"
#include "patterns/candidate.hpp"
#include "transform/plan.hpp"

namespace patty::transform {

enum class Verdict : std::uint8_t {
  CertifiedStatic,
  CertifiedExplored,
  ResidueRaced,
};

/// "certified-static" / "certified-explored" / "residue-raced".
const char* verdict_name(Verdict v);

/// One explorer probe lowered from a residue pair or a structural order
/// residue.
struct ProbeOutcome {
  std::string label;   // which pair / stage the probe modeled
  bool raced = false;  // explorer provoked a race / order violation
  std::size_t schedules_explored = 0;
  std::string detail;  // first failure description ("" when clean)
};

struct ProgramCertificate {
  std::string program;
  Verdict verdict = Verdict::CertifiedStatic;
  /// Conflicting access pairs over all of the program's regions.
  analysis::MhpSummary summary;
  std::vector<ProbeOutcome> probes;
  /// Nonempty when the front-end failed; nothing was certified.
  std::string error;
};

/// Build the MHP node graph for a set of region shapes: one region per
/// shape (the executor joins each region before the next starts, so
/// cross-region pairs are ordered), one node per stage. A stage replication
/// of 0 (runtime default: one worker per hardware thread) is treated as
/// "more than one instance".
analysis::MhpGraph build_region_graph(const std::vector<RegionShape>& shapes);

/// Certify one program's candidates under a tuning (null = defaults).
ProgramCertificate certify_program(
    const lang::Program& program,
    const std::vector<patterns::Candidate>& candidates,
    const rt::TuningConfig* tuning = nullptr,
    const std::string& name = "program");

struct CertificationTotals {
  std::size_t programs = 0;
  std::size_t certified_static = 0;
  std::size_t certified_explored = 0;
  std::size_t residue_raced = 0;
  std::size_t errors = 0;
  // Pair-level discharge totals across the corpus.
  std::size_t pairs = 0;
  std::size_t ordered = 0;
  std::size_t disjoint = 0;
  std::size_t private_or_fresh = 0;
  std::size_t residue = 0;
  std::size_t probes = 0;
  std::size_t probes_raced = 0;
};

struct CorpusCertification {
  std::vector<ProgramCertificate> programs;  // corpus order
  CertificationTotals totals;
};

/// Drive certification over a corpus through the evaluation front-end
/// (corpus::evaluate_corpus with the inspect tap): every program that
/// parses and analyzes gets a verdict; front-end failures surface as
/// certificates with `error` set. `base` controls the front-end (parallel,
/// optimistic, threads); its inspect member is overwritten. Publishes the
/// `mhp.*` counters when observability is on.
CorpusCertification certify_corpus(
    const std::vector<const corpus::CorpusProgram*>& programs,
    corpus::FrontendConfig base = {});

}  // namespace patty::transform
