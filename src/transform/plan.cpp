#include "transform/plan.hpp"

#include <map>
#include <mutex>
#include <set>

#include "analysis/callgraph.hpp"
#include "analysis/dependence.hpp"
#include "analysis/effects.hpp"
#include "observe/metrics.hpp"
#include "runtime/master_worker.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/pipeline.hpp"
#include "support/diagnostics.hpp"
#include "tuning/model.hpp"

namespace patty::transform {

using analysis::ExecSignal;
using analysis::Frame;
using analysis::Interpreter;
using analysis::Value;
using lang::Stmt;
using lang::StmtKind;
using patterns::Candidate;
using patterns::PatternKind;

namespace {

/// Statement ids of the master/worker candidate currently executing on this
/// thread. While set, interception is suppressed for those statements so
/// the worker tasks execute their statements normally instead of being
/// re-intercepted (the anchor) or skipped (the absorbed ones).
thread_local const std::set<int>* g_active_master_worker = nullptr;

/// One stream element: the index in the stream plus its private frame.
struct Elem {
  std::size_t index = 0;
  std::shared_ptr<Frame> frame;
};

/// Per-candidate precomputation done once at plan build time.
struct LoopPlan {
  const Candidate* candidate = nullptr;
  std::vector<const Stmt*> body;
  /// Outer-declared local slots written by the body (ordered write-back).
  std::vector<int> writeback_slots;
  /// Loop variable managed by the header (element index), -1 if none.
  int induction_slot = -1;
  /// Reduction bookkeeping (data-parallel reductions only).
  int reduction_slot = -1;
  lang::BinaryOp reduction_op = lang::BinaryOp::Add;
  /// Reasons that force SequentialExecution regardless of tuning.
  std::string unsafe_reason;

  [[nodiscard]] bool unsafe() const { return !unsafe_reason.empty(); }
};

/// Tuning parameter lookup by name suffix, shared by the executor and the
/// shape computation so both resolve parameters identically.
std::int64_t tuned_param(const Candidate& c, const rt::TuningConfig* tuning,
                         const std::string& suffix, std::int64_t fallback) {
  for (const rt::TuningParameter& p : c.tuning) {
    if (p.name.size() > suffix.size() &&
        p.name.compare(p.name.size() - suffix.size(), suffix.size(),
                       suffix) == 0) {
      return tuning ? tuning->get_or(p.name, p.value) : p.value;
    }
  }
  return fallback;
}

/// Collect every local slot declared inside a statement subtree.
std::set<int> declared_slots(const std::vector<const Stmt*>& body) {
  std::set<int> slots;
  for (const Stmt* top : body) {
    lang::for_each_stmt(*top, [&](const Stmt& st) {
      if (st.kind == StmtKind::VarDecl) slots.insert(st.as<lang::VarDecl>().slot);
      if (st.kind == StmtKind::Foreach) slots.insert(st.as<lang::Foreach>().slot);
    });
  }
  return slots;
}

/// Local slots read / written by the loop body (through calls, locals only
/// concern this method's frame).
void body_local_effects(const analysis::EffectAnalysis& effects,
                        const std::vector<const Stmt*>& body,
                        std::set<int>* reads, std::set<int>* writes) {
  for (const Stmt* top : body) {
    const analysis::EffectSet es = effects.stmt_effects(*top);
    for (const analysis::AbsLoc& l : es.reads)
      if (l.kind == analysis::AbsLoc::Kind::Local) reads->insert(l.slot);
    for (const analysis::AbsLoc& l : es.writes)
      if (l.kind == analysis::AbsLoc::Kind::Local) writes->insert(l.slot);
  }
}

/// Slots referenced by an expression (reads).
void expr_slots(const lang::Expr& e, std::set<int>* slots) {
  lang::for_each_expr_in(e, [&](const lang::Expr& sub) {
    if (sub.kind == lang::ExprKind::VarRef) {
      const auto& ref = sub.as<lang::VarRef>();
      if (ref.is_local()) slots->insert(ref.slot);
    }
  });
}

/// The safety/shape analysis of one loop candidate (pipeline or
/// data-parallel): body statements, write-back slots, reduction
/// bookkeeping, and every reason the executor must fall back to sequential.
/// Shared by the executor's plan builder and plan_region_shapes so the
/// certifier reasons about exactly the region the executor would run.
LoopPlan analyze_loop_plan(const Candidate& c,
                           const analysis::EffectAnalysis& effects) {
  LoopPlan plan;
  plan.candidate = &c;
  plan.body = analysis::loop_body_statements(*c.anchor);

  if (c.anchor->kind == StmtKind::While) {
    plan.unsafe_reason = "while-loop headers cannot stream-generate";
  }

  const std::set<int> declared = declared_slots(plan.body);
  std::set<int> reads, writes;
  body_local_effects(effects, plan.body, &reads, &writes);

  // Header slots: For init/cond/step, Foreach loop variable + iterable.
  std::set<int> header_reads;
  if (c.anchor->kind == StmtKind::For) {
    const auto& f = c.anchor->as<lang::For>();
    if (f.cond) expr_slots(*f.cond, &header_reads);
    if (f.step) {
      const analysis::EffectSet es = effects.stmt_effects(*f.step);
      for (const analysis::AbsLoc& l : es.reads)
        if (l.kind == analysis::AbsLoc::Kind::Local)
          header_reads.insert(l.slot);
      for (const analysis::AbsLoc& l : es.writes)
        if (l.kind == analysis::AbsLoc::Kind::Local && writes.count(l.slot))
          plan.unsafe_reason = "loop body writes the induction variable";
    }
    if (f.init && f.init->kind == StmtKind::VarDecl)
      plan.induction_slot = f.init->as<lang::VarDecl>().slot;
  } else if (c.anchor->kind == StmtKind::Foreach) {
    plan.induction_slot = c.anchor->as<lang::Foreach>().slot;
  }

  // Reduction bookkeeping.
  if (c.is_reduction && c.reduction_stmt_id >= 0) {
    const Stmt* red = nullptr;
    for (const Stmt* top : plan.body) {
      lang::for_each_stmt(*top, [&](const Stmt& st) {
        if (st.id == c.reduction_stmt_id) red = &st;
      });
    }
    if (red && red->kind == StmtKind::Assign) {
      const auto& a = red->as<lang::Assign>();
      if (a.target->kind == lang::ExprKind::VarRef) {
        const auto& tgt = a.target->as<lang::VarRef>();
        if (tgt.is_local() && a.value->kind == lang::ExprKind::Binary) {
          plan.reduction_slot = tgt.slot;
          plan.reduction_op = a.value->as<lang::Binary>().op;
        } else {
          plan.unsafe_reason =
              "reduction accumulator is a field (shared heap state)";
        }
      }
    }
    if (plan.reduction_slot < 0 && plan.unsafe_reason.empty())
      plan.unsafe_reason = "reduction statement shape not executable";
  }

  // Scalar carried state: an outer-declared slot both written and read by
  // the body (or read by the loop header) cannot be represented with
  // per-element snapshot frames.
  if (plan.unsafe_reason.empty()) {
    for (int slot : writes) {
      if (declared.count(slot)) continue;     // per-iteration temporary
      if (slot == plan.induction_slot) continue;  // header-managed
      if (slot == plan.reduction_slot) continue;  // handled specially
      if (reads.count(slot) || header_reads.count(slot)) {
        plan.unsafe_reason =
            "loop-carried scalar state in an outer local (slot " +
            std::to_string(slot) + ")";
        break;
      }
      plan.writeback_slots.push_back(slot);
    }
  }
  return plan;
}

/// Method whose body contains the statement with this id, or null.
const lang::MethodDecl* method_containing(const lang::Program& program,
                                          int stmt_id) {
  for (const auto& cls : program.classes) {
    for (const auto& m : cls->methods) {
      bool found = false;
      lang::for_each_stmt(*m->body, [&](const Stmt& st) {
        if (st.id == stmt_id) found = true;
      });
      if (found) return m.get();
    }
  }
  return nullptr;
}

}  // namespace

struct ParallelPlanExecutor::Impl {
  const lang::Program& program;
  std::vector<Candidate> candidates;
  const rt::TuningConfig* tuning;
  analysis::CallGraph call_graph;
  std::unique_ptr<analysis::EffectAnalysis> effects;
  std::map<int, LoopPlan> plans;          // anchor stmt id -> plan
  std::set<int> absorbed;                 // master/worker non-anchor stmts
  std::set<int> hot_ids;                  // plans + absorbed: fast reject
  std::unique_ptr<Interpreter> interp;
  std::mutex report_mutex;
  std::map<int, PlanReport> reports;

  Impl(const lang::Program& p, std::vector<Candidate> cands,
       const rt::TuningConfig* t)
      : program(p), candidates(std::move(cands)), tuning(t) {
    call_graph = analysis::build_call_graph(program);
    effects = std::make_unique<analysis::EffectAnalysis>(program, call_graph);
    // Predict each region's tuned-best speedup on this machine before any
    // transformation runs; the reports carry it next to what actually
    // happened (figure 4c's "estimated speedup" column).
    tuning::annotate_predicted_speedups(candidates);
    for (const Candidate& c : candidates) build_plan(c);
    for (const auto& [id, plan] : plans) {
      (void)plan;
      hot_ids.insert(id);
    }
    hot_ids.insert(absorbed.begin(), absorbed.end());
  }

  std::int64_t param(const Candidate& c, const std::string& suffix,
                     std::int64_t fallback) const {
    return tuned_param(c, tuning, suffix, fallback);
  }

  void build_plan(const Candidate& c) {
    if (!c.anchor) return;
    if (c.kind == PatternKind::MasterWorker) {
      LoopPlan plan;
      plan.candidate = &c;
      plans[c.anchor->id] = std::move(plan);
      for (std::size_t i = 1; i < c.task_stmt_ids.size(); ++i)
        absorbed.insert(c.task_stmt_ids[i]);
      return;
    }
    plans[c.anchor->id] = analyze_loop_plan(c, *effects);
  }

  PlanReport& report_for(const Candidate& c) {
    // Caller holds report_mutex.
    PlanReport& r = reports[c.anchor->id];
    r.loop_stmt_id = c.anchor->id;
    r.kind = c.kind;
    r.predicted_speedup = c.predicted_speedup;
    return r;
  }

  void note_fallback(const Candidate& c, const std::string& why) {
    std::scoped_lock lock(report_mutex);
    PlanReport& r = report_for(c);
    r.ran_parallel = false;
    r.note = why;
    r.runs += 1;
    r.predicted_speedup = 1.0;  // ran sequentially: no speedup to predict
  }

  /// Graceful degradation after a runtime fault: record the event; the
  /// caller then returns false so the interpreter re-executes the loop
  /// sequentially in program order.
  void note_fault_fallback(const Candidate& c, const std::string& what) {
    if (observe::enabled())
      observe::Registry::global().counter("fault.fallbacks").add();
    note_fallback(c, "parallel region faulted: " + what +
                         "; degraded to sequential");
  }

  /// Whether the interpreter can safely re-execute the region after a
  /// fault. Parallel execution only mutates per-element snapshot frames, so
  /// a loop that restarts from scratch (foreach, or `for` with an init
  /// statement resetting its induction state) replays correctly. A `for`
  /// without init cannot restart — generate_stream already advanced the
  /// induction variable in the outer frame — so its fault must propagate.
  [[nodiscard]] bool restartable(const Candidate& c) const {
    if (c.anchor->kind != StmtKind::For) return true;
    return c.anchor->as<lang::For>().init != nullptr;
  }

  void note_parallel(const Candidate& c, std::uint64_t elements,
                     const std::string& note = {}) {
    std::scoped_lock lock(report_mutex);
    PlanReport& r = report_for(c);
    r.ran_parallel = true;
    r.elements += elements;
    r.runs += 1;
    if (!note.empty()) r.note = note;
  }

  // --- Stream generation ----------------------------------------------------

  /// Run the loop header sequentially, snapshotting one frame per element.
  /// Returns false if this loop kind cannot be generated.
  bool generate_stream(const Stmt& loop, Frame& outer, Interpreter& in,
                       std::vector<Elem>* elements) {
    if (loop.kind == StmtKind::Foreach) {
      const auto& f = loop.as<lang::Foreach>();
      Value iterable = in.eval(*f.iterable, outer);
      std::size_t count = 0;
      if (iterable.is_array()) count = iterable.as_array()->elems.size();
      else if (iterable.is_list()) count = iterable.as_list()->elems.size();
      else return false;
      elements->reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        auto frame = std::make_shared<Frame>();
        frame->self_value = outer.self_value;
        frame->locals = outer.locals;  // snapshot
        frame->locals[static_cast<std::size_t>(f.slot)] =
            iterable.is_array() ? iterable.as_array()->elems[i]
                                : iterable.as_list()->elems[i];
        elements->push_back(Elem{i, std::move(frame)});
      }
      return true;
    }
    if (loop.kind == StmtKind::For) {
      const auto& f = loop.as<lang::For>();
      if (!f.cond) return false;  // no termination condition; must bail out
                                  // before init runs (fallback re-executes it)
      if (f.init) in.exec_stmt(*f.init, outer);
      std::size_t i = 0;
      while (in.eval(*f.cond, outer).as_bool()) {
        auto frame = std::make_shared<Frame>();
        frame->self_value = outer.self_value;
        frame->locals = outer.locals;  // snapshot (includes induction var)
        elements->push_back(Elem{i++, std::move(frame)});
        if (f.step) in.exec_stmt(*f.step, outer);
      }
      return true;
    }
    return false;
  }

  /// Execute the statements of one stage on an element's frame.
  void run_stmts(Interpreter& in, const std::vector<const Stmt*>& stmts,
                 Frame& frame) {
    for (const Stmt* st : stmts) {
      const ExecSignal sig = in.exec_stmt(*st, frame);
      if (sig != ExecSignal::Normal)
        fatal("control flow escaped a pipeline stage (PLCD violation)");
    }
  }

  /// Ordered write-back of escaping locals into the outer frame.
  void write_back(const LoopPlan& plan, const std::vector<Elem>& ordered,
                  Frame& outer) {
    if (plan.writeback_slots.empty() || ordered.empty()) return;
    for (const Elem& e : ordered) {
      for (int slot : plan.writeback_slots)
        outer.locals[static_cast<std::size_t>(slot)] =
            e.frame->locals[static_cast<std::size_t>(slot)];
    }
  }

  // --- Pattern execution ------------------------------------------------------

  bool run_pipeline(const LoopPlan& plan, Frame& outer, Interpreter& in) {
    const Candidate& c = *plan.candidate;
    if (plan.unsafe() || param(c, ".sequential", 0) != 0) {
      note_fallback(c, plan.unsafe() ? plan.unsafe_reason
                                     : "SequentialExecution enabled");
      return false;
    }
    std::vector<Elem> elements;
    if (!generate_stream(*c.anchor, outer, in, &elements)) {
      note_fallback(c, "stream generation failed for this loop form");
      return false;
    }

    // Map statement ids to statement pointers per stage.
    auto stmts_of = [&](const patterns::StageSpec& spec) {
      std::vector<const Stmt*> out;
      for (int id : spec.stmt_ids) {
        for (const Stmt* st : plan.body)
          if (st->id == id) out.push_back(st);
      }
      return out;
    };

    std::vector<rt::Pipeline<Elem>::Stage> rt_stages;
    for (const auto& section : c.sections) {
      if (section.size() == 1) {
        const patterns::StageSpec& spec = c.stages[section[0]];
        std::vector<const Stmt*> stmts = stmts_of(spec);
        int replication = spec.replicable
                              ? static_cast<int>(param(
                                    c, ".stage" + spec.label + ".replication", 1))
                              : 1;
        if (replication < 1) replication = 1;
        const bool order =
            param(c, ".stage" + spec.label + ".order", 1) != 0;
        rt::Pipeline<Elem>::Stage stage;
        stage.name = spec.label;
        stage.fn = [this, &in, stmts](Elem& e) { run_stmts(in, stmts, *e.frame); };
        stage.replication = replication;
        stage.preserve_order = order;
        rt_stages.push_back(std::move(stage));
      } else {
        // Master/worker section: the sub-stages run concurrently per element.
        std::vector<std::vector<const Stmt*>> groups;
        std::string name = "(";
        for (std::size_t k = 0; k < section.size(); ++k) {
          groups.push_back(stmts_of(c.stages[section[k]]));
          if (k) name += "||";
          name += c.stages[section[k]].label;
        }
        name += ")";
        rt::Pipeline<Elem>::Stage stage;
        stage.name = std::move(name);
        // Dedicated crew sized to the section: the shared pool may have as
        // few as one thread (hardware_concurrency), which would serialize
        // the section's independent filters.
        const int crew = static_cast<int>(groups.size());
        stage.fn = [this, &in, groups, crew](Elem& e) {
          rt::MasterWorker mw(crew);
          std::vector<std::function<void()>> tasks;
          tasks.reserve(groups.size());
          for (const auto& g : groups)
            tasks.push_back([this, &in, &g, &e] { run_stmts(in, g, *e.frame); });
          mw.run(tasks);
        };
        stage.replication = 1;
        rt_stages.push_back(std::move(stage));
      }
    }

    // Stage fusion between consecutive singleton sections.
    for (std::size_t s = 0; s + 1 < c.sections.size(); ++s) {
      if (c.sections[s].size() != 1 || c.sections[s + 1].size() != 1) continue;
      const std::string pair = c.stages[c.sections[s][0]].label +
                               c.stages[c.sections[s + 1][0]].label;
      if (param(c, ".fuse" + pair, 0) != 0) rt_stages[s].fuse_with_next = true;
    }

    rt::PipelineConfig cfg;
    cfg.buffer_capacity =
        static_cast<std::size_t>(std::max<std::int64_t>(1, param(c, ".buffer", 16)));
    cfg.batch_size =
        static_cast<std::size_t>(std::max<std::int64_t>(1, param(c, ".batch", 1)));
    rt::Pipeline<Elem> pipeline(std::move(rt_stages), cfg);

    std::size_t next = 0;
    std::vector<Elem> done(elements.size());
    try {
      pipeline.run(
          [&]() -> std::optional<Elem> {
            if (next >= elements.size()) return std::nullopt;
            return std::move(elements[next++]);
          },
          [&](Elem&& e) { done[e.index] = std::move(e); });
    } catch (const std::exception& e) {
      if (!restartable(c)) throw;
      note_fault_fallback(c, e.what());
      return false;
    }
    write_back(plan, done, outer);
    note_parallel(c, done.size());
    return true;
  }

  bool run_data_parallel(const LoopPlan& plan, Frame& outer, Interpreter& in) {
    const Candidate& c = *plan.candidate;
    if (plan.unsafe() || param(c, ".sequential", 0) != 0) {
      note_fallback(c, plan.unsafe() ? plan.unsafe_reason
                                     : "SequentialExecution enabled");
      return false;
    }
    std::vector<Elem> elements;
    if (!generate_stream(*c.anchor, outer, in, &elements)) {
      note_fallback(c, "stream generation failed for this loop form");
      return false;
    }

    // Reduction accumulators start at the identity in every element frame.
    if (plan.reduction_slot >= 0) {
      for (Elem& e : elements) {
        Value& acc =
            e.frame->locals[static_cast<std::size_t>(plan.reduction_slot)];
        if (plan.reduction_op == lang::BinaryOp::Mul) {
          acc = acc.is_double() ? Value::of_double(1.0) : Value::of_int(1);
        } else {
          acc = acc.is_double() ? Value::of_double(0.0) : Value::of_int(0);
        }
      }
    }

    rt::ParallelForTuning pf;
    pf.threads = static_cast<int>(param(c, ".threads", 0));
    pf.grain = param(c, ".grain", 0);
    try {
      rt::parallel_for(
          0, static_cast<std::int64_t>(elements.size()),
          [&](std::int64_t i) {
            run_stmts(in, plan.body,
                      *elements[static_cast<std::size_t>(i)].frame);
          },
          pf);
    } catch (const std::exception& e) {
      if (!restartable(c)) throw;
      note_fault_fallback(c, e.what());
      return false;
    }

    // Fold the partial accumulators back, in element order.
    if (plan.reduction_slot >= 0) {
      Value& acc =
          outer.locals[static_cast<std::size_t>(plan.reduction_slot)];
      for (const Elem& e : elements) {
        const Value& partial =
            e.frame->locals[static_cast<std::size_t>(plan.reduction_slot)];
        if (plan.reduction_op == lang::BinaryOp::Mul) {
          if (acc.is_double() || partial.is_double())
            acc = Value::of_double(acc.to_double() * partial.to_double());
          else
            acc = Value::of_int(acc.as_int() * partial.as_int());
        } else {
          if (acc.is_double() || partial.is_double())
            acc = Value::of_double(acc.to_double() + partial.to_double());
          else
            acc = Value::of_int(acc.as_int() + partial.as_int());
        }
      }
    }
    write_back(plan, elements, outer);
    note_parallel(c, elements.size(),
                  plan.reduction_slot >= 0 ? "parallel reduction" : "");
    return true;
  }

  bool run_master_worker(const LoopPlan& plan, Frame& frame, Interpreter& in) {
    const Candidate& c = *plan.candidate;
    // Locate the task statements (they live in the same block).
    std::vector<const Stmt*> tasks_stmts;
    for (int id : c.task_stmt_ids) {
      const Stmt* found = nullptr;
      for (const auto& cls : program.classes) {
        for (const auto& m : cls->methods) {
          lang::for_each_stmt(*m->body, [&](const Stmt& st) {
            if (st.id == id) found = &st;
          });
        }
      }
      if (!found) {
        note_fallback(c, "task statement not found");
        return false;
      }
      tasks_stmts.push_back(found);
    }
    std::set<int> own_ids(c.task_stmt_ids.begin(), c.task_stmt_ids.end());
    rt::MasterWorker mw(static_cast<int>(param(c, ".workers", 0)));
    std::vector<std::function<void()>> tasks;
    tasks.reserve(tasks_stmts.size());
    for (const Stmt* st : tasks_stmts) {
      tasks.push_back([&in, st, &frame, &own_ids] {
        // Restore on unwind too: a throwing task runs on a shared pool
        // worker whose thread_local otherwise stays poisoned for whatever
        // interception that thread executes next.
        const std::set<int>* saved = g_active_master_worker;
        g_active_master_worker = &own_ids;
        ExecSignal sig = ExecSignal::Normal;
        try {
          sig = in.exec_stmt(*st, frame);
        } catch (...) {
          g_active_master_worker = saved;
          throw;
        }
        g_active_master_worker = saved;
        if (sig != ExecSignal::Normal)
          fatal("control flow escaped a master/worker task");
      });
    }
    try {
      mw.run(tasks);
    } catch (const std::exception& e) {
      // Degradation contract: the detector verified the tasks independent
      // and each task re-executes its statements from the shared frame, so
      // the sequential replay recomputes what partial parallel execution
      // produced rather than double-applying it.
      note_fault_fallback(c, e.what());
      return false;
    }
    note_parallel(c, tasks.size());
    return true;
  }
};

ParallelPlanExecutor::ParallelPlanExecutor(
    const lang::Program& program, std::vector<Candidate> candidates,
    const rt::TuningConfig* tuning)
    : impl_(std::make_unique<Impl>(program, std::move(candidates), tuning)) {}

ParallelPlanExecutor::~ParallelPlanExecutor() = default;

Value ParallelPlanExecutor::run_main(analysis::InterpreterOptions options) {
  impl_->interp = std::make_unique<Interpreter>(impl_->program, nullptr, options);
  impl_->interp->set_interceptor(this);
  return impl_->interp->run_main();
}

std::string ParallelPlanExecutor::output() const {
  return impl_->interp ? impl_->interp->output() : std::string();
}

std::vector<PlanReport> ParallelPlanExecutor::reports() const {
  std::scoped_lock lock(impl_->report_mutex);
  std::vector<PlanReport> snapshot;
  snapshot.reserve(impl_->reports.size());
  for (const auto& [id, r] : impl_->reports) {
    (void)id;
    snapshot.push_back(r);
  }
  return snapshot;
}

bool ParallelPlanExecutor::intercept(const Stmt& st, Frame& frame,
                                     Interpreter& interp,
                                     ExecSignal* signal) {
  // Fast reject: almost every executed statement is not a plan anchor.
  if (!impl_->hot_ids.count(st.id)) return false;
  // Statements of the master/worker candidate currently running on this
  // thread execute normally (the tasks drive them through exec_stmt).
  if (g_active_master_worker && g_active_master_worker->count(st.id))
    return false;
  // Statements absorbed into a preceding master/worker anchor are skipped
  // in normal flow (the anchor's tasks already ran them).
  if (impl_->absorbed.count(st.id)) {
    *signal = ExecSignal::Normal;
    return true;
  }
  auto it = impl_->plans.find(st.id);
  if (it == impl_->plans.end()) return false;
  const LoopPlan& plan = it->second;
  bool handled = false;
  switch (plan.candidate->kind) {
    case PatternKind::Pipeline:
      handled = impl_->run_pipeline(plan, frame, interp);
      break;
    case PatternKind::DataParallelLoop:
      handled = impl_->run_data_parallel(plan, frame, interp);
      break;
    case PatternKind::MasterWorker:
      handled = impl_->run_master_worker(plan, frame, interp);
      break;
  }
  if (handled) *signal = ExecSignal::Normal;
  return handled;  // false -> interpreter executes the loop sequentially
}

rt::TuningConfig default_tuning(const std::vector<Candidate>& candidates) {
  rt::TuningConfig config;
  for (const Candidate& c : candidates)
    for (const rt::TuningParameter& p : c.tuning) config.define(p);
  return config;
}

std::vector<RegionShape> plan_region_shapes(
    const lang::Program& program, const std::vector<Candidate>& candidates,
    const rt::TuningConfig* tuning) {
  const analysis::CallGraph cg = analysis::build_call_graph(program);
  const analysis::EffectAnalysis effects(program, cg);

  std::vector<RegionShape> shapes;
  shapes.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    if (!c.anchor) continue;
    RegionShape shape;
    shape.candidate = &c;
    shape.method = method_containing(program, c.anchor->id);

    if (c.kind == PatternKind::MasterWorker) {
      for (std::size_t k = 0; k < c.task_stmt_ids.size(); ++k) {
        StageShape stage;
        stage.label = "task" + std::to_string(k);
        const Stmt* st = nullptr;
        if (shape.method) {
          lang::for_each_stmt(*shape.method->body, [&](const Stmt& s) {
            if (s.id == c.task_stmt_ids[k]) st = &s;
          });
        }
        if (st) stage.stmts.push_back(st);
        shape.stages.push_back(std::move(stage));
      }
      shapes.push_back(std::move(shape));
      continue;
    }

    const LoopPlan plan = analyze_loop_plan(c, effects);
    shape.induction_slot = plan.induction_slot;
    shape.reduction_slot = plan.reduction_slot;
    if (plan.unsafe() || tuned_param(c, tuning, ".sequential", 0) != 0) {
      shape.sequential = true;
      shape.sequential_reason =
          plan.unsafe() ? plan.unsafe_reason : "SequentialExecution enabled";
    }

    if (c.kind == PatternKind::DataParallelLoop) {
      StageShape stage;
      stage.label = "body";
      stage.replication =
          static_cast<int>(tuned_param(c, tuning, ".threads", 0));
      if (stage.replication < 0) stage.replication = 0;
      stage.stmts = plan.body;
      shape.stages.push_back(std::move(stage));
    } else {
      // Pipeline: one stage shape per StageSpec, in section order. Stages
      // of a multi-member section run concurrently even on the same
      // element (the executor gives the section a worker crew); the
      // detector only groups stages it proved mutually independent.
      auto stmts_of = [&](const patterns::StageSpec& spec) {
        std::vector<const Stmt*> out;
        for (int id : spec.stmt_ids)
          for (const Stmt* st : plan.body)
            if (st->id == id) out.push_back(st);
        return out;
      };
      for (const auto& section : c.sections) {
        for (int idx : section) {
          const patterns::StageSpec& spec =
              c.stages[static_cast<std::size_t>(idx)];
          StageShape stage;
          stage.label = spec.label;
          stage.stmts = stmts_of(spec);
          if (spec.replicable) {
            stage.replication = static_cast<int>(tuned_param(
                c, tuning, ".stage" + spec.label + ".replication", 1));
            if (stage.replication < 1) stage.replication = 1;
          }
          stage.preserve_order =
              tuned_param(c, tuning, ".stage" + spec.label + ".order", 1) != 0;
          shape.stages.push_back(std::move(stage));
        }
      }
    }
    shapes.push_back(std::move(shape));
  }
  return shapes;
}

}  // namespace patty::transform
