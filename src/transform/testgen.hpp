#pragma once
// Parallel unit-test generation (paper §2.1: "we automatically generate
// parallel unit tests for each tunable parallel pattern. After this, we
// perform a path coverage analysis to generate a set of input data for each
// unit test.").
//
// A generated test pins one tuning configuration of one candidate and
// checks that the parallel execution is observationally equivalent to the
// sequential one (program output and result value). The configurations are
// chosen to stress exactly the knobs that can break semantics: maximum
// replication, order preservation off (the undecidable case the paper
// defers to testing), fusion, and tiny buffers. Repeated execution varies
// the actual interleavings; the systematic exploration lives in
// patty::race and is exercised through the same test structures.

#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "patterns/candidate.hpp"
#include "runtime/tuning.hpp"

namespace patty::transform {

struct ParallelUnitTest {
  std::string name;
  const patterns::Candidate* candidate = nullptr;
  rt::TuningConfig config;
  /// True when this configuration is semantically *suspect* (e.g. order
  /// preservation disabled): a failure means the tuning value must be
  /// excluded, not that the pattern is wrong (paper §2.2 OrderPreservation).
  bool expects_possible_order_violation = false;
};

struct TestOutcome {
  bool passed = false;
  std::string detail;
  std::size_t repetitions = 0;
};

/// Result of running a generated test's tuning configuration through the
/// systematic interleaving explorer (patty::race) instead of repeated
/// execution. Where `run_unit_test` samples interleavings, this enumerates
/// them within the CHESS preemption bound — and when a violating schedule
/// exists, hands back the serialized schedule so the exact interleaving can
/// be replayed as a standalone regression test (race::replay).
struct ExplorationOutcome {
  /// True when some explored schedule violates order preservation.
  bool order_violation_possible = false;
  std::size_t schedules_explored = 0;
  /// True when the preemption-bounded schedule space was fully covered.
  bool exhausted = false;
  /// Human-readable description of the first violation ("" when none).
  std::string detail;
  /// race::Schedule::to_string() of the first violating schedule ("" when
  /// none); feed to race::Schedule::from_string + race::replay.
  std::string failing_schedule;
  /// True when `failing_schedule` was parsed back and replayed standalone,
  /// reproducing the identical violation (always done when one is found —
  /// the serialized schedule is only evidence if it replays).
  bool replay_verified = false;
};

struct TestGenOptions {
  int max_replication = 4;
  bool include_order_violation_probe = true;
};

/// Generate the unit-test suite for a set of candidates.
std::vector<ParallelUnitTest> generate_unit_tests(
    const std::vector<patterns::Candidate>& candidates,
    TestGenOptions options = {});

/// Execute one generated test: sequential reference vs. parallel plan under
/// the test's tuning configuration, `repetitions` times (interleaving
/// variance). Equivalence = identical program output and main() result.
TestOutcome run_unit_test(const lang::Program& program,
                          const ParallelUnitTest& test,
                          std::size_t repetitions = 3);

/// Systematic order probe for one generated test: models the test's
/// replicated stage (replication and order-preservation read from
/// `test.config`) in the interleaving explorer and enumerates schedules
/// within the given preemption bound. With order preservation on, every
/// schedule emits in sequence order; with it off and replication > 1, the
/// explorer finds the emission-order-violating interleaving and the outcome
/// carries its serialized schedule — deterministic evidence for excluding
/// the tuning value (paper §2.2 OrderPreservation), where repeated
/// execution in `run_unit_test` can only sample.
ExplorationOutcome explore_order_probe(const ParallelUnitTest& test,
                                       int preemption_bound = 2);

/// Two interleaving-failure messages describe the same failure *class* when
/// their violation kind — the text after the last ": " separator — matches:
/// "item 3 emitted at slot 1: order violated" and "item 0 emitted at slot
/// 2: order violated" are the same class (which elements collide depends on
/// the interleaving), while "...: order violated" vs "...: lost update" are
/// not. Replay verification compares on class, not bytes: a replay that
/// fails the same way on different elements still certifies the schedule.
bool same_failure_class(const std::string& a, const std::string& b);

/// Path-coverage input selection: each entry of `variant_sources` is a
/// complete MiniOO program (same code, different embedded input data). The
/// result is a minimal-ish subset (greedy set cover) whose union covers
/// every branch outcome any variant covers — the "set of input data"
/// attached to the generated unit tests.
std::vector<std::size_t> select_covering_inputs(
    const std::vector<std::string>& variant_sources,
    std::string* error = nullptr);

}  // namespace patty::transform
