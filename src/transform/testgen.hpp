#pragma once
// Parallel unit-test generation (paper §2.1: "we automatically generate
// parallel unit tests for each tunable parallel pattern. After this, we
// perform a path coverage analysis to generate a set of input data for each
// unit test.").
//
// A generated test pins one tuning configuration of one candidate and
// checks that the parallel execution is observationally equivalent to the
// sequential one (program output and result value). The configurations are
// chosen to stress exactly the knobs that can break semantics: maximum
// replication, order preservation off (the undecidable case the paper
// defers to testing), fusion, and tiny buffers. Repeated execution varies
// the actual interleavings; the systematic exploration lives in
// patty::race and is exercised through the same test structures.

#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "patterns/candidate.hpp"
#include "runtime/tuning.hpp"

namespace patty::transform {

struct ParallelUnitTest {
  std::string name;
  const patterns::Candidate* candidate = nullptr;
  rt::TuningConfig config;
  /// True when this configuration is semantically *suspect* (e.g. order
  /// preservation disabled): a failure means the tuning value must be
  /// excluded, not that the pattern is wrong (paper §2.2 OrderPreservation).
  bool expects_possible_order_violation = false;
};

struct TestOutcome {
  bool passed = false;
  std::string detail;
  std::size_t repetitions = 0;
};

struct TestGenOptions {
  int max_replication = 4;
  bool include_order_violation_probe = true;
};

/// Generate the unit-test suite for a set of candidates.
std::vector<ParallelUnitTest> generate_unit_tests(
    const std::vector<patterns::Candidate>& candidates,
    TestGenOptions options = {});

/// Execute one generated test: sequential reference vs. parallel plan under
/// the test's tuning configuration, `repetitions` times (interleaving
/// variance). Equivalence = identical program output and main() result.
TestOutcome run_unit_test(const lang::Program& program,
                          const ParallelUnitTest& test,
                          std::size_t repetitions = 3);

/// Path-coverage input selection: each entry of `variant_sources` is a
/// complete MiniOO program (same code, different embedded input data). The
/// result is a minimal-ish subset (greedy set cover) whose union covers
/// every branch outcome any variant covers — the "set of input data"
/// attached to the generated unit tests.
std::vector<std::size_t> select_covering_inputs(
    const std::vector<std::string>& variant_sources,
    std::string* error = nullptr);

}  // namespace patty::transform
