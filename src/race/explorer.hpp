#pragma once
// CHESS-style systematic concurrency testing (paper §2.1: generated parallel
// unit tests are executed on "the dynamic data race detector CHESS", which
// "computes and provokes all possible thread interleavings").
//
// The explorer runs a small multi-threaded test repeatedly, enumerating
// thread schedules by depth-first search over scheduling decisions, with
// iterative preemption bounding (CHESS's key idea: most bugs surface within
// <= 2 preemptions). Tasks are real std::threads driven in lockstep: every
// shared-memory or lock operation is a scheduling point where exactly one
// task may proceed.
//
// A happens-before race detector (vector clocks over program order, lock
// release/acquire, and fork/join) runs inside every execution, so a race is
// reported even when the explored schedule did not make it visible as a
// wrong result. Assertion failures and deadlocks are reported per schedule,
// and the set of distinct final states measures result nondeterminism
// (the paper's OrderPreservation question).

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace patty::race {

class TaskContext;
using TaskFn = std::function<void(TaskContext&)>;

/// Operations a task may perform; each is a scheduling point.
class TaskContext {
 public:
  std::int64_t read(const std::string& var);
  void write(const std::string& var, std::int64_t value);
  /// Atomic read-modify-write (counts as one scheduling point; still a
  /// plain access for the race detector unless protected by a lock).
  std::int64_t fetch_add(const std::string& var, std::int64_t delta);
  void lock(const std::string& mutex);
  void unlock(const std::string& mutex);
  void yield();
  /// Record an assertion; failures are collected per schedule.
  void check(bool condition, const std::string& message);
  [[nodiscard]] int task_id() const { return task_id_; }

 private:
  friend class Runner;
  TaskContext(int task_id, class Runner* runner)
      : task_id_(task_id), runner_(runner) {}
  int task_id_;
  class Runner* runner_;
};

struct RaceReport {
  std::string var;
  int task_a = -1;
  int task_b = -1;
  bool write_write = false;

  friend bool operator<(const RaceReport& x, const RaceReport& y) {
    return std::tie(x.var, x.task_a, x.task_b, x.write_write) <
           std::tie(y.var, y.task_a, y.task_b, y.write_write);
  }
};

struct ExploreOptions {
  /// Maximum preemptions per schedule (CHESS iterative context bounding).
  int preemption_bound = 2;
  /// Hard cap on explored schedules.
  std::size_t max_schedules = 20'000;
  /// Initial shared-variable values (default 0).
  std::map<std::string, std::int64_t> initial_state;
};

struct ExploreResult {
  std::size_t schedules_explored = 0;
  bool exhausted = false;  // every schedule within the bound was covered
  std::vector<RaceReport> races;             // deduplicated
  std::vector<std::string> assertion_failures;  // deduplicated messages
  std::size_t deadlock_schedules = 0;
  /// Distinct final shared states observed across schedules.
  std::size_t distinct_final_states = 0;
  /// Final state of the first explored schedule (the "reference").
  std::map<std::string, std::int64_t> reference_final_state;
};

/// Systematically explore all interleavings of `tasks` within the bound.
ExploreResult explore(const std::vector<TaskFn>& tasks,
                      ExploreOptions options = {});

}  // namespace patty::race
