#pragma once
// CHESS-style systematic concurrency testing (paper §2.1: generated parallel
// unit tests are executed on "the dynamic data race detector CHESS", which
// "computes and provokes all possible thread interleavings").
//
// The explorer runs a small multi-threaded test repeatedly, enumerating
// thread schedules by depth-first search over scheduling decisions, with
// iterative preemption bounding (CHESS's key idea: most bugs surface within
// <= 2 preemptions). Tasks are real std::threads driven in lockstep: every
// shared-memory, atomic, lock, condition or parking operation is a
// scheduling point where exactly one task may proceed.
//
// v2 speaks the synchronization vocabulary of the lock-free runtime
// (src/runtime): C++ atomics with memory-order-aware happens-before edges
// (release stores publish, acquire loads that read them synchronize; RMWs
// extend release sequences; CAS models both the success and failure path),
// condition wait/notify, and the park/unpark protocol behind StageQueue and
// the pool's sleep path. A happens-before race detector (vector clocks over
// program order, lock release/acquire, atomic synchronizes-with, and
// notify/unpark edges) runs inside every execution, so a race is reported
// even when the explored schedule did not make it visible as a wrong
// result. Atomic accesses never race with each other; an atomic access that
// is unordered with a plain access to the same location is reported (mixed
// access is UB in the modeled C++).
//
// Blocked-task cycles (every unfinished task waiting on a lock, condition,
// or park token) are detected, reported with the full cycle description,
// and the run is aborted cleanly so DFS continues with the next schedule
// instead of wedging the exploration. Every failing schedule (race,
// assertion, deadlock) is captured as a serializable `Schedule` that
// `replay()` re-executes deterministically — the regression-test handle for
// interleaving bugs.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace patty::race {

class TaskContext;
using TaskFn = std::function<void(TaskContext&)>;

/// Memory orders for the atomic operations (consume is treated as acquire).
enum class MemoryOrder : std::uint8_t {
  Relaxed,
  Acquire,
  Release,
  AcqRel,
  SeqCst,
};

/// Operations a task may perform; each is a scheduling point.
class TaskContext {
 public:
  // --- plain (non-atomic) shared memory --------------------------------
  std::int64_t read(const std::string& var);
  void write(const std::string& var, std::int64_t value);

  // --- C++ atomics -----------------------------------------------------
  /// Atomic load; Acquire/SeqCst synchronizes with the release store (or
  /// release sequence) that wrote the current value.
  std::int64_t atomic_load(const std::string& var,
                           MemoryOrder order = MemoryOrder::SeqCst);
  /// Atomic store; Release/SeqCst heads a new release sequence.
  void atomic_store(const std::string& var, std::int64_t value,
                    MemoryOrder order = MemoryOrder::SeqCst);
  /// Atomic read-modify-write. Contributes acquire and/or release edges per
  /// `order`; a relaxed RMW still extends an existing release sequence.
  std::int64_t fetch_add(const std::string& var, std::int64_t delta,
                         MemoryOrder order = MemoryOrder::SeqCst);
  /// Compare-exchange: one scheduling point covering both paths. On success
  /// acts as an RMW with `success` ordering; on failure as a load with
  /// `failure` ordering, and `expected` is updated with the observed value.
  bool compare_exchange(const std::string& var, std::int64_t& expected,
                        std::int64_t desired,
                        MemoryOrder success = MemoryOrder::SeqCst,
                        MemoryOrder failure = MemoryOrder::SeqCst);

  // --- locks -----------------------------------------------------------
  void lock(const std::string& mutex);
  void unlock(const std::string& mutex);

  // --- condition variables ---------------------------------------------
  /// Releases `mutex`, blocks until a notify on `cond`, re-acquires
  /// `mutex`. Lockstep execution makes the release-and-wait atomic (no
  /// lost-wakeup window between the unlock and the wait registration), so
  /// this models std::condition_variable::wait exactly; a notify with no
  /// waiter is lost, as in the real thing. Callers are responsible for the
  /// usual predicate re-check loop.
  void cond_wait(const std::string& cond, const std::string& mutex);
  /// Wakes the longest-waiting task blocked on `cond` (deterministic stand-
  /// in for the unspecified choice); no-op when nobody waits.
  void notify_one(const std::string& cond);
  void notify_all(const std::string& cond);

  // --- thread parking (StageQueue / pool sleep protocol) ---------------
  /// Consume a permit on `token` or block until unpark(token). Binary
  /// permit semantics: an unpark before the park is not lost.
  void park(const std::string& token);
  /// Wake one task parked on `token`, or bank a single permit.
  void unpark(const std::string& token);

  void yield();
  /// Record an assertion; failures are collected per schedule.
  void check(bool condition, const std::string& message);
  [[nodiscard]] int task_id() const { return task_id_; }

 private:
  friend class Runner;
  TaskContext(int task_id, class Runner* runner)
      : task_id_(task_id), runner_(runner) {}
  int task_id_;
  class Runner* runner_;
};

struct RaceReport {
  std::string var;
  int task_a = -1;
  int task_b = -1;
  bool write_write = false;

  friend bool operator<(const RaceReport& x, const RaceReport& y) {
    return std::tie(x.var, x.task_a, x.task_b, x.write_write) <
           std::tie(y.var, y.task_a, y.task_b, y.write_write);
  }
  friend bool operator==(const RaceReport& x, const RaceReport& y) {
    return std::tie(x.var, x.task_a, x.task_b, x.write_write) ==
           std::tie(y.var, y.task_a, y.task_b, y.write_write);
  }
};

/// A fully serialized scheduling decision sequence: the task chosen at each
/// scheduling point of one execution. Replaying the same choices on the
/// same task set reproduces the execution deterministically.
struct Schedule {
  std::vector<int> choices;

  /// Compact textual form, e.g. "0,1,1,0" ("" for an empty schedule).
  [[nodiscard]] std::string to_string() const;
  /// Parse to_string output; nullopt on malformed input.
  static std::optional<Schedule> from_string(const std::string& text);

  friend bool operator==(const Schedule& a, const Schedule& b) {
    return a.choices == b.choices;
  }
};

/// One failing execution, with the schedule that provokes it.
struct ScheduleFailure {
  enum class Kind : std::uint8_t { Race, Assertion, Deadlock };
  Kind kind = Kind::Race;
  /// Race description / assertion message / deadlock cycle report.
  std::string detail;
  Schedule schedule;
};

struct ExploreOptions {
  /// Maximum preemptions per schedule (CHESS iterative context bounding).
  int preemption_bound = 2;
  /// Hard cap on explored schedules.
  std::size_t max_schedules = 20'000;
  /// Initial shared-variable values (default 0).
  std::map<std::string, std::int64_t> initial_state;
};

struct ExploreResult {
  std::size_t schedules_explored = 0;
  /// True only when every schedule within the preemption bound was covered.
  /// Never true when exploration stopped on `max_schedules`.
  bool exhausted = false;
  std::vector<RaceReport> races;                // deduplicated
  std::vector<std::string> assertion_failures;  // deduplicated messages
  std::size_t deadlock_schedules = 0;
  /// Deduplicated blocked-task cycle descriptions, e.g.
  /// "task 0 blocked on mutex 'a' held by task 1; task 1 blocked on ...".
  std::vector<std::string> deadlock_reports;
  /// First schedule provoking each distinct failure (capped; see cpp).
  std::vector<ScheduleFailure> failing_schedules;
  /// Distinct final shared states observed across schedules.
  std::size_t distinct_final_states = 0;
  /// Final state of the first explored schedule (the "reference").
  std::map<std::string, std::int64_t> reference_final_state;
};

/// Systematically explore all interleavings of `tasks` within the bound.
ExploreResult explore(const std::vector<TaskFn>& tasks,
                      ExploreOptions options = {});

/// One deterministic re-execution under a serialized schedule.
struct ReplayResult {
  bool deadlocked = false;
  std::string deadlock_report;
  std::vector<RaceReport> races;
  std::vector<std::string> assertion_failures;
  std::map<std::string, std::int64_t> final_state;
  /// The complete schedule actually taken (>= the requested prefix when the
  /// requested schedule ended before the tasks did).
  Schedule schedule;
};

/// Re-execute `tasks` following `schedule` exactly (choices are honored
/// whenever the chosen task is runnable, regardless of the preemption
/// bound), then first-runnable beyond its end. Same tasks + same schedule
/// => same races, assertions, deadlock report, and final state.
ReplayResult replay(const std::vector<TaskFn>& tasks, const Schedule& schedule,
                    ExploreOptions options = {});

}  // namespace patty::race
