#include "race/explorer.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>

#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "support/diagnostics.hpp"

namespace patty::race {

namespace {

using Clock = std::vector<std::uint64_t>;

bool clock_leq(const Clock& a, const Clock& b) {
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] > b[i]) return false;
  return true;
}

void clock_join(Clock& a, const Clock& b) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = std::max(a[i], b[i]);
}

struct PendingOp {
  enum class Kind : std::uint8_t {
    Read, Write, FetchAdd, Lock, Unlock, Yield
  };
  Kind kind = Kind::Yield;
  std::string var;
  std::int64_t value = 0;
};

}  // namespace

/// One lockstep execution of the test under a (partially) fixed schedule.
class Runner {
 public:
  Runner(const std::vector<TaskFn>& tasks, const ExploreOptions& options)
      : tasks_(tasks), options_(options), n_(tasks.size()) {
    states_.resize(n_);
    clocks_.assign(n_, Clock(n_, 0));
    for (std::size_t t = 0; t < n_; ++t) clocks_[t][t] = 1;
    vars_ = options.initial_state;
  }

  struct StepRecord {
    int chosen = -1;
    std::vector<int> alternatives;  // other admissible tasks at this point
  };

  struct RunResult {
    std::vector<StepRecord> steps;
    bool deadlocked = false;
    std::set<RaceReport> races;
    std::set<std::string> assertion_failures;
    std::map<std::string, std::int64_t> final_state;
  };

  /// Execute, following `prefix` task choices, then first-enabled.
  RunResult run(const std::vector<int>& prefix) {
    RunResult result;
    // Launch task threads; each blocks at its first scheduling point.
    std::vector<std::thread> threads;
    threads.reserve(n_);
    for (std::size_t t = 0; t < n_; ++t) {
      threads.emplace_back([this, t] {
        TaskContext ctx(static_cast<int>(t), this);
        tasks_[t](ctx);
        std::scoped_lock lock(mutex_);
        states_[t].finished = true;
        cv_.notify_all();
      });
    }

    int previous = -1;
    int preemptions = 0;
    std::size_t step = 0;
    while (true) {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] {
        for (std::size_t t = 0; t < n_; ++t)
          if (!states_[t].finished && !states_[t].at_point) return false;
        return true;
      });

      std::vector<int> enabled;
      bool any_unfinished = false;
      for (std::size_t t = 0; t < n_; ++t) {
        if (states_[t].finished) continue;
        any_unfinished = true;
        if (is_enabled(static_cast<int>(t))) enabled.push_back(static_cast<int>(t));
      }
      if (!any_unfinished) break;  // all done
      if (enabled.empty()) {
        result.deadlocked = true;
        // Unblock everything so threads can exit: grant nothing; abort by
        // marking a poison flag that makes ops no-ops and granting all.
        aborting_ = true;
        for (std::size_t t = 0; t < n_; ++t) {
          states_[t].granted = true;
        }
        cv_.notify_all();
        break;
      }

      // Admissible choices under the preemption bound.
      std::vector<int> admissible;
      const bool prev_enabled =
          previous >= 0 &&
          std::find(enabled.begin(), enabled.end(), previous) != enabled.end();
      for (int t : enabled) {
        if (prev_enabled && t != previous &&
            preemptions >= options_.preemption_bound)
          continue;
        admissible.push_back(t);
      }
      if (admissible.empty()) admissible.push_back(previous);

      int chosen;
      if (step < prefix.size()) {
        chosen = prefix[step];
        // A stale prefix entry (can happen only on scheduler bugs) falls
        // back to the first admissible choice.
        if (std::find(admissible.begin(), admissible.end(), chosen) ==
            admissible.end())
          chosen = admissible.front();
      } else {
        chosen = admissible.front();
      }
      StepRecord record;
      record.chosen = chosen;
      for (int t : admissible)
        if (t != chosen) record.alternatives.push_back(t);
      result.steps.push_back(std::move(record));

      if (prev_enabled && chosen != previous) ++preemptions;
      previous = chosen;
      ++step;

      // Grant exactly this task one operation.
      perform_effect(chosen, result);
      states_[static_cast<std::size_t>(chosen)].at_point = false;
      states_[static_cast<std::size_t>(chosen)].granted = true;
      cv_.notify_all();
    }

    for (std::thread& th : threads) th.join();
    result.races = races_;
    result.assertion_failures = assertion_failures_;
    result.final_state = vars_;
    return result;
  }

 private:
  friend class TaskContext;

  struct TaskState {
    bool at_point = false;
    bool granted = false;
    bool finished = false;
    PendingOp op;
    std::int64_t op_result = 0;
  };

  bool is_enabled(int t) const {
    const TaskState& st = states_[static_cast<std::size_t>(t)];
    if (!st.at_point) return false;
    if (st.op.kind == PendingOp::Kind::Lock) {
      auto it = lock_holder_.find(st.op.var);
      return it == lock_holder_.end() || it->second == t;
    }
    return true;
  }

  /// Execute the chosen task's pending operation (scheduler thread, under
  /// mutex_): shared-state effect plus vector-clock race detection.
  void perform_effect(int t, RunResult& result) {
    (void)result;
    TaskState& st = states_[static_cast<std::size_t>(t)];
    Clock& ct = clocks_[static_cast<std::size_t>(t)];
    auto& var_meta = access_meta_[st.op.var];
    switch (st.op.kind) {
      case PendingOp::Kind::Read: {
        if (var_meta.has_write && !clock_leq(var_meta.write_clock, ct) &&
            var_meta.writer != t) {
          races_.insert({st.op.var, std::min(var_meta.writer, t),
                         std::max(var_meta.writer, t), false});
        }
        st.op_result = vars_[st.op.var];
        var_meta.read_clocks[t] = ct;
        ct[static_cast<std::size_t>(t)] += 1;
        break;
      }
      case PendingOp::Kind::Write:
      case PendingOp::Kind::FetchAdd: {
        if (var_meta.has_write && !clock_leq(var_meta.write_clock, ct) &&
            var_meta.writer != t) {
          races_.insert({st.op.var, std::min(var_meta.writer, t),
                         std::max(var_meta.writer, t), true});
        }
        for (const auto& [reader, rc] : var_meta.read_clocks) {
          if (reader != t && !clock_leq(rc, ct)) {
            races_.insert({st.op.var, std::min(reader, t),
                           std::max(reader, t), false});
          }
        }
        if (st.op.kind == PendingOp::Kind::FetchAdd) {
          st.op_result = vars_[st.op.var];
          vars_[st.op.var] += st.op.value;
        } else {
          vars_[st.op.var] = st.op.value;
        }
        var_meta.has_write = true;
        var_meta.write_clock = ct;
        var_meta.writer = t;
        var_meta.read_clocks.clear();
        ct[static_cast<std::size_t>(t)] += 1;
        break;
      }
      case PendingOp::Kind::Lock: {
        lock_holder_[st.op.var] = t;
        auto it = lock_release_.find(st.op.var);
        if (it != lock_release_.end()) clock_join(ct, it->second);
        ct[static_cast<std::size_t>(t)] += 1;
        break;
      }
      case PendingOp::Kind::Unlock: {
        lock_holder_.erase(st.op.var);
        Clock& rel = lock_release_.try_emplace(st.op.var, Clock(n_, 0))
                         .first->second;
        clock_join(rel, ct);
        ct[static_cast<std::size_t>(t)] += 1;
        break;
      }
      case PendingOp::Kind::Yield:
        break;
    }
  }

  /// Called from task threads: park at a scheduling point with `op`,
  /// wait for the grant, return the operation result.
  std::int64_t schedule_point(int t, PendingOp op) {
    std::unique_lock lock(mutex_);
    if (aborting_) return 0;
    TaskState& st = states_[static_cast<std::size_t>(t)];
    st.op = std::move(op);
    st.at_point = true;
    cv_.notify_all();
    cv_.wait(lock, [&] { return st.granted; });
    st.granted = false;
    return st.op_result;
  }

  void record_assertion(bool ok, const std::string& message) {
    if (ok) return;
    std::scoped_lock lock(assert_mutex_);
    assertion_failures_.insert(message);
  }

  struct VarMeta {
    bool has_write = false;
    Clock write_clock;
    int writer = -1;
    std::map<int, Clock> read_clocks;
  };

  const std::vector<TaskFn>& tasks_;
  ExploreOptions options_;
  std::size_t n_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<TaskState> states_;
  bool aborting_ = false;

  std::map<std::string, std::int64_t> vars_;
  std::map<std::string, int> lock_holder_;
  std::map<std::string, Clock> lock_release_;
  std::vector<Clock> clocks_;
  std::map<std::string, VarMeta> access_meta_;
  std::set<RaceReport> races_;

  std::mutex assert_mutex_;
  std::set<std::string> assertion_failures_;

  friend std::int64_t context_dispatch(Runner*, int, PendingOp);
  friend void context_assert(Runner*, bool, const std::string&);
};

std::int64_t context_dispatch(Runner* runner, int task, PendingOp op);
void context_assert(Runner* runner, bool ok, const std::string& message);

// --- TaskContext -------------------------------------------------------------

std::int64_t TaskContext::read(const std::string& var) {
  PendingOp op;
  op.kind = PendingOp::Kind::Read;
  op.var = var;
  return context_dispatch(runner_, task_id_, std::move(op));
}

void TaskContext::write(const std::string& var, std::int64_t value) {
  PendingOp op;
  op.kind = PendingOp::Kind::Write;
  op.var = var;
  op.value = value;
  context_dispatch(runner_, task_id_, std::move(op));
}

std::int64_t TaskContext::fetch_add(const std::string& var,
                                    std::int64_t delta) {
  PendingOp op;
  op.kind = PendingOp::Kind::FetchAdd;
  op.var = var;
  op.value = delta;
  return context_dispatch(runner_, task_id_, std::move(op));
}

void TaskContext::lock(const std::string& mutex) {
  PendingOp op;
  op.kind = PendingOp::Kind::Lock;
  op.var = mutex;
  context_dispatch(runner_, task_id_, std::move(op));
}

void TaskContext::unlock(const std::string& mutex) {
  PendingOp op;
  op.kind = PendingOp::Kind::Unlock;
  op.var = mutex;
  context_dispatch(runner_, task_id_, std::move(op));
}

void TaskContext::yield() {
  PendingOp op;
  op.kind = PendingOp::Kind::Yield;
  context_dispatch(runner_, task_id_, std::move(op));
}

void TaskContext::check(bool condition, const std::string& message) {
  context_assert(runner_, condition, message);
}

std::int64_t context_dispatch(Runner* runner, int task, PendingOp op) {
  return runner->schedule_point(task, std::move(op));
}

void context_assert(Runner* runner, bool ok, const std::string& message) {
  runner->record_assertion(ok, message);
}

// --- DFS driver ----------------------------------------------------------------

ExploreResult explore(const std::vector<TaskFn>& tasks,
                      ExploreOptions options) {
  ExploreResult result;
  if (tasks.empty()) {
    result.exhausted = true;
    return result;
  }
  const bool telemetry = observe::enabled();
  observe::Span span("race.explore", "race");

  // DFS over scheduling decisions: each frame remembers the untried
  // alternatives at that step of the last execution.
  struct Frame {
    int chosen;
    std::vector<int> untried;
  };
  std::vector<Frame> stack;
  std::set<std::map<std::string, std::int64_t>> final_states;
  std::set<RaceReport> all_races;
  std::set<std::string> all_failures;

  bool first = true;
  while (result.schedules_explored < options.max_schedules) {
    std::vector<int> prefix;
    prefix.reserve(stack.size());
    for (const Frame& f : stack) prefix.push_back(f.chosen);

    Runner runner(tasks, options);
    Runner::RunResult run = runner.run(prefix);
    ++result.schedules_explored;
    if (run.deadlocked) ++result.deadlock_schedules;
    for (const RaceReport& r : run.races) all_races.insert(r);
    for (const std::string& f : run.assertion_failures) all_failures.insert(f);
    final_states.insert(run.final_state);
    if (first) {
      result.reference_final_state = run.final_state;
      first = false;
    }

    // Extend the stack with the new decisions this run made beyond the
    // replayed prefix.
    for (std::size_t i = stack.size(); i < run.steps.size(); ++i) {
      stack.push_back({run.steps[i].chosen, run.steps[i].alternatives});
    }
    // Backtrack to the deepest frame with an untried alternative.
    while (!stack.empty() && stack.back().untried.empty()) stack.pop_back();
    if (stack.empty()) {
      result.exhausted = true;
      break;
    }
    Frame& frame = stack.back();
    frame.chosen = frame.untried.back();
    frame.untried.pop_back();
  }

  result.races.assign(all_races.begin(), all_races.end());
  result.assertion_failures.assign(all_failures.begin(), all_failures.end());
  result.distinct_final_states = final_states.size();
  if (telemetry) {
    auto& reg = observe::Registry::global();
    reg.counter("race.schedules_explored").add(result.schedules_explored);
    reg.counter("race.deadlock_schedules").add(result.deadlock_schedules);
    span.set_detail("tasks=" + std::to_string(tasks.size()) +
                    " schedules=" + std::to_string(result.schedules_explored) +
                    " races=" + std::to_string(result.races.size()) +
                    " deadlocks=" +
                    std::to_string(result.deadlock_schedules));
  }
  return result;
}

}  // namespace patty::race
