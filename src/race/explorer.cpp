#include "race/explorer.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <set>
#include <thread>

#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "support/diagnostics.hpp"

namespace patty::race {

namespace {

using Clock = std::vector<std::uint64_t>;

bool clock_leq(const Clock& a, const Clock& b) {
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i] > b[i]) return false;
  return true;
}

void clock_join(Clock& a, const Clock& b) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = std::max(a[i], b[i]);
}

bool order_has_acquire(MemoryOrder o) {
  return o == MemoryOrder::Acquire || o == MemoryOrder::AcqRel ||
         o == MemoryOrder::SeqCst;
}

bool order_has_release(MemoryOrder o) {
  return o == MemoryOrder::Release || o == MemoryOrder::AcqRel ||
         o == MemoryOrder::SeqCst;
}

struct PendingOp {
  enum class Kind : std::uint8_t {
    Read,
    Write,
    AtomicLoad,
    AtomicStore,
    AtomicRmw,
    AtomicCas,
    Lock,
    Unlock,
    WaitSignal,  // middle op of cond_wait: blocked until notify
    NotifyOne,
    NotifyAll,
    Park,
    Unpark,
    Yield,
  };
  Kind kind = Kind::Yield;
  std::string var;
  std::int64_t value = 0;     // store value / rmw delta / cas desired
  std::int64_t expected = 0;  // cas only
  MemoryOrder order = MemoryOrder::SeqCst;
  MemoryOrder order_fail = MemoryOrder::SeqCst;  // cas failure path
};

/// Thrown into task threads when a run is aborted (deadlock or step
/// overflow): unwinds through the user task so blocked and spinning tasks
/// alike exit cleanly instead of wedging join().
struct AbortRun {};

constexpr std::size_t kMaxStepsPerRun = 100'000;
constexpr std::size_t kMaxFailingSchedules = 64;

}  // namespace

// --- Schedule ----------------------------------------------------------------

std::string Schedule::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (i) out.push_back(',');
    out += std::to_string(choices[i]);
  }
  return out;
}

std::optional<Schedule> Schedule::from_string(const std::string& text) {
  Schedule s;
  std::size_t i = 0;
  while (i < text.size() && (text[i] == ' ' || text[i] == '\n')) ++i;
  while (i < text.size()) {
    if (text[i] < '0' || text[i] > '9') return std::nullopt;
    int v = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      v = v * 10 + (text[i] - '0');
      ++i;
    }
    s.choices.push_back(v);
    while (i < text.size() && (text[i] == ' ' || text[i] == '\n')) ++i;
    if (i < text.size()) {
      if (text[i] != ',') return std::nullopt;
      ++i;
      while (i < text.size() && (text[i] == ' ' || text[i] == '\n')) ++i;
      if (i == text.size()) return std::nullopt;  // trailing comma
    }
  }
  return s;
}

// --- Runner ------------------------------------------------------------------

/// One lockstep execution of the test under a (partially) fixed schedule.
class Runner {
 public:
  Runner(const std::vector<TaskFn>& tasks, const ExploreOptions& options)
      : tasks_(tasks), options_(options), n_(tasks.size()) {
    states_.resize(n_);
    clocks_.assign(n_, Clock(n_, 0));
    for (std::size_t t = 0; t < n_; ++t) clocks_[t][t] = 1;
    vars_ = options.initial_state;
  }

  struct StepRecord {
    int chosen = -1;
    std::vector<int> alternatives;  // other admissible tasks at this point
  };

  struct RunResult {
    std::vector<StepRecord> steps;
    bool deadlocked = false;
    std::string deadlock_report;
    std::set<RaceReport> races;
    std::set<std::string> assertion_failures;
    std::map<std::string, std::int64_t> final_state;
  };

  /// Execute, following `prefix` task choices, then first-admissible.
  /// `exact_prefix` (replay mode) honors a prefix choice whenever that task
  /// is enabled, bypassing the preemption bound.
  RunResult run(const std::vector<int>& prefix, bool exact_prefix = false) {
    RunResult result;
    // Launch task threads; each blocks at its first scheduling point.
    std::vector<std::thread> threads;
    threads.reserve(n_);
    for (std::size_t t = 0; t < n_; ++t) {
      threads.emplace_back([this, t] {
        TaskContext ctx(static_cast<int>(t), this);
        try {
          tasks_[t](ctx);
        } catch (const AbortRun&) {
        }
        std::scoped_lock lock(mutex_);
        states_[t].finished = true;
        cv_.notify_all();
      });
    }

    int previous = -1;
    int preemptions = 0;
    std::size_t step = 0;
    while (true) {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [&] {
        for (std::size_t t = 0; t < n_; ++t)
          if (!states_[t].finished && !states_[t].at_point) return false;
        return true;
      });

      std::vector<int> enabled;
      bool any_unfinished = false;
      for (std::size_t t = 0; t < n_; ++t) {
        if (states_[t].finished) continue;
        any_unfinished = true;
        if (is_enabled(static_cast<int>(t)))
          enabled.push_back(static_cast<int>(t));
      }
      if (!any_unfinished) break;  // all done
      if (enabled.empty()) {
        // Every unfinished task is blocked: report the cycle and abort the
        // run so the DFS can continue with the next schedule.
        result.deadlocked = true;
        result.deadlock_report = describe_blocked_tasks();
        abort_run();
        break;
      }
      if (step >= kMaxStepsPerRun) {
        // Livelock airbag (e.g. an unfair spin loop): abandon this run.
        abort_run();
        break;
      }

      // Admissible choices under the preemption bound.
      std::vector<int> admissible;
      const bool prev_enabled =
          previous >= 0 &&
          std::find(enabled.begin(), enabled.end(), previous) != enabled.end();
      for (int t : enabled) {
        if (prev_enabled && t != previous &&
            preemptions >= options_.preemption_bound)
          continue;
        admissible.push_back(t);
      }

      int chosen;
      if (step < prefix.size()) {
        chosen = prefix[step];
        const bool runnable =
            exact_prefix
                ? std::find(enabled.begin(), enabled.end(), chosen) !=
                      enabled.end()
                : std::find(admissible.begin(), admissible.end(), chosen) !=
                      admissible.end();
        // A stale prefix entry (possible only on scheduler bugs, or a
        // hand-edited replay schedule) falls back to the first choice.
        if (!runnable) chosen = admissible.front();
      } else {
        chosen = admissible.front();
      }
      StepRecord record;
      record.chosen = chosen;
      for (int t : admissible)
        if (t != chosen) record.alternatives.push_back(t);
      result.steps.push_back(std::move(record));

      if (prev_enabled && chosen != previous) ++preemptions;
      previous = chosen;
      ++step;

      // Grant exactly this task one operation.
      perform_effect(chosen);
      states_[static_cast<std::size_t>(chosen)].at_point = false;
      states_[static_cast<std::size_t>(chosen)].granted = true;
      cv_.notify_all();
    }

    for (std::thread& th : threads) th.join();
    result.races = races_;
    result.assertion_failures = assertion_failures_;
    result.final_state = vars_;
    return result;
  }

 private:
  friend class TaskContext;

  struct TaskState {
    bool at_point = false;
    bool granted = false;
    bool finished = false;
    bool signal_seen = false;  // WaitSignal: a notify targeted this task
    bool unparked = false;     // Park: an unpark targeted this task
    Clock wake_clock;          // clock of the notifier/unparker
    PendingOp op;
    std::int64_t op_result = 0;
  };

  bool is_enabled(int t) const {
    const TaskState& st = states_[static_cast<std::size_t>(t)];
    if (!st.at_point) return false;
    switch (st.op.kind) {
      case PendingOp::Kind::Lock: {
        auto it = lock_holder_.find(st.op.var);
        return it == lock_holder_.end() || it->second == t;
      }
      case PendingOp::Kind::WaitSignal:
        return st.signal_seen;
      case PendingOp::Kind::Park: {
        if (st.unparked) return true;
        auto it = permits_.find(st.op.var);
        return it != permits_.end() && it->second > 0;
      }
      default:
        return true;
    }
  }

  /// Human-readable description of why every unfinished task is blocked
  /// (the deadlock / lost-wakeup cycle), ordered by task id.
  std::string describe_blocked_tasks() const {
    std::string out;
    for (std::size_t t = 0; t < n_; ++t) {
      const TaskState& st = states_[t];
      if (st.finished || !st.at_point) continue;
      if (!out.empty()) out += "; ";
      out += "task " + std::to_string(t);
      switch (st.op.kind) {
        case PendingOp::Kind::Lock: {
          out += " blocked on mutex '" + st.op.var + "'";
          auto it = lock_holder_.find(st.op.var);
          if (it != lock_holder_.end())
            out += " held by task " + std::to_string(it->second);
          break;
        }
        case PendingOp::Kind::WaitSignal:
          out += " waiting on cond '" + st.op.var + "'";
          break;
        case PendingOp::Kind::Park:
          out += " parked on '" + st.op.var + "'";
          break;
        default:
          out += " blocked";
          break;
      }
    }
    return out;
  }

  /// Wake every task thread with an abort: blocked tasks, tasks mid-compute
  /// and unfair spin loops all throw AbortRun at their next scheduling
  /// point and unwind out of the user code.
  void abort_run() {
    aborting_ = true;
    for (std::size_t t = 0; t < n_; ++t) states_[t].granted = true;
    cv_.notify_all();
  }

  struct VarMeta {
    bool has_write = false;
    bool write_atomic = false;
    Clock write_clock;
    int writer = -1;
    std::map<int, Clock> read_clocks;         // plain reads since last write
    std::map<int, Clock> atomic_read_clocks;  // atomic loads since last write
    // Release sequence: set by a release store, extended by RMWs (any
    // order), broken by a plain or relaxed store. An acquire load that
    // reads the current value synchronizes with it.
    bool has_release = false;
    Clock release_clock;
  };

  void report_race(const std::string& var, int a, int b, bool ww) {
    races_.insert({var, std::min(a, b), std::max(a, b), ww});
  }

  /// Execute the chosen task's pending operation (scheduler thread, under
  /// mutex_): shared-state effect plus vector-clock race detection.
  void perform_effect(int t) {
    TaskState& st = states_[static_cast<std::size_t>(t)];
    Clock& ct = clocks_[static_cast<std::size_t>(t)];
    switch (st.op.kind) {
      case PendingOp::Kind::Read: {
        VarMeta& m = access_meta_[st.op.var];
        if (m.has_write && m.writer != t && !clock_leq(m.write_clock, ct))
          report_race(st.op.var, m.writer, t, false);
        st.op_result = vars_[st.op.var];
        m.read_clocks[t] = ct;
        ct[static_cast<std::size_t>(t)] += 1;
        break;
      }
      case PendingOp::Kind::Write: {
        VarMeta& m = access_meta_[st.op.var];
        // A plain write races with any unordered previous access, atomic or
        // not (mixed atomic/plain access is UB in the modeled C++).
        if (m.has_write && m.writer != t && !clock_leq(m.write_clock, ct))
          report_race(st.op.var, m.writer, t, true);
        for (const auto& [reader, rc] : m.read_clocks)
          if (reader != t && !clock_leq(rc, ct))
            report_race(st.op.var, reader, t, false);
        for (const auto& [reader, rc] : m.atomic_read_clocks)
          if (reader != t && !clock_leq(rc, ct))
            report_race(st.op.var, reader, t, false);
        vars_[st.op.var] = st.op.value;
        m.has_write = true;
        m.write_atomic = false;
        m.write_clock = ct;
        m.writer = t;
        m.read_clocks.clear();
        m.atomic_read_clocks.clear();
        m.has_release = false;  // a plain write breaks any release sequence
        ct[static_cast<std::size_t>(t)] += 1;
        break;
      }
      case PendingOp::Kind::AtomicLoad: {
        VarMeta& m = access_meta_[st.op.var];
        // Races only with unordered *plain* writes (mixed access).
        if (m.has_write && !m.write_atomic && m.writer != t &&
            !clock_leq(m.write_clock, ct))
          report_race(st.op.var, m.writer, t, false);
        st.op_result = vars_[st.op.var];
        if (order_has_acquire(st.op.order) && m.has_release)
          clock_join(ct, m.release_clock);
        m.atomic_read_clocks[t] = ct;
        ct[static_cast<std::size_t>(t)] += 1;
        break;
      }
      case PendingOp::Kind::AtomicStore: {
        VarMeta& m = access_meta_[st.op.var];
        atomic_write_races(st.op.var, t, ct, m);
        vars_[st.op.var] = st.op.value;
        atomic_write_meta(t, ct, m);
        if (order_has_release(st.op.order)) {
          // A release store heads a fresh release sequence.
          m.release_clock = ct;
          m.has_release = true;
        } else {
          m.has_release = false;  // relaxed store breaks the old sequence
        }
        ct[static_cast<std::size_t>(t)] += 1;
        break;
      }
      case PendingOp::Kind::AtomicRmw: {
        VarMeta& m = access_meta_[st.op.var];
        atomic_write_races(st.op.var, t, ct, m);
        st.op_result = vars_[st.op.var];
        vars_[st.op.var] += st.op.value;
        apply_rmw_ordering(ct, m, st.op.order);
        atomic_write_meta(t, ct, m);
        ct[static_cast<std::size_t>(t)] += 1;
        break;
      }
      case PendingOp::Kind::AtomicCas: {
        VarMeta& m = access_meta_[st.op.var];
        atomic_write_races(st.op.var, t, ct, m);
        const std::int64_t observed = vars_[st.op.var];
        st.op_result = observed;
        if (observed == st.op.expected) {
          vars_[st.op.var] = st.op.value;
          apply_rmw_ordering(ct, m, st.op.order);
          atomic_write_meta(t, ct, m);
        } else {
          // Failure path: a pure load with the failure ordering.
          if (order_has_acquire(st.op.order_fail) && m.has_release)
            clock_join(ct, m.release_clock);
          m.atomic_read_clocks[t] = ct;
        }
        ct[static_cast<std::size_t>(t)] += 1;
        break;
      }
      case PendingOp::Kind::Lock: {
        lock_holder_[st.op.var] = t;
        auto it = lock_release_.find(st.op.var);
        if (it != lock_release_.end()) clock_join(ct, it->second);
        ct[static_cast<std::size_t>(t)] += 1;
        break;
      }
      case PendingOp::Kind::Unlock: {
        lock_holder_.erase(st.op.var);
        Clock& rel =
            lock_release_.try_emplace(st.op.var, Clock(n_, 0)).first->second;
        clock_join(rel, ct);
        ct[static_cast<std::size_t>(t)] += 1;
        break;
      }
      case PendingOp::Kind::WaitSignal: {
        // Granted only after a notify: consume the signal and synchronize
        // with the notifier. (The mutex re-acquire is a separate Lock op.)
        clock_join(ct, st.wake_clock);
        st.signal_seen = false;
        st.wake_clock.clear();
        auto& waiters = cond_waiters_[st.op.var];
        waiters.erase(std::remove(waiters.begin(), waiters.end(), t),
                      waiters.end());
        ct[static_cast<std::size_t>(t)] += 1;
        break;
      }
      case PendingOp::Kind::NotifyOne:
      case PendingOp::Kind::NotifyAll: {
        auto& waiters = cond_waiters_[st.op.var];
        for (int w : waiters) {  // FIFO: longest-waiting first
          TaskState& ws = states_[static_cast<std::size_t>(w)];
          if (ws.signal_seen) continue;
          ws.signal_seen = true;
          if (ws.wake_clock.empty()) ws.wake_clock.assign(n_, 0);
          clock_join(ws.wake_clock, ct);
          if (st.op.kind == PendingOp::Kind::NotifyOne) break;
        }
        ct[static_cast<std::size_t>(t)] += 1;
        break;
      }
      case PendingOp::Kind::Park: {
        if (st.unparked) {
          clock_join(ct, st.wake_clock);
          st.unparked = false;
          st.wake_clock.clear();
        } else {
          // Enabled via a banked permit.
          permits_[st.op.var] = 0;
          auto it = permit_clock_.find(st.op.var);
          if (it != permit_clock_.end()) {
            clock_join(ct, it->second);
            permit_clock_.erase(it);
          }
        }
        ct[static_cast<std::size_t>(t)] += 1;
        break;
      }
      case PendingOp::Kind::Unpark: {
        int target = -1;
        for (std::size_t w = 0; w < n_; ++w) {
          const TaskState& ws = states_[w];
          if (!ws.finished && ws.at_point &&
              ws.op.kind == PendingOp::Kind::Park && ws.op.var == st.op.var &&
              !ws.unparked) {
            target = static_cast<int>(w);
            break;
          }
        }
        if (target >= 0) {
          TaskState& ws = states_[static_cast<std::size_t>(target)];
          ws.unparked = true;
          if (ws.wake_clock.empty()) ws.wake_clock.assign(n_, 0);
          clock_join(ws.wake_clock, ct);
        } else {
          // Nobody parked: bank a single permit (binary semantics).
          permits_[st.op.var] = 1;
          Clock& pc =
              permit_clock_.try_emplace(st.op.var, Clock(n_, 0)).first->second;
          clock_join(pc, ct);
        }
        ct[static_cast<std::size_t>(t)] += 1;
        break;
      }
      case PendingOp::Kind::Yield:
        break;
    }
  }

  /// Race checks shared by the atomic write-side ops: an atomic write races
  /// with unordered plain writes and plain reads, never with atomics.
  void atomic_write_races(const std::string& var, int t, const Clock& ct,
                          VarMeta& m) {
    if (m.has_write && !m.write_atomic && m.writer != t &&
        !clock_leq(m.write_clock, ct))
      report_race(var, m.writer, t, true);
    for (const auto& [reader, rc] : m.read_clocks)
      if (reader != t && !clock_leq(rc, ct))
        report_race(var, reader, t, false);
  }

  void atomic_write_meta(int t, const Clock& ct, VarMeta& m) {
    m.has_write = true;
    m.write_atomic = true;
    m.write_clock = ct;
    m.writer = t;
    m.read_clocks.clear();
  }

  /// Acquire/release contributions of a successful RMW: the read side may
  /// synchronize with the existing release sequence; the write side joins
  /// into it (an RMW extends the sequence rather than replacing it, and a
  /// relaxed RMW keeps it alive).
  void apply_rmw_ordering(Clock& ct, VarMeta& m, MemoryOrder order) {
    if (order_has_acquire(order) && m.has_release)
      clock_join(ct, m.release_clock);
    if (order_has_release(order)) {
      if (!m.has_release) {
        m.release_clock.assign(n_, 0);
        m.has_release = true;
      }
      clock_join(m.release_clock, ct);
    }
  }

  /// Called from task threads: park at a scheduling point with `op`,
  /// wait for the grant, return the operation result.
  std::int64_t schedule_point(int t, PendingOp op) {
    std::unique_lock lock(mutex_);
    if (aborting_) throw AbortRun{};
    TaskState& st = states_[static_cast<std::size_t>(t)];
    if (op.kind == PendingOp::Kind::WaitSignal)
      cond_waiters_[op.var].push_back(t);
    st.op = std::move(op);
    st.at_point = true;
    cv_.notify_all();
    cv_.wait(lock, [&] { return st.granted; });
    st.granted = false;
    if (aborting_) throw AbortRun{};
    return st.op_result;
  }

  void record_assertion(bool ok, const std::string& message) {
    if (ok) return;
    std::scoped_lock lock(assert_mutex_);
    assertion_failures_.insert(message);
  }

  const std::vector<TaskFn>& tasks_;
  ExploreOptions options_;
  std::size_t n_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<TaskState> states_;
  bool aborting_ = false;

  std::map<std::string, std::int64_t> vars_;
  std::map<std::string, int> lock_holder_;
  std::map<std::string, Clock> lock_release_;
  std::map<std::string, std::vector<int>> cond_waiters_;  // arrival order
  std::map<std::string, int> permits_;                    // park tokens
  std::map<std::string, Clock> permit_clock_;
  std::vector<Clock> clocks_;
  std::map<std::string, VarMeta> access_meta_;
  std::set<RaceReport> races_;

  std::mutex assert_mutex_;
  std::set<std::string> assertion_failures_;

  friend std::int64_t context_dispatch(Runner*, int, PendingOp);
  friend void context_assert(Runner*, bool, const std::string&);
};

std::int64_t context_dispatch(Runner* runner, int task, PendingOp op);
void context_assert(Runner* runner, bool ok, const std::string& message);

// --- TaskContext -------------------------------------------------------------

std::int64_t TaskContext::read(const std::string& var) {
  PendingOp op;
  op.kind = PendingOp::Kind::Read;
  op.var = var;
  return context_dispatch(runner_, task_id_, std::move(op));
}

void TaskContext::write(const std::string& var, std::int64_t value) {
  PendingOp op;
  op.kind = PendingOp::Kind::Write;
  op.var = var;
  op.value = value;
  context_dispatch(runner_, task_id_, std::move(op));
}

std::int64_t TaskContext::atomic_load(const std::string& var,
                                      MemoryOrder order) {
  PendingOp op;
  op.kind = PendingOp::Kind::AtomicLoad;
  op.var = var;
  op.order = order;
  return context_dispatch(runner_, task_id_, std::move(op));
}

void TaskContext::atomic_store(const std::string& var, std::int64_t value,
                               MemoryOrder order) {
  PendingOp op;
  op.kind = PendingOp::Kind::AtomicStore;
  op.var = var;
  op.value = value;
  op.order = order;
  context_dispatch(runner_, task_id_, std::move(op));
}

std::int64_t TaskContext::fetch_add(const std::string& var, std::int64_t delta,
                                    MemoryOrder order) {
  PendingOp op;
  op.kind = PendingOp::Kind::AtomicRmw;
  op.var = var;
  op.value = delta;
  op.order = order;
  return context_dispatch(runner_, task_id_, std::move(op));
}

bool TaskContext::compare_exchange(const std::string& var,
                                   std::int64_t& expected,
                                   std::int64_t desired, MemoryOrder success,
                                   MemoryOrder failure) {
  PendingOp op;
  op.kind = PendingOp::Kind::AtomicCas;
  op.var = var;
  op.value = desired;
  op.expected = expected;
  op.order = success;
  op.order_fail = failure;
  const std::int64_t observed =
      context_dispatch(runner_, task_id_, std::move(op));
  if (observed == expected) return true;
  expected = observed;
  return false;
}

void TaskContext::lock(const std::string& mutex) {
  PendingOp op;
  op.kind = PendingOp::Kind::Lock;
  op.var = mutex;
  context_dispatch(runner_, task_id_, std::move(op));
}

void TaskContext::unlock(const std::string& mutex) {
  PendingOp op;
  op.kind = PendingOp::Kind::Unlock;
  op.var = mutex;
  context_dispatch(runner_, task_id_, std::move(op));
}

void TaskContext::cond_wait(const std::string& cond, const std::string& mutex) {
  // Lockstep makes unlock + wait-registration atomic: the scheduler cannot
  // run another task between the granted unlock and this task re-parking at
  // the WaitSignal point, so no notify can fall into that window.
  unlock(mutex);
  PendingOp op;
  op.kind = PendingOp::Kind::WaitSignal;
  op.var = cond;
  context_dispatch(runner_, task_id_, std::move(op));
  lock(mutex);
}

void TaskContext::notify_one(const std::string& cond) {
  PendingOp op;
  op.kind = PendingOp::Kind::NotifyOne;
  op.var = cond;
  context_dispatch(runner_, task_id_, std::move(op));
}

void TaskContext::notify_all(const std::string& cond) {
  PendingOp op;
  op.kind = PendingOp::Kind::NotifyAll;
  op.var = cond;
  context_dispatch(runner_, task_id_, std::move(op));
}

void TaskContext::park(const std::string& token) {
  PendingOp op;
  op.kind = PendingOp::Kind::Park;
  op.var = token;
  context_dispatch(runner_, task_id_, std::move(op));
}

void TaskContext::unpark(const std::string& token) {
  PendingOp op;
  op.kind = PendingOp::Kind::Unpark;
  op.var = token;
  context_dispatch(runner_, task_id_, std::move(op));
}

void TaskContext::yield() {
  PendingOp op;
  op.kind = PendingOp::Kind::Yield;
  context_dispatch(runner_, task_id_, std::move(op));
}

void TaskContext::check(bool condition, const std::string& message) {
  context_assert(runner_, condition, message);
}

std::int64_t context_dispatch(Runner* runner, int task, PendingOp op) {
  return runner->schedule_point(task, std::move(op));
}

void context_assert(Runner* runner, bool ok, const std::string& message) {
  runner->record_assertion(ok, message);
}

// --- DFS driver --------------------------------------------------------------

namespace {

std::string describe_race(const RaceReport& r) {
  return std::string(r.write_write ? "write-write" : "read-write") +
         " race on '" + r.var + "' between task " + std::to_string(r.task_a) +
         " and task " + std::to_string(r.task_b);
}

Schedule schedule_of(const Runner::RunResult& run) {
  Schedule s;
  s.choices.reserve(run.steps.size());
  for (const auto& step : run.steps) s.choices.push_back(step.chosen);
  return s;
}

}  // namespace

ExploreResult explore(const std::vector<TaskFn>& tasks,
                      ExploreOptions options) {
  ExploreResult result;
  if (tasks.empty()) {
    result.exhausted = true;
    return result;
  }
  const bool telemetry = observe::enabled();
  observe::Span span("race.explore", "race");

  // DFS over scheduling decisions: each frame remembers the untried
  // alternatives at that step of the last execution.
  struct Frame {
    int chosen;
    std::vector<int> untried;
  };
  std::vector<Frame> stack;
  std::set<std::map<std::string, std::int64_t>> final_states;
  std::set<RaceReport> all_races;
  std::set<std::string> all_failures;
  std::set<std::string> all_deadlock_reports;

  auto note_failure = [&](ScheduleFailure::Kind kind, std::string detail,
                          const Schedule& schedule) {
    if (result.failing_schedules.size() >= kMaxFailingSchedules) return;
    result.failing_schedules.push_back({kind, std::move(detail), schedule});
  };

  bool first = true;
  bool covered = false;
  while (result.schedules_explored < options.max_schedules) {
    std::vector<int> prefix;
    prefix.reserve(stack.size());
    for (const Frame& f : stack) prefix.push_back(f.chosen);

    Runner runner(tasks, options);
    Runner::RunResult run = runner.run(prefix);
    ++result.schedules_explored;
    const Schedule schedule = schedule_of(run);
    if (run.deadlocked) {
      ++result.deadlock_schedules;
      if (all_deadlock_reports.insert(run.deadlock_report).second)
        note_failure(ScheduleFailure::Kind::Deadlock, run.deadlock_report,
                     schedule);
    }
    for (const RaceReport& r : run.races)
      if (all_races.insert(r).second)
        note_failure(ScheduleFailure::Kind::Race, describe_race(r), schedule);
    for (const std::string& f : run.assertion_failures)
      if (all_failures.insert(f).second)
        note_failure(ScheduleFailure::Kind::Assertion, f, schedule);
    final_states.insert(run.final_state);
    if (first) {
      result.reference_final_state = run.final_state;
      first = false;
    }

    // Extend the stack with the new decisions this run made beyond the
    // replayed prefix.
    for (std::size_t i = stack.size(); i < run.steps.size(); ++i) {
      stack.push_back({run.steps[i].chosen, run.steps[i].alternatives});
    }
    // Backtrack to the deepest frame with an untried alternative.
    while (!stack.empty() && stack.back().untried.empty()) stack.pop_back();
    if (stack.empty()) {
      covered = true;
      break;
    }
    Frame& frame = stack.back();
    frame.chosen = frame.untried.back();
    frame.untried.pop_back();
  }
  // `exhausted` means genuine coverage of the preemption bound, never "the
  // max_schedules cap stopped us with untried alternatives on the stack".
  result.exhausted = covered;

  result.races.assign(all_races.begin(), all_races.end());
  result.assertion_failures.assign(all_failures.begin(), all_failures.end());
  result.deadlock_reports.assign(all_deadlock_reports.begin(),
                                 all_deadlock_reports.end());
  result.distinct_final_states = final_states.size();
  if (telemetry) {
    auto& reg = observe::Registry::global();
    reg.counter("race.schedules_explored").add(result.schedules_explored);
    reg.counter("race.deadlock_schedules").add(result.deadlock_schedules);
    span.set_detail("tasks=" + std::to_string(tasks.size()) +
                    " schedules=" + std::to_string(result.schedules_explored) +
                    " races=" + std::to_string(result.races.size()) +
                    " deadlocks=" +
                    std::to_string(result.deadlock_schedules));
  }
  return result;
}

ReplayResult replay(const std::vector<TaskFn>& tasks, const Schedule& schedule,
                    ExploreOptions options) {
  ReplayResult result;
  if (tasks.empty()) return result;
  Runner runner(tasks, options);
  Runner::RunResult run = runner.run(schedule.choices, /*exact_prefix=*/true);
  result.deadlocked = run.deadlocked;
  result.deadlock_report = run.deadlock_report;
  result.races.assign(run.races.begin(), run.races.end());
  result.assertion_failures.assign(run.assertion_failures.begin(),
                                   run.assertion_failures.end());
  result.final_state = run.final_state;
  result.schedule = schedule_of(run);
  return result;
}

}  // namespace patty::race
