#pragma once
// Patty-as-a-service: the resident analysis daemon.
//
// A Server owns a Unix-domain listener and turns the batch front-end into
// a long-running, multi-tenant analysis service. Robustness is the
// architecture, not a feature bolted on:
//
//  * Per-request fault domains. Every request executes under its own
//    StopSource + StopScope with a deadline on the shared
//    rt::DeadlineScheduler (one timer thread, not one per request). A
//    request that throws — user-source errors, injected failpoints,
//    runtime faults inside a parallel region — is answered with a
//    structured error response; it never takes down the daemon or a
//    sibling request. Parallel regions inside the request inherit its stop
//    token, so a deadline cancels nested work cooperatively.
//
//  * Admission control, shed-not-queue. The pending queue is bounded at
//    `queue_limit` (the high-water mark): a request arriving past the mark
//    is answered `overloaded` immediately instead of queueing without
//    bound, so latency stays bounded and memory cannot grow with offered
//    load. Under sustained pressure (depth at or past `degrade_depth`)
//    in-flight work degrades to the sequential front-end — the
//    fallback_sequential escape hatch — reported in the response's
//    `degraded`/`degrade_reason` fields.
//
//  * Content-hash model cache. Frozen semantic models are cached by source
//    hash (service/model_cache.hpp): resubmitting an unchanged program
//    skips parse + sema + detection entirely and answers with a
//    byte-identical detection fingerprint.
//
//  * Health that cannot lie. `health`/`stats` requests are answered inline
//    on the connection thread — never queued, never shed — and read the
//    same observe registry the runtime and cache publish into
//    (service.* / fault.* counters, queue and cache gauges,
//    observe::memory_summary), one source of truth for daemon, report and
//    tests.
//
// Failpoint sites on the daemon paths (service.accept, service.decode,
// service.cache.insert, service.response.write) let the PATTY_FAULTS
// harness inject throws/delays mid-request; the soak gate in
// tests/service_test.cpp drives ≥1000 mixed requests through armed sites
// and asserts every one is answered.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/model_cache.hpp"
#include "service/protocol.hpp"

namespace patty::service {

struct ServerOptions {
  /// Filesystem path of the Unix-domain socket (bound at start(), unlinked
  /// at stop()). Must fit sockaddr_un (~107 bytes).
  std::string socket_path;
  /// Request-executor threads. Each runs one request at a time; requests
  /// asking for the parallel front-end additionally fan out on the shared
  /// runtime pool.
  int workers = 2;
  /// Admission high-water mark: pending requests past this depth are shed
  /// with an immediate `overloaded` response.
  std::size_t queue_limit = 64;
  /// Depth at which in-flight work degrades to the sequential front-end;
  /// 0 = auto (half the queue limit, at least 1).
  std::size_t degrade_depth = 0;
  /// Semantic-model cache budget (bytes).
  std::size_t cache_bytes = 64u << 20;
  /// Deadline applied when a request does not carry one; 0 = none.
  std::int64_t default_deadline_ms = 0;
  /// Ceiling clamped onto any requested deadline.
  std::int64_t max_deadline_ms = 60'000;
  /// Per-frame byte ceiling for this server.
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Ceiling on any single blocking response write (SO_SNDTIMEO on
  /// accepted sockets): a client that stops reading cannot wedge a worker
  /// — or stop()'s drain — indefinitely; a timed-out write fails the
  /// connection instead. 0 = block without bound.
  long write_timeout_ms = 5'000;
  /// Worker budget inside a parallel-front-end request (0 = resolve via
  /// PATTY_FRONTEND_THREADS / hardware).
  int frontend_threads = 0;
  /// Turn the observe layer on at start() so fault.* counters and
  /// telemetry-gated instrumentation feed the health endpoint.
  bool enable_telemetry = true;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();  // stop()s if still running
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind, listen, spawn the accept loop and worker pool.
  /// Throws std::runtime_error when the socket cannot be set up.
  void start();

  /// Orderly shutdown: stop accepting, drain the pending queue (each
  /// drained request still gets a response), join every thread, unlink the
  /// socket. Idempotent.
  void stop();

  /// Async shutdown signal (used by the `shutdown` request and signal
  /// handlers): wakes wait_for_shutdown(). Does not block.
  void request_shutdown();

  /// Wait until request_shutdown() or `timeout`; true when shutdown was
  /// requested. Zero timeout = wait forever.
  bool wait_for_shutdown(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(0));

  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const ServerOptions& options() const { return options_; }
  [[nodiscard]] ModelCache& cache() { return cache_; }
  /// Current pending-queue depth (tests).
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  struct Conn;
  struct RequestError;

  /// One admitted request waiting for a worker.
  struct Pending {
    Request req;
    std::shared_ptr<Conn> conn;
    std::chrono::steady_clock::time_point enqueued{};
  };

  void accept_loop();
  void connection_loop(const std::shared_ptr<Conn>& conn);
  void worker_loop();
  void handle_frame(const std::shared_ptr<Conn>& conn, std::string payload);
  void respond(Conn& conn, const Response& resp);
  void reap_connections(bool all);

  Response execute(const Request& req, bool degrade);
  json::Value do_parse(const Request& req);
  std::shared_ptr<const ModelEntry> acquire_model(const Request& req,
                                                  bool degrade, bool* cached);
  json::Value do_detect(const Request& req, const ModelEntry& entry);
  json::Value do_certify(const Request& req, const ModelEntry& entry);
  json::Value do_tune(const Request& req, const ModelEntry& entry);
  Response handle_health(const Request& req, bool full_stats);

  ServerOptions options_;
  std::size_t degrade_depth_ = 0;
  ModelCache cache_;
  std::chrono::steady_clock::time_point started_at_{};

  std::atomic<bool> running_{false};
  // Atomic: stop() retires the fd (exchange to -1) while the accept thread
  // is still reading it between accept() calls.
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  bool accepting_ = false;  // false during drain: admission answers
                            // shutting_down instead of queueing
  bool workers_quit_ = false;

  std::mutex conns_mutex_;
  std::vector<std::shared_ptr<Conn>> conns_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace patty::service
