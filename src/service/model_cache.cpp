#include "service/model_cache.hpp"

#include "analysis/semantic_model.hpp"
#include "lang/ast.hpp"
#include "observe/metrics.hpp"
#include "support/failpoint.hpp"

namespace patty::service {

namespace {

/// Cached instrument references (stable for the process lifetime). The
/// cache publishes unconditionally — one relaxed store per mutation — so
/// the daemon's health endpoint works even with telemetry off.
struct CacheMetrics {
  observe::Counter& hits =
      observe::Registry::global().counter("service.cache.hits");
  observe::Counter& misses =
      observe::Registry::global().counter("service.cache.misses");
  observe::Counter& evictions =
      observe::Registry::global().counter("service.cache.evictions");
  observe::Counter& insert_failures =
      observe::Registry::global().counter("service.cache.insert_failures");
  observe::Gauge& bytes =
      observe::Registry::global().gauge("service.cache.bytes");
  observe::Gauge& entries =
      observe::Registry::global().gauge("service.cache.entries");
};

CacheMetrics& metrics() {
  static CacheMetrics* m = new CacheMetrics();  // immortal
  return *m;
}

}  // namespace

std::uint64_t content_hash(std::string_view source) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (unsigned char c : source) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::size_t entry_bytes(const corpus::ProgramArtifacts& artifacts,
                        std::size_t source_bytes) {
  std::size_t bytes = source_bytes + artifacts.fingerprint.size();
  if (artifacts.parsed) bytes += artifacts.parsed->arena.bytes_reserved();
  if (artifacts.model) bytes += artifacts.model->side_bytes_reserved();
  return bytes;
}

ModelCache::ModelCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

std::uint64_t ModelCache::key(std::string_view source, bool optimistic) {
  // One flipped bit separates the two detector modes for the same source.
  return content_hash(source) ^ (optimistic ? 0 : 0x9e3779b97f4a7c15ull);
}

std::shared_ptr<const ModelEntry> ModelCache::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto found = map_.find(key);
  if (found == map_.end()) {
    ++misses_;
    metrics().misses.add();
    return nullptr;
  }
  ++hits_;
  metrics().hits.add();
  lru_.splice(lru_.begin(), lru_, found->second.pos);  // refresh recency
  return found->second.entry;
}

void ModelCache::insert(std::uint64_t key,
                        std::shared_ptr<const ModelEntry> entry) {
  if (!entry) return;
  std::lock_guard<std::mutex> lock(mutex_);
  try {
    PATTY_FAILPOINT("service.cache.insert");
  } catch (const support::failpoint::FailpointError&) {
    // An injected insert fault degrades to "not cached", never to a failed
    // request: the caller already holds the entry it needs.
    ++insert_failures_;
    metrics().insert_failures.add();
    return;
  }
  auto found = map_.find(key);
  if (found != map_.end()) {
    // Replace (same content hash, e.g. re-inserted after a concurrent
    // build): drop the old footprint first.
    bytes_ -= found->second.entry->bytes;
    lru_.erase(found->second.pos);
    map_.erase(found);
  }
  if (entry->bytes > max_bytes_) {
    // Larger than the whole budget: admitting it would break the bound.
    ++evictions_;
    metrics().evictions.add();
    publish_locked();
    return;
  }
  while (bytes_ + entry->bytes > max_bytes_ && !lru_.empty()) {
    const std::uint64_t victim = lru_.back();
    lru_.pop_back();
    auto it = map_.find(victim);
    bytes_ -= it->second.entry->bytes;
    map_.erase(it);  // in-flight holders keep their shared_ptr alive
    ++evictions_;
    metrics().evictions.add();
  }
  bytes_ += entry->bytes;
  lru_.push_front(key);
  map_.emplace(key, Slot{std::move(entry), lru_.begin()});
  publish_locked();
}

CacheStats ModelCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.insert_failures = insert_failures_;
  s.bytes = bytes_;
  s.entries = map_.size();
  s.max_bytes = max_bytes_;
  return s;
}

void ModelCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  lru_.clear();
  bytes_ = 0;
  publish_locked();
}

void ModelCache::publish_locked() {
  metrics().bytes.set(static_cast<std::int64_t>(bytes_));
  metrics().entries.set(static_cast<std::int64_t>(map_.size()));
}

}  // namespace patty::service
