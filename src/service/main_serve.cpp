// patty-serve: the resident analysis daemon.
//
//   patty-serve --socket /tmp/patty.sock [--workers N] [--queue-limit N]
//               [--degrade-depth N] [--cache-mb N] [--deadline-ms N]
//               [--frontend-threads N]
//
// Serves parse/detect/certify/tune requests over a Unix-domain socket
// (wire format: service/protocol.hpp; client: service/client.hpp). Runs
// until SIGINT/SIGTERM or a `shutdown` request, then drains the pending
// queue — every admitted request still gets its response — and exits 0.
// With PATTY_FAULTS set, the failpoint harness arms fault injection on the
// daemon's own paths (see DESIGN.md §14).

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "service/server.hpp"

namespace {

// Self-pipe: the handler's only action is one write(), which is
// async-signal-safe. Taking the server's shutdown mutex here would
// self-deadlock if the signal lands while this thread holds it inside
// wait_for_shutdown(); a watcher thread translates the byte into
// request_shutdown() from normal thread context instead.
int g_signal_pipe[2] = {-1, -1};

void on_signal(int) {
  const unsigned char byte = 1;
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(
      code == 0 ? stdout : stderr,
      "usage: %s --socket PATH [options]\n"
      "  --socket PATH         Unix-domain socket to bind (required)\n"
      "  --workers N           request-executor threads (default 2)\n"
      "  --queue-limit N       admission high-water mark (default 64)\n"
      "  --degrade-depth N     sequential-fallback depth (default: limit/2)\n"
      "  --cache-mb N          semantic-model cache budget (default 64)\n"
      "  --deadline-ms N       default per-request deadline, 0 = none\n"
      "  --write-timeout-ms N  per-write send timeout, 0 = block forever\n"
      "  --frontend-threads N  workers inside a parallel front-end request\n",
      argv0);
  std::exit(code);
}

long parse_long(const char* argv0, const char* flag, const char* text) {
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || v < 0) {
    std::fprintf(stderr, "%s: bad value '%s' for %s\n", argv0, text, flag);
    usage(argv0, 2);
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  patty::service::ServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s needs a value\n", argv[0], arg);
        usage(argv[0], 2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--socket") == 0) {
      options.socket_path = value();
    } else if (std::strcmp(arg, "--workers") == 0) {
      options.workers = static_cast<int>(parse_long(argv[0], arg, value()));
    } else if (std::strcmp(arg, "--queue-limit") == 0) {
      options.queue_limit =
          static_cast<std::size_t>(parse_long(argv[0], arg, value()));
    } else if (std::strcmp(arg, "--degrade-depth") == 0) {
      options.degrade_depth =
          static_cast<std::size_t>(parse_long(argv[0], arg, value()));
    } else if (std::strcmp(arg, "--cache-mb") == 0) {
      options.cache_bytes =
          static_cast<std::size_t>(parse_long(argv[0], arg, value())) << 20;
    } else if (std::strcmp(arg, "--deadline-ms") == 0) {
      options.default_deadline_ms = parse_long(argv[0], arg, value());
    } else if (std::strcmp(arg, "--write-timeout-ms") == 0) {
      options.write_timeout_ms = parse_long(argv[0], arg, value());
    } else if (std::strcmp(arg, "--frontend-threads") == 0) {
      options.frontend_threads =
          static_cast<int>(parse_long(argv[0], arg, value()));
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", argv[0], arg);
      usage(argv[0], 2);
    }
  }
  if (options.socket_path.empty()) {
    std::fprintf(stderr, "%s: --socket is required\n", argv[0]);
    usage(argv[0], 2);
  }

  // PATTY_FAULTS (if set) was parsed by the failpoint harness before main.
  patty::service::Server server(options);
  try {
    server.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "patty-serve: %s\n", e.what());
    return 1;
  }
  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "patty-serve: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  std::thread signal_watcher([&server] {
    unsigned char byte;
    ssize_t n;
    do {
      n = ::read(g_signal_pipe[0], &byte, 1);
    } while (n < 0 && errno == EINTR);
    if (n > 0) server.request_shutdown();
  });
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  std::fprintf(stderr, "patty-serve: listening on %s (%d workers)\n",
               options.socket_path.c_str(), options.workers);
  server.wait_for_shutdown();
  std::fprintf(stderr, "patty-serve: draining\n");
  // Wake the watcher from normal context (request_shutdown is idempotent),
  // join it, and only then tear the pipe down — with signals ignored first,
  // so a late handler can never write into a recycled fd.
  const unsigned char wake = 0;
  (void)!::write(g_signal_pipe[1], &wake, 1);
  signal_watcher.join();
  std::signal(SIGINT, SIG_IGN);
  std::signal(SIGTERM, SIG_IGN);
  ::close(g_signal_pipe[0]);
  ::close(g_signal_pipe[1]);
  server.stop();
  return 0;
}
