#pragma once
// Minimal JSON for the service protocol: a small recursive value type with
// a strict parser and a canonical writer. The daemon decodes untrusted
// bytes with it, so the parser is deliberately paranoid: depth-limited
// (kMaxDepth), rejects trailing garbage, and never recurses on input it
// has not already bounds-checked. Only what the wire format needs is
// supported — objects, arrays, strings (with \uXXXX escapes), 64-bit
// integers, doubles, booleans, null. Object member order is preserved
// (insertion order), which keeps dumped frames stable for tests.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace patty::service::json {

class Value {
 public:
  enum class Kind : std::uint8_t {
    Null,
    Bool,
    Int,
    Double,
    String,
    Array,
    Object,
  };

  /// Parser recursion bound: deeper input is a parse error, not a stack
  /// overflow.
  static constexpr int kMaxDepth = 64;

  using Array = std::vector<Value>;
  using Member = std::pair<std::string, Value>;
  using Object = std::vector<Member>;

  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}  // NOLINT
  Value(int v) : kind_(Kind::Int), int_(v) {}     // NOLINT
  Value(std::int64_t v) : kind_(Kind::Int), int_(v) {}   // NOLINT
  Value(std::uint64_t v)  // NOLINT (covers std::size_t on LP64)
      : kind_(Kind::Int), int_(static_cast<std::int64_t>(v)) {}
  Value(double v) : kind_(Kind::Double), double_(v) {}   // NOLINT
  Value(const char* s) : kind_(Kind::String), string_(s) {}  // NOLINT
  Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}  // NOLINT
  Value(Array a) : kind_(Kind::Array), array_(std::move(a)) {}    // NOLINT
  Value(Object o) : kind_(Kind::Object), object_(std::move(o)) {} // NOLINT

  static Value array() { return Value(Array{}); }
  static Value object() { return Value(Object{}); }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::Int || kind_ == Kind::Double;
  }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::Object; }

  /// Typed reads with defaults: a missing or differently-typed value reads
  /// as `fallback`, so decoding tolerates absent optional fields.
  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return kind_ == Kind::Bool ? bool_ : fallback;
  }
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const {
    if (kind_ == Kind::Int) return int_;
    if (kind_ == Kind::Double) return static_cast<std::int64_t>(double_);
    return fallback;
  }
  [[nodiscard]] double as_double(double fallback = 0.0) const {
    if (kind_ == Kind::Double) return double_;
    if (kind_ == Kind::Int) return static_cast<double>(int_);
    return fallback;
  }
  [[nodiscard]] std::string as_string(std::string fallback = {}) const {
    return kind_ == Kind::String ? string_ : std::move(fallback);
  }

  [[nodiscard]] const Array& items() const { return array_; }
  [[nodiscard]] const Object& members() const { return object_; }

  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;
  /// find() that decays to a Null value, so lookups chain:
  /// `v.at("error").at("code").as_string()`.
  [[nodiscard]] const Value& at(std::string_view key) const;

  /// Object insert-or-replace (makes this an object if it was null).
  void set(std::string key, Value value);
  /// Array append (makes this an array if it was null).
  void push_back(Value value);

  /// Canonical single-line rendering.
  [[nodiscard]] std::string dump() const;

  /// Strict parse of a complete document. On failure returns nullopt and
  /// sets *error (when given) to a one-line reason with a byte offset.
  static std::optional<Value> parse(std::string_view text,
                                    std::string* error = nullptr);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// JSON string escaping of `raw` (quotes included).
std::string quote(std::string_view raw);

}  // namespace patty::service::json
