#pragma once
// Wire protocol for the resident analysis daemon (patty-serve): a stream
// of length-prefixed JSON frames over a Unix-domain socket. Each frame is
// a 4-byte big-endian payload length followed by exactly one JSON document
// (one logical line — the "JSON-lines" body never contains raw newlines,
// dump() escapes them). Requests and responses are matched by `id`;
// responses to one connection come back in completion order, so pipelined
// clients must not assume FIFO.
//
// Request (fields beyond `kind` are optional with the defaults below):
//   {"id":7,"kind":"detect","source":"class Main {...}","deadline_ms":500,
//    "optimistic":true,"parallel":false,"no_cache":false}
// Success:
//   {"id":7,"ok":true,"kind":"detect","cached":true,"degraded":false,
//    "result":{...}}
// Failure (structured, never a dropped connection):
//   {"id":7,"ok":false,"kind":"detect",
//    "error":{"code":"deadline","message":"..."}}

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "service/json.hpp"

namespace patty::service {

/// Frame-size ceiling: a decoder reading an untrusted length prefix must
/// bound its allocation before trusting it.
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;  // 16 MB

/// Write one frame (length prefix + payload). False + *error on IO failure
/// (including a payload over `max_bytes`). Never raises SIGPIPE.
bool write_frame(int fd, std::string_view payload, std::string* error,
                 std::uint32_t max_bytes = kMaxFrameBytes);

/// Read one frame into *payload. 1 = frame read, 0 = clean EOF at a frame
/// boundary, -1 = IO/protocol error (mid-frame EOF, oversized length).
int read_frame(int fd, std::string* payload, std::string* error,
               std::uint32_t max_bytes = kMaxFrameBytes);

enum class RequestKind : std::uint8_t {
  Parse,     // front-end syntax/sema check only
  Detect,    // full front-end: parse -> semantic model -> pattern detection
  Certify,   // detect + MHP certification of the detected regions
  Tune,      // detect + autotune the top candidate's tuning space
  Health,    // liveness + load + cache summary (answered inline, never shed)
  Stats,     // full service./fault./frontend. metric dump (answered inline)
  Shutdown,  // orderly daemon stop (answered before the listener closes)
};

const char* request_kind_name(RequestKind kind);
std::optional<RequestKind> parse_request_kind(std::string_view name);

struct Request {
  std::int64_t id = 0;
  RequestKind kind = RequestKind::Parse;
  std::string source;              // MiniOO program text
  std::int64_t deadline_ms = 0;    // 0 = server default (which may be none)
  bool optimistic = true;          // detector mode
  bool parallel = false;           // parallel front-end inside the request
  bool no_cache = false;           // bypass the semantic-model cache
  bool work_sleeps = false;        // emulated-multicore interpreter mode
  std::int64_t work_sleep_ns = 2'000;
  std::int64_t max_evals = 12;     // tune: measured-evaluation budget

  [[nodiscard]] json::Value to_json() const;
  /// Decode; nullopt + *error on a structurally invalid request (bad kind,
  /// wrong field types, missing source for kinds that need one).
  static std::optional<Request> from_json(const json::Value& v,
                                          std::string* error);
};

enum class ErrorCode : std::uint8_t {
  BadRequest,   // malformed frame/JSON/kind — the request never ran
  ParseError,   // MiniOO front-end rejected the source
  Analysis,     // semantic model / interpreter failure
  Deadline,     // deadline_ms expired before the request finished
  Overloaded,   // shed at admission: queue at its high-water mark
  Internal,     // fault captured inside the request's fault domain
  ShuttingDown, // daemon is draining; request was not run
};

const char* error_code_name(ErrorCode code);
std::optional<ErrorCode> parse_error_code(std::string_view name);

struct Response {
  std::int64_t id = 0;
  bool ok = false;
  std::string kind;  // echo of the request kind ("" when undecodable)
  // Failure:
  ErrorCode error_code = ErrorCode::Internal;
  std::string error_message;
  // Degradation (set on success and failure alike):
  bool degraded = false;
  std::string degrade_reason;
  bool cached = false;  // answered from the semantic-model cache
  // Success payload, kind-specific (see DESIGN.md §14).
  json::Value result;

  [[nodiscard]] json::Value to_json() const;
  static std::optional<Response> from_json(const json::Value& v,
                                           std::string* error);

  static Response failure(std::int64_t id, ErrorCode code,
                          std::string message, std::string kind = {});
};

}  // namespace patty::service
