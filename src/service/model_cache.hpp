#pragma once
// Content-hash semantic-model cache for the analysis daemon.
//
// The frozen-model rule (DESIGN.md §8) makes this sound: a SemanticModel is
// immutable after build — its memoized dependence cache only ever fills in,
// it never invalidates — so a model keyed by the *content hash* of its
// source (plus the detector-mode bit) can be shared by every request that
// resubmits the same program. A hit skips parse + semantic model + detect
// entirely; detection fingerprints are byte-identical to the uncached path
// (tests/service_test.cpp proves it, including across an eviction).
//
// The cache is LRU-bounded by an estimated byte footprint (the program
// arena's reserved bytes dominate and are exact). Entries are handed out
// as shared_ptr<const ...>: an evicted entry stays alive for requests that
// already hold it, eviction only drops the cache's own reference. The
// byte bound is therefore a bound on what the *cache* pins, the honest
// multi-tenant accounting.
//
// Reporting goes through the observe registry — service.cache.hits /
// .misses / .evictions counters, service.cache.bytes / .entries gauges —
// which is the same place the daemon's `health` response and
// observe::memory_summary() read, so all three always agree.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "corpus/corpus.hpp"

namespace patty::service {

/// FNV-1a 64-bit over the source bytes.
std::uint64_t content_hash(std::string_view source);

/// One frozen front-end result. `artifacts.model` references
/// `artifacts.parsed`; both live exactly as long as this entry.
struct ModelEntry {
  corpus::ProgramArtifacts artifacts;
  std::size_t bytes = 0;  // footprint estimate (arena reserved + source)
};

/// Estimated resident footprint of an adopted program (AST/model arena
/// reserved bytes + source text + fingerprint).
std::size_t entry_bytes(const corpus::ProgramArtifacts& artifacts,
                        std::size_t source_bytes);

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t insert_failures = 0;  // failpoint-injected insert faults
  std::size_t bytes = 0;
  std::size_t entries = 0;
  std::size_t max_bytes = 0;
};

class ModelCache {
 public:
  explicit ModelCache(std::size_t max_bytes);

  /// Key for a request: content hash of the source mixed with the
  /// detector-mode bit (optimistic vs static detection differ in output).
  static std::uint64_t key(std::string_view source, bool optimistic);

  /// nullptr on miss. A hit refreshes the entry's LRU position.
  std::shared_ptr<const ModelEntry> lookup(std::uint64_t key);

  /// Insert-or-replace under the byte bound: least-recently-used entries
  /// are evicted until the new entry fits; an entry larger than the whole
  /// bound is not cached at all (counted as an eviction). The
  /// "service.cache.insert" failpoint fires here — an injected fault is
  /// swallowed and counted (insert_failures): caching is an optimization,
  /// its failure must never fail the request.
  void insert(std::uint64_t key, std::shared_ptr<const ModelEntry> entry);

  [[nodiscard]] CacheStats stats() const;
  void clear();

 private:
  void publish_locked();

  mutable std::mutex mutex_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t insert_failures_ = 0;
  std::list<std::uint64_t> lru_;  // front = most recently used
  struct Slot {
    std::shared_ptr<const ModelEntry> entry;
    std::list<std::uint64_t>::iterator pos;
  };
  std::unordered_map<std::uint64_t, Slot> map_;
};

}  // namespace patty::service
