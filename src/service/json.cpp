#include "service/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace patty::service::json {

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const Member& m : object_)
    if (m.first == key) return &m.second;
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  static const Value null_value;
  const Value* v = find(key);
  return v ? *v : null_value;
}

void Value::set(std::string key, Value value) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  for (Member& m : object_) {
    if (m.first == key) {
      m.second = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void Value::push_back(Value value) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  array_.push_back(std::move(value));
}

std::string quote(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out += '"';
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

std::string Value::dump() const {
  switch (kind_) {
    case Kind::Null:
      return "null";
    case Kind::Bool:
      return bool_ ? "true" : "false";
    case Kind::Int:
      return std::to_string(int_);
    case Kind::Double: {
      if (!std::isfinite(double_)) return "null";  // JSON has no inf/nan
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      return buf;
    }
    case Kind::String:
      return quote(string_);
    case Kind::Array: {
      std::string out = "[";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        out += array_[i].dump();
      }
      out += ']';
      return out;
    }
    case Kind::Object: {
      std::string out = "{";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i) out += ',';
        out += quote(object_[i].first);
        out += ':';
        out += object_[i].second.dump();
      }
      out += '}';
      return out;
    }
  }
  return "null";
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& why) {
    if (error.empty())
      error = why + " at byte " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos;
      else
        break;
    }
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) == word) {
      pos += word.size();
      return true;
    }
    return fail("bad literal");
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    while (pos < text.size()) {
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c != '\\') {
        out->push_back(static_cast<char>(c));
        ++pos;
        continue;
      }
      ++pos;
      if (pos >= text.size()) return fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences — the protocol never emits
          // them, and round-tripping unknown input must not crash).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(Value* out) {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos])))
      ++pos;
    bool is_double = false;
    if (pos < text.size() && text[pos] == '.') {
      is_double = true;
      ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      is_double = true;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[pos])))
        ++pos;
    }
    const std::string_view span = text.substr(start, pos - start);
    if (span.empty() || span == "-") return fail("bad number");
    // Strict JSON: no leading zeros ("01" is two tokens, i.e. garbage).
    const std::string_view digits =
        span[0] == '-' ? span.substr(1) : span;
    if (digits.size() > 1 && digits[0] == '0' &&
        std::isdigit(static_cast<unsigned char>(digits[1])))
      return fail("leading zero");
    if (!is_double) {
      std::int64_t v = 0;
      const auto [ptr, ec] =
          std::from_chars(span.data(), span.data() + span.size(), v);
      if (ec == std::errc() && ptr == span.data() + span.size()) {
        *out = Value(v);
        return true;
      }
      // Overflows a 64-bit int: fall through to double.
    }
    double d = 0;
    const auto [ptr, ec] =
        std::from_chars(span.data(), span.data() + span.size(), d);
    if (ec != std::errc() || ptr != span.data() + span.size())
      return fail("bad number");
    *out = Value(d);
    return true;
  }

  bool parse_value(Value* out, int depth) {
    if (depth > Value::kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    switch (c) {
      case '{': {
        ++pos;
        Value::Object members;
        skip_ws();
        if (pos < text.size() && text[pos] == '}') {
          ++pos;
          *out = Value(std::move(members));
          return true;
        }
        for (;;) {
          skip_ws();
          std::string key;
          if (!parse_string(&key)) return false;
          skip_ws();
          if (!consume(':')) return false;
          Value v;
          if (!parse_value(&v, depth + 1)) return false;
          members.emplace_back(std::move(key), std::move(v));
          skip_ws();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          if (!consume('}')) return false;
          *out = Value(std::move(members));
          return true;
        }
      }
      case '[': {
        ++pos;
        Value::Array items;
        skip_ws();
        if (pos < text.size() && text[pos] == ']') {
          ++pos;
          *out = Value(std::move(items));
          return true;
        }
        for (;;) {
          Value v;
          if (!parse_value(&v, depth + 1)) return false;
          items.push_back(std::move(v));
          skip_ws();
          if (pos < text.size() && text[pos] == ',') {
            ++pos;
            continue;
          }
          if (!consume(']')) return false;
          *out = Value(std::move(items));
          return true;
        }
      }
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = Value(std::move(s));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        *out = Value(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        *out = Value(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        *out = Value(nullptr);
        return true;
      default:
        return parse_number(out);
    }
  }
};

}  // namespace

std::optional<Value> Value::parse(std::string_view text, std::string* error) {
  Parser p{text, 0, {}};
  Value v;
  if (!p.parse_value(&v, 0)) {
    if (error) *error = p.error;
    return std::nullopt;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (error)
      *error = "trailing garbage at byte " + std::to_string(p.pos);
    return std::nullopt;
  }
  return v;
}

}  // namespace patty::service::json
