#include "service/protocol.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace patty::service {

namespace {

/// send() with MSG_NOSIGNAL so a peer that hung up yields EPIPE, not a
/// process-killing SIGPIPE; falls back to write() for plain fds (pipes in
/// tests). Retries on EINTR, loops on partial transfers.
bool write_all(int fd, const void* data, std::size_t len, std::string* error) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error) {
        // EAGAIN on a blocking socket means SO_SNDTIMEO expired: the peer
        // stopped reading and the send buffer stayed full.
        *error = (errno == EAGAIN || errno == EWOULDBLOCK)
                     ? std::string("write: timed out (peer not reading)")
                     : std::string("write: ") + std::strerror(errno);
      }
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Read exactly `len` bytes. 1 = done, 0 = EOF before the first byte,
/// -1 = error or EOF mid-read.
int read_all(int fd, void* data, std::size_t len, std::string* error) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error) *error = std::string("read: ") + std::strerror(errno);
      return -1;
    }
    if (n == 0) {
      if (got == 0) return 0;
      if (error) *error = "connection closed mid-frame";
      return -1;
    }
    got += static_cast<std::size_t>(n);
  }
  return 1;
}

}  // namespace

bool write_frame(int fd, std::string_view payload, std::string* error,
                 std::uint32_t max_bytes) {
  if (payload.size() > max_bytes) {
    if (error)
      *error = "frame of " + std::to_string(payload.size()) +
               " bytes exceeds the " + std::to_string(max_bytes) +
               "-byte limit";
    return false;
  }
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  unsigned char prefix[4] = {
      static_cast<unsigned char>(len >> 24),
      static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 8),
      static_cast<unsigned char>(len),
  };
  if (!write_all(fd, prefix, sizeof(prefix), error)) return false;
  return write_all(fd, payload.data(), payload.size(), error);
}

int read_frame(int fd, std::string* payload, std::string* error,
               std::uint32_t max_bytes) {
  unsigned char prefix[4];
  const int got = read_all(fd, prefix, sizeof(prefix), error);
  if (got <= 0) return got;
  const std::uint32_t len = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                            (static_cast<std::uint32_t>(prefix[1]) << 16) |
                            (static_cast<std::uint32_t>(prefix[2]) << 8) |
                            static_cast<std::uint32_t>(prefix[3]);
  if (len > max_bytes) {
    // Do not trust the length before bounding it: an adversarial prefix
    // must not turn into a 4 GB allocation.
    if (error)
      *error = "frame length " + std::to_string(len) + " exceeds the " +
               std::to_string(max_bytes) + "-byte limit";
    return -1;
  }
  payload->resize(len);
  if (len == 0) return 1;
  return read_all(fd, payload->data(), len, error) == 1 ? 1 : -1;
}

const char* request_kind_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::Parse: return "parse";
    case RequestKind::Detect: return "detect";
    case RequestKind::Certify: return "certify";
    case RequestKind::Tune: return "tune";
    case RequestKind::Health: return "health";
    case RequestKind::Stats: return "stats";
    case RequestKind::Shutdown: return "shutdown";
  }
  return "?";
}

std::optional<RequestKind> parse_request_kind(std::string_view name) {
  if (name == "parse") return RequestKind::Parse;
  if (name == "detect") return RequestKind::Detect;
  if (name == "certify") return RequestKind::Certify;
  if (name == "tune") return RequestKind::Tune;
  if (name == "health") return RequestKind::Health;
  if (name == "stats") return RequestKind::Stats;
  if (name == "shutdown") return RequestKind::Shutdown;
  return std::nullopt;
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::BadRequest: return "bad_request";
    case ErrorCode::ParseError: return "parse_error";
    case ErrorCode::Analysis: return "analysis_error";
    case ErrorCode::Deadline: return "deadline";
    case ErrorCode::Overloaded: return "overloaded";
    case ErrorCode::Internal: return "internal";
    case ErrorCode::ShuttingDown: return "shutting_down";
  }
  return "?";
}

std::optional<ErrorCode> parse_error_code(std::string_view name) {
  if (name == "bad_request") return ErrorCode::BadRequest;
  if (name == "parse_error") return ErrorCode::ParseError;
  if (name == "analysis_error") return ErrorCode::Analysis;
  if (name == "deadline") return ErrorCode::Deadline;
  if (name == "overloaded") return ErrorCode::Overloaded;
  if (name == "internal") return ErrorCode::Internal;
  if (name == "shutting_down") return ErrorCode::ShuttingDown;
  return std::nullopt;
}

json::Value Request::to_json() const {
  json::Value v = json::Value::object();
  v.set("id", id);
  v.set("kind", request_kind_name(kind));
  if (!source.empty()) v.set("source", source);
  if (deadline_ms != 0) v.set("deadline_ms", deadline_ms);
  if (!optimistic) v.set("optimistic", false);
  if (parallel) v.set("parallel", true);
  if (no_cache) v.set("no_cache", true);
  if (work_sleeps) {
    v.set("work_sleeps", true);
    v.set("work_sleep_ns", work_sleep_ns);
  }
  if (kind == RequestKind::Tune) v.set("max_evals", max_evals);
  return v;
}

std::optional<Request> Request::from_json(const json::Value& v,
                                          std::string* error) {
  if (!v.is_object()) {
    if (error) *error = "request must be a JSON object";
    return std::nullopt;
  }
  Request req;
  const json::Value& kind = v.at("kind");
  if (!kind.is_string()) {
    if (error) *error = "missing request kind";
    return std::nullopt;
  }
  const auto parsed = parse_request_kind(kind.as_string());
  if (!parsed) {
    if (error) *error = "unknown request kind '" + kind.as_string() + "'";
    return std::nullopt;
  }
  req.kind = *parsed;
  req.id = v.at("id").as_int();
  req.source = v.at("source").as_string();
  req.deadline_ms = v.at("deadline_ms").as_int();
  req.optimistic = v.at("optimistic").as_bool(true);
  req.parallel = v.at("parallel").as_bool(false);
  req.no_cache = v.at("no_cache").as_bool(false);
  req.work_sleeps = v.at("work_sleeps").as_bool(false);
  req.work_sleep_ns = v.at("work_sleep_ns").as_int(2'000);
  req.max_evals = v.at("max_evals").as_int(12);
  if (req.deadline_ms < 0 || req.work_sleep_ns < 0 || req.max_evals < 1) {
    if (error) *error = "negative budget field";
    return std::nullopt;
  }
  const bool needs_source = req.kind == RequestKind::Parse ||
                            req.kind == RequestKind::Detect ||
                            req.kind == RequestKind::Certify ||
                            req.kind == RequestKind::Tune;
  if (needs_source && req.source.empty()) {
    if (error)
      *error = std::string("'") + request_kind_name(req.kind) +
               "' request without a source";
    return std::nullopt;
  }
  return req;
}

json::Value Response::to_json() const {
  json::Value v = json::Value::object();
  v.set("id", id);
  v.set("ok", ok);
  if (!kind.empty()) v.set("kind", kind);
  if (degraded) {
    v.set("degraded", true);
    v.set("degrade_reason", degrade_reason);
  }
  if (cached) v.set("cached", true);
  if (ok) {
    v.set("result", result);
  } else {
    json::Value err = json::Value::object();
    err.set("code", error_code_name(error_code));
    err.set("message", error_message);
    v.set("error", std::move(err));
  }
  return v;
}

std::optional<Response> Response::from_json(const json::Value& v,
                                            std::string* error) {
  if (!v.is_object()) {
    if (error) *error = "response must be a JSON object";
    return std::nullopt;
  }
  Response resp;
  resp.id = v.at("id").as_int();
  resp.ok = v.at("ok").as_bool();
  resp.kind = v.at("kind").as_string();
  resp.degraded = v.at("degraded").as_bool();
  resp.degrade_reason = v.at("degrade_reason").as_string();
  resp.cached = v.at("cached").as_bool();
  if (resp.ok) {
    resp.result = v.at("result");
  } else {
    const json::Value& err = v.at("error");
    const auto code = parse_error_code(err.at("code").as_string());
    if (!code) {
      if (error)
        *error = "unknown error code '" + err.at("code").as_string() + "'";
      return std::nullopt;
    }
    resp.error_code = *code;
    resp.error_message = err.at("message").as_string();
  }
  return resp;
}

Response Response::failure(std::int64_t id, ErrorCode code,
                           std::string message, std::string kind) {
  Response resp;
  resp.id = id;
  resp.ok = false;
  resp.kind = std::move(kind);
  resp.error_code = code;
  resp.error_message = std::move(message);
  return resp;
}

}  // namespace patty::service
