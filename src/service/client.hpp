#pragma once
// Blocking client for the patty-serve daemon: connects to the Unix-domain
// socket and exchanges length-prefixed JSON frames (service/protocol.hpp).
// One Client is one connection; it is NOT thread-safe — callers wanting
// concurrency open one Client per thread (the daemon handles any number of
// connections). call() is the synchronous request/response helper; the
// split send()/recv() pair lets tests and the soak bench pipeline several
// requests down one connection and collect completion-ordered responses.

#include <cstdint>
#include <optional>
#include <string>

#include "service/protocol.hpp"

namespace patty::service {

class Client {
 public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Client& operator=(Client&& other) noexcept;

  /// Connect to the daemon's socket. False + *error on failure.
  bool connect(const std::string& socket_path, std::string* error = nullptr);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Synchronous round-trip: send one request, wait for one response.
  /// nullopt + *error on transport failure (the daemon itself answers
  /// request-level failures with a structured Response, ok = false).
  std::optional<Response> call(const Request& request,
                               std::string* error = nullptr);

  /// Pipelining half-ops. recv() returns responses in completion order —
  /// match them to requests by Response::id.
  bool send(const Request& request, std::string* error = nullptr);
  std::optional<Response> recv(std::string* error = nullptr);

  /// Raw frame access for protocol tests (malformed payload injection).
  bool send_raw(std::string_view payload, std::string* error = nullptr);
  /// 1 = frame, 0 = clean EOF, -1 = error.
  int recv_raw(std::string* payload, std::string* error = nullptr);

 private:
  int fd_ = -1;
};

}  // namespace patty::service
