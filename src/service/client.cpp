#include "service/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace patty::service {

namespace {
void set_error(std::string* error, std::string message) {
  if (error) *error = std::move(message);
}
}  // namespace

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

bool Client::connect(const std::string& socket_path, std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    set_error(error, "bad socket path '" + socket_path + "'");
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    set_error(error, std::string("socket: ") + std::strerror(errno));
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    set_error(error, "connect '" + socket_path + "': " + std::strerror(errno));
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::optional<Response> Client::call(const Request& request,
                                     std::string* error) {
  if (!send(request, error)) return std::nullopt;
  return recv(error);
}

bool Client::send(const Request& request, std::string* error) {
  return send_raw(request.to_json().dump(), error);
}

std::optional<Response> Client::recv(std::string* error) {
  std::string payload;
  const int got = recv_raw(&payload, error);
  if (got == 0) {
    set_error(error, "connection closed by daemon");
    return std::nullopt;
  }
  if (got < 0) return std::nullopt;
  std::string parse_error;
  const auto doc = json::Value::parse(payload, &parse_error);
  if (!doc) {
    set_error(error, "bad response JSON: " + parse_error);
    return std::nullopt;
  }
  auto resp = Response::from_json(*doc, &parse_error);
  if (!resp) {
    set_error(error, "bad response: " + parse_error);
    return std::nullopt;
  }
  return resp;
}

bool Client::send_raw(std::string_view payload, std::string* error) {
  if (fd_ < 0) {
    set_error(error, "not connected");
    return false;
  }
  return write_frame(fd_, payload, error);
}

int Client::recv_raw(std::string* payload, std::string* error) {
  if (fd_ < 0) {
    set_error(error, "not connected");
    return -1;
  }
  return read_frame(fd_, payload, error);
}

}  // namespace patty::service
