#include "service/server.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "analysis/semantic_model.hpp"
#include "lang/ast.hpp"
#include "lang/sema.hpp"
#include "observe/explain.hpp"
#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "patterns/detector.hpp"
#include "runtime/cancellation.hpp"
#include "support/failpoint.hpp"
#include "transform/certify.hpp"
#include "transform/plan.hpp"
#include "tuning/tuner.hpp"

namespace patty::service {

namespace {

/// Service instruments, published unconditionally (one relaxed atomic per
/// event): the health endpoint must tell the truth even with the trace
/// layer off. References are stable for the process lifetime.
struct ServiceMetrics {
  observe::Registry& reg = observe::Registry::global();
  observe::Counter& accepted = reg.counter("service.requests.accepted");
  observe::Counter& overloaded = reg.counter("service.requests.overloaded");
  observe::Counter& decode_errors = reg.counter("service.requests.decode_errors");
  observe::Counter& rejected_shutdown =
      reg.counter("service.requests.rejected_shutdown");
  observe::Counter& ok = reg.counter("service.responses.ok");
  observe::Counter& errors = reg.counter("service.responses.error");
  observe::Counter& write_failures =
      reg.counter("service.responses.write_failures");
  observe::Counter& degraded = reg.counter("service.degraded");
  observe::Counter& deadline_expired = reg.counter("service.deadline_expired");
  observe::Counter& accept_faults = reg.counter("service.accept_faults");
  observe::Gauge& queue_depth = reg.gauge("service.queue.depth");
  observe::Gauge& connections = reg.gauge("service.connections");
  observe::Histogram& latency_ms = reg.histogram("service.latency_ms");
  observe::Histogram& queue_wait_ms = reg.histogram("service.queue_wait_ms");
};

ServiceMetrics& metrics() {
  static ServiceMetrics* m = new ServiceMetrics();  // immortal
  return *m;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

/// Typed internal failure: execute() turns it into a structured response.
struct Server::RequestError {
  ErrorCode code;
  std::string message;
};

/// One client connection. The reader thread lives here; responses from
/// worker threads serialize on write_mutex (pipelined requests complete
/// out of order but frames never interleave).
struct Server::Conn {
  int fd = -1;
  std::mutex write_mutex;
  std::atomic<bool> open{true};
  std::atomic<bool> done{false};  // reader thread exited; reapable
  std::thread thread;
  // The fd is closed here, not at hangup: workers hold shared_ptr<Conn>
  // through Pending, so the fd number stays reserved until the last
  // response is written. A late respond() after hangup hits a shut-down
  // socket (harmless EPIPE) — never a recycled fd now owned by a newly
  // accepted client.
  ~Conn() {
    if (fd >= 0) ::close(fd);
  }
};

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_bytes) {
  degrade_depth_ = options_.degrade_depth > 0
                       ? options_.degrade_depth
                       : std::max<std::size_t>(1, options_.queue_limit / 2);
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load(std::memory_order_acquire)) return;
  if (options_.enable_telemetry) observe::set_enabled(true);

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.empty() ||
      options_.socket_path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("service: bad socket path '" +
                             options_.socket_path + "'");
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0)
    throw std::runtime_error(std::string("service: socket: ") +
                             std::strerror(errno));
  // Reclaim only a *stale* socket: if something still accepts on the path,
  // unlinking would silently steal a live daemon's endpoint. ENOENT and
  // ECONNREFUSED both mean no one is serving it.
  const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (probe >= 0) {
    const bool live =
        ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0;
    ::close(probe);
    if (live) {
      ::close(listen_fd);
      throw std::runtime_error("service: '" + options_.socket_path +
                               "' is already served by a live daemon");
    }
  }
  ::unlink(options_.socket_path.c_str());  // stale socket from a past run
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(listen_fd, 64) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd);
    throw std::runtime_error("service: bind/listen on '" +
                             options_.socket_path + "': " + why);
  }
  listen_fd_.store(listen_fd, std::memory_order_release);

  started_at_ = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    accepting_ = true;
    workers_quit_ = false;
  }
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  const int workers = std::max(1, options_.workers);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;

  // 1. Stop admitting: new arrivals get shutting_down, not a queue slot.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    accepting_ = false;
  }
  // 2. Kill the listener; the accept loop unblocks and exits. shutdown()
  //    here, close() only after the join: the accept thread may already
  //    have loaded the fd value, and accept() must hit a shut-down
  //    listener, not a closed (or by then recycled) descriptor.
  const int listen_fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd >= 0) ::close(listen_fd);
  // 3. Drain: workers finish the queued requests (every one of them still
  //    gets its response), then exit on the quit flag.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    workers_quit_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  // 4. Hang up every connection; readers unblock and exit.
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const std::shared_ptr<Conn>& c : conns_) {
      if (c->open.exchange(false)) ::shutdown(c->fd, SHUT_RDWR);
    }
  }
  reap_connections(/*all=*/true);
  ::unlink(options_.socket_path.c_str());
  request_shutdown();  // release any wait_for_shutdown() caller
}

void Server::request_shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

bool Server::wait_for_shutdown(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  if (timeout.count() <= 0) {
    shutdown_cv_.wait(lock, [this] { return shutdown_requested_; });
    return true;
  }
  return shutdown_cv_.wait_for(lock, timeout,
                               [this] { return shutdown_requested_; });
}

std::size_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.size();
}

void Server::accept_loop() {
  for (;;) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (!running_.load(std::memory_order_acquire)) {
      if (fd >= 0) ::close(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener gone
    }
    try {
      PATTY_FAILPOINT("service.accept");
    } catch (const support::failpoint::FailpointError&) {
      // Injected accept fault: this connection is lost, the daemon is not.
      metrics().accept_faults.add();
      ::close(fd);
      continue;
    }
    // Bound every response write: a client that stops reading makes send()
    // fail with EAGAIN after the timeout instead of blocking a worker (and
    // stop()'s drain, which joins workers before hanging up connections)
    // forever.
    if (options_.write_timeout_ms > 0) {
      timeval tv{};
      tv.tv_sec = options_.write_timeout_ms / 1000;
      tv.tv_usec =
          static_cast<suseconds_t>(options_.write_timeout_ms % 1000) * 1000;
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    reap_connections(/*all=*/false);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    metrics().connections.add(1);
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(conn);
    }
    conn->thread = std::thread([this, conn] { connection_loop(conn); });
  }
}

void Server::reap_connections(bool all) {
  std::vector<std::shared_ptr<Conn>> reap;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    auto it = conns_.begin();
    while (it != conns_.end()) {
      if (all || (*it)->done.load(std::memory_order_acquire)) {
        reap.push_back(*it);
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const std::shared_ptr<Conn>& c : reap)
    if (c->thread.joinable()) c->thread.join();
}

void Server::connection_loop(const std::shared_ptr<Conn>& conn) {
  for (;;) {
    std::string payload;
    std::string error;
    const int got =
        read_frame(conn->fd, &payload, &error, options_.max_frame_bytes);
    if (got == 0) break;  // clean EOF
    if (got < 0) {
      // Framing garbage (bad length, mid-frame hangup): the stream cannot
      // be resynchronized, so the connection is dropped — but only this
      // connection.
      if (conn->open.load(std::memory_order_acquire))
        metrics().decode_errors.add();
      break;
    }
    handle_frame(conn, std::move(payload));
    if (!conn->open.load(std::memory_order_acquire)) break;
  }
  // Hang up but do NOT close: the fd stays reserved until the last
  // shared_ptr<Conn> holder (a worker mid-respond, possibly) drops it —
  // see ~Conn.
  if (conn->open.exchange(false)) ::shutdown(conn->fd, SHUT_RDWR);
  metrics().connections.add(-1);
  conn->done.store(true, std::memory_order_release);
}

void Server::handle_frame(const std::shared_ptr<Conn>& conn,
                          std::string payload) {
  try {
    PATTY_FAILPOINT("service.decode");
  } catch (const support::failpoint::FailpointError& e) {
    // Not admitted: counted as a decode error, not against the
    // accepted == ok + error balance the soak gate asserts.
    metrics().decode_errors.add();
    respond(*conn, Response::failure(0, ErrorCode::Internal, e.what()));
    return;
  }
  std::string error;
  const auto doc = json::Value::parse(payload, &error);
  if (!doc) {
    metrics().decode_errors.add();
    respond(*conn,
            Response::failure(0, ErrorCode::BadRequest, "bad JSON: " + error));
    return;
  }
  const auto req = Request::from_json(*doc, &error);
  if (!req) {
    metrics().decode_errors.add();
    respond(*conn, Response::failure(doc->at("id").as_int(),
                                     ErrorCode::BadRequest, error));
    return;
  }

  // Health, stats and shutdown are answered inline on the connection
  // thread: a load probe that can be shed by the very overload it is
  // probing would be useless.
  if (req->kind == RequestKind::Health || req->kind == RequestKind::Stats) {
    metrics().accepted.add();
    const Response resp =
        handle_health(*req, req->kind == RequestKind::Stats);
    metrics().ok.add();
    respond(*conn, resp);
    return;
  }
  if (req->kind == RequestKind::Shutdown) {
    metrics().accepted.add();
    Response resp;
    resp.id = req->id;
    resp.ok = true;
    resp.kind = request_kind_name(req->kind);
    resp.result.set("stopping", true);
    metrics().ok.add();
    respond(*conn, resp);
    request_shutdown();
    return;
  }

  // Admission control: shed-not-queue. Decide under the queue lock, write
  // the rejection outside it — a shed response's socket write must never
  // stall the workers.
  enum class Admission { Queued, Overloaded, ShuttingDown } admission;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!accepting_) {
      admission = Admission::ShuttingDown;
    } else if (queue_.size() >= options_.queue_limit) {
      admission = Admission::Overloaded;
    } else {
      admission = Admission::Queued;
      metrics().accepted.add();
      metrics().queue_depth.add(1);
      queue_.push_back(
          Pending{std::move(*req), conn, std::chrono::steady_clock::now()});
    }
  }
  switch (admission) {
    case Admission::Queued:
      queue_cv_.notify_one();
      break;
    case Admission::Overloaded:
      metrics().overloaded.add();
      respond(*conn,
              Response::failure(
                  req->id, ErrorCode::Overloaded,
                  "pending queue at high-water mark (" +
                      std::to_string(options_.queue_limit) + ")",
                  request_kind_name(req->kind)));
      break;
    case Admission::ShuttingDown:
      metrics().rejected_shutdown.add();
      respond(*conn,
              Response::failure(req->id, ErrorCode::ShuttingDown,
                                "daemon is draining",
                                request_kind_name(req->kind)));
      break;
  }
}

void Server::worker_loop() {
  for (;;) {
    Pending pending;
    bool degrade = false;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return workers_quit_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (workers_quit_) return;
        continue;
      }
      pending = std::move(queue_.front());
      queue_.pop_front();
      metrics().queue_depth.add(-1);
      // Sustained pressure at dequeue time degrades the request to the
      // sequential front-end (cheapest correct mode) instead of letting
      // parallel fan-out amplify the overload.
      degrade = queue_.size() >= degrade_depth_;
    }
    metrics().queue_wait_ms.record(ms_since(pending.enqueued));
    const auto start = std::chrono::steady_clock::now();
    const Response resp = execute(pending.req, degrade);
    metrics().latency_ms.record(ms_since(start));
    (resp.ok ? metrics().ok : metrics().errors).add();
    if (!resp.ok && resp.error_code == ErrorCode::Deadline)
      metrics().deadline_expired.add();
    if (resp.degraded) metrics().degraded.add();
    respond(*pending.conn, resp);
  }
}

void Server::respond(Conn& conn, const Response& resp) {
  const std::string payload = resp.to_json().dump();
  std::lock_guard<std::mutex> lock(conn.write_mutex);
  if (!conn.open.load(std::memory_order_acquire)) {
    metrics().write_failures.add();
    return;
  }
  try {
    PATTY_FAILPOINT("service.response.write");
    std::string error;
    if (!write_frame(conn.fd, payload, &error, options_.max_frame_bytes)) {
      metrics().write_failures.add();
      if (conn.open.exchange(false)) ::shutdown(conn.fd, SHUT_RDWR);
    }
  } catch (const support::failpoint::FailpointError&) {
    // Injected write fault: the frame boundary is lost, so the connection
    // goes down — the daemon and its other connections do not.
    metrics().write_failures.add();
    if (conn.open.exchange(false)) ::shutdown(conn.fd, SHUT_RDWR);
  }
}

// ---------------------------------------------------------------------------
// Request execution: one fault domain per request.

Response Server::execute(const Request& req, bool degrade) {
  Response resp;
  resp.id = req.id;
  resp.kind = request_kind_name(req.kind);
  if (degrade && req.parallel) {
    resp.degraded = true;
    resp.degrade_reason = "sustained pressure: queue depth at or past " +
                          std::to_string(degrade_depth_) +
                          ", sequential fallback";
  }

  rt::StopSource stop;
  std::int64_t deadline_ms =
      req.deadline_ms > 0 ? req.deadline_ms : options_.default_deadline_ms;
  if (options_.max_deadline_ms > 0)
    deadline_ms = std::min(deadline_ms, options_.max_deadline_ms);
  std::optional<rt::ScopedDeadline> deadline;
  if (deadline_ms > 0)
    deadline.emplace(stop, std::chrono::milliseconds(deadline_ms));
  // The ambient token makes every parallel region started inside the
  // request a child of its fault domain: the deadline cancels nested work,
  // and a sibling request (its own StopSource) is untouched.
  rt::StopScope scope(stop.token());

  const auto expired = [&] { return deadline && deadline->expired(); };
  try {
    switch (req.kind) {
      case RequestKind::Parse:
        resp.result = do_parse(req);
        break;
      case RequestKind::Detect:
      case RequestKind::Certify:
      case RequestKind::Tune: {
        bool cached = false;
        const std::shared_ptr<const ModelEntry> entry =
            acquire_model(req, degrade, &cached);
        resp.cached = cached;
        if (req.kind == RequestKind::Detect)
          resp.result = do_detect(req, *entry);
        else if (req.kind == RequestKind::Certify)
          resp.result = do_certify(req, *entry);
        else
          resp.result = do_tune(req, *entry);
        break;
      }
      default:
        throw RequestError{ErrorCode::BadRequest,
                           "kind not executable on a worker"};
    }
    if (stop.stop_requested())
      throw rt::OperationCancelled("service request");
    resp.ok = true;
  } catch (const rt::OperationCancelled&) {
    resp.ok = false;
    resp.error_code = ErrorCode::Deadline;
    resp.error_message = expired()
                             ? "deadline of " + std::to_string(deadline_ms) +
                                   " ms expired"
                             : "request cancelled";
  } catch (const RequestError& e) {
    resp.ok = false;
    resp.error_code = e.code;
    resp.error_message = e.message;
  } catch (const analysis::RuntimeError& e) {
    // Interpreter faults (null deref, division by zero, step limit) are a
    // plain struct, not std::exception.
    resp.ok = false;
    resp.error_code = ErrorCode::Analysis;
    resp.error_message = e.message + " at " + e.range.str();
  } catch (const std::exception& e) {
    resp.ok = false;
    if (expired()) {
      resp.error_code = ErrorCode::Deadline;
      resp.error_message = "deadline of " + std::to_string(deadline_ms) +
                           " ms expired (" + e.what() + ")";
    } else {
      resp.error_code = ErrorCode::Internal;
      resp.error_message = e.what();
    }
  } catch (...) {
    resp.ok = false;
    resp.error_code = ErrorCode::Internal;
    resp.error_message = "unknown exception";
  }
  return resp;
}

json::Value Server::do_parse(const Request& req) {
  DiagnosticSink diags;
  const auto program = lang::parse_and_check(req.source, diags);
  if (!program) throw RequestError{ErrorCode::ParseError, diags.to_string()};
  corpus::CorpusProgram cp;
  cp.name = "request";
  cp.source = req.source;
  std::size_t methods = 0;
  for (const auto& cls : program->classes) methods += cls->methods.size();
  json::Value result = json::Value::object();
  result.set("classes", program->classes.size());
  result.set("methods", methods);
  result.set("loc", cp.loc());
  return result;
}

std::shared_ptr<const ModelEntry> Server::acquire_model(const Request& req,
                                                        bool degrade,
                                                        bool* cached) {
  const std::uint64_t key = ModelCache::key(req.source, req.optimistic);
  if (!req.no_cache) {
    if (std::shared_ptr<const ModelEntry> hit = cache_.lookup(key)) {
      *cached = true;
      return hit;
    }
  }

  corpus::CorpusProgram program;
  program.name = "request";
  program.source = req.source;
  corpus::FrontendConfig config;
  config.parallel = req.parallel && !degrade;
  config.threads = options_.frontend_threads;
  config.optimistic = req.optimistic;
  config.work_sleeps = req.work_sleeps;
  config.work_sleep_ns = static_cast<std::uint64_t>(req.work_sleep_ns);
  auto entry = std::make_shared<ModelEntry>();
  bool adopted = false;
  config.adopt = [&entry, &adopted](corpus::ProgramArtifacts&& artifacts) {
    entry->artifacts = std::move(artifacts);
    adopted = true;
  };
  // The single-program corpus rides the same evaluate_corpus front-end the
  // batch tool uses: same stages, same error convention, same telemetry.
  const corpus::CorpusReport report =
      corpus::evaluate_corpus({&program}, config);

  if (rt::current_stop_token().stop_requested())
    throw rt::OperationCancelled("service request");
  if (!adopted) {
    const std::string& error = report.programs.empty()
                                   ? std::string("front-end produced no report")
                                   : report.programs[0].error;
    // Classify: a source the parser rejects is the client's error
    // (parse_error), anything past that is an analysis failure. Reparsing
    // is cheap and only happens on this failure path.
    DiagnosticSink diags;
    if (!lang::parse_and_check(req.source, diags))
      throw RequestError{ErrorCode::ParseError, diags.to_string()};
    throw RequestError{ErrorCode::Analysis, error};
  }

  entry->bytes = entry_bytes(entry->artifacts, req.source.size());
  if (!req.no_cache) cache_.insert(key, entry);
  return entry;
}

json::Value Server::do_detect(const Request& req, const ModelEntry& entry) {
  (void)req;
  json::Value candidates = json::Value::array();
  for (const patterns::Candidate& c : entry.artifacts.detection->candidates) {
    json::Value item = json::Value::object();
    item.set("pattern", pattern_kind_name(c.kind));
    if (c.anchor)
      item.set("line", static_cast<std::int64_t>(c.anchor->range.begin.line));
    item.set("runtime_share", c.runtime_share);
    item.set("tadl", c.tadl);
    candidates.push_back(std::move(item));
  }
  json::Value result = json::Value::object();
  result.set("fingerprint", entry.artifacts.fingerprint);
  result.set("candidates", std::move(candidates));
  result.set("rejected", entry.artifacts.detection->rejected.size());
  return result;
}

json::Value Server::do_certify(const Request& req, const ModelEntry& entry) {
  (void)req;
  const transform::ProgramCertificate certificate = transform::certify_program(
      *entry.artifacts.parsed, entry.artifacts.detection->candidates, nullptr,
      "request");
  json::Value probes = json::Value::array();
  for (const transform::ProbeOutcome& p : certificate.probes) {
    json::Value item = json::Value::object();
    item.set("label", p.label);
    item.set("raced", p.raced);
    item.set("schedules", p.schedules_explored);
    if (!p.detail.empty()) item.set("detail", p.detail);
    probes.push_back(std::move(item));
  }
  json::Value result = json::Value::object();
  result.set("verdict", transform::verdict_name(certificate.verdict));
  result.set("probes", std::move(probes));
  return result;
}

json::Value Server::do_tune(const Request& req, const ModelEntry& entry) {
  const std::vector<patterns::Candidate>& candidates =
      entry.artifacts.detection->candidates;
  json::Value result = json::Value::object();
  if (candidates.empty()) {
    result.set("tuned", false);
    result.set("note", "no parallelization candidates to tune");
    return result;
  }
  rt::TuningConfig config = transform::default_tuning(candidates);
  if (config.size() == 0) {
    result.set("tuned", false);
    result.set("note", "candidates expose no tuning parameters");
    return result;
  }
  analysis::InterpreterOptions exec;
  exec.work_sleeps = req.work_sleeps;
  exec.work_sleep_ns = static_cast<std::uint64_t>(req.work_sleep_ns);
  auto measure = [&](const rt::TuningConfig& candidate) {
    transform::ParallelPlanExecutor executor(*entry.artifacts.parsed,
                                             candidates, &candidate);
    const auto start = std::chrono::steady_clock::now();
    executor.run_main(exec);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const auto tuner = tuning::make_linear_tuner();
  const tuning::TuningRun run = tuner->tune(
      config, measure, static_cast<std::size_t>(req.max_evals));
  if (rt::current_stop_token().stop_requested())
    throw rt::OperationCancelled("service request");
  result.set("tuned", true);
  result.set("evaluations", run.evaluations);
  result.set("best_score_s", run.best_score);
  result.set("best", run.best.serialize());
  return result;
}

Response Server::handle_health(const Request& req, bool full_stats) {
  Response resp;
  resp.id = req.id;
  resp.ok = true;
  resp.kind = request_kind_name(req.kind);

  const observe::MetricsSnapshot snap = observe::Registry::global().snapshot();
  auto counter = [&snap](const char* name) -> std::uint64_t {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  };
  auto gauge = [&snap](const char* name) -> observe::GaugeSnapshot {
    const auto it = snap.gauges.find(name);
    return it == snap.gauges.end() ? observe::GaugeSnapshot{} : it->second;
  };

  json::Value result = json::Value::object();
  result.set("uptime_ms",
             static_cast<std::int64_t>(ms_since(started_at_)));
  result.set("workers", options_.workers);

  json::Value queue = json::Value::object();
  const observe::GaugeSnapshot depth = gauge("service.queue.depth");
  queue.set("depth", depth.value);
  queue.set("high_water", depth.max);
  queue.set("limit", options_.queue_limit);
  queue.set("degrade_depth", degrade_depth_);
  result.set("queue", std::move(queue));

  const CacheStats cs = cache_.stats();
  json::Value cache = json::Value::object();
  cache.set("hits", cs.hits);
  cache.set("misses", cs.misses);
  cache.set("evictions", cs.evictions);
  cache.set("insert_failures", cs.insert_failures);
  cache.set("entries", cs.entries);
  cache.set("bytes", cs.bytes);
  cache.set("max_bytes", cs.max_bytes);
  result.set("cache", std::move(cache));

  json::Value requests = json::Value::object();
  requests.set("accepted", counter("service.requests.accepted"));
  requests.set("ok", counter("service.responses.ok"));
  requests.set("error", counter("service.responses.error"));
  requests.set("overloaded", counter("service.requests.overloaded"));
  requests.set("decode_errors", counter("service.requests.decode_errors"));
  requests.set("degraded", counter("service.degraded"));
  requests.set("deadline_expired", counter("service.deadline_expired"));
  requests.set("write_failures", counter("service.responses.write_failures"));
  result.set("requests", std::move(requests));

  json::Value faults = json::Value::object();
  faults.set("captured", counter("fault.captured"));
  faults.set("rethrown", counter("fault.rethrown"));
  faults.set("fallbacks", counter("fault.fallbacks"));
  faults.set("deadline_cancellations",
             counter("fault.deadline_cancellations"));
  result.set("faults", std::move(faults));

  result.set("memory", observe::memory_summary());

  if (full_stats) {
    // Everything the service, runtime fault layer and front-end publish,
    // raw — the debugging view.
    json::Value counters = json::Value::object();
    for (const auto& [name, value] : snap.counters) {
      if (name.rfind("service.", 0) == 0 || name.rfind("fault.", 0) == 0 ||
          name.rfind("frontend.", 0) == 0 || name.rfind("mhp.", 0) == 0)
        counters.set(name, value);
    }
    result.set("counters", std::move(counters));
    json::Value gauges = json::Value::object();
    for (const auto& [name, g] : snap.gauges) {
      if (name.rfind("service.", 0) == 0 || name.rfind("frontend.", 0) == 0) {
        json::Value item = json::Value::object();
        item.set("value", g.value);
        item.set("max", g.max);
        gauges.set(name, std::move(item));
      }
    }
    result.set("gauges", std::move(gauges));
  }
  resp.result = std::move(result);
  return resp;
}

}  // namespace patty::service
