#include "analysis/mhp.hpp"

#include <algorithm>
#include <map>

namespace patty::analysis {

using lang::ExprKind;
using lang::StmtKind;
using lang::Symbol;

MhpFacts::MhpFacts(const MhpGraph& graph)
    : concurrent_regions_(graph.concurrent_regions) {
  region_.reserve(graph.nodes.size());
  multiplicity_.reserve(graph.nodes.size());
  for (const MhpNode& n : graph.nodes) {
    region_.push_back(n.region);
    multiplicity_.push_back(n.multiplicity);
  }
}

bool MhpFacts::may_happen_in_parallel(int a, int b) const {
  const auto ia = static_cast<std::size_t>(a);
  const auto ib = static_cast<std::size_t>(b);
  if (ia >= region_.size() || ib >= region_.size()) return false;
  if (region_[ia] != region_[ib]) return false;      // program order
  if (!concurrent_regions_.count(region_[ia])) return false;  // fallback
  if (a == b) return multiplicity_[ia] > 1;
  return true;  // streaming: stages overlap across elements
}

const char* discharge_name(Discharge d) {
  switch (d) {
    case Discharge::Ordered: return "ordered";
    case Discharge::Disjoint: return "disjoint";
    case Discharge::PrivateOrFresh: return "private-or-fresh";
    case Discharge::Residue: return "residue";
  }
  return "?";
}

namespace {

/// How an access names the cell it touches, relative to the region's
/// element index.
enum class SubClass : std::uint8_t {
  Uniform,        // subscript is exactly the induction variable
  PureInduction,  // pure arithmetic over the induction variable only
  Opaque,         // loads memory, other locals, or reached via a call
};

/// The named storage root an access goes through (the array/list-valued
/// variable), used for allocation-root separation.
struct Root {
  enum class Kind : std::uint8_t { None, Local, Field } kind = Kind::None;
  int slot = -1;       // Local
  Symbol cls;          // Field: class type name
  int field = -1;      // Field
  friend bool operator==(const Root& a, const Root& b) {
    if (a.kind != b.kind) return false;
    if (a.kind == Kind::Local) return a.slot == b.slot;
    if (a.kind == Kind::Field) return a.cls == b.cls && a.field == b.field;
    return true;
  }
};

struct Access {
  bool write = false;
  SubClass sub = SubClass::Opaque;
  Root root;
};

Root root_of(const lang::Expr& base) {
  Root r;
  if (base.kind == ExprKind::VarRef) {
    const auto& ref = base.as<lang::VarRef>();
    if (ref.is_local()) {
      r.kind = Root::Kind::Local;
      r.slot = ref.slot;
    } else if (ref.owner_class) {
      r.kind = Root::Kind::Field;
      r.cls = ref.owner_class->name;
      r.field = ref.field_index;
    }
  } else if (base.kind == ExprKind::FieldAccess) {
    const auto& fa = base.as<lang::FieldAccess>();
    if (fa.object->type) {
      r.kind = Root::Kind::Field;
      r.cls = fa.object->type->sig();
      r.field = fa.field_index;
    }
  }
  return r;
}

SubClass classify_subscript(const lang::Expr& index, int induction_slot) {
  if (induction_slot < 0) return SubClass::Opaque;
  if (index.kind == ExprKind::VarRef) {
    const auto& ref = index.as<lang::VarRef>();
    if (ref.is_local() && ref.slot == induction_slot) return SubClass::Uniform;
  }
  bool pure = true;
  lang::for_each_expr_in(index, [&](const lang::Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::Binary:
      case ExprKind::Unary:
        break;
      case ExprKind::VarRef: {
        const auto& ref = e.as<lang::VarRef>();
        if (!ref.is_local() || ref.slot != induction_slot) pure = false;
        break;
      }
      default:
        pure = false;
        break;
    }
  });
  return pure ? SubClass::PureInduction : SubClass::Opaque;
}

Symbol sig_or_unknown(const lang::TypePtr& t) {
  static const Symbol kUnknown = Symbol::intern("?");
  return t ? t->sig() : kUnknown;
}

/// Per-node syntactic view of one abstract location's accesses plus the
/// definitions of the node method's locals (for instance-freshness).
struct NodeView {
  const MhpNode* node = nullptr;
  EffectSet effects;
  /// Elements/ListShape accesses keyed by location.
  std::map<AbsLoc, std::vector<Access>> accesses;
  /// Statement ids contained in the node's statement subtrees.
  std::set<int> stmt_ids;
};

void add_summary_accesses(NodeView& view, const EffectSet& summary) {
  for (const AbsLoc& l : summary.reads) {
    if (l.kind == AbsLoc::Kind::Elements || l.kind == AbsLoc::Kind::ListShape)
      view.accesses[l].push_back({false, SubClass::Opaque, {}});
  }
  for (const AbsLoc& l : summary.writes) {
    if (l.kind == AbsLoc::Kind::Elements || l.kind == AbsLoc::Kind::ListShape)
      view.accesses[l].push_back({true, SubClass::Opaque, {}});
  }
}

NodeView build_view(const MhpNode& node, const EffectAnalysis& effects) {
  NodeView view;
  view.node = &node;
  const int ind = node.induction_slot;

  // Records index-expression reads of an expression subtree, excluding a
  // write target's own IndexAccess node (handled by the caller).
  std::function<void(const lang::Expr&, bool)> walk_expr =
      [&](const lang::Expr& e, bool as_write) {
        if (e.kind == ExprKind::IndexAccess) {
          const auto& ix = e.as<lang::IndexAccess>();
          Access a;
          a.write = as_write;
          a.sub = classify_subscript(*ix.index, ind);
          a.root = root_of(*ix.base);
          view.accesses[AbsLoc::elements(sig_or_unknown(ix.base->type))]
              .push_back(a);
          walk_expr(*ix.base, false);
          walk_expr(*ix.index, false);
          return;
        }
        if (e.kind == ExprKind::Call) {
          const auto& c = e.as<lang::Call>();
          if (c.receiver) walk_expr(*c.receiver, false);
          for (const auto& arg : c.args) walk_expr(*arg, false);
          if (c.builtin == lang::Builtin::Push) {
            Access a;
            a.write = true;
            a.root = root_of(*c.args[0]);
            view.accesses[AbsLoc::list_shape(sig_or_unknown(c.args[0]->type))]
                .push_back(a);
          } else if (c.builtin == lang::Builtin::Len) {
            const lang::TypePtr& t = c.args[0]->type;
            if (t && t->kind == lang::Type::Kind::List) {
              Access a;
              a.root = root_of(*c.args[0]);
              view.accesses[AbsLoc::list_shape(t->sig())].push_back(a);
            }
          } else if (c.resolved) {
            view.effects.merge(effects.method_summary(c.resolved));
            add_summary_accesses(view, effects.method_summary(c.resolved));
          }
          return;
        }
        if (e.kind == ExprKind::New) {
          const auto& n = e.as<lang::New>();
          for (const auto& arg : n.args) walk_expr(*arg, false);
          if (n.resolved) {
            static const Symbol kInit = Symbol::intern("init");
            if (const lang::MethodDecl* ctor = n.resolved->find_method(kInit)) {
              view.effects.merge(effects.method_summary(ctor));
              add_summary_accesses(view, effects.method_summary(ctor));
            }
          }
          return;
        }
        if (e.kind == ExprKind::FieldAccess)
          walk_expr(*e.as<lang::FieldAccess>().object, false);
        if (e.kind == ExprKind::Binary) {
          walk_expr(*e.as<lang::Binary>().lhs, false);
          walk_expr(*e.as<lang::Binary>().rhs, false);
        }
        if (e.kind == ExprKind::Unary)
          walk_expr(*e.as<lang::Unary>().operand, false);
        if (e.kind == ExprKind::NewArray) {
          const auto& n = e.as<lang::NewArray>();
          if (n.size) walk_expr(*n.size, false);
        }
      };

  std::function<void(const lang::Stmt&)> walk_stmt =
      [&](const lang::Stmt& st) {
        view.stmt_ids.insert(st.id);
        switch (st.kind) {
          case StmtKind::Block:
            for (const auto& s : st.as<lang::Block>().stmts) walk_stmt(*s);
            break;
          case StmtKind::VarDecl: {
            const auto& d = st.as<lang::VarDecl>();
            if (d.init) walk_expr(*d.init, false);
            break;
          }
          case StmtKind::Assign: {
            const auto& a = st.as<lang::Assign>();
            walk_expr(*a.value, false);
            if (a.target->kind == ExprKind::IndexAccess) {
              const auto& ix = a.target->as<lang::IndexAccess>();
              Access acc;
              acc.write = true;
              acc.sub = classify_subscript(*ix.index, ind);
              acc.root = root_of(*ix.base);
              view.accesses[AbsLoc::elements(sig_or_unknown(ix.base->type))]
                  .push_back(acc);
              walk_expr(*ix.base, false);
              walk_expr(*ix.index, false);
            } else {
              walk_expr(*a.target, false);
            }
            break;
          }
          case StmtKind::ExprStmt:
            walk_expr(*st.as<lang::ExprStmt>().expr, false);
            break;
          case StmtKind::If: {
            const auto& i = st.as<lang::If>();
            walk_expr(*i.cond, false);
            walk_stmt(*i.then_branch);
            if (i.else_branch) walk_stmt(*i.else_branch);
            break;
          }
          case StmtKind::While: {
            const auto& w = st.as<lang::While>();
            walk_expr(*w.cond, false);
            walk_stmt(*w.body);
            break;
          }
          case StmtKind::For: {
            const auto& f = st.as<lang::For>();
            if (f.init) walk_stmt(*f.init);
            if (f.cond) walk_expr(*f.cond, false);
            if (f.step) walk_stmt(*f.step);
            walk_stmt(*f.body);
            break;
          }
          case StmtKind::Foreach: {
            const auto& f = st.as<lang::Foreach>();
            walk_expr(*f.iterable, false);
            if (f.iterable->type &&
                f.iterable->type->kind == lang::Type::Kind::List) {
              Access a;
              a.root = root_of(*f.iterable);
              view.accesses[AbsLoc::list_shape(f.iterable->type->sig())]
                  .push_back(a);
            }
            walk_stmt(*f.body);
            break;
          }
          case StmtKind::Return: {
            const auto& r = st.as<lang::Return>();
            if (r.value) walk_expr(*r.value, false);
            break;
          }
          default:
            break;
        }
      };

  for (const lang::Stmt* st : node.stmts) {
    view.effects.merge(effects.stmt_effects(*st));
    walk_stmt(*st);
  }
  return view;
}

/// A local whose every method-wide definition is a fresh allocation *and*
/// lies inside the node's statements: re-executed per element, so the
/// object is private to one instance (not just to one activation).
bool local_fresh_in_node(const NodeView& view,
                         const FreshnessAnalysis& freshness, int slot) {
  const lang::MethodDecl* m = view.node->method;
  if (!m || !freshness.local_is_fresh(m, slot)) return false;
  bool all_inside = true;
  lang::for_each_stmt(*m->body, [&](const lang::Stmt& st) {
    int def_slot = -1;
    if (st.kind == StmtKind::VarDecl) {
      def_slot = st.as<lang::VarDecl>().slot;
    } else if (st.kind == StmtKind::Assign) {
      const auto& a = st.as<lang::Assign>();
      if (a.target->kind == ExprKind::VarRef) {
        const auto& ref = a.target->as<lang::VarRef>();
        if (ref.is_local()) def_slot = ref.slot;
      }
    } else if (st.kind == StmtKind::Foreach) {
      def_slot = st.as<lang::Foreach>().slot;
    }
    if (def_slot == slot && !view.stmt_ids.count(st.id)) all_inside = false;
  });
  return all_inside;
}

bool expr_fresh_in_node(const NodeView& view,
                        const FreshnessAnalysis& freshness,
                        const lang::Expr& e) {
  switch (e.kind) {
    case ExprKind::New:
    case ExprKind::NewArray:
      return true;
    case ExprKind::VarRef: {
      const auto& ref = e.as<lang::VarRef>();
      return ref.is_local() && local_fresh_in_node(view, freshness, ref.slot);
    }
    case ExprKind::Call: {
      const auto& c = e.as<lang::Call>();
      return c.resolved && freshness.returns_fresh(c.resolved);
    }
    default:
      return false;
  }
}

/// Every write the node performs to Field location `loc` lands on an
/// object allocated by the current instance.
bool node_writes_only_fresh(const NodeView& view,
                            const FreshnessAnalysis& freshness,
                            const EffectAnalysis& effects, const AbsLoc& loc) {
  bool fresh = true;
  auto check_call_writes = [&](const lang::MethodDecl* callee,
                               const lang::Expr* receiver,
                               bool receiver_is_fresh) {
    if (!callee || !fresh) return;
    const EffectSet& summary = effects.method_summary(callee);
    if (!summary.writes.count(loc)) return;
    const WriteFreshness& wf = freshness.write_freshness(callee);
    if (wf.shared.count(loc)) {
      fresh = false;
      return;
    }
    if (wf.via_this.count(loc)) {
      const bool rf =
          receiver_is_fresh ||
          (receiver && expr_fresh_in_node(view, freshness, *receiver));
      if (!rf) fresh = false;
    }
  };
  for (const lang::Stmt* top : view.node->stmts) {
    lang::for_each_stmt(*top, [&](const lang::Stmt& st) {
      if (!fresh || st.kind != StmtKind::Assign) return;
      const auto& a = st.as<lang::Assign>();
      if (a.target->kind == ExprKind::VarRef) {
        const auto& ref = a.target->as<lang::VarRef>();
        if (!ref.is_local() && ref.owner_class &&
            AbsLoc::field_loc(ref.owner_class->name, ref.field_index) == loc)
          fresh = false;  // write through the shared receiver
      } else if (a.target->kind == ExprKind::FieldAccess) {
        const auto& fa = a.target->as<lang::FieldAccess>();
        if (fa.object->type &&
            AbsLoc::field_loc(fa.object->type->sig(), fa.field_index) == loc &&
            !expr_fresh_in_node(view, freshness, *fa.object))
          fresh = false;
      }
    });
    lang::for_each_expr(*top, [&](const lang::Expr& e) {
      if (!fresh) return;
      if (e.kind == ExprKind::Call) {
        const auto& c = e.as<lang::Call>();
        if (c.resolved)
          check_call_writes(c.resolved, c.receiver.get(),
                            /*receiver_is_fresh=*/false);
      } else if (e.kind == ExprKind::New) {
        const auto& n = e.as<lang::New>();
        if (n.resolved) {
          static const Symbol kInit = Symbol::intern("init");
          check_call_writes(n.resolved->find_method(kInit), nullptr,
                            /*receiver_is_fresh=*/true);
        }
      }
    });
  }
  return fresh;
}

struct RootFacts {
  const lang::MethodDecl* method = nullptr;
  std::set<int> untouched_params;  // parameter slots with no stores in m
};

RootFacts root_facts_for(const lang::MethodDecl* m) {
  RootFacts rf;
  rf.method = m;
  if (!m) return rf;
  for (const lang::Param& p : m->params) rf.untouched_params.insert(p.slot);
  lang::for_each_stmt(*m->body, [&](const lang::Stmt& st) {
    if (st.kind != StmtKind::Assign) return;
    const auto& a = st.as<lang::Assign>();
    if (a.target->kind == ExprKind::VarRef) {
      const auto& ref = a.target->as<lang::VarRef>();
      if (ref.is_local()) rf.untouched_params.erase(ref.slot);
    }
  });
  return rf;
}

/// Two accesses through these roots can never touch the same object:
/// either both roots only ever receive direct allocations (each allocation
/// lands in exactly one root), or one is an allocation-rooted local of the
/// method and the other a never-stored parameter (bound before any of the
/// local's allocations executed, so it cannot hold one of them).
bool roots_separated(const FreshnessAnalysis& freshness, const RootFacts& rf,
                     const Root& x, const Root& y) {
  if (x.kind == Root::Kind::None || y.kind == Root::Kind::None) return false;
  if (x == y) return false;
  auto rooted = [&](const Root& r) {
    if (r.kind == Root::Kind::Field)
      return freshness.field_allocation_rooted(r.cls, r.field);
    return freshness.local_allocation_rooted(rf.method, r.slot);
  };
  auto local_rooted = [&](const Root& r) {
    return r.kind == Root::Kind::Local &&
           freshness.local_allocation_rooted(rf.method, r.slot);
  };
  auto untouched_param = [&](const Root& r) {
    return r.kind == Root::Kind::Local && rf.untouched_params.count(r.slot) > 0;
  };
  if (rooted(x) && rooted(y)) return true;
  if (local_rooted(x) && untouched_param(y)) return true;
  if (untouched_param(x) && local_rooted(y)) return true;
  return false;
}

}  // namespace

MhpSummary enumerate_conflicts(const MhpGraph& graph, const MhpFacts& facts,
                               const EffectAnalysis& effects,
                               const FreshnessAnalysis& freshness) {
  MhpSummary summary;
  std::vector<NodeView> views;
  views.reserve(graph.nodes.size());
  for (const MhpNode& n : graph.nodes) views.push_back(build_view(n, effects));

  std::map<const lang::MethodDecl*, RootFacts> root_facts;
  auto facts_for = [&](const lang::MethodDecl* m) -> const RootFacts& {
    auto it = root_facts.find(m);
    if (it == root_facts.end())
      it = root_facts.emplace(m, root_facts_for(m)).first;
    return it->second;
  };

  const int n = static_cast<int>(graph.nodes.size());
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      const NodeView& vi = views[static_cast<std::size_t>(i)];
      const NodeView& vj = views[static_cast<std::size_t>(j)];
      if (i == j && graph.nodes[static_cast<std::size_t>(i)].multiplicity <= 1 &&
          !facts.may_happen_in_parallel(i, j))
        continue;  // a single sequential instance cannot conflict with itself

      // Locations with at least one write on some side and any touch on
      // the other.
      std::set<AbsLoc> conflicting;
      for (const AbsLoc& l : vi.effects.writes)
        if (vj.effects.reads.count(l) || vj.effects.writes.count(l))
          conflicting.insert(l);
      for (const AbsLoc& l : vj.effects.writes)
        if (vi.effects.reads.count(l)) conflicting.insert(l);

      for (const AbsLoc& loc : conflicting) {
        ConflictPair pair;
        pair.a = i;
        pair.b = j;
        pair.loc = loc;

        if (!facts.may_happen_in_parallel(i, j)) {
          pair.discharge = Discharge::Ordered;
          pair.rule = "fork-join program order";
        } else if (loc.kind == AbsLoc::Kind::Local) {
          pair.discharge = Discharge::PrivateOrFresh;
          pair.rule = "per-element snapshot frame";
        } else if (loc.kind == AbsLoc::Kind::Io) {
          pair.discharge = Discharge::Residue;
          pair.rule = "unordered output interleaving";
          pair.opaque = true;
        } else if (loc.kind == AbsLoc::Kind::Field) {
          const bool wi = vi.effects.writes.count(loc) == 0 ||
                          node_writes_only_fresh(vi, freshness, effects, loc);
          const bool wj = vj.effects.writes.count(loc) == 0 ||
                          node_writes_only_fresh(vj, freshness, effects, loc);
          if (wi && wj) {
            pair.discharge = Discharge::PrivateOrFresh;
            pair.rule = "writes land on instance-fresh objects";
          } else {
            pair.discharge = Discharge::Residue;
            pair.rule = "shared field writes";
            pair.opaque = true;
          }
        } else {
          // Elements / ListShape: refine access pair by access pair.
          const RootFacts& rf =
              facts_for(graph.nodes[static_cast<std::size_t>(i)].method);
          auto it_a = vi.accesses.find(loc);
          auto it_b = vj.accesses.find(loc);
          static const std::vector<Access> kOpaqueOnly = {
              {true, SubClass::Opaque, {}}};
          const std::vector<Access>& A =
              it_a != vi.accesses.end() ? it_a->second : kOpaqueOnly;
          const std::vector<Access>& B =
              it_b != vj.accesses.end() ? it_b->second : kOpaqueOnly;
          bool all_discharged = true;
          bool saw_uniform = false;
          bool saw_roots = false;
          for (const Access& x : A) {
            for (const Access& y : B) {
              if (!x.write && !y.write) continue;
              if (x.sub == SubClass::Uniform && y.sub == SubClass::Uniform) {
                saw_uniform = true;
                continue;  // instance k touches slot k only
              }
              if (roots_separated(freshness, rf, x.root, y.root)) {
                saw_roots = true;
                continue;
              }
              all_discharged = false;
              if (x.sub == SubClass::Opaque || y.sub == SubClass::Opaque)
                pair.opaque = true;
            }
          }
          if (all_discharged) {
            pair.discharge = Discharge::Disjoint;
            pair.rule = saw_uniform && saw_roots
                            ? "induction-uniform subscripts + separated "
                              "allocation roots"
                        : saw_uniform ? "induction-uniform subscripts"
                                      : "separated allocation roots";
          } else {
            pair.discharge = Discharge::Residue;
            pair.rule = pair.opaque
                            ? "subscript reaches memory the analysis cannot "
                              "refine"
                            : "pure induction subscripts beyond the uniform "
                              "refinement";
          }
        }

        switch (pair.discharge) {
          case Discharge::Ordered: ++summary.ordered; break;
          case Discharge::Disjoint: ++summary.disjoint; break;
          case Discharge::PrivateOrFresh: ++summary.private_or_fresh; break;
          case Discharge::Residue: ++summary.residue; break;
        }
        summary.pairs.push_back(std::move(pair));
      }
    }
  }
  return summary;
}

}  // namespace patty::analysis
