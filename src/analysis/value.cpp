#include "analysis/value.hpp"

#include "support/diagnostics.hpp"

namespace patty::analysis {

double Value::to_double() const {
  if (is_int()) return static_cast<double>(as_int());
  if (is_double()) return as_double();
  fatal("Value::to_double on non-numeric value");
}

std::string Value::str() const {
  if (is_null()) return "null";
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    std::string s = std::to_string(as_double());
    return s;
  }
  if (is_bool()) return as_bool() ? "true" : "false";
  if (is_string()) return as_string();
  if (is_object())
    return "<" + (as_object() ? as_object()->cls->name.str()
                              : std::string("null")) +
           ">";
  if (is_array())
    return "<array[" + std::to_string(as_array()->elems.size()) + "]>";
  if (is_list())
    return "<list[" + std::to_string(as_list()->elems.size()) + "]>";
  return "?";
}

bool Value::equals(const Value& other) const {
  if (is_null() || other.is_null()) return is_null() && other.is_null();
  if ((is_int() || is_double()) && (other.is_int() || other.is_double())) {
    if (is_int() && other.is_int()) return as_int() == other.as_int();
    return to_double() == other.to_double();
  }
  if (is_bool() && other.is_bool()) return as_bool() == other.as_bool();
  if (is_string() && other.is_string()) return as_string() == other.as_string();
  if (is_object() && other.is_object()) return as_object() == other.as_object();
  if (is_array() && other.is_array()) return as_array() == other.as_array();
  if (is_list() && other.is_list()) return as_list() == other.as_list();
  return false;
}

Value default_value(const lang::Type& type) {
  using K = lang::Type::Kind;
  switch (type.kind) {
    case K::Int: return Value::of_int(0);
    case K::Double: return Value::of_double(0.0);
    case K::Bool: return Value::of_bool(false);
    case K::String: return Value::of_string("");
    default: return Value();  // null for references and void
  }
}

}  // namespace patty::analysis
