#pragma once
// Static read/write effect analysis.
//
// Abstract locations approximate runtime memory:
//   Local(slot)            one local variable of the analyzed method
//   Field(Class, index)    any instance of Class, that field (type-based
//                          may-alias: two expressions of the same class type
//                          may reference the same object)
//   Elements(type-string)  any element of any array/list of that type
//   ListShape(type-string) the length/backing of any list of that type
//                          (written by push(), read by len()/foreach)
//   Io                     the output stream (print)
//
// This is the pessimistic half of the paper's model; the optimistic half is
// the dynamic dependence profile. Method effects on non-local state are
// summarized with a fixed point over the call graph, so statement-level
// effect queries see through calls.

#include <map>
#include <set>
#include <string>

#include "analysis/callgraph.hpp"
#include "lang/ast.hpp"

namespace patty::analysis {

struct AbsLoc {
  enum class Kind : std::uint8_t { Local, Field, Elements, ListShape, Io };
  Kind kind = Kind::Local;
  int slot = -1;               // Local
  lang::Symbol cls;            // Field: class name (interned)
  int field = -1;              // Field: index
  lang::Symbol type_sig;       // Elements / ListShape: container type string

  [[nodiscard]] std::string key() const;
  [[nodiscard]] std::string pretty(const lang::MethodDecl* context) const;

  /// Three-way comparison matching the legacy `key() < key()` string order
  /// exactly (kind letters E < F < IO < L < S, numeric components by their
  /// decimal spelling) — but field-wise, without building any strings.
  /// Compares interned text, never symbol ids, so set order is
  /// deterministic across runs and threads.
  [[nodiscard]] int cmp(const AbsLoc& other) const;

  friend bool operator<(const AbsLoc& a, const AbsLoc& b) {
    return a.cmp(b) < 0;
  }
  friend bool operator==(const AbsLoc& a, const AbsLoc& b) {
    return a.kind == b.kind && a.slot == b.slot && a.field == b.field &&
           a.cls == b.cls && a.type_sig == b.type_sig;
  }

  static AbsLoc local(int slot);
  static AbsLoc field_loc(lang::Symbol cls, int index);
  static AbsLoc field_loc(const std::string& cls, int index);
  static AbsLoc elements(lang::Symbol type_sig);
  static AbsLoc elements(const std::string& type_sig);
  static AbsLoc list_shape(lang::Symbol type_sig);
  static AbsLoc list_shape(const std::string& type_sig);
  static AbsLoc io();
};

struct EffectSet {
  std::set<AbsLoc> reads;
  std::set<AbsLoc> writes;

  void merge(const EffectSet& other);
  [[nodiscard]] bool writes_intersect_reads(const EffectSet& other) const;
  [[nodiscard]] bool writes_intersect_writes(const EffectSet& other) const;
  /// Locations written by this set and read by `other`.
  [[nodiscard]] std::set<AbsLoc> write_read_overlap(const EffectSet& other) const;
};

class EffectAnalysis {
 public:
  EffectAnalysis(const lang::Program& program, const CallGraph& cg);

  /// Effects of executing one statement subtree (locals included).
  EffectSet stmt_effects(const lang::Stmt& st) const;

  /// Effects of evaluating an expression (locals included).
  EffectSet expr_effects(const lang::Expr& e) const;

  /// Non-local summary of a method (fields/elements/io only).
  const EffectSet& method_summary(const lang::MethodDecl* m) const;

 private:
  void compute_summaries();
  void collect_expr(const lang::Expr& e, EffectSet& out,
                    bool include_locals) const;
  void collect_stmt(const lang::Stmt& st, EffectSet& out,
                    bool include_locals) const;
  void write_target(const lang::Expr& target, EffectSet& out,
                    bool include_locals) const;

  const lang::Program& program_;
  const CallGraph& cg_;
  std::map<const lang::MethodDecl*, EffectSet> summaries_;
};

}  // namespace patty::analysis
