#pragma once
// Static read/write effect analysis.
//
// Abstract locations approximate runtime memory:
//   Local(slot)            one local variable of the analyzed method
//   Field(Class, index)    any instance of Class, that field (type-based
//                          may-alias: two expressions of the same class type
//                          may reference the same object)
//   Elements(type-string)  any element of any array/list of that type
//   ListShape(type-string) the length/backing of any list of that type
//                          (written by push(), read by len()/foreach)
//   Io                     the output stream (print)
//
// This is the pessimistic half of the paper's model; the optimistic half is
// the dynamic dependence profile. Method effects on non-local state are
// summarized with a fixed point over the call graph, so statement-level
// effect queries see through calls.

#include <map>
#include <set>
#include <string>
#include <utility>

#include "analysis/callgraph.hpp"
#include "lang/ast.hpp"

namespace patty::analysis {

struct AbsLoc {
  enum class Kind : std::uint8_t { Local, Field, Elements, ListShape, Io };
  Kind kind = Kind::Local;
  int slot = -1;               // Local
  lang::Symbol cls;            // Field: class name (interned)
  int field = -1;              // Field: index
  lang::Symbol type_sig;       // Elements / ListShape: container type string

  [[nodiscard]] std::string key() const;
  [[nodiscard]] std::string pretty(const lang::MethodDecl* context) const;

  /// Three-way comparison matching the legacy `key() < key()` string order
  /// exactly (kind letters E < F < IO < L < S, numeric components by their
  /// decimal spelling) — but field-wise, without building any strings.
  /// Compares interned text, never symbol ids, so set order is
  /// deterministic across runs and threads.
  [[nodiscard]] int cmp(const AbsLoc& other) const;

  friend bool operator<(const AbsLoc& a, const AbsLoc& b) {
    return a.cmp(b) < 0;
  }
  // Equality delegates to cmp() so it can never disagree with set order:
  // cmp() only inspects the fields its kind actually uses, and comparing
  // interned *text* keeps two locations equal even if a future field (or a
  // second intern table) gave them different raw symbol ids.
  friend bool operator==(const AbsLoc& a, const AbsLoc& b) {
    return a.cmp(b) == 0;
  }

  static AbsLoc local(int slot);
  static AbsLoc field_loc(lang::Symbol cls, int index);
  static AbsLoc field_loc(const std::string& cls, int index);
  static AbsLoc elements(lang::Symbol type_sig);
  static AbsLoc elements(const std::string& type_sig);
  static AbsLoc list_shape(lang::Symbol type_sig);
  static AbsLoc list_shape(const std::string& type_sig);
  static AbsLoc io();
};

struct EffectSet {
  std::set<AbsLoc> reads;
  std::set<AbsLoc> writes;

  void merge(const EffectSet& other);
  [[nodiscard]] bool writes_intersect_reads(const EffectSet& other) const;
  [[nodiscard]] bool writes_intersect_writes(const EffectSet& other) const;
  /// Locations written by this set and read by `other`.
  [[nodiscard]] std::set<AbsLoc> write_read_overlap(const EffectSet& other) const;
};

class EffectAnalysis {
 public:
  EffectAnalysis(const lang::Program& program, const CallGraph& cg);

  /// Effects of executing one statement subtree (locals included).
  EffectSet stmt_effects(const lang::Stmt& st) const;

  /// Effects of evaluating an expression (locals included).
  EffectSet expr_effects(const lang::Expr& e) const;

  /// Non-local summary of a method (fields/elements/io only).
  const EffectSet& method_summary(const lang::MethodDecl* m) const;

 private:
  void compute_summaries();
  void collect_expr(const lang::Expr& e, EffectSet& out,
                    bool include_locals) const;
  void collect_stmt(const lang::Stmt& st, EffectSet& out,
                    bool include_locals) const;
  void write_target(const lang::Expr& target, EffectSet& out,
                    bool include_locals) const;

  const lang::Program& program_;
  const CallGraph& cg_;
  std::map<const lang::MethodDecl*, EffectSet> summaries_;
};

/// Where a method's non-local writes land, relative to its own activation.
/// Locations absent from both sets are written only through objects the
/// activation allocated itself (Fonseca-style freshness) — per-call-private
/// until published, which is what lets the MHP certifier discharge
/// write/write conflicts between concurrent instances of a region node.
struct WriteFreshness {
  /// Some write reaches pre-existing shared state (a field of an object
  /// the activation did not allocate, a non-fresh array/list, or io).
  std::set<AbsLoc> shared;
  /// Some write lands on the method's own receiver (`this`). At a call
  /// site these become fresh when the receiver expression is fresh (the
  /// `new C()` constructor case) and shared otherwise.
  std::set<AbsLoc> via_this;
};

/// Allocation-freshness facts, computed as one whole-program fixpoint over
/// the call graph (greatest fixpoint: start optimistic, knock facts out).
///
/// Two independent fact families:
///  * activation freshness — "this value was allocated during the current
///    call" (returns_fresh, local_is_fresh, write_freshness). Justifies
///    treating writes as instance-private in fork-join regions where each
///    concurrent instance is a separate activation.
///  * allocation rooting — "every store this root ever receives is a
///    syntactic allocation expression" (field_/local_allocation_rooted).
///    An allocation expression produces a brand-new object at exactly one
///    store site, so two distinct allocation-rooted roots can never hold
///    the same object: accesses through them are disjoint regardless of
///    type-based aliasing.
class FreshnessAnalysis {
 public:
  FreshnessAnalysis(const lang::Program& program, const CallGraph& cg,
                    const EffectAnalysis& effects);

  /// Every value the method can return was allocated within the call
  /// (directly, via a fresh local, or by a fresh-returning callee).
  [[nodiscard]] bool returns_fresh(const lang::MethodDecl* m) const;

  /// Every definition of the local is a fresh allocation (New/NewArray, a
  /// fresh-returning call, or a copy of another fresh local). Parameters
  /// and foreach bindings are never fresh.
  [[nodiscard]] bool local_is_fresh(const lang::MethodDecl* m, int slot) const;

  /// Every definition of the local is a direct New/NewArray expression.
  [[nodiscard]] bool local_allocation_rooted(const lang::MethodDecl* m,
                                             int slot) const;

  /// Every store to Field(cls, index) anywhere in the program is a direct
  /// New/NewArray expression (fields never stored are trivially rooted).
  [[nodiscard]] bool field_allocation_rooted(lang::Symbol cls,
                                             int field_index) const;

  /// Shared/via-this classification of m's transitive non-local writes.
  [[nodiscard]] const WriteFreshness& write_freshness(
      const lang::MethodDecl* m) const;

  /// Non-local locations m writes exclusively through objects allocated in
  /// its own activation: summary writes minus shared minus via_this.
  [[nodiscard]] std::set<AbsLoc> fresh_writes(const lang::MethodDecl* m) const;

 private:
  struct MethodFacts {
    bool returns_fresh = false;
    std::set<int> fresh_slots;
    std::set<int> rooted_slots;
    WriteFreshness writes;
  };

  void compute();
  [[nodiscard]] bool expr_is_fresh(const lang::Expr& e,
                                   const MethodFacts& facts) const;

  /// Orders (class name, field index) keys by interned text, then index —
  /// Symbol itself deliberately has no operator< (ids are not stable).
  struct FieldKeyLess {
    bool operator()(const std::pair<lang::Symbol, int>& a,
                    const std::pair<lang::Symbol, int>& b) const {
      if (a.first.view() != b.first.view())
        return a.first.view() < b.first.view();
      return a.second < b.second;
    }
  };

  const lang::Program& program_;
  const CallGraph& cg_;
  const EffectAnalysis& effects_;
  std::map<const lang::MethodDecl*, MethodFacts> facts_;
  /// (class name, field index) pairs with at least one non-allocation store.
  std::set<std::pair<lang::Symbol, int>, FieldKeyLess> unrooted_fields_;
};

}  // namespace patty::analysis
