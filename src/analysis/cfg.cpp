#include "analysis/cfg.hpp"

#include "support/diagnostics.hpp"

namespace patty::analysis {

using lang::Stmt;
using lang::StmtKind;

namespace {

class Builder {
 public:
  Cfg build(const lang::MethodDecl& method) {
    cfg_.entry = add_node(nullptr);
    cfg_.exit = add_node(nullptr);
    // `frontier` is the set of nodes whose control falls through to the
    // next statement in sequence.
    std::vector<int> frontier = {cfg_.entry};
    frontier = lower_block(*method.body, frontier);
    for (int n : frontier) link(n, cfg_.exit);
    return std::move(cfg_);
  }

 private:
  int add_node(const Stmt* st) {
    const int idx = static_cast<int>(cfg_.nodes.size());
    cfg_.nodes.push_back(CfgNode{st, {}, {}});
    if (st) cfg_.index_of[st] = idx;
    return idx;
  }

  void link(int from, int to) {
    cfg_.nodes[static_cast<std::size_t>(from)].succs.push_back(to);
    cfg_.nodes[static_cast<std::size_t>(to)].preds.push_back(from);
  }

  std::vector<int> lower_block(const lang::Block& block,
                               std::vector<int> frontier) {
    for (const auto& s : block.stmts) frontier = lower(*s, std::move(frontier));
    return frontier;
  }

  /// Lower one statement; `frontier` are the nodes that flow into it.
  /// Returns the nodes that flow out of it sequentially.
  std::vector<int> lower(const Stmt& st, std::vector<int> frontier) {
    switch (st.kind) {
      case StmtKind::Annotation:
        return frontier;  // transparent
      case StmtKind::Block:
        return lower_block(st.as<lang::Block>(), std::move(frontier));
      case StmtKind::VarDecl:
      case StmtKind::Assign:
      case StmtKind::ExprStmt: {
        const int node = add_node(&st);
        for (int f : frontier) link(f, node);
        return {node};
      }
      case StmtKind::If: {
        const auto& i = st.as<lang::If>();
        const int cond = add_node(&st);
        for (int f : frontier) link(f, cond);
        std::vector<int> out = lower(*i.then_branch, {cond});
        if (i.else_branch) {
          std::vector<int> else_out = lower(*i.else_branch, {cond});
          out.insert(out.end(), else_out.begin(), else_out.end());
        } else {
          out.push_back(cond);  // fall through when condition is false
        }
        return out;
      }
      case StmtKind::While: {
        const auto& w = st.as<lang::While>();
        const int head = add_node(&st);
        for (int f : frontier) link(f, head);
        break_targets_.emplace_back();
        continue_targets_.emplace_back();
        std::vector<int> body_out = lower(*w.body, {head});
        for (int n : body_out) link(n, head);
        for (int n : continue_targets_.back()) link(n, head);
        std::vector<int> out = std::move(break_targets_.back());
        break_targets_.pop_back();
        continue_targets_.pop_back();
        out.push_back(head);  // loop exit when condition is false
        return out;
      }
      case StmtKind::For: {
        const auto& f = st.as<lang::For>();
        std::vector<int> into = std::move(frontier);
        if (f.init) into = lower(*f.init, std::move(into));
        const int head = add_node(&st);  // condition check
        for (int n : into) link(n, head);
        break_targets_.emplace_back();
        continue_targets_.emplace_back();
        std::vector<int> body_out = lower(*f.body, {head});
        std::vector<int> step_in = std::move(body_out);
        for (int n : continue_targets_.back()) step_in.push_back(n);
        if (f.step) step_in = lower(*f.step, std::move(step_in));
        for (int n : step_in) link(n, head);
        std::vector<int> out = std::move(break_targets_.back());
        break_targets_.pop_back();
        continue_targets_.pop_back();
        out.push_back(head);
        return out;
      }
      case StmtKind::Foreach: {
        const auto& fe = st.as<lang::Foreach>();
        const int head = add_node(&st);
        for (int f : frontier) link(f, head);
        break_targets_.emplace_back();
        continue_targets_.emplace_back();
        std::vector<int> body_out = lower(*fe.body, {head});
        for (int n : body_out) link(n, head);
        for (int n : continue_targets_.back()) link(n, head);
        std::vector<int> out = std::move(break_targets_.back());
        break_targets_.pop_back();
        continue_targets_.pop_back();
        out.push_back(head);
        return out;
      }
      case StmtKind::Return: {
        const int node = add_node(&st);
        for (int f : frontier) link(f, node);
        link(node, cfg_.exit);
        return {};  // nothing falls through
      }
      case StmtKind::Break: {
        const int node = add_node(&st);
        for (int f : frontier) link(f, node);
        if (break_targets_.empty()) fatal("break outside loop reached CFG");
        break_targets_.back().push_back(node);
        return {};
      }
      case StmtKind::Continue: {
        const int node = add_node(&st);
        for (int f : frontier) link(f, node);
        if (continue_targets_.empty()) fatal("continue outside loop reached CFG");
        continue_targets_.back().push_back(node);
        return {};
      }
    }
    fatal("unknown statement kind in CFG builder");
  }

  Cfg cfg_;
  std::vector<std::vector<int>> break_targets_;
  std::vector<std::vector<int>> continue_targets_;
};

}  // namespace

Cfg build_cfg(const lang::MethodDecl& method) {
  Builder b;
  return b.build(method);
}

std::vector<bool> reachable_from_entry(const Cfg& cfg) {
  std::vector<bool> seen(cfg.size(), false);
  std::vector<int> work = {cfg.entry};
  seen[static_cast<std::size_t>(cfg.entry)] = true;
  while (!work.empty()) {
    const int n = work.back();
    work.pop_back();
    for (int s : cfg.nodes[static_cast<std::size_t>(n)].succs) {
      if (!seen[static_cast<std::size_t>(s)]) {
        seen[static_cast<std::size_t>(s)] = true;
        work.push_back(s);
      }
    }
  }
  return seen;
}

}  // namespace patty::analysis
