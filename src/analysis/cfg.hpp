#pragma once
// Intra-method control-flow graph over statements. One of the four inputs
// to the paper's semantic model (CFG x data dependences x call graph x
// runtime information).
//
// Nodes are leaf/control statements (annotations are transparent). Two
// synthetic nodes, entry and exit, bracket the method.

#include <unordered_map>
#include <vector>

#include "lang/ast.hpp"

namespace patty::analysis {

struct CfgNode {
  const lang::Stmt* stmt = nullptr;  // null for entry/exit
  std::vector<int> succs;
  std::vector<int> preds;
};

struct Cfg {
  std::vector<CfgNode> nodes;
  int entry = -1;
  int exit = -1;
  std::unordered_map<const lang::Stmt*, int> index_of;

  [[nodiscard]] std::size_t size() const { return nodes.size(); }
  [[nodiscard]] int node_for(const lang::Stmt* st) const {
    auto it = index_of.find(st);
    return it == index_of.end() ? -1 : it->second;
  }
};

/// Build the CFG of a method body.
Cfg build_cfg(const lang::MethodDecl& method);

/// Nodes reachable from the entry (by index).
std::vector<bool> reachable_from_entry(const Cfg& cfg);

}  // namespace patty::analysis
