#pragma once
// May-happen-in-parallel analysis over fork-join region graphs.
//
// The transformation phase turns each detected candidate into a fork-join
// region: a parallel loop body replicated across workers, a pipeline's
// generator plus stages streaming elements concurrently, or a master/worker
// task set. This module takes that region structure — as a flat node graph,
// pattern-agnostic — computes which node instances may overlap in time, and
// intersects the overlap relation with the effect analysis to enumerate
// *candidate conflicting access pairs*: (node, node, abstract location)
// triples where one side writes and the other touches the same location
// while both may be running.
//
// Most pairs discharge statically:
//   ordered      — the nodes can never overlap (different regions execute
//                  sequentially in program order; sequential-fallback
//                  regions never fork).
//   disjoint     — overlapping instances provably touch different concrete
//                  cells: induction-uniform subscripts (instance k touches
//                  only slot k; same-element cross-stage access is ordered
//                  by the stage queues), or accesses through separated
//                  allocation roots (two allocation-rooted names never hold
//                  the same object — see FreshnessAnalysis).
//   private/fresh— per-instance state: locals (snapshot frames), reduction
//                  accumulators (privatized per chunk), and writes that
//                  only land on objects the instance allocated itself.
//                  Fresh objects become visible to other instances only by
//                  publication through the region's queues/joins, which
//                  order the publisher's writes before any consumer read.
//   residue      — everything else. The caller lowers residue pairs into
//                  systematic interleaving probes (transform/certify).
//
// The split mirrors the tool's philosophy: prove what is provable with the
// pessimistic static machinery, and hand exactly the remainder — no more —
// to the dynamic explorer.

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "analysis/effects.hpp"
#include "lang/ast.hpp"

namespace patty::analysis {

/// One unit of concurrently schedulable work inside a region: a parallel
/// loop body, one pipeline stage, the stream generator, or one
/// master/worker task.
struct MhpNode {
  std::string label;
  /// Region id: nodes of the same region belong to one fork-join construct
  /// and may stream elements concurrently; distinct regions run in program
  /// order (the executor joins every region before continuing).
  int region = 0;
  /// Concurrent instances of this node (workers / stage replication).
  /// multiplicity > 1 means two instances of the node itself may overlap.
  int multiplicity = 1;
  /// Canonical induction slot of the region's element index, -1 if none.
  /// Subscripts that are exactly this variable are per-instance-disjoint.
  int induction_slot = -1;
  /// Top-level statements the node executes (accesses are classified by
  /// walking these; effects reached only through calls are opaque).
  std::vector<const lang::Stmt*> stmts;
  const lang::MethodDecl* method = nullptr;
};

struct MhpGraph {
  std::vector<MhpNode> nodes;
  /// Regions whose nodes actually fork (the plan runs them in parallel).
  /// A region not in this set executes sequentially — the fallback path —
  /// so none of its pairs can overlap.
  std::set<int> concurrent_regions;
};

/// The MHP relation itself. Node instances of the same concurrent region
/// may overlap (streaming: stage s works element k+1 while stage t works
/// element k); a single-instance node does not overlap itself; nodes of
/// different regions — or of a sequential region — never overlap.
class MhpFacts {
 public:
  explicit MhpFacts(const MhpGraph& graph);

  [[nodiscard]] bool may_happen_in_parallel(int a, int b) const;
  [[nodiscard]] bool must_be_sequential(int a, int b) const {
    return !may_happen_in_parallel(a, b);
  }

 private:
  std::vector<int> region_;
  std::vector<int> multiplicity_;
  std::set<int> concurrent_regions_;
};

enum class Discharge : std::uint8_t {
  Ordered,
  Disjoint,
  PrivateOrFresh,
  Residue,
};

const char* discharge_name(Discharge d);

/// One candidate conflicting access pair: nodes a and b may both touch
/// `loc` while overlapping, and at least one side writes.
struct ConflictPair {
  int a = 0;
  int b = 0;
  AbsLoc loc;
  Discharge discharge = Discharge::Residue;
  /// The rule that discharged the pair (or why it is residue).
  std::string rule;
  /// Residue only: true when some access reaches `loc` through memory (a
  /// subscript loading an array/field/local fed by one) or only through a
  /// call summary, so a probe must assume worst-case aliasing. False means
  /// every access is a pure function of the element index: the probe may
  /// model instances on distinct cells (the observed-independence residue
  /// the explorer certifies).
  bool opaque = false;
};

struct MhpSummary {
  std::vector<ConflictPair> pairs;
  std::size_t ordered = 0;
  std::size_t disjoint = 0;
  std::size_t private_or_fresh = 0;
  std::size_t residue = 0;
  [[nodiscard]] std::size_t total() const { return pairs.size(); }
  [[nodiscard]] std::size_t discharged() const {
    return ordered + disjoint + private_or_fresh;
  }
};

/// Enumerate and discharge the conflicting access pairs of a region graph.
MhpSummary enumerate_conflicts(const MhpGraph& graph, const MhpFacts& facts,
                               const EffectAnalysis& effects,
                               const FreshnessAnalysis& freshness);

}  // namespace patty::analysis
