#pragma once
// Dynamic-analysis tracer: the runtime half of the paper's semantic model.
// One profiled execution yields, per statement, execution counts and
// inclusive cost (runtime share), and per loop, trip counts plus the
// *observed* data dependences (optimistic: only dependences that actually
// occurred under the given input data). Branch outcomes feed the
// path-coverage input synthesis for generated parallel unit tests.

#include <atomic>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "analysis/dependence.hpp"
#include "analysis/tracer.hpp"
#include "lang/ast.hpp"

namespace patty::analysis {

/// Thread-safety contract (self-hosted front-end, DESIGN.md):
///  - Statement counters (exec counts, inclusive cost, total cost) are
///    atomics in a map pre-indexed at construction, so stmt_profile() /
///    runtime_share() may be called concurrently with tracing.
///  - Structural trace state (loop stacks, access maps, dep accumulators,
///    branch/call tables) is guarded by an internal mutex, so concurrent
///    exec_stmt through pipeline stage workers is TSan-clean.
///  - loops() / loop_profile() lazily fold accumulated dependences; safe
///    to call from many reader threads at once, but not while a trace is
///    still mutating loop state — finish (join) tracing first.
class Profiler : public Tracer {
 public:
  explicit Profiler(const lang::Program& program);

  // Tracer interface -------------------------------------------------------
  void on_stmt(const lang::Stmt& stmt) override;
  void on_work(std::uint64_t cost) override;
  void on_read(const MemLoc& loc, const lang::Stmt& stmt) override;
  void on_write(const MemLoc& loc, const lang::Stmt& stmt) override;
  void on_loop_enter(const lang::Stmt& loop) override;
  void on_loop_iteration(const lang::Stmt& loop, std::int64_t iter) override;
  void on_loop_exit(const lang::Stmt& loop) override;
  void on_branch(const lang::Stmt& if_stmt, bool taken) override;
  void on_call(const lang::MethodDecl& callee,
               const lang::Stmt* call_site) override;
  void on_return(const lang::MethodDecl& callee) override;

  // Results ----------------------------------------------------------------
  struct StmtProfile {
    std::atomic<std::uint64_t> exec_count{0};
    std::atomic<std::uint64_t> inclusive_cost{0};  // own + nested + callees
  };

  struct LoopProfile {
    const lang::Stmt* loop = nullptr;
    std::uint64_t entries = 0;
    std::uint64_t total_iterations = 0;
    /// Observed dependences, deduplicated; distance is the minimum seen.
    std::vector<Dep> deps;
  };

  struct BranchProfile {
    std::uint64_t taken = 0;
    std::uint64_t not_taken = 0;
  };

  [[nodiscard]] const StmtProfile& stmt_profile(int stmt_id) const;
  [[nodiscard]] std::uint64_t total_cost() const {
    return total_cost_.load(std::memory_order_relaxed);
  }
  /// Fraction of total cost attributed to this statement (inclusive).
  [[nodiscard]] double runtime_share(int stmt_id) const;
  /// Loop profile, or nullptr if the loop never executed.
  [[nodiscard]] const LoopProfile* loop_profile(int loop_stmt_id) const;
  [[nodiscard]] const std::map<int, LoopProfile>& loops() const {
    finalize_deps();
    return loops_;
  }
  [[nodiscard]] const std::map<int, BranchProfile>& branches() const {
    return branches_;
  }
  [[nodiscard]] std::uint64_t call_count(const lang::MethodDecl* m) const;

  /// Approximate additional heap bytes held by the profile (overhead bench).
  [[nodiscard]] std::size_t memory_footprint() const;

 private:
  struct LoopFrame {
    const lang::Stmt* loop;
    std::int64_t iteration = -1;
  };
  struct Access {
    const lang::Stmt* stmt = nullptr;
    // (loop stmt id, iteration) snapshot of the active-loop stack.
    std::vector<std::pair<int, std::int64_t>> loop_iters;
  };
  struct DepAcc {
    bool carried = false;
    std::int64_t min_distance = 0;
    bool has_distance = false;
  };

  void record_dep(const Access& from, const lang::Stmt& to, DepKind kind,
                  const MemLoc& loc);
  std::vector<std::pair<int, std::int64_t>> loop_snapshot() const;
  void charge_chain(std::uint64_t amount);
  void finalize_deps() const;

  const lang::Program& program_;
  std::unordered_map<int, const lang::Stmt*> stmt_by_id_;
  std::unordered_map<int, int> parent_of_;  // stmt id -> parent stmt id (-1 top)

  // Pre-indexed at construction with a slot for *every* statement, so the
  // map structure never mutates during tracing: counter updates are atomic
  // fetch_adds into stable nodes, and concurrent queries are plain finds.
  std::unordered_map<int, StmtProfile> stmt_profiles_;
  // Mutable so const accessors can lazily fold loop_deps_ into deps vectors.
  mutable std::map<int, LoopProfile> loops_;
  // (from, to, kind, local-slot-or-minus-one) -> carried/distance info,
  // per loop. The slot component supports scalar privatization downstream.
  std::map<int, std::map<std::tuple<int, int, int, std::int64_t>, DepAcc>>
      loop_deps_;
  mutable std::atomic<bool> deps_dirty_{false};
  std::map<int, BranchProfile> branches_;
  std::unordered_map<const lang::MethodDecl*, std::uint64_t> call_counts_;

  /// Guards all structural trace state below plus loops_/loop_deps_/
  /// branches_/call_counts_ (and the lazy dep fold). Uncontended in the
  /// common single-threaded trace; serializes concurrent stage workers.
  mutable std::mutex trace_mutex_;
  std::vector<LoopFrame> loop_stack_;
  std::vector<const lang::Stmt*> call_site_stack_;
  const lang::Stmt* current_stmt_ = nullptr;
  std::atomic<std::uint64_t> total_cost_{0};

  std::unordered_map<MemLoc, Access, MemLocHash> last_writer_;
  std::unordered_map<MemLoc, Access, MemLocHash> last_reader_;
};

/// Finalize: move accumulated dep maps into LoopProfile::deps. Called
/// automatically by accessors; idempotent.
}  // namespace patty::analysis
