#include "analysis/callgraph.hpp"

#include <algorithm>

namespace patty::analysis {

CallGraph build_call_graph(const lang::Program& program) {
  CallGraph g;
  for (const auto& cls : program.classes) {
    for (const auto& m : cls->methods) {
      g.index_of[m.get()] = static_cast<int>(g.methods.size());
      g.methods.push_back(m.get());
    }
  }
  g.callees.resize(g.methods.size());
  g.callers.resize(g.methods.size());

  for (std::size_t i = 0; i < g.methods.size(); ++i) {
    const lang::MethodDecl* m = g.methods[i];
    std::vector<int>& out = g.callees[i];
    lang::for_each_expr(*m->body, [&](const lang::Expr& e) {
      const lang::MethodDecl* callee = nullptr;
      if (e.kind == lang::ExprKind::Call) {
        callee = e.as<lang::Call>().resolved;
      } else if (e.kind == lang::ExprKind::New) {
        const lang::New& n = e.as<lang::New>();
        if (n.resolved) {
          static const lang::Symbol kInit = lang::Symbol::intern("init");
          callee = n.resolved->ctor ? n.resolved->ctor
                                    : n.resolved->find_method(kInit);
        }
      }
      if (!callee) return;
      const int idx = g.index(callee);
      if (idx >= 0 && std::find(out.begin(), out.end(), idx) == out.end()) {
        out.push_back(idx);
        g.callers[static_cast<std::size_t>(idx)].push_back(static_cast<int>(i));
      }
    });
  }
  return g;
}

std::unordered_set<const lang::MethodDecl*> CallGraph::reachable(
    const lang::MethodDecl* root) const {
  std::unordered_set<const lang::MethodDecl*> result;
  const int start = index(root);
  if (start < 0) return result;
  std::vector<int> work = {start};
  result.insert(root);
  while (!work.empty()) {
    const int n = work.back();
    work.pop_back();
    for (int c : callees[static_cast<std::size_t>(n)]) {
      const lang::MethodDecl* m = methods[static_cast<std::size_t>(c)];
      if (result.insert(m).second) work.push_back(c);
    }
  }
  return result;
}

bool CallGraph::is_recursive(const lang::MethodDecl* m) const {
  const int start = index(m);
  if (start < 0) return false;
  // Reachable from any direct callee back to m.
  std::vector<int> work = callees[static_cast<std::size_t>(start)];
  std::unordered_set<int> seen(work.begin(), work.end());
  while (!work.empty()) {
    const int n = work.back();
    work.pop_back();
    if (n == start) return true;
    for (int c : callees[static_cast<std::size_t>(n)]) {
      if (seen.insert(c).second) work.push_back(c);
    }
  }
  return false;
}

}  // namespace patty::analysis
