#include "analysis/dependence.hpp"

#include "support/diagnostics.hpp"

namespace patty::analysis {

const char* dep_kind_name(DepKind kind) {
  switch (kind) {
    case DepKind::True: return "true";
    case DepKind::Anti: return "anti";
    case DepKind::Output: return "output";
  }
  return "?";
}

std::string Dep::str() const {
  std::string s = std::string(dep_kind_name(kind)) + " dep s" +
                  std::to_string(from_id) + " -> s" + std::to_string(to_id);
  if (carried) {
    s += " (carried";
    if (distance > 0) s += ", distance " + std::to_string(distance);
    s += ")";
  }
  if (!note.empty()) s += " on " + note;
  return s;
}

std::vector<const lang::Stmt*> loop_body_statements(const lang::Stmt& loop) {
  const lang::Stmt* body = nullptr;
  switch (loop.kind) {
    case lang::StmtKind::For: body = loop.as<lang::For>().body.get(); break;
    case lang::StmtKind::While: body = loop.as<lang::While>().body.get(); break;
    case lang::StmtKind::Foreach:
      body = loop.as<lang::Foreach>().body.get();
      break;
    default:
      fatal("loop_body_statements on non-loop statement");
  }
  std::vector<const lang::Stmt*> out;
  if (body->kind == lang::StmtKind::Block) {
    for (const auto& s : body->as<lang::Block>().stmts) {
      if (s->kind != lang::StmtKind::Annotation) out.push_back(s.get());
    }
  } else if (body->kind != lang::StmtKind::Annotation) {
    out.push_back(body);
  }
  return out;
}

std::set<int> body_declared_slots(
    const std::vector<const lang::Stmt*>& body_stmts) {
  std::set<int> slots;
  for (const lang::Stmt* top : body_stmts) {
    lang::for_each_stmt(*top, [&](const lang::Stmt& st) {
      if (st.kind == lang::StmtKind::VarDecl)
        slots.insert(st.as<lang::VarDecl>().slot);
      if (st.kind == lang::StmtKind::Foreach)
        slots.insert(st.as<lang::Foreach>().slot);
      if (st.kind == lang::StmtKind::For) {
        const auto& f = st.as<lang::For>();
        if (f.init && f.init->kind == lang::StmtKind::VarDecl)
          slots.insert(f.init->as<lang::VarDecl>().slot);
      }
    });
  }
  return slots;
}

int owning_body_statement(const std::vector<const lang::Stmt*>& body_stmts,
                          int stmt_id) {
  for (const lang::Stmt* top : body_stmts) {
    bool found = false;
    lang::for_each_stmt(*top, [&](const lang::Stmt& st) {
      if (st.id == stmt_id) found = true;
    });
    if (found) return top->id;
  }
  return -1;
}

namespace {

std::string describe_overlap(const std::set<AbsLoc>& locs,
                             const lang::MethodDecl* context) {
  std::string out;
  for (const AbsLoc& l : locs) {
    if (!out.empty()) out += ", ";
    out += l.pretty(context);
  }
  return out;
}

std::set<AbsLoc> intersect(const std::set<AbsLoc>& a,
                           const std::set<AbsLoc>& b) {
  std::set<AbsLoc> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.begin()));
  return out;
}

}  // namespace

int canonical_induction_slot(const lang::Stmt& loop) {
  if (loop.kind != lang::StmtKind::For) return -1;
  const auto& f = loop.as<lang::For>();
  if (!f.init || !f.step) return -1;
  int slot = -1;
  if (f.init->kind == lang::StmtKind::VarDecl)
    slot = f.init->as<lang::VarDecl>().slot;
  else if (f.init->kind == lang::StmtKind::Assign) {
    const auto& a = f.init->as<lang::Assign>();
    if (a.target->kind == lang::ExprKind::VarRef &&
        a.target->as<lang::VarRef>().is_local())
      slot = a.target->as<lang::VarRef>().slot;
  }
  if (slot < 0) return -1;
  // Step: `i = i + <intlit>` or `i = i - <intlit>` (i++ desugars to this).
  if (f.step->kind != lang::StmtKind::Assign) return -1;
  const auto& step = f.step->as<lang::Assign>();
  if (step.target->kind != lang::ExprKind::VarRef ||
      step.target->as<lang::VarRef>().slot != slot)
    return -1;
  if (step.value->kind != lang::ExprKind::Binary) return -1;
  const auto& bin = step.value->as<lang::Binary>();
  if (bin.op != lang::BinaryOp::Add && bin.op != lang::BinaryOp::Sub)
    return -1;
  auto is_slot = [&](const lang::Expr& e) {
    return e.kind == lang::ExprKind::VarRef &&
           e.as<lang::VarRef>().slot == slot;
  };
  auto is_nonzero_lit = [](const lang::Expr& e) {
    return e.kind == lang::ExprKind::IntLit && e.as<lang::IntLit>().value != 0;
  };
  const bool canonical_step =
      (is_slot(*bin.lhs) && is_nonzero_lit(*bin.rhs)) ||
      (bin.op == lang::BinaryOp::Add && is_nonzero_lit(*bin.lhs) &&
       is_slot(*bin.rhs));
  if (!canonical_step) return -1;
  // The body must never reassign the induction variable.
  bool reassigned = false;
  lang::for_each_stmt(*f.body, [&](const lang::Stmt& st) {
    if (st.kind == lang::StmtKind::Assign) {
      const auto& a = st.as<lang::Assign>();
      if (a.target->kind == lang::ExprKind::VarRef &&
          a.target->as<lang::VarRef>().slot == slot)
        reassigned = true;
    }
    if (st.kind == lang::StmtKind::Foreach &&
        st.as<lang::Foreach>().slot == slot)
      reassigned = true;
  });
  return reassigned ? -1 : slot;
}

std::set<AbsLoc> induction_uniform_elements(const lang::Stmt& loop,
                                            const EffectAnalysis& effects) {
  const int slot = canonical_induction_slot(loop);
  if (slot < 0) return {};
  const lang::Stmt* body = loop.as<lang::For>().body.get();
  std::set<AbsLoc> uniform;
  std::set<AbsLoc> poisoned;
  static const lang::Symbol kUnknown = lang::Symbol::intern("?");
  lang::for_each_expr(*body, [&](const lang::Expr& e) {
    if (e.kind == lang::ExprKind::IndexAccess) {
      const auto& ix = e.as<lang::IndexAccess>();
      const AbsLoc loc = AbsLoc::elements(
          ix.base->type ? ix.base->type->sig() : kUnknown);
      const bool exact_induction =
          ix.index->kind == lang::ExprKind::VarRef &&
          ix.index->as<lang::VarRef>().slot == slot;
      (exact_induction ? uniform : poisoned).insert(loc);
      return;
    }
    // Elements effects entering through a callee carry unknown subscripts.
    const lang::MethodDecl* callee = nullptr;
    if (e.kind == lang::ExprKind::Call) callee = e.as<lang::Call>().resolved;
    if (e.kind == lang::ExprKind::New) {
      const auto& n = e.as<lang::New>();
      if (n.resolved) callee = n.resolved->find_method("init");
    }
    if (!callee) return;
    const EffectSet& summary = effects.method_summary(callee);
    for (const std::set<AbsLoc>* side : {&summary.reads, &summary.writes})
      for (const AbsLoc& l : *side)
        if (l.kind == AbsLoc::Kind::Elements) poisoned.insert(l);
  });
  for (const AbsLoc& p : poisoned) uniform.erase(p);
  return uniform;
}

std::vector<Dep> static_loop_dependences(
    const std::vector<const lang::Stmt*>& body_stmts,
    const EffectAnalysis& effects, const lang::MethodDecl* context,
    const std::set<AbsLoc>* refuted_carried) {
  std::vector<EffectSet> sets;
  sets.reserve(body_stmts.size());
  for (const lang::Stmt* st : body_stmts) sets.push_back(effects.stmt_effects(*st));

  // Scalar privatization: anti/output conflicts that exist only through a
  // local declared inside the body do not cross iterations.
  const std::set<int> privatized = body_declared_slots(body_stmts);
  auto without_privatized = [&](std::set<AbsLoc> locs) {
    for (auto it = locs.begin(); it != locs.end();) {
      if (it->kind == AbsLoc::Kind::Local && privatized.count(it->slot))
        it = locs.erase(it);
      else
        ++it;
    }
    return locs;
  };

  std::vector<Dep> deps;
  auto add = [&](int from, int to, DepKind kind, bool carried,
                 std::set<AbsLoc> locs) {
    // Carried dependences never arise through privatized per-iteration
    // temporaries (true deps through them are impossible by scoping).
    if (carried) {
      locs = without_privatized(std::move(locs));
      if (refuted_carried)
        for (const AbsLoc& r : *refuted_carried) locs.erase(r);
    }
    if (locs.empty()) return;
    Dep d;
    d.from_id = body_stmts[static_cast<std::size_t>(from)]->id;
    d.to_id = body_stmts[static_cast<std::size_t>(to)]->id;
    d.kind = kind;
    d.carried = carried;
    if (locs.size() == 1 && locs.begin()->kind == AbsLoc::Kind::Local) {
      d.via_local = true;
      d.local_slot = locs.begin()->slot;
    }
    d.note = describe_overlap(locs, context);
    deps.push_back(std::move(d));
  };

  const int n = static_cast<int>(body_stmts.size());
  for (int i = 0; i < n; ++i) {
    const auto si = static_cast<std::size_t>(i);
    // Self-carried true dependence (accumulator pattern).
    add(i, i, DepKind::True, /*carried=*/true,
        intersect(sets[si].writes, sets[si].reads));
    for (int j = i + 1; j < n; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      // Intra-iteration (forward) dependences.
      add(i, j, DepKind::True, false, intersect(sets[si].writes, sets[sj].reads));
      add(i, j, DepKind::Anti, false, intersect(sets[si].reads, sets[sj].writes));
      add(i, j, DepKind::Output, false,
          intersect(sets[si].writes, sets[sj].writes));
      // Loop-carried (backward) dependences.
      add(j, i, DepKind::True, true, intersect(sets[sj].writes, sets[si].reads));
      add(j, i, DepKind::Anti, true, intersect(sets[sj].reads, sets[si].writes));
      add(j, i, DepKind::Output, true,
          intersect(sets[sj].writes, sets[si].writes));
    }
  }
  return deps;
}

}  // namespace patty::analysis
