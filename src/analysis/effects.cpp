#include "analysis/effects.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "support/diagnostics.hpp"

namespace patty::analysis {

using lang::ExprKind;
using lang::StmtKind;
using lang::Symbol;

namespace {

/// Rank of each kind in the legacy key order: "E:" < "F:" < "IO" < "L:" < "S:".
int kind_rank(AbsLoc::Kind k) {
  switch (k) {
    case AbsLoc::Kind::Elements: return 0;
    case AbsLoc::Kind::Field: return 1;
    case AbsLoc::Kind::Io: return 2;
    case AbsLoc::Kind::Local: return 3;
    case AbsLoc::Kind::ListShape: return 4;
  }
  return 5;
}

/// Compare non-negative ints by their decimal spelling ("10" < "2"),
/// matching how the legacy string keys ordered numeric components.
int cmp_int_lex(int a, int b) {
  char ba[16];
  char bb[16];
  const int la = std::snprintf(ba, sizeof(ba), "%d", a);
  const int lb = std::snprintf(bb, sizeof(bb), "%d", b);
  const int c = std::memcmp(ba, bb, static_cast<std::size_t>(std::min(la, lb)));
  if (c != 0) return c;
  return la - lb;
}

int cmp_text(Symbol a, Symbol b) {
  if (a == b) return 0;
  return a.view().compare(b.view());
}

/// Compare "cls:field" the way the legacy key string did, without building
/// it: when one class name is a prefix of the other, the shorter one is
/// followed by ':' in the key, which sorts before any identifier character
/// that is >= ':' and after digits.
int cmp_field_key(const AbsLoc& a, const AbsLoc& b) {
  const std::string_view sa = a.cls.view();
  const std::string_view sb = b.cls.view();
  const std::size_t common = std::min(sa.size(), sb.size());
  const int c = std::memcmp(sa.data(), sb.data(), common);
  if (c != 0) return c;
  if (sa.size() == sb.size()) return cmp_int_lex(a.field, b.field);
  if (sa.size() < sb.size()) return ':' < sb[common] ? -1 : 1;
  return sa[common] < ':' ? -1 : 1;
}

}  // namespace

int AbsLoc::cmp(const AbsLoc& other) const {
  const int ra = kind_rank(kind);
  const int rb = kind_rank(other.kind);
  if (ra != rb) return ra - rb;
  switch (kind) {
    case Kind::Local: return cmp_int_lex(slot, other.slot);
    case Kind::Field: return cmp_field_key(*this, other);
    case Kind::Elements:
    case Kind::ListShape: return cmp_text(type_sig, other.type_sig);
    case Kind::Io: return 0;
  }
  return 0;
}

std::string AbsLoc::key() const {
  switch (kind) {
    case Kind::Local: return "L:" + std::to_string(slot);
    case Kind::Field: return "F:" + cls + ":" + std::to_string(field);
    case Kind::Elements: return "E:" + type_sig;
    case Kind::ListShape: return "S:" + type_sig;
    case Kind::Io: return "IO";
  }
  return "?";
}

std::string AbsLoc::pretty(const lang::MethodDecl* context) const {
  switch (kind) {
    case Kind::Local: {
      if (context && slot >= 0 &&
          slot < static_cast<int>(context->slot_names.size()) &&
          !context->slot_names[static_cast<std::size_t>(slot)].empty())
        return "local " + context->slot_names[static_cast<std::size_t>(slot)];
      return "local #" + std::to_string(slot);
    }
    case Kind::Field: return "field " + cls + "#" + std::to_string(field);
    case Kind::Elements: return "elements of " + type_sig;
    case Kind::ListShape: return "shape of " + type_sig;
    case Kind::Io: return "output stream";
  }
  return "?";
}

AbsLoc AbsLoc::local(int slot) {
  AbsLoc l;
  l.kind = Kind::Local;
  l.slot = slot;
  return l;
}
AbsLoc AbsLoc::field_loc(Symbol cls, int index) {
  AbsLoc l;
  l.kind = Kind::Field;
  l.cls = cls;
  l.field = index;
  return l;
}
AbsLoc AbsLoc::field_loc(const std::string& cls, int index) {
  return field_loc(Symbol::intern(cls), index);
}
AbsLoc AbsLoc::elements(Symbol type_sig) {
  AbsLoc l;
  l.kind = Kind::Elements;
  l.type_sig = type_sig;
  return l;
}
AbsLoc AbsLoc::elements(const std::string& type_sig) {
  return elements(Symbol::intern(type_sig));
}
AbsLoc AbsLoc::list_shape(Symbol type_sig) {
  AbsLoc l;
  l.kind = Kind::ListShape;
  l.type_sig = type_sig;
  return l;
}
AbsLoc AbsLoc::list_shape(const std::string& type_sig) {
  return list_shape(Symbol::intern(type_sig));
}
AbsLoc AbsLoc::io() {
  AbsLoc l;
  l.kind = Kind::Io;
  return l;
}

void EffectSet::merge(const EffectSet& other) {
  reads.insert(other.reads.begin(), other.reads.end());
  writes.insert(other.writes.begin(), other.writes.end());
}

namespace {
bool intersects(const std::set<AbsLoc>& a, const std::set<AbsLoc>& b) {
  // Sets are ordered by key; linear merge scan.
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return true;
    if (*ia < *ib) ++ia;
    else ++ib;
  }
  return false;
}
}  // namespace

bool EffectSet::writes_intersect_reads(const EffectSet& other) const {
  return intersects(writes, other.reads);
}

bool EffectSet::writes_intersect_writes(const EffectSet& other) const {
  return intersects(writes, other.writes);
}

std::set<AbsLoc> EffectSet::write_read_overlap(const EffectSet& other) const {
  std::set<AbsLoc> out;
  std::set_intersection(writes.begin(), writes.end(), other.reads.begin(),
                        other.reads.end(), std::inserter(out, out.begin()));
  return out;
}

EffectAnalysis::EffectAnalysis(const lang::Program& program,
                               const CallGraph& cg)
    : program_(program), cg_(cg) {
  compute_summaries();
}

const EffectSet& EffectAnalysis::method_summary(
    const lang::MethodDecl* m) const {
  auto it = summaries_.find(m);
  if (it == summaries_.end()) fatal("no effect summary for method");
  return it->second;
}

void EffectAnalysis::compute_summaries() {
  // Initialize empty, iterate to fixed point (terminates: sets only grow and
  // the abstract location universe is finite).
  for (const lang::MethodDecl* m : cg_.methods) summaries_[m];
  bool changed = true;
  while (changed) {
    changed = false;
    for (const lang::MethodDecl* m : cg_.methods) {
      EffectSet fresh;
      collect_stmt(*m->body, fresh, /*include_locals=*/false);
      EffectSet& current = summaries_[m];
      const std::size_t before = current.reads.size() + current.writes.size();
      current.merge(fresh);
      if (current.reads.size() + current.writes.size() != before)
        changed = true;
    }
  }
}

EffectSet EffectAnalysis::stmt_effects(const lang::Stmt& st) const {
  EffectSet out;
  collect_stmt(st, out, /*include_locals=*/true);
  return out;
}

EffectSet EffectAnalysis::expr_effects(const lang::Expr& e) const {
  EffectSet out;
  collect_expr(e, out, /*include_locals=*/true);
  return out;
}

void EffectAnalysis::collect_stmt(const lang::Stmt& st, EffectSet& out,
                                  bool include_locals) const {
  switch (st.kind) {
    case StmtKind::Block:
      for (const auto& s : st.as<lang::Block>().stmts)
        collect_stmt(*s, out, include_locals);
      break;
    case StmtKind::VarDecl: {
      const auto& d = st.as<lang::VarDecl>();
      if (d.init) collect_expr(*d.init, out, include_locals);
      if (include_locals) out.writes.insert(AbsLoc::local(d.slot));
      break;
    }
    case StmtKind::Assign: {
      const auto& a = st.as<lang::Assign>();
      collect_expr(*a.value, out, include_locals);
      write_target(*a.target, out, include_locals);
      break;
    }
    case StmtKind::ExprStmt:
      collect_expr(*st.as<lang::ExprStmt>().expr, out, include_locals);
      break;
    case StmtKind::If: {
      const auto& i = st.as<lang::If>();
      collect_expr(*i.cond, out, include_locals);
      collect_stmt(*i.then_branch, out, include_locals);
      if (i.else_branch) collect_stmt(*i.else_branch, out, include_locals);
      break;
    }
    case StmtKind::While: {
      const auto& w = st.as<lang::While>();
      collect_expr(*w.cond, out, include_locals);
      collect_stmt(*w.body, out, include_locals);
      break;
    }
    case StmtKind::For: {
      const auto& f = st.as<lang::For>();
      if (f.init) collect_stmt(*f.init, out, include_locals);
      if (f.cond) collect_expr(*f.cond, out, include_locals);
      if (f.step) collect_stmt(*f.step, out, include_locals);
      collect_stmt(*f.body, out, include_locals);
      break;
    }
    case StmtKind::Foreach: {
      const auto& f = st.as<lang::Foreach>();
      collect_expr(*f.iterable, out, include_locals);
      if (f.iterable->type)
        out.reads.insert(AbsLoc::list_shape(f.iterable->type->sig()));
      if (include_locals) out.writes.insert(AbsLoc::local(f.slot));
      collect_stmt(*f.body, out, include_locals);
      break;
    }
    case StmtKind::Return: {
      const auto& r = st.as<lang::Return>();
      if (r.value) collect_expr(*r.value, out, include_locals);
      break;
    }
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Annotation:
      break;
  }
}

void EffectAnalysis::write_target(const lang::Expr& target, EffectSet& out,
                                  bool include_locals) const {
  switch (target.kind) {
    case ExprKind::VarRef: {
      const auto& ref = target.as<lang::VarRef>();
      if (ref.is_local()) {
        if (include_locals) out.writes.insert(AbsLoc::local(ref.slot));
      } else {
        static const Symbol kUnknown = Symbol::intern("?");
        out.writes.insert(AbsLoc::field_loc(
            ref.owner_class ? ref.owner_class->name : kUnknown,
            ref.field_index));
      }
      break;
    }
    case ExprKind::FieldAccess: {
      const auto& fa = target.as<lang::FieldAccess>();
      collect_expr(*fa.object, out, include_locals);
      static const Symbol kUnknown = Symbol::intern("?");
      const Symbol cls = fa.object->type ? fa.object->type->sig() : kUnknown;
      out.writes.insert(AbsLoc::field_loc(cls, fa.field_index));
      break;
    }
    case ExprKind::IndexAccess: {
      const auto& ix = target.as<lang::IndexAccess>();
      collect_expr(*ix.base, out, include_locals);
      collect_expr(*ix.index, out, include_locals);
      static const Symbol kUnknown = Symbol::intern("?");
      const Symbol sig = ix.base->type ? ix.base->type->sig() : kUnknown;
      out.writes.insert(AbsLoc::elements(sig));
      break;
    }
    default:
      fatal("invalid assignment target in effect analysis");
  }
}

void EffectAnalysis::collect_expr(const lang::Expr& e, EffectSet& out,
                                  bool include_locals) const {
  switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::DoubleLit:
    case ExprKind::BoolLit:
    case ExprKind::StringLit:
    case ExprKind::NullLit:
      break;
    case ExprKind::VarRef: {
      const auto& ref = e.as<lang::VarRef>();
      if (ref.is_local()) {
        if (include_locals) out.reads.insert(AbsLoc::local(ref.slot));
      } else {
        static const Symbol kUnknown = Symbol::intern("?");
        out.reads.insert(AbsLoc::field_loc(
            ref.owner_class ? ref.owner_class->name : kUnknown,
            ref.field_index));
      }
      break;
    }
    case ExprKind::FieldAccess: {
      const auto& fa = e.as<lang::FieldAccess>();
      collect_expr(*fa.object, out, include_locals);
      static const Symbol kUnknown = Symbol::intern("?");
      const Symbol cls = fa.object->type ? fa.object->type->sig() : kUnknown;
      out.reads.insert(AbsLoc::field_loc(cls, fa.field_index));
      break;
    }
    case ExprKind::IndexAccess: {
      const auto& ix = e.as<lang::IndexAccess>();
      collect_expr(*ix.base, out, include_locals);
      collect_expr(*ix.index, out, include_locals);
      static const Symbol kUnknown = Symbol::intern("?");
      const Symbol sig = ix.base->type ? ix.base->type->sig() : kUnknown;
      out.reads.insert(AbsLoc::elements(sig));
      break;
    }
    case ExprKind::Call: {
      const auto& c = e.as<lang::Call>();
      if (c.receiver) collect_expr(*c.receiver, out, include_locals);
      for (const auto& a : c.args) collect_expr(*a, out, include_locals);
      if (c.resolved) {
        auto it = summaries_.find(c.resolved);
        if (it != summaries_.end()) out.merge(it->second);
      } else {
        // Builtin effects.
        switch (c.builtin) {
          case lang::Builtin::Print:
            out.writes.insert(AbsLoc::io());
            break;
          case lang::Builtin::Push: {
            static const Symbol kUnknown = Symbol::intern("?");
            const Symbol sig =
                c.args[0]->type ? c.args[0]->type->sig() : kUnknown;
            out.writes.insert(AbsLoc::list_shape(sig));
            break;
          }
          case lang::Builtin::Len: {
            const lang::TypePtr& t = c.args[0]->type;
            if (t && t->kind == lang::Type::Kind::List)
              out.reads.insert(AbsLoc::list_shape(t->sig()));
            break;
          }
          default:
            break;  // pure builtins
        }
      }
      break;
    }
    case ExprKind::New: {
      const auto& n = e.as<lang::New>();
      for (const auto& a : n.args) collect_expr(*a, out, include_locals);
      if (n.resolved) {
        static const Symbol kInit = Symbol::intern("init");
        if (const lang::MethodDecl* ctor = n.resolved->find_method(kInit)) {
          auto it = summaries_.find(ctor);
          if (it != summaries_.end()) out.merge(it->second);
        }
      }
      break;
    }
    case ExprKind::NewArray: {
      const auto& n = e.as<lang::NewArray>();
      if (n.size) collect_expr(*n.size, out, include_locals);
      break;
    }
    case ExprKind::Binary: {
      const auto& b = e.as<lang::Binary>();
      collect_expr(*b.lhs, out, include_locals);
      collect_expr(*b.rhs, out, include_locals);
      break;
    }
    case ExprKind::Unary:
      collect_expr(*e.as<lang::Unary>().operand, out, include_locals);
      break;
  }
}

}  // namespace patty::analysis
