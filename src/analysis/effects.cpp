#include "analysis/effects.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "support/diagnostics.hpp"

namespace patty::analysis {

using lang::ExprKind;
using lang::StmtKind;
using lang::Symbol;

namespace {

/// Rank of each kind in the legacy key order: "E:" < "F:" < "IO" < "L:" < "S:".
int kind_rank(AbsLoc::Kind k) {
  switch (k) {
    case AbsLoc::Kind::Elements: return 0;
    case AbsLoc::Kind::Field: return 1;
    case AbsLoc::Kind::Io: return 2;
    case AbsLoc::Kind::Local: return 3;
    case AbsLoc::Kind::ListShape: return 4;
  }
  return 5;
}

/// Compare non-negative ints by their decimal spelling ("10" < "2"),
/// matching how the legacy string keys ordered numeric components.
int cmp_int_lex(int a, int b) {
  char ba[16];
  char bb[16];
  const int la = std::snprintf(ba, sizeof(ba), "%d", a);
  const int lb = std::snprintf(bb, sizeof(bb), "%d", b);
  const int c = std::memcmp(ba, bb, static_cast<std::size_t>(std::min(la, lb)));
  if (c != 0) return c;
  return la - lb;
}

int cmp_text(Symbol a, Symbol b) {
  if (a == b) return 0;
  return a.view().compare(b.view());
}

/// Compare "cls:field" the way the legacy key string did, without building
/// it: when one class name is a prefix of the other, the shorter one is
/// followed by ':' in the key, which sorts before any identifier character
/// that is >= ':' and after digits.
int cmp_field_key(const AbsLoc& a, const AbsLoc& b) {
  const std::string_view sa = a.cls.view();
  const std::string_view sb = b.cls.view();
  const std::size_t common = std::min(sa.size(), sb.size());
  const int c = std::memcmp(sa.data(), sb.data(), common);
  if (c != 0) return c;
  if (sa.size() == sb.size()) return cmp_int_lex(a.field, b.field);
  if (sa.size() < sb.size()) return ':' < sb[common] ? -1 : 1;
  return sa[common] < ':' ? -1 : 1;
}

}  // namespace

int AbsLoc::cmp(const AbsLoc& other) const {
  const int ra = kind_rank(kind);
  const int rb = kind_rank(other.kind);
  if (ra != rb) return ra - rb;
  switch (kind) {
    case Kind::Local: return cmp_int_lex(slot, other.slot);
    case Kind::Field: return cmp_field_key(*this, other);
    case Kind::Elements:
    case Kind::ListShape: return cmp_text(type_sig, other.type_sig);
    case Kind::Io: return 0;
  }
  return 0;
}

std::string AbsLoc::key() const {
  switch (kind) {
    case Kind::Local: return "L:" + std::to_string(slot);
    case Kind::Field: return "F:" + cls + ":" + std::to_string(field);
    case Kind::Elements: return "E:" + type_sig;
    case Kind::ListShape: return "S:" + type_sig;
    case Kind::Io: return "IO";
  }
  return "?";
}

std::string AbsLoc::pretty(const lang::MethodDecl* context) const {
  switch (kind) {
    case Kind::Local: {
      if (context && slot >= 0 &&
          slot < static_cast<int>(context->slot_names.size()) &&
          !context->slot_names[static_cast<std::size_t>(slot)].empty())
        return "local " + context->slot_names[static_cast<std::size_t>(slot)];
      return "local #" + std::to_string(slot);
    }
    case Kind::Field: return "field " + cls + "#" + std::to_string(field);
    case Kind::Elements: return "elements of " + type_sig;
    case Kind::ListShape: return "shape of " + type_sig;
    case Kind::Io: return "output stream";
  }
  return "?";
}

AbsLoc AbsLoc::local(int slot) {
  AbsLoc l;
  l.kind = Kind::Local;
  l.slot = slot;
  return l;
}
AbsLoc AbsLoc::field_loc(Symbol cls, int index) {
  AbsLoc l;
  l.kind = Kind::Field;
  l.cls = cls;
  l.field = index;
  return l;
}
AbsLoc AbsLoc::field_loc(const std::string& cls, int index) {
  return field_loc(Symbol::intern(cls), index);
}
AbsLoc AbsLoc::elements(Symbol type_sig) {
  AbsLoc l;
  l.kind = Kind::Elements;
  l.type_sig = type_sig;
  return l;
}
AbsLoc AbsLoc::elements(const std::string& type_sig) {
  return elements(Symbol::intern(type_sig));
}
AbsLoc AbsLoc::list_shape(Symbol type_sig) {
  AbsLoc l;
  l.kind = Kind::ListShape;
  l.type_sig = type_sig;
  return l;
}
AbsLoc AbsLoc::list_shape(const std::string& type_sig) {
  return list_shape(Symbol::intern(type_sig));
}
AbsLoc AbsLoc::io() {
  AbsLoc l;
  l.kind = Kind::Io;
  return l;
}

void EffectSet::merge(const EffectSet& other) {
  reads.insert(other.reads.begin(), other.reads.end());
  writes.insert(other.writes.begin(), other.writes.end());
}

namespace {
bool intersects(const std::set<AbsLoc>& a, const std::set<AbsLoc>& b) {
  // Sets are ordered by key; linear merge scan.
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return true;
    if (*ia < *ib) ++ia;
    else ++ib;
  }
  return false;
}
}  // namespace

bool EffectSet::writes_intersect_reads(const EffectSet& other) const {
  return intersects(writes, other.reads);
}

bool EffectSet::writes_intersect_writes(const EffectSet& other) const {
  return intersects(writes, other.writes);
}

std::set<AbsLoc> EffectSet::write_read_overlap(const EffectSet& other) const {
  std::set<AbsLoc> out;
  std::set_intersection(writes.begin(), writes.end(), other.reads.begin(),
                        other.reads.end(), std::inserter(out, out.begin()));
  return out;
}

EffectAnalysis::EffectAnalysis(const lang::Program& program,
                               const CallGraph& cg)
    : program_(program), cg_(cg) {
  compute_summaries();
}

const EffectSet& EffectAnalysis::method_summary(
    const lang::MethodDecl* m) const {
  auto it = summaries_.find(m);
  if (it == summaries_.end()) fatal("no effect summary for method");
  return it->second;
}

void EffectAnalysis::compute_summaries() {
  // Initialize empty, iterate to fixed point (terminates: sets only grow and
  // the abstract location universe is finite).
  for (const lang::MethodDecl* m : cg_.methods) summaries_[m];
  bool changed = true;
  while (changed) {
    changed = false;
    for (const lang::MethodDecl* m : cg_.methods) {
      EffectSet fresh;
      collect_stmt(*m->body, fresh, /*include_locals=*/false);
      EffectSet& current = summaries_[m];
      const std::size_t before = current.reads.size() + current.writes.size();
      current.merge(fresh);
      if (current.reads.size() + current.writes.size() != before)
        changed = true;
    }
  }
}

EffectSet EffectAnalysis::stmt_effects(const lang::Stmt& st) const {
  EffectSet out;
  collect_stmt(st, out, /*include_locals=*/true);
  return out;
}

EffectSet EffectAnalysis::expr_effects(const lang::Expr& e) const {
  EffectSet out;
  collect_expr(e, out, /*include_locals=*/true);
  return out;
}

void EffectAnalysis::collect_stmt(const lang::Stmt& st, EffectSet& out,
                                  bool include_locals) const {
  switch (st.kind) {
    case StmtKind::Block:
      for (const auto& s : st.as<lang::Block>().stmts)
        collect_stmt(*s, out, include_locals);
      break;
    case StmtKind::VarDecl: {
      const auto& d = st.as<lang::VarDecl>();
      if (d.init) collect_expr(*d.init, out, include_locals);
      if (include_locals) out.writes.insert(AbsLoc::local(d.slot));
      break;
    }
    case StmtKind::Assign: {
      const auto& a = st.as<lang::Assign>();
      collect_expr(*a.value, out, include_locals);
      write_target(*a.target, out, include_locals);
      break;
    }
    case StmtKind::ExprStmt:
      collect_expr(*st.as<lang::ExprStmt>().expr, out, include_locals);
      break;
    case StmtKind::If: {
      const auto& i = st.as<lang::If>();
      collect_expr(*i.cond, out, include_locals);
      collect_stmt(*i.then_branch, out, include_locals);
      if (i.else_branch) collect_stmt(*i.else_branch, out, include_locals);
      break;
    }
    case StmtKind::While: {
      const auto& w = st.as<lang::While>();
      collect_expr(*w.cond, out, include_locals);
      collect_stmt(*w.body, out, include_locals);
      break;
    }
    case StmtKind::For: {
      const auto& f = st.as<lang::For>();
      if (f.init) collect_stmt(*f.init, out, include_locals);
      if (f.cond) collect_expr(*f.cond, out, include_locals);
      if (f.step) collect_stmt(*f.step, out, include_locals);
      collect_stmt(*f.body, out, include_locals);
      break;
    }
    case StmtKind::Foreach: {
      const auto& f = st.as<lang::Foreach>();
      collect_expr(*f.iterable, out, include_locals);
      if (f.iterable->type)
        out.reads.insert(AbsLoc::list_shape(f.iterable->type->sig()));
      if (include_locals) out.writes.insert(AbsLoc::local(f.slot));
      collect_stmt(*f.body, out, include_locals);
      break;
    }
    case StmtKind::Return: {
      const auto& r = st.as<lang::Return>();
      if (r.value) collect_expr(*r.value, out, include_locals);
      break;
    }
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Annotation:
      break;
  }
}

void EffectAnalysis::write_target(const lang::Expr& target, EffectSet& out,
                                  bool include_locals) const {
  switch (target.kind) {
    case ExprKind::VarRef: {
      const auto& ref = target.as<lang::VarRef>();
      if (ref.is_local()) {
        if (include_locals) out.writes.insert(AbsLoc::local(ref.slot));
      } else {
        static const Symbol kUnknown = Symbol::intern("?");
        out.writes.insert(AbsLoc::field_loc(
            ref.owner_class ? ref.owner_class->name : kUnknown,
            ref.field_index));
      }
      break;
    }
    case ExprKind::FieldAccess: {
      const auto& fa = target.as<lang::FieldAccess>();
      collect_expr(*fa.object, out, include_locals);
      static const Symbol kUnknown = Symbol::intern("?");
      const Symbol cls = fa.object->type ? fa.object->type->sig() : kUnknown;
      out.writes.insert(AbsLoc::field_loc(cls, fa.field_index));
      break;
    }
    case ExprKind::IndexAccess: {
      const auto& ix = target.as<lang::IndexAccess>();
      collect_expr(*ix.base, out, include_locals);
      collect_expr(*ix.index, out, include_locals);
      static const Symbol kUnknown = Symbol::intern("?");
      const Symbol sig = ix.base->type ? ix.base->type->sig() : kUnknown;
      out.writes.insert(AbsLoc::elements(sig));
      break;
    }
    default:
      fatal("invalid assignment target in effect analysis");
  }
}

void EffectAnalysis::collect_expr(const lang::Expr& e, EffectSet& out,
                                  bool include_locals) const {
  switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::DoubleLit:
    case ExprKind::BoolLit:
    case ExprKind::StringLit:
    case ExprKind::NullLit:
      break;
    case ExprKind::VarRef: {
      const auto& ref = e.as<lang::VarRef>();
      if (ref.is_local()) {
        if (include_locals) out.reads.insert(AbsLoc::local(ref.slot));
      } else {
        static const Symbol kUnknown = Symbol::intern("?");
        out.reads.insert(AbsLoc::field_loc(
            ref.owner_class ? ref.owner_class->name : kUnknown,
            ref.field_index));
      }
      break;
    }
    case ExprKind::FieldAccess: {
      const auto& fa = e.as<lang::FieldAccess>();
      collect_expr(*fa.object, out, include_locals);
      static const Symbol kUnknown = Symbol::intern("?");
      const Symbol cls = fa.object->type ? fa.object->type->sig() : kUnknown;
      out.reads.insert(AbsLoc::field_loc(cls, fa.field_index));
      break;
    }
    case ExprKind::IndexAccess: {
      const auto& ix = e.as<lang::IndexAccess>();
      collect_expr(*ix.base, out, include_locals);
      collect_expr(*ix.index, out, include_locals);
      static const Symbol kUnknown = Symbol::intern("?");
      const Symbol sig = ix.base->type ? ix.base->type->sig() : kUnknown;
      out.reads.insert(AbsLoc::elements(sig));
      break;
    }
    case ExprKind::Call: {
      const auto& c = e.as<lang::Call>();
      if (c.receiver) collect_expr(*c.receiver, out, include_locals);
      for (const auto& a : c.args) collect_expr(*a, out, include_locals);
      if (c.resolved) {
        auto it = summaries_.find(c.resolved);
        if (it != summaries_.end()) out.merge(it->second);
      } else {
        // Builtin effects.
        switch (c.builtin) {
          case lang::Builtin::Print:
            out.writes.insert(AbsLoc::io());
            break;
          case lang::Builtin::Push: {
            static const Symbol kUnknown = Symbol::intern("?");
            const Symbol sig =
                c.args[0]->type ? c.args[0]->type->sig() : kUnknown;
            out.writes.insert(AbsLoc::list_shape(sig));
            break;
          }
          case lang::Builtin::Len: {
            const lang::TypePtr& t = c.args[0]->type;
            if (t && t->kind == lang::Type::Kind::List)
              out.reads.insert(AbsLoc::list_shape(t->sig()));
            break;
          }
          default:
            break;  // pure builtins
        }
      }
      break;
    }
    case ExprKind::New: {
      const auto& n = e.as<lang::New>();
      for (const auto& a : n.args) collect_expr(*a, out, include_locals);
      if (n.resolved) {
        static const Symbol kInit = Symbol::intern("init");
        if (const lang::MethodDecl* ctor = n.resolved->find_method(kInit)) {
          auto it = summaries_.find(ctor);
          if (it != summaries_.end()) out.merge(it->second);
        }
      }
      break;
    }
    case ExprKind::NewArray: {
      const auto& n = e.as<lang::NewArray>();
      if (n.size) collect_expr(*n.size, out, include_locals);
      break;
    }
    case ExprKind::Binary: {
      const auto& b = e.as<lang::Binary>();
      collect_expr(*b.lhs, out, include_locals);
      collect_expr(*b.rhs, out, include_locals);
      break;
    }
    case ExprKind::Unary:
      collect_expr(*e.as<lang::Unary>().operand, out, include_locals);
      break;
  }
}

// ---------------------------------------------------------------------------
// FreshnessAnalysis
// ---------------------------------------------------------------------------

namespace {

/// One reaching definition of a local slot. `value` is null for
/// definitions whose value is not an analyzable expression: parameter
/// bindings and foreach element bindings (never fresh). Uninitialized
/// VarDecls are *not* recorded: they define null, which is no object and
/// cannot alias or escape, so they are neutral for both fact families.
struct SlotDef {
  int slot = -1;
  const lang::Expr* value = nullptr;
};

std::vector<SlotDef> collect_slot_defs(const lang::MethodDecl& m) {
  std::vector<SlotDef> defs;
  for (const lang::Param& p : m.params) defs.push_back({p.slot, nullptr});
  lang::for_each_stmt(*m.body, [&](const lang::Stmt& st) {
    if (st.kind == StmtKind::VarDecl) {
      const auto& d = st.as<lang::VarDecl>();
      if (d.init) defs.push_back({d.slot, d.init.get()});
    } else if (st.kind == StmtKind::Assign) {
      const auto& a = st.as<lang::Assign>();
      if (a.target->kind == ExprKind::VarRef) {
        const auto& ref = a.target->as<lang::VarRef>();
        if (ref.is_local()) defs.push_back({ref.slot, a.value.get()});
      }
    } else if (st.kind == StmtKind::Foreach) {
      defs.push_back({st.as<lang::Foreach>().slot, nullptr});
    }
  });
  return defs;
}

bool is_allocation(const lang::Expr& e) {
  return e.kind == ExprKind::New || e.kind == ExprKind::NewArray;
}

}  // namespace

FreshnessAnalysis::FreshnessAnalysis(const lang::Program& program,
                                     const CallGraph& cg,
                                     const EffectAnalysis& effects)
    : program_(program), cg_(cg), effects_(effects) {
  compute();
}

bool FreshnessAnalysis::expr_is_fresh(const lang::Expr& e,
                                      const MethodFacts& facts) const {
  switch (e.kind) {
    case ExprKind::New:
    case ExprKind::NewArray:
      return true;
    case ExprKind::VarRef: {
      const auto& ref = e.as<lang::VarRef>();
      return ref.is_local() && facts.fresh_slots.count(ref.slot) > 0;
    }
    case ExprKind::Call: {
      const auto& c = e.as<lang::Call>();
      if (!c.resolved) return false;
      auto it = facts_.find(c.resolved);
      return it != facts_.end() && it->second.returns_fresh;
    }
    default:
      return false;
  }
}

void FreshnessAnalysis::compute() {
  // Per-method definition tables, gathered once.
  std::map<const lang::MethodDecl*, std::vector<SlotDef>> defs;
  for (const lang::MethodDecl* m : cg_.methods) defs[m] = collect_slot_defs(*m);

  // Phase 1 — activation freshness, greatest fixpoint. Start every slot
  // with at least one recorded definition as fresh and every value-
  // returning method as fresh-returning, then knock facts out until the
  // optimistic claims are self-supporting. Mutually recursive methods that
  // only ever return each other's results stay "fresh": the claim is
  // vacuous (such a call never returns).
  for (const lang::MethodDecl* m : cg_.methods) {
    MethodFacts& f = facts_[m];
    for (const SlotDef& d : defs[m])
      if (d.value) f.fresh_slots.insert(d.slot);
    // Parameter/foreach bindings disqualify their slot outright.
    for (const SlotDef& d : defs[m])
      if (!d.value) f.fresh_slots.erase(d.slot);
    lang::for_each_stmt(*m->body, [&](const lang::Stmt& st) {
      if (st.kind == StmtKind::Return && st.as<lang::Return>().value)
        f.returns_fresh = true;
    });
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const lang::MethodDecl* m : cg_.methods) {
      MethodFacts& f = facts_[m];
      for (const SlotDef& d : defs[m]) {
        if (d.value && f.fresh_slots.count(d.slot) &&
            !expr_is_fresh(*d.value, f)) {
          f.fresh_slots.erase(d.slot);
          changed = true;
        }
      }
      if (f.returns_fresh) {
        lang::for_each_stmt(*m->body, [&](const lang::Stmt& st) {
          if (st.kind == StmtKind::Return) {
            const auto& r = st.as<lang::Return>();
            if (r.value && f.returns_fresh && !expr_is_fresh(*r.value, f)) {
              f.returns_fresh = false;
              changed = true;
            }
          }
        });
      }
    }
  }

  // Phase 2 — allocation-rooted locals: every recorded definition is a
  // direct allocation expression (parameter/foreach bindings disqualify).
  for (const lang::MethodDecl* m : cg_.methods) {
    MethodFacts& f = facts_[m];
    std::set<int> seen;
    std::set<int> bad;
    for (const SlotDef& d : defs[m]) {
      seen.insert(d.slot);
      if (!d.value || !is_allocation(*d.value)) bad.insert(d.slot);
    }
    for (int s : seen)
      if (!bad.count(s)) f.rooted_slots.insert(s);
  }

  // Phase 3 — allocation-rooted fields: scan every store in the program.
  for (const auto& cls : program_.classes) {
    for (const auto& m : cls->methods) {
      lang::for_each_stmt(*m->body, [&](const lang::Stmt& st) {
        if (st.kind != StmtKind::Assign) return;
        const auto& a = st.as<lang::Assign>();
        if (a.target->kind == ExprKind::VarRef) {
          const auto& ref = a.target->as<lang::VarRef>();
          if (!ref.is_local() && ref.owner_class && !is_allocation(*a.value))
            unrooted_fields_.insert({ref.owner_class->name, ref.field_index});
        } else if (a.target->kind == ExprKind::FieldAccess) {
          const auto& fa = a.target->as<lang::FieldAccess>();
          if (fa.object->type && !is_allocation(*a.value))
            unrooted_fields_.insert({fa.object->type->sig(), fa.field_index});
        }
      });
    }
  }

  // Phase 4 — write freshness, least fixpoint: shared/via_this only grow.
  // Direct stores classify against the (now final) activation-freshness
  // facts; call sites import the callee's classification, rebinding its
  // via_this writes through the receiver expression (fresh receiver =>
  // fresh, implicit this => still via_this, anything else => shared). A
  // `new C()` constructor runs with the brand-new object as receiver, so
  // its via_this writes are fresh at the allocation site.
  changed = true;
  while (changed) {
    changed = false;
    for (const lang::MethodDecl* m : cg_.methods) {
      MethodFacts& f = facts_[m];
      const std::size_t before = f.writes.shared.size() + f.writes.via_this.size();
      auto classify_expr = [&](const lang::Expr& e) {
        if (e.kind == ExprKind::Call) {
          const auto& c = e.as<lang::Call>();
          if (c.builtin == lang::Builtin::Print) {
            f.writes.shared.insert(AbsLoc::io());
          } else if (c.builtin == lang::Builtin::Push) {
            static const Symbol kUnknown = Symbol::intern("?");
            const Symbol sig = c.args[0]->type ? c.args[0]->type->sig() : kUnknown;
            if (!expr_is_fresh(*c.args[0], f))
              f.writes.shared.insert(AbsLoc::list_shape(sig));
          } else if (c.resolved) {
            auto it = facts_.find(c.resolved);
            if (it == facts_.end()) return;
            const WriteFreshness& callee = it->second.writes;
            f.writes.shared.insert(callee.shared.begin(), callee.shared.end());
            for (const AbsLoc& l : callee.via_this) {
              if (c.implicit_this || !c.receiver) {
                f.writes.via_this.insert(l);
              } else if (!expr_is_fresh(*c.receiver, f)) {
                f.writes.shared.insert(l);
              }
            }
          }
        } else if (e.kind == ExprKind::New) {
          const auto& n = e.as<lang::New>();
          if (!n.resolved) return;
          static const Symbol kInit = Symbol::intern("init");
          if (const lang::MethodDecl* ctor = n.resolved->find_method(kInit)) {
            auto it = facts_.find(ctor);
            if (it == facts_.end()) return;
            const WriteFreshness& callee = it->second.writes;
            f.writes.shared.insert(callee.shared.begin(), callee.shared.end());
            // via_this lands on the freshly allocated object: fresh here.
          }
        }
      };
      lang::for_each_stmt(*m->body, [&](const lang::Stmt& st) {
        lang::for_each_expr(st, classify_expr);
        if (st.kind != StmtKind::Assign) return;
        const auto& a = st.as<lang::Assign>();
        static const Symbol kUnknown = Symbol::intern("?");
        if (a.target->kind == ExprKind::VarRef) {
          const auto& ref = a.target->as<lang::VarRef>();
          if (!ref.is_local())
            f.writes.via_this.insert(AbsLoc::field_loc(
                ref.owner_class ? ref.owner_class->name : kUnknown,
                ref.field_index));
        } else if (a.target->kind == ExprKind::FieldAccess) {
          const auto& fa = a.target->as<lang::FieldAccess>();
          const Symbol cls = fa.object->type ? fa.object->type->sig() : kUnknown;
          if (!expr_is_fresh(*fa.object, f))
            f.writes.shared.insert(AbsLoc::field_loc(cls, fa.field_index));
        } else if (a.target->kind == ExprKind::IndexAccess) {
          const auto& ix = a.target->as<lang::IndexAccess>();
          const Symbol sig = ix.base->type ? ix.base->type->sig() : kUnknown;
          if (!expr_is_fresh(*ix.base, f))
            f.writes.shared.insert(AbsLoc::elements(sig));
        }
      });
      if (f.writes.shared.size() + f.writes.via_this.size() != before)
        changed = true;
    }
  }
}

bool FreshnessAnalysis::returns_fresh(const lang::MethodDecl* m) const {
  auto it = facts_.find(m);
  return it != facts_.end() && it->second.returns_fresh;
}

bool FreshnessAnalysis::local_is_fresh(const lang::MethodDecl* m,
                                       int slot) const {
  auto it = facts_.find(m);
  return it != facts_.end() && it->second.fresh_slots.count(slot) > 0;
}

bool FreshnessAnalysis::local_allocation_rooted(const lang::MethodDecl* m,
                                                int slot) const {
  auto it = facts_.find(m);
  return it != facts_.end() && it->second.rooted_slots.count(slot) > 0;
}

bool FreshnessAnalysis::field_allocation_rooted(Symbol cls,
                                                int field_index) const {
  return unrooted_fields_.count({cls, field_index}) == 0;
}

const WriteFreshness& FreshnessAnalysis::write_freshness(
    const lang::MethodDecl* m) const {
  auto it = facts_.find(m);
  if (it == facts_.end()) fatal("no freshness facts for method");
  return it->second.writes;
}

std::set<AbsLoc> FreshnessAnalysis::fresh_writes(
    const lang::MethodDecl* m) const {
  const EffectSet& summary = effects_.method_summary(m);
  const WriteFreshness& wf = write_freshness(m);
  std::set<AbsLoc> out;
  for (const AbsLoc& l : summary.writes) {
    if (l.kind == AbsLoc::Kind::Local) continue;
    if (wf.shared.count(l) || wf.via_this.count(l)) continue;
    out.insert(l);
  }
  return out;
}

}  // namespace patty::analysis
