#pragma once
// Tree-walking interpreter for MiniOO.
//
// Two roles:
//  1. Dynamic analysis substrate: executed with a Tracer it produces the
//     runtime half of the paper's semantic model (profiles, observed
//     dependences, trip counts, branch coverage).
//  2. Execution engine for transformed parallel programs: the runtime
//     library's pipeline stages call back into exec_stmt() concurrently.
//     The interpreter itself keeps no mutable global state — all mutable
//     state lives in the Frame and in the program's heap values — so
//     concurrent execution is safe exactly when the executed program is
//     data-race-free (which is what detection + CHESS-style testing verify,
//     mirroring the paper's optimistic-parallelization stance).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/tracer.hpp"
#include "analysis/value.hpp"
#include "lang/ast.hpp"

namespace patty::analysis {

/// Raised for runtime errors (null deref, bad index, step-limit exceeded...).
struct RuntimeError {
  std::string message;
  SourceRange range;
};

/// One method activation: `self` plus the local slot array.
struct Frame {
  Value self_value;  // object the method runs on (null for synthetic frames)
  std::vector<Value> locals;
  Value return_value;

  [[nodiscard]] Object* self() const {
    return self_value.is_object() ? self_value.as_object().get() : nullptr;
  }
};

/// How a statement finished — drives break/continue/return propagation.
enum class ExecSignal : std::uint8_t { Normal, Break, Continue, Return };

struct InterpreterOptions {
  /// Abort with RuntimeError after this many statement executions
  /// (guards against non-terminating inputs during dynamic analysis).
  std::uint64_t max_steps = 200'000'000;
  /// Scale factor: work(n) spins n * work_scale iterations of a
  /// deterministic integer mix, so cost units translate to real CPU time.
  std::uint64_t work_scale = 60;
  /// Emulated-multicore mode: work(n) waits n * work_sleep_ns nanoseconds
  /// instead of burning the CPU. Timed waits overlap across threads the
  /// way real compute overlaps on real cores, so parallel-speedup shapes
  /// can be reproduced on hosts with fewer cores than the paper's testbed
  /// (see DESIGN.md substitutions). Semantics are unchanged.
  bool work_sleeps = false;
  std::uint64_t work_sleep_ns = 2'000;
};

class Interpreter;

/// Hook that lets the transformation phase take over execution of selected
/// statements: the parallel plan executor intercepts detected loops and runs
/// them on the parallel runtime library instead of the sequential
/// interpreter. Must be re-entrant (stage workers execute statements
/// concurrently through the same interpreter).
class StmtInterceptor {
 public:
  virtual ~StmtInterceptor() = default;
  /// Return true if the statement was fully handled; `*signal` then tells
  /// the interpreter how the statement completed.
  virtual bool intercept(const lang::Stmt& st, Frame& frame,
                         Interpreter& interp, ExecSignal* signal) = 0;
};

class Interpreter {
 public:
  using Options = InterpreterOptions;

  explicit Interpreter(const lang::Program& program, Tracer* tracer = nullptr,
                       Options options = {});

  /// Find the single class that declares `main()`, instantiate it and run.
  Value run_main();

  /// Instantiate a class (runs `init` if present).
  Value instantiate(const lang::ClassDecl& cls, std::vector<Value> args);

  /// Call a method on an object value.
  Value call(const lang::MethodDecl& method, Value self,
             std::vector<Value> args, const lang::Stmt* call_site = nullptr);

  /// Execute one statement in an existing frame (used by the parallel plan
  /// executor, which owns frames per pipeline element).
  ExecSignal exec_stmt(const lang::Stmt& st, Frame& frame);

  /// Evaluate one expression in an existing frame.
  Value eval(const lang::Expr& e, Frame& frame);

  /// Install (or clear) the statement interceptor.
  void set_interceptor(StmtInterceptor* interceptor) {
    interceptor_ = interceptor;
  }

  /// Everything print() produced, in order.
  [[nodiscard]] std::string output() const;
  void clear_output();

  /// Total deterministic cost units charged so far (statements + work()).
  [[nodiscard]] std::uint64_t cost() const {
    return cost_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t steps() const {
    return steps_.load(std::memory_order_relaxed);
  }

  const lang::Program& program() const { return program_; }

 private:
  Value eval_binary(const lang::Binary& b, Frame& frame);
  Value eval_call(const lang::Call& c, Frame& frame);
  Value eval_builtin(const lang::Call& c, Frame& frame);
  void assign_to(const lang::Expr& target, Value value, Frame& frame,
                 const lang::Stmt& at);
  std::int64_t check_index(const Value& container, const Value& index,
                           SourceRange range) const;
  void charge(const lang::Stmt& st);
  [[noreturn]] void error(SourceRange range, std::string message) const;

  void trace_read(const MemLoc& loc) {
    if (tracer_ && current_stmt_) tracer_->on_read(loc, *current_stmt_);
  }
  void trace_write(const MemLoc& loc) {
    if (tracer_ && current_stmt_) tracer_->on_write(loc, *current_stmt_);
  }

  const lang::Program& program_;
  Tracer* tracer_;
  StmtInterceptor* interceptor_ = nullptr;
  Options options_;
  // Atomic so concurrent pipeline stages can charge the same interpreter.
  std::atomic<std::uint64_t> steps_{0};
  std::atomic<std::uint64_t> cost_{0};
  // Thread-local: pipeline stage workers execute statements concurrently
  // through the same interpreter, and each thread's reads/writes must be
  // attributed to the statement *that thread* is executing. call() saves
  // and restores it around callee bodies, so the per-thread value is
  // consistent even across nested interpreter instances on one thread.
  static thread_local const lang::Stmt* current_stmt_;

  mutable std::mutex output_mutex_;
  std::string output_;
};

/// The deterministic CPU burner behind the `work(n)` builtin; exposed so
/// benchmarks can calibrate it.
std::uint64_t burn_work(std::uint64_t iterations);

}  // namespace patty::analysis
