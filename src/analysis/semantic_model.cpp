#include "analysis/semantic_model.hpp"

#include "support/diagnostics.hpp"

namespace patty::analysis {

std::unique_ptr<SemanticModel> SemanticModel::build(
    const lang::Program& program, Options options) {
  auto model = std::unique_ptr<SemanticModel>(new SemanticModel());
  model->program_ = &program;
  model->call_graph_ = build_call_graph(program);
  model->effects_ =
      std::make_unique<EffectAnalysis>(program, model->call_graph_);

  // Index statements and owning methods.
  for (const auto& cls : program.classes) {
    for (const auto& m : cls->methods) {
      lang::for_each_stmt(*m->body, [&](const lang::Stmt& st) {
        model->stmt_by_id_[st.id] = &st;
        model->method_by_stmt_id_[st.id] = m.get();
      });
    }
  }
  model->collect_loops();

  if (options.run_dynamic) {
    model->profiler_ = std::make_unique<Profiler>(program);
    Interpreter interp(program, model->profiler_.get(), options.interp);
    interp.run_main();  // throws RuntimeError on failure
  }
  return model;
}

void SemanticModel::collect_loops() {
  for (const auto& cls : program_->classes) {
    for (const auto& m : cls->methods) {
      // Depth-first walk tracking loop nesting depth.
      struct Walker {
        std::vector<LoopInfo>& out;
        const lang::MethodDecl* method;
        void walk(const lang::Stmt& st, int depth) {
          const bool is_loop = st.kind == lang::StmtKind::For ||
                               st.kind == lang::StmtKind::While ||
                               st.kind == lang::StmtKind::Foreach;
          if (is_loop) out.push_back({&st, method, depth});
          const int next = depth + (is_loop ? 1 : 0);
          switch (st.kind) {
            case lang::StmtKind::Block:
              for (const auto& s : st.as<lang::Block>().stmts)
                walk(*s, depth);
              break;
            case lang::StmtKind::If: {
              const auto& i = st.as<lang::If>();
              walk(*i.then_branch, depth);
              if (i.else_branch) walk(*i.else_branch, depth);
              break;
            }
            case lang::StmtKind::While:
              walk(*st.as<lang::While>().body, next);
              break;
            case lang::StmtKind::For: {
              const auto& f = st.as<lang::For>();
              if (f.init) walk(*f.init, next);
              if (f.step) walk(*f.step, next);
              walk(*f.body, next);
              break;
            }
            case lang::StmtKind::Foreach:
              walk(*st.as<lang::Foreach>().body, next);
              break;
            default:
              break;
          }
        }
      };
      Walker w{loops_, m.get()};
      w.walk(*m->body, 0);
    }
  }
}

const Cfg& SemanticModel::cfg(const lang::MethodDecl& method) const {
  auto it = cfg_cache_.find(&method);
  if (it != cfg_cache_.end()) return it->second;
  return cfg_cache_.emplace(&method, build_cfg(method)).first->second;
}

bool SemanticModel::loop_was_profiled(const lang::Stmt& loop) const {
  if (!profiler_) return false;
  const Profiler::LoopProfile* p = profiler_->loop_profile(loop.id);
  return p != nullptr && p->total_iterations > 0;
}

std::vector<Dep> SemanticModel::loop_dependences(const lang::Stmt& loop,
                                                 bool optimistic) const {
  const std::vector<const lang::Stmt*> body = loop_body_statements(loop);
  if (optimistic && loop_was_profiled(loop)) {
    // Observed dependences are recorded at the finest statement level;
    // project them onto the top-level body statements. Scalar
    // privatization applies here: carried anti/output dependences through
    // locals declared inside the body are slot-reuse artifacts (each
    // element owns a fresh frame after transformation).
    const std::set<int> privatized = body_declared_slots(body);
    const Profiler::LoopProfile* p = profiler_->loop_profile(loop.id);
    std::vector<Dep> projected;
    std::map<std::tuple<int, int, int, bool>, std::int64_t> dedup;
    for (const Dep& d : p->deps) {
      if (d.carried && d.via_local && d.kind != DepKind::True &&
          privatized.count(d.local_slot))
        continue;
      const int from_top = owning_body_statement(body, d.from_id);
      const int to_top = owning_body_statement(body, d.to_id);
      if (from_top < 0 || to_top < 0) continue;  // outside the body
      auto key = std::make_tuple(from_top, to_top,
                                 static_cast<int>(d.kind), d.carried);
      auto it = dedup.find(key);
      if (it == dedup.end() || (d.distance > 0 && d.distance < it->second))
        dedup[key] = d.distance;
    }
    for (const auto& [key, distance] : dedup) {
      Dep d;
      d.from_id = std::get<0>(key);
      d.to_id = std::get<1>(key);
      d.kind = static_cast<DepKind>(std::get<2>(key));
      d.carried = std::get<3>(key);
      d.distance = distance;
      d.note = "observed";
      projected.push_back(std::move(d));
    }
    return projected;
  }
  const lang::MethodDecl* method = method_of(loop);
  return static_loop_dependences(body, *effects_, method);
}

double SemanticModel::runtime_share(const lang::Stmt& st) const {
  if (!profiler_) return 0.0;
  return profiler_->runtime_share(st.id);
}

const lang::Stmt* SemanticModel::stmt_by_id(int id) const {
  auto it = stmt_by_id_.find(id);
  return it == stmt_by_id_.end() ? nullptr : it->second;
}

const lang::MethodDecl* SemanticModel::method_of(const lang::Stmt& st) const {
  auto it = method_by_stmt_id_.find(st.id);
  return it == method_by_stmt_id_.end() ? nullptr : it->second;
}

}  // namespace patty::analysis
