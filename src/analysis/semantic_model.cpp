#include "analysis/semantic_model.hpp"

#include "runtime/parallel_for.hpp"
#include "support/diagnostics.hpp"

namespace patty::analysis {

std::unique_ptr<SemanticModel> SemanticModel::build(
    const lang::Program& program, Options options) {
  auto model = std::unique_ptr<SemanticModel>(new SemanticModel());
  model->program_ = &program;
  model->call_graph_ = build_call_graph(program);
  model->effects_ =
      std::make_unique<EffectAnalysis>(program, model->call_graph_);

  // Index statements and owning methods.
  std::vector<const lang::MethodDecl*> methods;
  for (const auto& cls : program.classes) {
    for (const auto& m : cls->methods) {
      methods.push_back(m.get());
      lang::for_each_stmt(*m->body, [&](const lang::Stmt& st) {
        model->stmt_by_id_[st.id] = &st;
        model->method_by_stmt_id_[st.id] = m.get();
      });
    }
  }
  model->collect_loops();

  if (options.parallel && methods.size() > 1) {
    // Self-hosted front-end: prebuild every method CFG on the runtime's
    // own pool. Each build_cfg is independent (pure function of one
    // method); results land in index-stable slots, then move into the
    // cache — so the model is bit-identical to a sequential build.
    std::vector<Cfg> cfgs(methods.size());
    rt::parallel_for(0, static_cast<std::int64_t>(methods.size()),
                     [&](std::int64_t i) {
                       cfgs[static_cast<std::size_t>(i)] =
                           build_cfg(*methods[static_cast<std::size_t>(i)]);
                     });
    // Build happened on worker threads; placing the results in the model's
    // arena here is single-threaded (build() owns the model exclusively).
    for (std::size_t i = 0; i < methods.size(); ++i)
      model->cfg_cache_.emplace(
          methods[i],
          support::make_in<Cfg>(model->arena_, std::move(cfgs[i])));
  }

  if (options.run_dynamic) {
    model->profiler_ = std::make_unique<Profiler>(program);
    Interpreter interp(program, model->profiler_.get(), options.interp);
    interp.run_main();  // throws RuntimeError on failure
    // Fold observed dependences now, while the model is still exclusively
    // ours: later (possibly concurrent) detector queries then take the
    // lock-free finalized fast path.
    model->profiler_->loops();
  }
  return model;
}

void SemanticModel::collect_loops() {
  for (const auto& cls : program_->classes) {
    for (const auto& m : cls->methods) {
      // Depth-first walk tracking loop nesting depth.
      struct Walker {
        std::vector<LoopInfo>& out;
        const lang::MethodDecl* method;
        void walk(const lang::Stmt& st, int depth) {
          const bool is_loop = st.kind == lang::StmtKind::For ||
                               st.kind == lang::StmtKind::While ||
                               st.kind == lang::StmtKind::Foreach;
          if (is_loop) out.push_back({&st, method, depth});
          const int next = depth + (is_loop ? 1 : 0);
          switch (st.kind) {
            case lang::StmtKind::Block:
              for (const auto& s : st.as<lang::Block>().stmts)
                walk(*s, depth);
              break;
            case lang::StmtKind::If: {
              const auto& i = st.as<lang::If>();
              walk(*i.then_branch, depth);
              if (i.else_branch) walk(*i.else_branch, depth);
              break;
            }
            case lang::StmtKind::While:
              walk(*st.as<lang::While>().body, next);
              break;
            case lang::StmtKind::For: {
              const auto& f = st.as<lang::For>();
              if (f.init) walk(*f.init, next);
              if (f.step) walk(*f.step, next);
              walk(*f.body, next);
              break;
            }
            case lang::StmtKind::Foreach:
              walk(*st.as<lang::Foreach>().body, next);
              break;
            default:
              break;
          }
        }
      };
      Walker w{loops_, m.get()};
      w.walk(*m->body, 0);
    }
  }
}

const Cfg& SemanticModel::cfg(const lang::MethodDecl& method) const {
  // References stay stable (node-based map); the mutex only guards the
  // lookup/insert so concurrent detector threads can demand-build safely.
  {
    std::scoped_lock lock(cfg_mutex_);
    auto it = cfg_cache_.find(&method);
    if (it != cfg_cache_.end()) return *it->second;
  }
  Cfg built = build_cfg(method);  // pure; compute outside the lock
  std::scoped_lock lock(cfg_mutex_);
  auto it = cfg_cache_.find(&method);
  if (it != cfg_cache_.end()) return *it->second;  // racing builder won
  return *cfg_cache_
              .emplace(&method, support::make_in<Cfg>(arena_, std::move(built)))
              .first->second;
}

bool SemanticModel::loop_was_profiled(const lang::Stmt& loop) const {
  if (!profiler_) return false;
  const Profiler::LoopProfile* p = profiler_->loop_profile(loop.id);
  return p != nullptr && p->total_iterations > 0;
}

const std::vector<Dep>& SemanticModel::loop_dependences(
    const lang::Stmt& loop, bool optimistic) const {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(loop.id)) << 1) |
      static_cast<std::uint64_t>(optimistic);
  {
    std::scoped_lock lock(dep_cache_mutex_);
    auto it = dep_cache_.find(key);
    if (it != dep_cache_.end()) return *it->second;
  }
  // Compute outside the lock (deterministic, so a racing duplicate is
  // identical and the first insert wins); values are arena-placed, so the
  // returned reference is stable for the model's lifetime.
  std::vector<Dep> deps = compute_loop_dependences(loop, optimistic);
  std::scoped_lock lock(dep_cache_mutex_);
  auto it = dep_cache_.find(key);
  if (it != dep_cache_.end()) return *it->second;  // racing builder won
  return *dep_cache_
              .emplace(key, support::make_in<std::vector<Dep>>(
                                arena_, std::move(deps)))
              .first->second;
}

std::vector<Dep> SemanticModel::compute_loop_dependences(
    const lang::Stmt& loop, bool optimistic) const {
  const std::vector<const lang::Stmt*> body = loop_body_statements(loop);
  if (optimistic && loop_was_profiled(loop)) {
    // Observed dependences are recorded at the finest statement level;
    // project them onto the top-level body statements. Scalar
    // privatization applies here: carried anti/output dependences through
    // locals declared inside the body are slot-reuse artifacts (each
    // element owns a fresh frame after transformation).
    const std::set<int> privatized = body_declared_slots(body);
    const Profiler::LoopProfile* p = profiler_->loop_profile(loop.id);
    std::vector<Dep> projected;
    std::map<std::tuple<int, int, int, bool>, std::int64_t> dedup;
    for (const Dep& d : p->deps) {
      if (d.carried && d.via_local && d.kind != DepKind::True &&
          privatized.count(d.local_slot))
        continue;
      const int from_top = owning_body_statement(body, d.from_id);
      const int to_top = owning_body_statement(body, d.to_id);
      if (from_top < 0 || to_top < 0) continue;  // outside the body
      auto key = std::make_tuple(from_top, to_top,
                                 static_cast<int>(d.kind), d.carried);
      auto it = dedup.find(key);
      if (it == dedup.end() || (d.distance > 0 && d.distance < it->second))
        dedup[key] = d.distance;
    }
    for (const auto& [key, distance] : dedup) {
      Dep d;
      d.from_id = std::get<0>(key);
      d.to_id = std::get<1>(key);
      d.kind = static_cast<DepKind>(std::get<2>(key));
      d.carried = std::get<3>(key);
      d.distance = distance;
      d.note = "observed";
      projected.push_back(std::move(d));
    }
    return projected;
  }
  const lang::MethodDecl* method = method_of(loop);
  // Induction-subscript refinement: element locations always subscripted
  // with the canonical induction variable cannot carry dependences across
  // iterations, even under type-based array aliasing.
  const std::set<AbsLoc> uniform = induction_uniform_elements(loop, *effects_);
  return static_loop_dependences(body, *effects_, method,
                                 uniform.empty() ? nullptr : &uniform);
}

double SemanticModel::runtime_share(const lang::Stmt& st) const {
  if (!profiler_) return 0.0;
  return profiler_->runtime_share(st.id);
}

const lang::Stmt* SemanticModel::stmt_by_id(int id) const {
  auto it = stmt_by_id_.find(id);
  return it == stmt_by_id_.end() ? nullptr : it->second;
}

const lang::MethodDecl* SemanticModel::method_of(const lang::Stmt& st) const {
  auto it = method_by_stmt_id_.find(st.id);
  return it == method_by_stmt_id_.end() ? nullptr : it->second;
}

}  // namespace patty::analysis
