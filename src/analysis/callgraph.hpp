#pragma once
// Static call graph: which methods (possibly) call which. MiniOO has no
// virtual dispatch, so resolution is exact. Third input to the semantic
// model; also drives the effect-summary fixed point and recursion checks.

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lang/ast.hpp"

namespace patty::analysis {

struct CallGraph {
  std::vector<const lang::MethodDecl*> methods;
  std::unordered_map<const lang::MethodDecl*, int> index_of;
  std::vector<std::vector<int>> callees;  // adjacency by index
  std::vector<std::vector<int>> callers;

  [[nodiscard]] int index(const lang::MethodDecl* m) const {
    auto it = index_of.find(m);
    return it == index_of.end() ? -1 : it->second;
  }

  /// All methods transitively reachable from `root` (including root).
  [[nodiscard]] std::unordered_set<const lang::MethodDecl*> reachable(
      const lang::MethodDecl* root) const;

  /// True if `m` can (transitively) call itself.
  [[nodiscard]] bool is_recursive(const lang::MethodDecl* m) const;
};

CallGraph build_call_graph(const lang::Program& program);

}  // namespace patty::analysis
