#pragma once
// Data-dependence representation shared by the static analysis (pessimistic,
// type-based may-alias) and the dynamic profile (optimistic, observed).
// The pattern detectors consume both: the paper's "optimistic
// parallelization" uses dynamic dependences where profiling covered the
// loop and falls back to static ones elsewhere.

#include <string>
#include <vector>

#include "analysis/effects.hpp"
#include "lang/ast.hpp"

namespace patty::analysis {

enum class DepKind : std::uint8_t { True, Anti, Output };

const char* dep_kind_name(DepKind kind);

struct Dep {
  int from_id = -1;  // statement id of the source (the earlier access)
  int to_id = -1;    // statement id of the sink
  DepKind kind = DepKind::True;
  bool carried = false;       // crosses loop iterations
  std::int64_t distance = 0;  // iteration distance (dynamic; 0 = unknown/static)
  /// When the conflicting location is a local variable: its slot. Used for
  /// scalar privatization — carried anti/output dependences through locals
  /// declared inside the loop body are artifacts of slot reuse (each
  /// iteration conceptually owns a fresh instance) and are discounted.
  bool via_local = false;
  int local_slot = -1;
  std::string note;           // human-readable location description

  [[nodiscard]] std::string str() const;
};

/// Static dependence analysis over the top-level statements of a loop body.
///
/// For statements Si, Sj (i < j in body order) with effect sets Ei, Ej:
///   intra-iteration: Wi∩Rj true, Ri∩Wj anti, Wi∩Wj output (i -> j)
///   loop-carried:    Wj∩Ri true, Rj∩Wi anti, Wj∩Wi output (j -> i)
///   self-carried:    Wi∩Ri true dependence of Si on itself (accumulators)
///
/// Lexical scoping guarantees locals declared inside the body cannot be
/// read by earlier statements, so carried dependences through per-iteration
/// temporaries do not arise.
///
/// `refuted_carried` (optional) names abstract locations proven to never
/// carry a dependence across iterations (e.g. by the induction-subscript
/// refinement below); carried conflicts through them are dropped.
std::vector<Dep> static_loop_dependences(
    const std::vector<const lang::Stmt*>& body_stmts,
    const EffectAnalysis& effects, const lang::MethodDecl* context,
    const std::set<AbsLoc>* refuted_carried = nullptr);

/// Slot of the canonical induction variable of a For loop, or -1.
/// Canonical shape: `for (int i = <init>; ...; i = i ± <intlit>)` (the
/// parser desugars `i++`/`i--` to that form) with `i` never reassigned in
/// the body. Such a variable takes a distinct value in every iteration.
int canonical_induction_slot(const lang::Stmt& loop);

/// Induction-subscript refinement: the Elements locations of the loop for
/// which *every* index access anywhere in the loop subtree subscripts with
/// exactly the canonical induction variable. Distinct iterations then touch
/// distinct indices through those locations — even when several arrays
/// share one type-based Elements class — so loop-carried dependences on
/// them are refuted. Conservative: a single non-induction subscript, or any
/// Elements effect entering through a call summary (callee subscripts are
/// unknown), disqualifies that location.
std::set<AbsLoc> induction_uniform_elements(const lang::Stmt& loop,
                                            const EffectAnalysis& effects);

/// Top-level statements of a loop body in program order (annotations
/// excluded; a non-block body yields one element).
std::vector<const lang::Stmt*> loop_body_statements(const lang::Stmt& loop);

/// The body statement (by id) that a nested statement belongs to, or -1.
int owning_body_statement(const std::vector<const lang::Stmt*>& body_stmts,
                          int stmt_id);

/// Local slots declared inside the loop body (candidates for scalar
/// privatization: VarDecl and nested Foreach loop variables).
std::set<int> body_declared_slots(
    const std::vector<const lang::Stmt*>& body_stmts);

}  // namespace patty::analysis
