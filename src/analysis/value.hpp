#pragma once
// Runtime values for the MiniOO interpreter. Reference types (objects,
// arrays, lists) have shared identity via shared_ptr, which doubles as the
// memory-location base for dynamic dependence profiling.

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "lang/ast.hpp"

namespace patty::analysis {

class Value;

struct Object {
  const lang::ClassDecl* cls = nullptr;
  std::vector<Value> fields;
};

struct ArrayVal {
  lang::TypePtr element;
  std::vector<Value> elems;
};

struct ListVal {
  lang::TypePtr element;
  std::vector<Value> elems;
};

using ObjectPtr = std::shared_ptr<Object>;
using ArrayPtr = std::shared_ptr<ArrayVal>;
using ListPtr = std::shared_ptr<ListVal>;

class Value {
 public:
  Value() = default;  // null
  static Value of_int(std::int64_t v) { return Value(v); }
  static Value of_double(double v) { return Value(v); }
  static Value of_bool(bool v) { return Value(v); }
  static Value of_string(std::string v) { return Value(std::move(v)); }
  static Value of_object(ObjectPtr v) { return Value(std::move(v)); }
  static Value of_array(ArrayPtr v) { return Value(std::move(v)); }
  static Value of_list(ListPtr v) { return Value(std::move(v)); }

  [[nodiscard]] bool is_null() const {
    return std::holds_alternative<std::monostate>(v_);
  }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<ObjectPtr>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<ArrayPtr>(v_); }
  [[nodiscard]] bool is_list() const { return std::holds_alternative<ListPtr>(v_); }

  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  [[nodiscard]] double as_double() const { return std::get<double>(v_); }
  [[nodiscard]] bool as_bool() const { return std::get<bool>(v_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(v_); }
  [[nodiscard]] const ObjectPtr& as_object() const { return std::get<ObjectPtr>(v_); }
  [[nodiscard]] const ArrayPtr& as_array() const { return std::get<ArrayPtr>(v_); }
  [[nodiscard]] const ListPtr& as_list() const { return std::get<ListPtr>(v_); }

  /// Numeric coercion (int or double); error otherwise.
  [[nodiscard]] double to_double() const;

  /// Human-readable rendering (used by print()).
  [[nodiscard]] std::string str() const;

  /// Structural equality for scalars, identity for references.
  [[nodiscard]] bool equals(const Value& other) const;

 private:
  explicit Value(std::int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(bool v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}
  explicit Value(ObjectPtr v) : v_(std::move(v)) {}
  explicit Value(ArrayPtr v) : v_(std::move(v)) {}
  explicit Value(ListPtr v) : v_(std::move(v)) {}

  std::variant<std::monostate, std::int64_t, double, bool, std::string,
               ObjectPtr, ArrayPtr, ListPtr>
      v_;
};

/// Default value for a declared type: 0 / 0.0 / false / "" / null.
Value default_value(const lang::Type& type);

}  // namespace patty::analysis
