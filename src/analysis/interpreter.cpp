#include "analysis/interpreter.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "runtime/cancellation.hpp"
#include "support/diagnostics.hpp"

namespace patty::analysis {

using lang::Builtin;
using lang::ExprKind;
using lang::StmtKind;

std::uint64_t burn_work(std::uint64_t iterations) {
  // Deterministic integer mixing; `volatile` keeps the optimizer from
  // collapsing the loop, so one unit is a stable amount of real CPU work.
  volatile std::uint64_t acc = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    acc = (acc ^ (acc >> 13)) * 0xff51afd7ed558ccdULL + i;
  }
  return acc;
}

thread_local const lang::Stmt* Interpreter::current_stmt_ = nullptr;

Interpreter::Interpreter(const lang::Program& program, Tracer* tracer,
                         Options options)
    : program_(program), tracer_(tracer), options_(options) {}

void Interpreter::error(SourceRange range, std::string message) const {
  throw RuntimeError{std::move(message), range};
}

void Interpreter::charge(const lang::Stmt& st) {
  // Relaxed accounting: counters are cross-thread only in parallel plan
  // execution, where exact interleaving of increments does not matter.
  const std::uint64_t n = steps_.fetch_add(1, std::memory_order_relaxed) + 1;
  cost_.fetch_add(1, std::memory_order_relaxed);
  if (n > options_.max_steps)
    error(st.range, "step limit exceeded (possible infinite loop)");
  if (tracer_) {
    current_stmt_ = &st;
    tracer_->on_stmt(st);
  }
}

std::string Interpreter::output() const {
  std::scoped_lock lock(output_mutex_);
  return output_;
}

void Interpreter::clear_output() {
  std::scoped_lock lock(output_mutex_);
  output_.clear();
}

Value Interpreter::run_main() {
  const lang::ClassDecl* entry = nullptr;
  const lang::MethodDecl* main_method = nullptr;
  static const lang::Symbol kMain = lang::Symbol::intern("main");
  for (const auto& cls : program_.classes) {
    if (const lang::MethodDecl* m = cls->main_method
                                        ? cls->main_method
                                        : cls->find_method(kMain)) {
      if (entry) error(cls->range, "multiple classes declare main()");
      entry = cls.get();
      main_method = m;
    }
  }
  if (!entry) error({}, "no class declares main()");
  Value self = instantiate(*entry, {});
  return call(*main_method, self, {});
}

Value Interpreter::instantiate(const lang::ClassDecl& cls,
                               std::vector<Value> args) {
  auto obj = std::make_shared<Object>();
  obj->cls = &cls;
  obj->fields.reserve(cls.fields.size());
  for (const auto& f : cls.fields) obj->fields.push_back(default_value(*f.type));
  Value self = Value::of_object(obj);
  static const lang::Symbol kInit = lang::Symbol::intern("init");
  if (const lang::MethodDecl* ctor =
          cls.ctor ? cls.ctor : cls.find_method(kInit)) {
    call(*ctor, self, std::move(args));
  } else if (!args.empty()) {
    error(cls.range, "class '" + cls.name + "' has no constructor");
  }
  return self;
}

Value Interpreter::call(const lang::MethodDecl& method, Value self,
                        std::vector<Value> args, const lang::Stmt* call_site) {
  if (tracer_) tracer_->on_call(method, call_site);
  Frame frame;
  frame.self_value = std::move(self);
  frame.locals.resize(static_cast<std::size_t>(method.local_slot_count));
  if (args.size() != method.params.size())
    error(method.range, "argument count mismatch calling '" + method.name + "'");
  for (std::size_t i = 0; i < args.size(); ++i) {
    const int slot = method.params[i].slot;
    // Widen int arguments into double parameters at the call boundary.
    if (method.params[i].type->kind == lang::Type::Kind::Double &&
        args[i].is_int())
      args[i] = Value::of_double(static_cast<double>(args[i].as_int()));
    frame.locals[static_cast<std::size_t>(slot)] = std::move(args[i]);
  }
  // The callee's statements overwrite current_stmt_; restore it so traces
  // issued by the caller *after* the call (e.g. the write of
  // `x = obj.Method()`) attribute to the calling statement, not to the
  // callee's last statement.
  const lang::Stmt* saved_stmt = current_stmt_;
  const ExecSignal sig = exec_stmt(*method.body, frame);
  current_stmt_ = saved_stmt;
  if (tracer_) tracer_->on_return(method);
  if (sig == ExecSignal::Return) return std::move(frame.return_value);
  return default_value(*method.return_type);
}

ExecSignal Interpreter::exec_stmt(const lang::Stmt& st, Frame& frame) {
  if (interceptor_) {
    ExecSignal signal = ExecSignal::Normal;
    if (interceptor_->intercept(st, frame, *this, &signal)) return signal;
  }
  switch (st.kind) {
    case StmtKind::Block: {
      for (const auto& s : st.as<lang::Block>().stmts) {
        const ExecSignal sig = exec_stmt(*s, frame);
        if (sig != ExecSignal::Normal) return sig;
      }
      return ExecSignal::Normal;
    }
    case StmtKind::VarDecl: {
      charge(st);
      const auto& d = st.as<lang::VarDecl>();
      Value v = d.init ? eval(*d.init, frame) : default_value(*d.declared);
      if (d.declared->kind == lang::Type::Kind::Double && v.is_int())
        v = Value::of_double(static_cast<double>(v.as_int()));
      frame.locals[static_cast<std::size_t>(d.slot)] = std::move(v);
      trace_write({MemLoc::Kind::Local, &frame, d.slot});
      return ExecSignal::Normal;
    }
    case StmtKind::Assign: {
      charge(st);
      const auto& a = st.as<lang::Assign>();
      Value v = eval(*a.value, frame);
      if (a.target->type && a.target->type->kind == lang::Type::Kind::Double &&
          v.is_int())
        v = Value::of_double(static_cast<double>(v.as_int()));
      assign_to(*a.target, std::move(v), frame, st);
      return ExecSignal::Normal;
    }
    case StmtKind::ExprStmt:
      charge(st);
      eval(*st.as<lang::ExprStmt>().expr, frame);
      return ExecSignal::Normal;
    case StmtKind::If: {
      charge(st);
      const auto& i = st.as<lang::If>();
      const bool taken = eval(*i.cond, frame).as_bool();
      if (tracer_) tracer_->on_branch(st, taken);
      if (taken) return exec_stmt(*i.then_branch, frame);
      if (i.else_branch) return exec_stmt(*i.else_branch, frame);
      return ExecSignal::Normal;
    }
    case StmtKind::While: {
      const auto& w = st.as<lang::While>();
      if (tracer_) tracer_->on_loop_enter(st);
      std::int64_t iter = 0;
      while (true) {
        charge(st);
        if (!eval(*w.cond, frame).as_bool()) break;
        if (tracer_) tracer_->on_loop_iteration(st, iter++);
        const ExecSignal sig = exec_stmt(*w.body, frame);
        if (sig == ExecSignal::Break) break;
        if (sig == ExecSignal::Return) {
          if (tracer_) tracer_->on_loop_exit(st);
          return sig;
        }
      }
      if (tracer_) tracer_->on_loop_exit(st);
      return ExecSignal::Normal;
    }
    case StmtKind::For: {
      const auto& f = st.as<lang::For>();
      if (tracer_) tracer_->on_loop_enter(st);
      if (f.init) exec_stmt(*f.init, frame);
      std::int64_t iter = 0;
      while (true) {
        charge(st);
        if (f.cond && !eval(*f.cond, frame).as_bool()) break;
        if (tracer_) tracer_->on_loop_iteration(st, iter++);
        const ExecSignal sig = exec_stmt(*f.body, frame);
        if (sig == ExecSignal::Break) break;
        if (sig == ExecSignal::Return) {
          if (tracer_) tracer_->on_loop_exit(st);
          return sig;
        }
        if (f.step) exec_stmt(*f.step, frame);
      }
      if (tracer_) tracer_->on_loop_exit(st);
      return ExecSignal::Normal;
    }
    case StmtKind::Foreach: {
      const auto& f = st.as<lang::Foreach>();
      charge(st);
      Value iterable = eval(*f.iterable, frame);
      if (tracer_) tracer_->on_loop_enter(st);
      // Snapshot the element count up front; appends during iteration are
      // not observed (matches the usual iterator-invalidation contract).
      std::size_t count = 0;
      if (iterable.is_array()) count = iterable.as_array()->elems.size();
      else if (iterable.is_list()) count = iterable.as_list()->elems.size();
      else error(f.iterable->range, "foreach over null collection");
      ExecSignal result = ExecSignal::Normal;
      for (std::size_t i = 0; i < count; ++i) {
        charge(st);
        if (tracer_)
          tracer_->on_loop_iteration(st, static_cast<std::int64_t>(i));
        Value elem = iterable.is_array() ? iterable.as_array()->elems[i]
                                         : iterable.as_list()->elems[i];
        frame.locals[static_cast<std::size_t>(f.slot)] = std::move(elem);
        trace_write({MemLoc::Kind::Local, &frame, f.slot});
        const ExecSignal sig = exec_stmt(*f.body, frame);
        if (sig == ExecSignal::Break) break;
        if (sig == ExecSignal::Return) {
          result = sig;
          break;
        }
      }
      if (tracer_) tracer_->on_loop_exit(st);
      return result;
    }
    case StmtKind::Return: {
      charge(st);
      const auto& r = st.as<lang::Return>();
      if (r.value) frame.return_value = eval(*r.value, frame);
      return ExecSignal::Return;
    }
    case StmtKind::Break:
      charge(st);
      return ExecSignal::Break;
    case StmtKind::Continue:
      charge(st);
      return ExecSignal::Continue;
    case StmtKind::Annotation:
      return ExecSignal::Normal;  // semantically transparent
  }
  fatal("unknown statement kind in interpreter");
}

void Interpreter::assign_to(const lang::Expr& target, Value value,
                            Frame& frame, const lang::Stmt& at) {
  (void)at;
  switch (target.kind) {
    case ExprKind::VarRef: {
      const auto& ref = target.as<lang::VarRef>();
      if (ref.is_local()) {
        frame.locals[static_cast<std::size_t>(ref.slot)] = std::move(value);
        trace_write({MemLoc::Kind::Local, &frame, ref.slot});
        return;
      }
      Object* self = frame.self();
      if (!self) error(target.range, "field write without object context");
      self->fields[static_cast<std::size_t>(ref.field_index)] = std::move(value);
      trace_write({MemLoc::Kind::Field, self, ref.field_index});
      return;
    }
    case ExprKind::FieldAccess: {
      const auto& fa = target.as<lang::FieldAccess>();
      Value obj = eval(*fa.object, frame);
      if (!obj.is_object() || !obj.as_object())
        error(target.range, "field write on null");
      Object* o = obj.as_object().get();
      o->fields[static_cast<std::size_t>(fa.field_index)] = std::move(value);
      trace_write({MemLoc::Kind::Field, o, fa.field_index});
      return;
    }
    case ExprKind::IndexAccess: {
      const auto& ix = target.as<lang::IndexAccess>();
      Value base = eval(*ix.base, frame);
      Value index = eval(*ix.index, frame);
      const std::int64_t i = check_index(base, index, target.range);
      if (base.is_array()) {
        base.as_array()->elems[static_cast<std::size_t>(i)] = std::move(value);
        trace_write({MemLoc::Kind::Element, base.as_array().get(), i});
      } else {
        base.as_list()->elems[static_cast<std::size_t>(i)] = std::move(value);
        trace_write({MemLoc::Kind::Element, base.as_list().get(), i});
      }
      return;
    }
    default:
      error(target.range, "expression is not assignable");
  }
}

std::int64_t Interpreter::check_index(const Value& container,
                                      const Value& index,
                                      SourceRange range) const {
  if (!index.is_int()) error(range, "index is not an int");
  const std::int64_t i = index.as_int();
  std::int64_t size = 0;
  if (container.is_array() && container.as_array())
    size = static_cast<std::int64_t>(container.as_array()->elems.size());
  else if (container.is_list() && container.as_list())
    size = static_cast<std::int64_t>(container.as_list()->elems.size());
  else
    error(range, "indexing a null collection");
  if (i < 0 || i >= size)
    error(range, "index " + std::to_string(i) + " out of bounds (size " +
                     std::to_string(size) + ")");
  return i;
}

Value Interpreter::eval(const lang::Expr& e, Frame& frame) {
  switch (e.kind) {
    case ExprKind::IntLit: return Value::of_int(e.as<lang::IntLit>().value);
    case ExprKind::DoubleLit:
      return Value::of_double(e.as<lang::DoubleLit>().value);
    case ExprKind::BoolLit: return Value::of_bool(e.as<lang::BoolLit>().value);
    case ExprKind::StringLit:
      return Value::of_string(e.as<lang::StringLit>().value);
    case ExprKind::NullLit: return Value();
    case ExprKind::VarRef: {
      const auto& ref = e.as<lang::VarRef>();
      if (ref.is_local()) {
        trace_read({MemLoc::Kind::Local, &frame, ref.slot});
        return frame.locals[static_cast<std::size_t>(ref.slot)];
      }
      Object* self = frame.self();
      if (!self) error(e.range, "field read without object context");
      trace_read({MemLoc::Kind::Field, self, ref.field_index});
      return self->fields[static_cast<std::size_t>(ref.field_index)];
    }
    case ExprKind::FieldAccess: {
      const auto& fa = e.as<lang::FieldAccess>();
      Value obj = eval(*fa.object, frame);
      if (!obj.is_object() || !obj.as_object())
        error(e.range, "field read on null");
      trace_read({MemLoc::Kind::Field, obj.as_object().get(), fa.field_index});
      return obj.as_object()->fields[static_cast<std::size_t>(fa.field_index)];
    }
    case ExprKind::IndexAccess: {
      const auto& ix = e.as<lang::IndexAccess>();
      Value base = eval(*ix.base, frame);
      Value index = eval(*ix.index, frame);
      const std::int64_t i = check_index(base, index, e.range);
      if (base.is_array()) {
        trace_read({MemLoc::Kind::Element, base.as_array().get(), i});
        return base.as_array()->elems[static_cast<std::size_t>(i)];
      }
      trace_read({MemLoc::Kind::Element, base.as_list().get(), i});
      return base.as_list()->elems[static_cast<std::size_t>(i)];
    }
    case ExprKind::Call: return eval_call(e.as<lang::Call>(), frame);
    case ExprKind::New: {
      const auto& n = e.as<lang::New>();
      std::vector<Value> args;
      args.reserve(n.args.size());
      for (const auto& a : n.args) args.push_back(eval(*a, frame));
      return instantiate(*n.resolved, std::move(args));
    }
    case ExprKind::NewArray: {
      const auto& n = e.as<lang::NewArray>();
      if (n.allocated->kind == lang::Type::Kind::List) {
        auto list = std::make_shared<ListVal>();
        list->element = n.allocated->element;
        return Value::of_list(std::move(list));
      }
      const std::int64_t size = eval(*n.size, frame).as_int();
      if (size < 0) error(e.range, "negative array size");
      auto arr = std::make_shared<ArrayVal>();
      arr->element = n.allocated->element;
      arr->elems.assign(static_cast<std::size_t>(size),
                        default_value(*n.allocated->element));
      return Value::of_array(std::move(arr));
    }
    case ExprKind::Binary: return eval_binary(e.as<lang::Binary>(), frame);
    case ExprKind::Unary: {
      const auto& u = e.as<lang::Unary>();
      Value v = eval(*u.operand, frame);
      if (u.op == lang::UnaryOp::Neg) {
        if (v.is_int()) return Value::of_int(-v.as_int());
        return Value::of_double(-v.to_double());
      }
      return Value::of_bool(!v.as_bool());
    }
  }
  fatal("unknown expression kind in interpreter");
}

Value Interpreter::eval_binary(const lang::Binary& b, Frame& frame) {
  using lang::BinaryOp;
  // Short-circuit operators evaluate the right side lazily.
  if (b.op == BinaryOp::And) {
    if (!eval(*b.lhs, frame).as_bool()) return Value::of_bool(false);
    return Value::of_bool(eval(*b.rhs, frame).as_bool());
  }
  if (b.op == BinaryOp::Or) {
    if (eval(*b.lhs, frame).as_bool()) return Value::of_bool(true);
    return Value::of_bool(eval(*b.rhs, frame).as_bool());
  }

  Value lhs = eval(*b.lhs, frame);
  Value rhs = eval(*b.rhs, frame);

  auto numeric = [&](auto int_op, auto double_op) -> Value {
    if (lhs.is_int() && rhs.is_int())
      return Value::of_int(int_op(lhs.as_int(), rhs.as_int()));
    return Value::of_double(double_op(lhs.to_double(), rhs.to_double()));
  };
  auto compare = [&](auto cmp) -> Value {
    if (lhs.is_string() && rhs.is_string())
      return Value::of_bool(cmp(lhs.as_string().compare(rhs.as_string()), 0));
    if (lhs.is_int() && rhs.is_int())
      return Value::of_bool(cmp(lhs.as_int(), rhs.as_int()));
    return Value::of_bool(cmp(lhs.to_double(), rhs.to_double()));
  };

  switch (b.op) {
    case BinaryOp::Add:
      if (lhs.is_string() || rhs.is_string())
        return Value::of_string(lhs.str() + rhs.str());
      return numeric([](auto a, auto c) { return a + c; },
                     [](auto a, auto c) { return a + c; });
    case BinaryOp::Sub:
      return numeric([](auto a, auto c) { return a - c; },
                     [](auto a, auto c) { return a - c; });
    case BinaryOp::Mul:
      return numeric([](auto a, auto c) { return a * c; },
                     [](auto a, auto c) { return a * c; });
    case BinaryOp::Div:
      if (lhs.is_int() && rhs.is_int()) {
        if (rhs.as_int() == 0) error(b.range, "integer division by zero");
        return Value::of_int(lhs.as_int() / rhs.as_int());
      }
      return Value::of_double(lhs.to_double() / rhs.to_double());
    case BinaryOp::Mod:
      if (rhs.as_int() == 0) error(b.range, "modulo by zero");
      return Value::of_int(lhs.as_int() % rhs.as_int());
    case BinaryOp::Lt: return compare([](auto a, auto c) { return a < c; });
    case BinaryOp::Le: return compare([](auto a, auto c) { return a <= c; });
    case BinaryOp::Gt: return compare([](auto a, auto c) { return a > c; });
    case BinaryOp::Ge: return compare([](auto a, auto c) { return a >= c; });
    case BinaryOp::Eq: return Value::of_bool(lhs.equals(rhs));
    case BinaryOp::Ne: return Value::of_bool(!lhs.equals(rhs));
    case BinaryOp::And:
    case BinaryOp::Or: break;  // handled above
  }
  fatal("unknown binary operator in interpreter");
}

Value Interpreter::eval_call(const lang::Call& c, Frame& frame) {
  if (c.builtin != Builtin::None) return eval_builtin(c, frame);

  Value self;
  if (c.receiver) {
    self = eval(*c.receiver, frame);
    if (!self.is_object() || !self.as_object())
      error(c.range, "method call on null");
  } else {
    self = frame.self_value;  // implicit this
  }
  std::vector<Value> args;
  args.reserve(c.args.size());
  for (const auto& a : c.args) args.push_back(eval(*a, frame));
  return call(*c.resolved, std::move(self), std::move(args), current_stmt_);
}

Value Interpreter::eval_builtin(const lang::Call& c, Frame& frame) {
  auto arg = [&](std::size_t i) { return eval(*c.args[i], frame); };
  switch (c.builtin) {
    case Builtin::Print: {
      const std::string text = arg(0).str();
      {
        std::scoped_lock lock(output_mutex_);
        output_ += text;
        output_ += "\n";
      }
      // The output stream is a memory location too: consecutive prints are
      // order-dependent, which the dependence profile must see (keeps the
      // optimistic analysis from replicating or splitting printing stages).
      trace_write({MemLoc::Kind::Field, nullptr, -999});
      return Value();
    }
    case Builtin::Len: {
      Value v = arg(0);
      if (v.is_string())
        return Value::of_int(static_cast<std::int64_t>(v.as_string().size()));
      if (v.is_array() && v.as_array())
        return Value::of_int(static_cast<std::int64_t>(v.as_array()->elems.size()));
      if (v.is_list() && v.as_list())
        return Value::of_int(static_cast<std::int64_t>(v.as_list()->elems.size()));
      error(c.range, "len() of null collection");
    }
    case Builtin::Push: {
      Value list = arg(0);
      Value elem = arg(1);
      if (!list.is_list() || !list.as_list())
        error(c.range, "push() into null list");
      ListVal* lv = list.as_list().get();
      lv->elems.push_back(std::move(elem));
      // An append reads and writes the list's size/backing: model it as a
      // write to a designated "append cell" (index -1) so dependence
      // profiling sees append-append and append-read conflicts.
      trace_write({MemLoc::Kind::Element, lv, -1});
      return Value();
    }
    case Builtin::Work: {
      const std::int64_t n = arg(0).as_int();
      if (n < 0) error(c.range, "work() with negative cost");
      if (options_.work_sleeps) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(
            static_cast<std::uint64_t>(n) * options_.work_sleep_ns));
      } else {
        burn_work(static_cast<std::uint64_t>(n) * options_.work_scale);
      }
      cost_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
      if (tracer_) tracer_->on_work(static_cast<std::uint64_t>(n));
      // work() is the natural yield point of a long-running program: honor
      // the ambient stop token here so a deadline or shutdown can cancel a
      // sequential interpreter run mid-execution (the service layer relies
      // on this; parallel regions already check at split points).
      if (rt::current_stop_token().stop_requested())
        throw rt::OperationCancelled("work()");
      return Value::of_int(n);
    }
    case Builtin::Sqrt: return Value::of_double(std::sqrt(arg(0).to_double()));
    case Builtin::Abs: {
      Value v = arg(0);
      if (v.is_int()) return Value::of_int(std::abs(v.as_int()));
      return Value::of_double(std::fabs(v.to_double()));
    }
    case Builtin::MinOf: {
      Value a = arg(0), b2 = arg(1);
      if (a.is_int() && b2.is_int())
        return Value::of_int(std::min(a.as_int(), b2.as_int()));
      return Value::of_double(std::min(a.to_double(), b2.to_double()));
    }
    case Builtin::MaxOf: {
      Value a = arg(0), b2 = arg(1);
      if (a.is_int() && b2.is_int())
        return Value::of_int(std::max(a.as_int(), b2.as_int()));
      return Value::of_double(std::max(a.to_double(), b2.to_double()));
    }
    case Builtin::Floor:
      return Value::of_int(static_cast<std::int64_t>(std::floor(arg(0).to_double())));
    case Builtin::ToStr: return Value::of_string(arg(0).str());
    case Builtin::Clamp: {
      const std::int64_t v = arg(0).as_int();
      const std::int64_t lo = arg(1).as_int();
      const std::int64_t hi = arg(2).as_int();
      return Value::of_int(std::max(lo, std::min(hi, v)));
    }
    case Builtin::None: break;
  }
  fatal("unknown builtin in interpreter");
}

}  // namespace patty::analysis
