#include "analysis/profiler.hpp"

#include "support/diagnostics.hpp"

namespace patty::analysis {

namespace {

/// Build stmt-id -> statement and stmt-id -> parent-id maps for a program.
void index_program(const lang::Program& program,
                   std::unordered_map<int, const lang::Stmt*>& by_id,
                   std::unordered_map<int, int>& parent_of) {
  struct Walker {
    std::unordered_map<int, const lang::Stmt*>& by_id;
    std::unordered_map<int, int>& parent_of;

    void walk(const lang::Stmt& st, int parent) {
      by_id[st.id] = &st;
      parent_of[st.id] = parent;
      switch (st.kind) {
        case lang::StmtKind::Block:
          for (const auto& s : st.as<lang::Block>().stmts) walk(*s, st.id);
          break;
        case lang::StmtKind::If: {
          const auto& i = st.as<lang::If>();
          walk(*i.then_branch, st.id);
          if (i.else_branch) walk(*i.else_branch, st.id);
          break;
        }
        case lang::StmtKind::While:
          walk(*st.as<lang::While>().body, st.id);
          break;
        case lang::StmtKind::For: {
          const auto& f = st.as<lang::For>();
          if (f.init) walk(*f.init, st.id);
          if (f.step) walk(*f.step, st.id);
          walk(*f.body, st.id);
          break;
        }
        case lang::StmtKind::Foreach:
          walk(*st.as<lang::Foreach>().body, st.id);
          break;
        default:
          break;
      }
    }
  };
  Walker w{by_id, parent_of};
  for (const auto& cls : program.classes)
    for (const auto& m : cls->methods) w.walk(*m->body, -1);
}

}  // namespace

Profiler::Profiler(const lang::Program& program) : program_(program) {
  index_program(program_, stmt_by_id_, parent_of_);
  // Pre-create a profile node per statement: the unordered_map never
  // rehashes or inserts during tracing, so atomic counter updates and
  // concurrent stmt_profile()/runtime_share() queries need no lock.
  for (const auto& [id, st] : stmt_by_id_) {
    (void)st;
    stmt_profiles_[id];
  }
}

std::vector<std::pair<int, std::int64_t>> Profiler::loop_snapshot() const {
  std::vector<std::pair<int, std::int64_t>> snap;
  snap.reserve(loop_stack_.size());
  for (const LoopFrame& f : loop_stack_)
    snap.emplace_back(f.loop->id, f.iteration);
  return snap;
}

void Profiler::charge_chain(std::uint64_t amount) {
  total_cost_.fetch_add(amount, std::memory_order_relaxed);
  // Attribute to the current statement, its static ancestors, and every
  // call site on the stack (with their static ancestors): inclusive cost.
  std::set<int> charged;  // a statement may appear twice via recursion
  auto charge_up = [&](const lang::Stmt* st) {
    int id = st ? st->id : -1;
    while (id >= 0) {
      if (charged.insert(id).second) {
        auto it = stmt_profiles_.find(id);
        if (it != stmt_profiles_.end())
          it->second.inclusive_cost.fetch_add(amount,
                                              std::memory_order_relaxed);
      }
      auto pit = parent_of_.find(id);
      id = pit == parent_of_.end() ? -1 : pit->second;
    }
  };
  charge_up(current_stmt_);
  for (const lang::Stmt* site : call_site_stack_) charge_up(site);
}

void Profiler::on_stmt(const lang::Stmt& stmt) {
  auto it = stmt_profiles_.find(stmt.id);
  if (it != stmt_profiles_.end())
    it->second.exec_count.fetch_add(1, std::memory_order_relaxed);
  std::scoped_lock lock(trace_mutex_);
  current_stmt_ = &stmt;
  charge_chain(1);
}

void Profiler::on_work(std::uint64_t cost) {
  std::scoped_lock lock(trace_mutex_);
  charge_chain(cost);
}

void Profiler::record_dep(const Access& from, const lang::Stmt& to,
                          DepKind kind, const MemLoc& loc) {
  if (!from.stmt) return;
  const std::int64_t slot =
      loc.kind == MemLoc::Kind::Local ? loc.index : -1;
  // Compare the writer's loop snapshot with the current stack: shared
  // prefix of active loops determines carried-ness per loop.
  const auto current = loop_snapshot();
  const std::size_t common = std::min(current.size(), from.loop_iters.size());
  for (std::size_t d = 0; d < common; ++d) {
    if (current[d].first != from.loop_iters[d].first) break;
    const int loop_id = current[d].first;
    const std::int64_t delta = current[d].second - from.loop_iters[d].second;
    if (delta < 0) break;  // different loop execution; ignore
    auto key =
        std::make_tuple(from.stmt->id, to.id, static_cast<int>(kind), slot);
    DepAcc& acc = loop_deps_[loop_id][key];
    if (delta > 0) {
      acc.carried = true;
      if (!acc.has_distance || delta < acc.min_distance) {
        acc.min_distance = delta;
        acc.has_distance = true;
      }
    }
    deps_dirty_.store(true, std::memory_order_release);
  }
}

void Profiler::on_read(const MemLoc& loc, const lang::Stmt& stmt) {
  std::scoped_lock lock(trace_mutex_);
  auto it = last_writer_.find(loc);
  if (it != last_writer_.end())
    record_dep(it->second, stmt, DepKind::True, loc);
  last_reader_[loc] = Access{&stmt, loop_snapshot()};
}

void Profiler::on_write(const MemLoc& loc, const lang::Stmt& stmt) {
  std::scoped_lock lock(trace_mutex_);
  auto rit = last_reader_.find(loc);
  if (rit != last_reader_.end() && rit->second.stmt != &stmt)
    record_dep(rit->second, stmt, DepKind::Anti, loc);
  auto wit = last_writer_.find(loc);
  if (wit != last_writer_.end())
    record_dep(wit->second, stmt, DepKind::Output, loc);
  last_writer_[loc] = Access{&stmt, loop_snapshot()};
}

void Profiler::on_loop_enter(const lang::Stmt& loop) {
  std::scoped_lock lock(trace_mutex_);
  loop_stack_.push_back({&loop, -1});
  LoopProfile& p = loops_[loop.id];
  p.loop = &loop;
  p.entries += 1;
}

void Profiler::on_loop_iteration(const lang::Stmt& loop, std::int64_t iter) {
  std::scoped_lock lock(trace_mutex_);
  if (!loop_stack_.empty() && loop_stack_.back().loop == &loop)
    loop_stack_.back().iteration = iter;
  loops_[loop.id].total_iterations += 1;
}

void Profiler::on_loop_exit(const lang::Stmt& loop) {
  std::scoped_lock lock(trace_mutex_);
  if (!loop_stack_.empty() && loop_stack_.back().loop == &loop)
    loop_stack_.pop_back();
}

void Profiler::on_branch(const lang::Stmt& if_stmt, bool taken) {
  std::scoped_lock lock(trace_mutex_);
  BranchProfile& b = branches_[if_stmt.id];
  if (taken) b.taken += 1;
  else b.not_taken += 1;
}

void Profiler::on_call(const lang::MethodDecl& callee,
                       const lang::Stmt* call_site) {
  std::scoped_lock lock(trace_mutex_);
  call_counts_[&callee] += 1;
  call_site_stack_.push_back(call_site);
}

void Profiler::on_return(const lang::MethodDecl& callee) {
  (void)callee;
  std::scoped_lock lock(trace_mutex_);
  if (!call_site_stack_.empty()) call_site_stack_.pop_back();
}

const Profiler::StmtProfile& Profiler::stmt_profile(int stmt_id) const {
  static const StmtProfile empty;
  auto it = stmt_profiles_.find(stmt_id);
  return it == stmt_profiles_.end() ? empty : it->second;
}

double Profiler::runtime_share(int stmt_id) const {
  if (total_cost_ == 0) return 0.0;
  return static_cast<double>(stmt_profile(stmt_id).inclusive_cost) /
         static_cast<double>(total_cost_);
}

void Profiler::finalize_deps() const {
  // Double-checked: concurrent detector threads hit the lock-free acquire
  // load once the fold has happened; the first caller folds under the
  // trace mutex. (Callers must not still be tracing — see the class
  // contract — but concurrent *queries* are fine.)
  if (!deps_dirty_.load(std::memory_order_acquire)) return;
  std::scoped_lock lock(trace_mutex_);
  if (!deps_dirty_.load(std::memory_order_relaxed)) return;
  for (auto& [loop_id, dep_map] : const_cast<Profiler*>(this)->loop_deps_) {
    LoopProfile& p = loops_[loop_id];
    p.deps.clear();
    for (const auto& [key, acc] : dep_map) {
      Dep d;
      d.from_id = std::get<0>(key);
      d.to_id = std::get<1>(key);
      d.kind = static_cast<DepKind>(std::get<2>(key));
      d.carried = acc.carried;
      d.distance = acc.has_distance ? acc.min_distance : 0;
      if (std::get<3>(key) >= 0) {
        d.via_local = true;
        d.local_slot = static_cast<int>(std::get<3>(key));
      }
      p.deps.push_back(std::move(d));
    }
  }
  deps_dirty_.store(false, std::memory_order_release);
}

const Profiler::LoopProfile* Profiler::loop_profile(int loop_stmt_id) const {
  finalize_deps();
  auto it = loops_.find(loop_stmt_id);
  return it == loops_.end() ? nullptr : &it->second;
}

std::uint64_t Profiler::call_count(const lang::MethodDecl* m) const {
  auto it = call_counts_.find(m);
  return it == call_counts_.end() ? 0 : it->second;
}

std::size_t Profiler::memory_footprint() const {
  std::size_t bytes = 0;
  bytes += stmt_profiles_.size() * (sizeof(int) + sizeof(StmtProfile) + 16);
  bytes += (last_writer_.size() + last_reader_.size()) *
           (sizeof(MemLoc) + sizeof(Access) + 32);
  for (const auto& [id, deps] : loop_deps_) {
    (void)id;
    bytes += deps.size() *
             (sizeof(std::tuple<int, int, int, std::int64_t>) + sizeof(DepAcc));
  }
  bytes += branches_.size() * (sizeof(int) + sizeof(BranchProfile) + 16);
  return bytes;
}

}  // namespace patty::analysis
