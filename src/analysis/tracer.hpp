#pragma once
// Instrumentation interface for the interpreter. The dynamic-analysis phase
// of the paper's process model (runtime shares, observed dependences, loop
// trip counts, branch outcomes for path coverage) is implemented as Tracer
// subclasses; plain execution passes no tracer and pays no cost.

#include <cstdint>

#include "lang/ast.hpp"

namespace patty::analysis {

/// Identity of one concrete memory cell at runtime.
struct MemLoc {
  enum class Kind : std::uint8_t { Local, Field, Element };
  Kind kind = Kind::Local;
  const void* base = nullptr;  // frame address / object address / array address
  std::int64_t index = 0;      // slot, field index, or element index

  friend bool operator==(const MemLoc&, const MemLoc&) = default;
};

struct MemLocHash {
  std::size_t operator()(const MemLoc& loc) const {
    std::size_t h = std::hash<const void*>()(loc.base);
    h ^= std::hash<std::int64_t>()(loc.index) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
    h ^= static_cast<std::size_t>(loc.kind) * 0x100000001b3ULL;
    return h;
  }
};

class Tracer {
 public:
  virtual ~Tracer() = default;

  /// A statement begins executing; `cost` is its deterministic cost-model
  /// charge (1 for ordinary statements; work(n) adds n via on_work).
  virtual void on_stmt(const lang::Stmt& stmt) { (void)stmt; }

  /// Extra deterministic cost attributed to the current statement.
  virtual void on_work(std::uint64_t cost) { (void)cost; }

  /// A concrete memory cell was read/written while `stmt` executed.
  virtual void on_read(const MemLoc& loc, const lang::Stmt& stmt) {
    (void)loc;
    (void)stmt;
  }
  virtual void on_write(const MemLoc& loc, const lang::Stmt& stmt) {
    (void)loc;
    (void)stmt;
  }

  /// Loop iteration boundaries (loop = the For/While/Foreach statement).
  virtual void on_loop_enter(const lang::Stmt& loop) { (void)loop; }
  virtual void on_loop_iteration(const lang::Stmt& loop, std::int64_t iter) {
    (void)loop;
    (void)iter;
  }
  virtual void on_loop_exit(const lang::Stmt& loop) { (void)loop; }

  /// Branch outcome of an If statement (for path-coverage input synthesis).
  virtual void on_branch(const lang::Stmt& if_stmt, bool taken) {
    (void)if_stmt;
    (void)taken;
  }

  /// Method call/return events (for the dynamic call graph).
  virtual void on_call(const lang::MethodDecl& callee,
                       const lang::Stmt* call_site) {
    (void)callee;
    (void)call_site;
  }
  virtual void on_return(const lang::MethodDecl& callee) { (void)callee; }
};

}  // namespace patty::analysis
