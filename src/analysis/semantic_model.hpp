#pragma once
// The paper's semantic model: "the cross product from the control flow
// graph, the data dependencies, the call graph, and runtime information"
// (§2.1). This facade builds all four for a program, runs the dynamic
// analysis, and answers the queries the pattern detectors need.

#include <memory>
#include <mutex>
#include <optional>

#include "analysis/callgraph.hpp"
#include "analysis/cfg.hpp"
#include "analysis/dependence.hpp"
#include "analysis/effects.hpp"
#include "analysis/interpreter.hpp"
#include "analysis/profiler.hpp"
#include "lang/ast.hpp"
#include "support/arena.hpp"

namespace patty::analysis {

/// A loop (For/While/Foreach) located inside a method.
struct LoopInfo {
  const lang::Stmt* loop = nullptr;
  const lang::MethodDecl* method = nullptr;
  int depth = 0;  // nesting depth within the method (0 = outermost)
};

struct SemanticModelOptions {
  /// Execute the program's main() under the profiler (dynamic half).
  bool run_dynamic = true;
  /// Fan static construction out on the shared runtime pool: per-method
  /// CFGs are prebuilt via parallel_for (self-hosted front-end). The
  /// resulting model is identical to a sequential build.
  bool parallel = false;
  InterpreterOptions interp;
};

class SemanticModel {
 public:
  using Options = SemanticModelOptions;

  /// Build the full model. The program must be sema-checked.
  /// Throws RuntimeError if dynamic analysis is requested and execution
  /// fails (callers may retry with run_dynamic = false).
  static std::unique_ptr<SemanticModel> build(const lang::Program& program,
                                              Options options = {});

  const lang::Program& program() const { return *program_; }
  const CallGraph& call_graph() const { return call_graph_; }
  const EffectAnalysis& effects() const { return *effects_; }
  /// CFG of a method (built on demand, cached).
  const Cfg& cfg(const lang::MethodDecl& method) const;
  /// Dynamic profile; nullptr when run_dynamic was false.
  const Profiler* profile() const { return profiler_.get(); }

  /// All loops in the program, outermost-first per method.
  const std::vector<LoopInfo>& loops() const { return loops_; }

  /// Dependences among the top-level body statements of a loop:
  /// observed (dynamic) if the loop executed under profiling, otherwise the
  /// pessimistic static set. `optimistic` false forces the static set.
  /// Memoized per (loop, mode): repeated detector queries — data-parallel
  /// then pipeline matching both ask — compute once; the returned
  /// reference is stable for the model's lifetime. Thread-safe (the model
  /// is immutable after build, so entries never invalidate).
  const std::vector<Dep>& loop_dependences(const lang::Stmt& loop,
                                           bool optimistic = true) const;

  /// True when the loop executed at least one iteration under profiling.
  bool loop_was_profiled(const lang::Stmt& loop) const;

  /// Inclusive runtime share of a statement, 0 if no dynamic info.
  double runtime_share(const lang::Stmt& st) const;

  /// Look up a statement by id anywhere in the program.
  const lang::Stmt* stmt_by_id(int id) const;
  /// The method whose body (transitively) contains the statement.
  const lang::MethodDecl* method_of(const lang::Stmt& st) const;

  /// Bytes the model's side-structure arena has reserved (CFG cache +
  /// dependence memo). Grows monotonically as lazy caches fill; the
  /// service model cache samples it for footprint accounting.
  [[nodiscard]] std::size_t side_bytes_reserved() const {
    std::scoped_lock lock(cfg_mutex_, dep_cache_mutex_);
    return arena_.bytes_reserved();
  }

 private:
  SemanticModel() = default;
  void collect_loops();
  std::vector<Dep> compute_loop_dependences(const lang::Stmt& loop,
                                            bool optimistic) const;

  // Declared first so it outlives everything placed in it: cached CFGs and
  // memoized dependence vectors live in this arena (one chunk-list drop
  // reclaims the model's side structures when it dies). Arena allocation is
  // serialized under the respective cache mutex.
  mutable support::Arena arena_;

  const lang::Program* program_ = nullptr;
  CallGraph call_graph_;
  std::unique_ptr<EffectAnalysis> effects_;
  std::unique_ptr<Profiler> profiler_;
  std::vector<LoopInfo> loops_;
  std::unordered_map<int, const lang::Stmt*> stmt_by_id_;
  std::unordered_map<int, const lang::MethodDecl*> method_by_stmt_id_;
  mutable std::mutex cfg_mutex_;
  // Values are arena-placed; the ArenaPtr runs ~Cfg (inner vectors own
  // heap) while the arena keeps the bytes. Pointer values mean references
  // handed out stay stable across rehashes.
  mutable std::unordered_map<const lang::MethodDecl*, support::ArenaPtr<Cfg>>
      cfg_cache_;
  // Dependence memo, keyed (loop id << 1) | optimistic. Never invalidated:
  // the program, effects and profile are frozen once build() returns
  // (see DESIGN.md "Self-hosted front-end" on cache invalidation).
  mutable std::mutex dep_cache_mutex_;
  mutable std::unordered_map<std::uint64_t, support::ArenaPtr<std::vector<Dep>>>
      dep_cache_;
};

}  // namespace patty::analysis
