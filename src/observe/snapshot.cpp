#include "observe/snapshot.hpp"

#include <cstdio>

namespace patty::observe {

std::uint64_t TelemetryDelta::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

WindowStats TelemetryDelta::histogram(const std::string& name) const {
  auto it = histograms.find(name);
  return it == histograms.end() ? WindowStats{} : it->second;
}

bool TelemetryDelta::empty() const {
  for (const auto& [name, v] : counters) {
    (void)name;
    if (v != 0) return false;
  }
  for (const auto& [name, w] : histograms) {
    (void)name;
    if (w.count != 0) return false;
  }
  return true;
}

std::string TelemetryDelta::str() const {
  std::string out;
  char buf[160];
  for (const auto& [name, v] : counters) {
    if (v == 0) continue;
    std::snprintf(buf, sizeof(buf), "  %-40s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(v));
    out += buf;
  }
  for (const auto& [name, w] : histograms) {
    if (w.count == 0) continue;
    std::snprintf(buf, sizeof(buf), "  %-40s n=%llu mean=%.2f sum=%.1f\n",
                  name.c_str(), static_cast<unsigned long long>(w.count),
                  w.mean, w.sum);
    out += buf;
  }
  return out;
}

MetricsSnapshot capture() { return Registry::global().snapshot(); }

TelemetryDelta delta(const MetricsSnapshot& before,
                     const MetricsSnapshot& after) {
  TelemetryDelta d;
  for (const auto& [name, v] : after.counters) {
    auto it = before.counters.find(name);
    const std::uint64_t prev = it == before.counters.end() ? 0 : it->second;
    d.counters[name] = v >= prev ? v - prev : v;  // clamp across reset()
  }
  for (const auto& [name, h] : after.histograms) {
    auto it = before.histograms.find(name);
    WindowStats w;
    if (it == before.histograms.end() || h.count < it->second.count) {
      w.count = h.count;  // new instrument, or reset() inside the window
      w.sum = h.sum;
    } else {
      w.count = h.count - it->second.count;
      w.sum = h.sum - it->second.sum;
    }
    if (w.count > 0) w.mean = w.sum / static_cast<double>(w.count);
    d.histograms[name] = w;
  }
  d.gauges = after.gauges;
  return d;
}

TelemetryDelta delta_since(const MetricsSnapshot& before) {
  return delta(before, capture());
}

}  // namespace patty::observe
