#include "observe/metrics.hpp"

#include <algorithm>
#include <vector>

#include "support/stats.hpp"
#include "support/table.hpp"

namespace patty::observe {

namespace {

void atomic_add_double(std::atomic<double>& target, double delta) {
  double seen = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(seen, seen + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& target, double v) {
  double seen = target.load(std::memory_order_relaxed);
  while (v < seen &&
         !target.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double v) {
  double seen = target.load(std::memory_order_relaxed);
  while (v > seen &&
         !target.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::size_t Counter::shard_index() {
  // Round-robin slot assignment: the first kShards threads get distinct
  // shards (no hash collisions between the pool workers that dominate
  // traffic); beyond that, threads wrap around and share.
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

void Histogram::record(double v) {
  const std::uint64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(sum_, v);
  if (n == 0) {
    // First sample seeds min/max; races with a concurrent first sample
    // resolve through the CAS loops below.
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
  } else {
    atomic_min_double(min_, v);
    atomic_max_double(max_, v);
  }
  reservoir_[n % kReservoir].store(v, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  if (snap.count == 0) return snap;
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.min = min_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  snap.mean = snap.sum / static_cast<double>(snap.count);
  const std::size_t n =
      static_cast<std::size_t>(std::min<std::uint64_t>(snap.count, kReservoir));
  std::vector<double> sample;
  sample.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    sample.push_back(reservoir_[i].load(std::memory_order_relaxed));
  // One sort, three reads (the Quantiles helper from support/stats).
  const Quantiles qs(std::move(sample));
  snap.p50 = qs.q(0.50);
  snap.p90 = qs.q(0.90);
  snap.p99 = qs.q(0.99);
  return snap;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot Registry::snapshot() const {
  MetricsSnapshot snap;
  std::scoped_lock lock(mutex_);
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_)
    snap.gauges[name] = {g->value(), g->max()};
  for (const auto& [name, h] : histograms_)
    snap.histograms[name] = h->snapshot();
  return snap;
}

void Registry::reset() {
  std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsSnapshot::str() const {
  std::string out;
  if (!counters.empty()) {
    Table t({"counter", "value"});
    for (const auto& [name, v] : counters)
      t.add_row({name, std::to_string(v)});
    out += t.str();
  }
  if (!gauges.empty()) {
    Table t({"gauge", "value", "max"});
    for (const auto& [name, g] : gauges)
      t.add_row({name, std::to_string(g.value), std::to_string(g.max)});
    if (!out.empty()) out += "\n";
    out += t.str();
  }
  if (!histograms.empty()) {
    Table t({"histogram", "count", "mean", "p50", "p90", "p99", "max"});
    for (const auto& [name, h] : histograms)
      t.add_row({name, std::to_string(h.count), fmt(h.mean), fmt(h.p50),
                 fmt(h.p90), fmt(h.p99), fmt(h.max)});
    if (!out.empty()) out += "\n";
    out += t.str();
  }
  return out;
}

}  // namespace patty::observe
