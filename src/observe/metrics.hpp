#pragma once
// Metrics registry: cheap atomic counters, gauges and histograms with a
// snapshot API. The runtime components (pipeline, thread pool, parallel-for,
// master/worker, tuner, race explorer) publish into the process-global
// Registry; benches and examples read a MetricsSnapshot after the measured
// region. Recording is lock-free (relaxed atomics); only name lookup takes a
// mutex, so hot paths cache the returned reference (stable for the process
// lifetime).
//
// Whether anything records at all is governed by observe::enabled() (see
// trace.hpp): instrumentation sites guard with it, so with telemetry off the
// cost is one relaxed atomic load per site — and zero when compiled out via
// PATTY_OBSERVE_DISABLED.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace patty::observe {

/// Sharded counter: increments land in one of kShards cache-line-padded
/// slots picked per thread (round-robin assignment at first use), so
/// concurrent writers on different threads don't ping-pong a single cache
/// line once the front-end runs parallel. Reads aggregate across shards —
/// value() is O(kShards) and, like the old single-atomic version, a
/// momentary-in-time sum, not a linearization point.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  /// Per-thread shard slot, assigned round-robin on first use (cached in a
  /// thread_local, so the hot add() path is one TLS read + one fetch_add).
  static std::size_t shard_index();
  std::array<Shard, kShards> shards_{};
};

/// Last-value gauge that also tracks its high-water mark (e.g. queue depth).
class Gauge {
 public:
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    raise_max(v);
  }
  void add(std::int64_t delta) {
    raise_max(value_.fetch_add(delta, std::memory_order_relaxed) + delta);
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void raise_max(std::int64_t v) {
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Lock-free histogram: exact count/sum/min/max plus a wrapping sample
/// reservoir (the most recent kReservoir values) from which the snapshot
/// derives quantiles via support/stats Quantiles. Quantiles are therefore
/// exact up to kReservoir samples and recency-weighted beyond that.
class Histogram {
 public:
  static constexpr std::size_t kReservoir = 1024;

  void record(double v);
  [[nodiscard]] HistogramSnapshot snapshot() const;
  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::array<std::atomic<double>, kReservoir> reservoir_{};
};

struct GaugeSnapshot {
  std::int64_t value = 0;
  std::int64_t max = 0;
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeSnapshot> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Plain-text rendering (support/table), one section per metric kind.
  [[nodiscard]] std::string str() const;
};

class Registry {
 public:
  /// Process-global registry; all runtime instrumentation publishes here.
  static Registry& global();

  /// Lookup-or-create. Returned references are stable: hot paths should
  /// call once and cache.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zero every metric (keeps the instruments registered).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace patty::observe
