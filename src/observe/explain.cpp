#include "observe/explain.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <mutex>

#include "observe/metrics.hpp"
#include "support/arena.hpp"
#include "support/intern.hpp"
#include "support/table.hpp"

namespace patty::observe {

namespace {

std::string fmt_bytes(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= 10ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MB",
                  static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 10ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

struct PipelineRing {
  std::mutex mutex;
  std::deque<PipelineObservation> recent;
  static constexpr std::size_t kKeep = 32;
};

PipelineRing& ring() {
  static PipelineRing* r = new PipelineRing();  // immortal
  return *r;
}

}  // namespace

void publish_frontend_memory() {
  Registry& reg = Registry::global();
  reg.gauge("frontend.arena.bytes")
      .set(static_cast<std::int64_t>(support::Arena::total_bytes_reserved()));
  reg.gauge("frontend.arena.chunks")
      .set(static_cast<std::int64_t>(support::Arena::total_chunks()));
  reg.gauge("frontend.arena.recycled")
      .set(static_cast<std::int64_t>(support::Arena::total_recycled_chunks()));
  const support::Interner::Stats interns = support::Interner::global().stats();
  reg.gauge("frontend.intern.symbols")
      .set(static_cast<std::int64_t>(interns.symbols));
  reg.gauge("frontend.intern.bytes")
      .set(static_cast<std::int64_t>(interns.bytes));
}

std::string memory_summary() {
  const MetricsSnapshot snap = Registry::global().snapshot();
  auto gauge = [&snap](const char* name) -> std::int64_t {
    auto it = snap.gauges.find(name);
    return it == snap.gauges.end() ? 0 : it->second.value;
  };
  auto gauge_max = [&snap](const char* name) -> std::int64_t {
    auto it = snap.gauges.find(name);
    return it == snap.gauges.end() ? 0 : it->second.max;
  };
  const std::int64_t arena_bytes = gauge("frontend.arena.bytes");
  const std::int64_t symbols = gauge("frontend.intern.symbols");
  // The service layer publishes its cache and admission-queue gauges into
  // the same registry (src/service): the daemon's `health` response and
  // this report deliberately read one source of truth.
  const std::int64_t cache_entries = gauge("service.cache.entries");
  const std::int64_t cache_bytes = gauge("service.cache.bytes");
  const std::int64_t queue_high = gauge_max("service.queue.depth");
  if (arena_bytes == 0 && symbols == 0 && cache_entries == 0 &&
      queue_high == 0)
    return "";
  std::string out = "front-end memory: arenas ";
  out += fmt_bytes(static_cast<std::uint64_t>(arena_bytes));
  out += " in " + std::to_string(gauge("frontend.arena.chunks")) + " chunks";
  const std::int64_t recycled = gauge("frontend.arena.recycled");
  if (recycled > 0) out += " (" + std::to_string(recycled) + " recycled)";
  out += "; interner " + std::to_string(symbols) + " symbols, ";
  out += fmt_bytes(static_cast<std::uint64_t>(gauge("frontend.intern.bytes")));
  if (cache_entries > 0 || cache_bytes > 0) {
    out += "; service cache " + std::to_string(cache_entries) + " models, ";
    out += fmt_bytes(static_cast<std::uint64_t>(cache_bytes));
  }
  if (queue_high > 0) {
    out += "; service queue depth " +
           std::to_string(gauge("service.queue.depth")) + " (high-water " +
           std::to_string(queue_high) + ")";
  }
  return out;
}

void record_pipeline(PipelineObservation obs) {
  PipelineRing& r = ring();
  std::scoped_lock lock(r.mutex);
  r.recent.push_back(std::move(obs));
  while (r.recent.size() > PipelineRing::kKeep) r.recent.pop_front();
}

std::optional<PipelineObservation> latest_pipeline() {
  PipelineRing& r = ring();
  std::scoped_lock lock(r.mutex);
  if (r.recent.empty()) return std::nullopt;
  return r.recent.back();
}

std::vector<PipelineObservation> recent_pipelines() {
  PipelineRing& r = ring();
  std::scoped_lock lock(r.mutex);
  return {r.recent.begin(), r.recent.end()};
}

void clear_pipelines() {
  PipelineRing& r = ring();
  std::scoped_lock lock(r.mutex);
  r.recent.clear();
}

BottleneckReport explain(const PipelineObservation& obs) {
  BottleneckReport report;
  if (obs.stages.empty()) {
    report.stall = "idle";
    report.detail = "no stages observed";
    return report;
  }
  if (obs.sequential) {
    report.stage = obs.stages.front().name;
    report.stall = "sequential";
    report.parameter = "SequentialExecution";
    report.detail =
        "pipeline ran inline (SequentialExecution); no stage-level stalls "
        "to attribute";
    return report;
  }

  // The bottleneck is the stage with the largest per-worker service time:
  // replication divides the work a single worker must absorb, so busy time
  // normalized by replication is the time the stream spends queued behind
  // one worker of that stage.
  double total_busy = 0.0;
  std::size_t k = 0;
  double k_service = -1.0;
  for (std::size_t i = 0; i < obs.stages.size(); ++i) {
    const StageObservation& s = obs.stages[i];
    total_busy += s.busy_ms;
    const double service =
        s.busy_ms / static_cast<double>(std::max(1, s.replication));
    if (service > k_service) {
      k_service = service;
      k = i;
    }
  }
  const StageObservation& hot = obs.stages[k];
  report.stage_index = k;
  report.stage = hot.name;

  // Overhead-bound: the stream spends almost no time computing relative to
  // the wall clock — threading/queue plumbing dominates. The paper's
  // remedies are fusing tiny stages or falling back to sequential.
  if (obs.wall_ms > 0.0 && total_busy < 0.2 * obs.wall_ms) {
    report.stall = "overhead-bound";
    report.parameter =
        obs.stages.size() > 1 ? "StageFusion / SequentialExecution"
                              : "SequentialExecution";
    report.detail =
        "stages computed for " + fmt(total_busy) + " ms of a " +
        fmt(obs.wall_ms) +
        " ms wall: plumbing dominates; fuse adjacent stages or run "
        "sequentially";
    return report;
  }

  // Back-pressure evidence: upstream pushes into the bottleneck's input
  // queue blocked, or the queue sat at capacity.
  const bool queue_pressure =
      hot.input_queue_full_waits > 0 ||
      (hot.input_queue_capacity > 0 &&
       hot.input_queue_high_water >= hot.input_queue_capacity);
  report.stall = queue_pressure ? "queue-full" : "compute-bound";
  report.parameter = "StageReplication(" + hot.name + ")";
  report.detail = "stage '" + hot.name + "' is the bottleneck: " +
                  fmt(hot.busy_ms) + " ms busy across " +
                  std::to_string(hot.replication) + " worker(s)";
  if (queue_pressure) {
    report.detail += "; its input queue hit " +
                     std::to_string(hot.input_queue_high_water) + "/" +
                     std::to_string(hot.input_queue_capacity) +
                     " with " + std::to_string(hot.input_queue_full_waits) +
                     " blocked upstream pushes";
    report.parameter += " or BufferCapacity";
  }
  report.detail += " -> raise " + report.parameter;
  return report;
}

std::string render(const PipelineObservation& obs) {
  Table t({"stage", "rep", "items", "busy ms", "in-wait ms", "out-wait ms",
           "queue hi/cap", "full-waits", "items/s"});
  for (const StageObservation& s : obs.stages) {
    const double throughput =
        obs.wall_ms > 0.0
            ? static_cast<double>(s.items) / (obs.wall_ms / 1000.0)
            : 0.0;
    t.add_row({s.name, std::to_string(s.replication), std::to_string(s.items),
               fmt(s.busy_ms), fmt(s.input_wait_ms), fmt(s.output_wait_ms),
               std::to_string(s.input_queue_high_water) + "/" +
                   std::to_string(s.input_queue_capacity),
               std::to_string(s.input_queue_full_waits), fmt(throughput, 0)});
  }
  const BottleneckReport verdict = explain(obs);
  std::string out = "pipeline '" + obs.pipeline + "': " +
                    std::to_string(obs.elements) + " elements in " +
                    fmt(obs.wall_ms) + " ms" +
                    (obs.sequential ? " (sequential)" : "") + "\n";
  out += t.str();
  out += "bottleneck: " + (verdict.stage.empty() ? "-" : verdict.stage) +
         " [" + verdict.stall + "] " + verdict.detail + "\n";
  const std::string memory = memory_summary();
  if (!memory.empty()) out += memory + "\n";
  return out;
}

}  // namespace patty::observe
