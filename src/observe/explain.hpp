#pragma once
// Bottleneck explanation: turns a pipeline's per-stage telemetry into the
// paper's vocabulary. The tuning cycle (§2.1, fig. 4c) measures one scalar
// per configuration; this answers *why* a configuration is slow by mapping
// the dominant stall to the tuning parameter that addresses it:
//
//   stage k compute-bound, its input queue runs full
//       -> StageReplication(k)   (replicate the bottleneck stage)
//   queues oscillate full/empty with balanced stages
//       -> BufferCapacity        (raise the connecting buffer)
//   per-element work tiny, wall dominated by plumbing
//       -> StageFusion / SequentialExecution
//
// Pipelines publish a PipelineObservation per run() when telemetry is
// enabled (see runtime/pipeline.hpp); the most recent observations are kept
// in a small global ring so examples and benches can explain runs they did
// not construct themselves (e.g. pipelines inside the plan executor).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace patty::observe {

struct StageObservation {
  std::string name;
  int replication = 1;
  std::uint64_t items = 0;
  double busy_ms = 0.0;        // time inside the stage fn, summed over workers
  double input_wait_ms = 0.0;  // blocked popping the input queue (starved)
  double output_wait_ms = 0.0; // blocked pushing downstream (back-pressure)
  std::uint64_t input_queue_full_waits = 0;   // upstream pushes that blocked
  std::uint64_t input_queue_empty_waits = 0;  // pops here that blocked
  std::size_t input_queue_high_water = 0;
  std::size_t input_queue_capacity = 0;
};

struct PipelineObservation {
  std::string pipeline;
  bool sequential = false;
  double wall_ms = 0.0;
  std::uint64_t elements = 0;
  std::vector<StageObservation> stages;
};

struct BottleneckReport {
  std::size_t stage_index = 0;
  std::string stage;
  /// "compute-bound" | "queue-full" | "overhead-bound" | "sequential" | "idle"
  std::string stall;
  /// The paper's tuning parameter that addresses the stall, e.g.
  /// "StageReplication(B)", "BufferCapacity", "StageFusion",
  /// "SequentialExecution".
  std::string parameter;
  std::string detail;  // one-line prose explanation
};

/// Name the bottleneck stage and the tuning parameter that addresses it.
BottleneckReport explain(const PipelineObservation& obs);

/// Per-stage text table (support/table) followed by the explain() verdict.
std::string render(const PipelineObservation& obs);

/// Sample the front-end's memory footprint — arena bytes/chunks reserved
/// process-wide (support::Arena totals) and the intern table's symbol
/// count and character bytes — into Registry gauges:
///   frontend.arena.bytes, frontend.arena.chunks,
///   frontend.intern.symbols, frontend.intern.bytes
/// The corpus front-end calls this after every evaluate_corpus when
/// telemetry is enabled; benches may call it directly.
void publish_frontend_memory();

/// One-line rendering of the frontend.* memory gauges ("arenas: 12.3 MB in
/// 87 chunks; interner: 4821 symbols, 61.2 KB"), or "" when nothing has
/// been published yet. When the service daemon is live its cache and
/// admission-queue gauges (service.cache.*, service.queue.depth) are
/// appended, so this report and the daemon's `health` response agree on
/// one source of truth. render() appends it to pipeline reports.
[[nodiscard]] std::string memory_summary();

/// Global ring of the most recent pipeline observations (telemetry-enabled
/// runs publish here automatically).
void record_pipeline(PipelineObservation obs);
[[nodiscard]] std::optional<PipelineObservation> latest_pipeline();
[[nodiscard]] std::vector<PipelineObservation> recent_pipelines();
void clear_pipelines();

}  // namespace patty::observe
