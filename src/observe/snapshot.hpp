#pragma once
// Telemetry windows: capture the metrics registry before a measured region
// and diff it afterwards. A TelemetryDelta is the region's own metric
// traffic — counter increments, histogram count/sum deltas (and the mean
// over just that window) — independent of whatever ran earlier in the
// process. The model-guided tuner (src/tuning/model.hpp) fits its
// per-pattern cost models from exactly these windows: one probe run with
// telemetry on yields per-stage service times, chunk costs, steal and
// queue-wait rates without any dedicated profiling mode.

#include <cstdint>
#include <map>
#include <string>

#include "observe/metrics.hpp"

namespace patty::observe {

/// Histogram traffic inside one window: how many samples landed, their sum,
/// and the window mean. Quantiles are not delta-able (the reservoir wraps),
/// so a window exposes only the moments that subtract exactly.
struct WindowStats {
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;  // sum / count, 0 when count == 0
};

/// Difference between two MetricsSnapshots. Counters and histogram
/// count/sum subtract (clamped at zero against resets); gauges keep their
/// end-of-window value and high-water mark.
struct TelemetryDelta {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, WindowStats> histograms;
  std::map<std::string, GaugeSnapshot> gauges;

  /// Lookup helpers: absent names read as zero traffic, so callers probe
  /// for instrumentation that may not have fired without branching.
  [[nodiscard]] std::uint64_t counter(const std::string& name) const;
  [[nodiscard]] WindowStats histogram(const std::string& name) const;

  /// True when no counter ticked and no histogram recorded in the window.
  [[nodiscard]] bool empty() const;

  /// Plain-text rendering (nonzero entries only), for explain-style reports.
  [[nodiscard]] std::string str() const;
};

/// Snapshot the global registry (shorthand for Registry::global().snapshot()).
[[nodiscard]] MetricsSnapshot capture();

/// The metric traffic between two snapshots.
[[nodiscard]] TelemetryDelta delta(const MetricsSnapshot& before,
                                   const MetricsSnapshot& after);

/// The metric traffic since `before` (diffs against a fresh capture()).
[[nodiscard]] TelemetryDelta delta_since(const MetricsSnapshot& before);

}  // namespace patty::observe
