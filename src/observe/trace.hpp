#pragma once
// Trace recorder: per-thread event ring buffers holding scoped spans and
// instant events, drained at snapshot time, exported as Chrome trace-event
// JSON (loadable in chrome://tracing or https://ui.perfetto.dev) or as a
// plain-text summary table.
//
// Recording is wait-free for the writer thread: events go into a fixed-size
// thread-local ring (the most recent kRingCapacity events survive; older
// ones are overwritten and counted as dropped). Buffers of exited threads
// stay registered until drained and are recycled for new threads, so
// short-lived pipeline workers neither lose events nor leak memory.
//
// Toggles:
//   runtime      observe::set_enabled(true)  (or env PATTY_OBSERVE=1)
//   compile time -DPATTY_OBSERVE_DISABLED    makes enabled() constexpr
//                false so every guarded instrumentation site folds away.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace patty::observe {

#ifdef PATTY_OBSERVE_DISABLED
constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
#else
/// One relaxed atomic load; the guard every instrumentation site uses.
[[nodiscard]] bool enabled();
void set_enabled(bool on);
#endif

/// Microseconds since the process trace epoch (steady clock).
std::uint64_t now_us();

struct TraceEvent {
  static constexpr std::size_t kNameCap = 48;
  static constexpr std::size_t kCatCap = 16;
  // Room for a full tuning configuration (a dozen qualified parameter names
  // plus the score) — tuner.eval spans attach it as args.detail. Events are
  // written into the ring in place and only the used bytes are copied, so a
  // generous cap costs ring memory, not hot-path time.
  static constexpr std::size_t kDetailCap = 1000;

  char name[kNameCap] = {};
  char cat[kCatCap] = {};
  /// Free-form text attached as args.detail in the Chrome export.
  char detail[kDetailCap] = {};
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;  // 0 for instant events
  std::uint32_t tid = 0;
  char phase = 'X';  // 'X' complete span, 'i' instant
};

/// Record a finished span with explicit timing (hot-path friendly: the
/// caller reads the clock only when telemetry is enabled). No-op when
/// disabled.
void record_complete(std::string_view name, std::string_view cat,
                     std::uint64_t ts_us, std::uint64_t dur_us,
                     std::string_view detail = {});

/// Record an instant event at now. No-op when disabled.
void record_instant(std::string_view name, std::string_view cat,
                    std::string_view detail = {});

/// RAII span: captures the clock at construction, records a complete event
/// at destruction. Costs one atomic load when telemetry is disabled.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view cat = "rt");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach free-form detail text (kept on the event as args.detail).
  void set_detail(std::string_view detail);

 private:
  bool active_ = false;
  std::uint64_t start_us_ = 0;
  // Filled (and NUL-terminated) in the constructor only when telemetry is
  // enabled; deliberately not zero-initialized here so an inactive Span
  // costs one atomic load, not a kDetailCap-byte memset.
  char name_[TraceEvent::kNameCap];
  char cat_[TraceEvent::kCatCap];
  char detail_[TraceEvent::kDetailCap];
};

struct TraceSnapshot {
  std::vector<TraceEvent> events;  // sorted by ts_us
  std::uint64_t dropped = 0;       // overwritten by ring wrap before drain
};

/// Copy out everything currently recorded, across all threads (alive or
/// exited). Threads still recording concurrently may contribute partially
/// written events past the snapshot point; drain after quiescence for an
/// exact trace.
TraceSnapshot drain();

/// Forget all recorded events (buffers stay registered).
void clear();

/// Chrome trace-event JSON ("traceEvents" array form).
std::string chrome_trace_json(const TraceSnapshot& snap);
/// Convenience: drain() + export.
std::string chrome_trace_json();

/// Plain-text summary (support/table): per event name the count, total and
/// mean duration, plus a drop note when the rings wrapped.
std::string trace_summary(const TraceSnapshot& snap);

}  // namespace patty::observe
