#include "observe/trace.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "support/table.hpp"

namespace patty::observe {

namespace {

#ifndef PATTY_OBSERVE_DISABLED
// Env opt-in: PATTY_OBSERVE=1 enables telemetry before main() runs, so
// examples and benches can be traced without code changes.
std::atomic<bool> g_enabled{[] {
  const char* env = std::getenv("PATTY_OBSERVE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}()};
#endif

std::chrono::steady_clock::time_point epoch() {
  static const auto t0 = std::chrono::steady_clock::now();
  return t0;
}

void copy_capped(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = std::min(cap - 1, src.size());
  std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

/// Single-writer ring buffer; the drain side reads the published head with
/// acquire and copies. Wrapped (overwritten) events count as dropped.
///
/// Writers fill the next slot in place (claim/publish) rather than copying a
/// stack-constructed event in: the zero-init plus copy showed up as the
/// dominant per-event cost in the overhead bench. The slot itself holds only
/// the hot fixed-size fields (~96 bytes, two cache lines); the kDetailCap
/// detail text lives in a parallel array that is touched only when an event
/// actually attaches one — most hot-path events (pipeline items, worker
/// tasks) carry no detail, and inlining a 1 KB detail field in every slot
/// measurably widened the ring stride and cost several percent of overhead.
struct ThreadBuffer {
  static constexpr std::size_t kRingCapacity = 2048;

  struct Hot {
    char name[TraceEvent::kNameCap];
    char cat[TraceEvent::kCatCap];
    std::uint64_t ts_us;
    std::uint64_t dur_us;
    std::uint32_t tid;
    char phase;
    bool has_detail;
  };
  using DetailSlot = std::array<char, TraceEvent::kDetailCap>;

  std::array<Hot, kRingCapacity> hot{};
  std::unique_ptr<std::array<DetailSlot, kRingCapacity>> details =
      std::make_unique<std::array<DetailSlot, kRingCapacity>>();
  std::atomic<std::uint64_t> head{0};  // total events ever written

  std::size_t claim() const {
    return head.load(std::memory_order_relaxed) % kRingCapacity;
  }
  void publish() {
    head.store(head.load(std::memory_order_relaxed) + 1,
               std::memory_order_release);
  }
};

struct BufferRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> all;
  std::vector<std::shared_ptr<ThreadBuffer>> free_list;
  std::uint32_t next_tid = 1;
};

BufferRegistry& registry() {
  static BufferRegistry* reg = new BufferRegistry();  // immortal
  return *reg;
}

/// Holds this thread's buffer; returns it to the free list on thread exit
/// (events stay visible in `all` until cleared).
struct ThreadSlot {
  std::shared_ptr<ThreadBuffer> buffer;
  std::uint32_t tid = 0;

  ~ThreadSlot() {
    if (!buffer) return;
    BufferRegistry& reg = registry();
    std::scoped_lock lock(reg.mutex);
    reg.free_list.push_back(buffer);
  }
};

ThreadBuffer& local_buffer(std::uint32_t* tid_out) {
  thread_local ThreadSlot slot;
  if (!slot.buffer) {
    BufferRegistry& reg = registry();
    std::scoped_lock lock(reg.mutex);
    if (!reg.free_list.empty()) {
      slot.buffer = std::move(reg.free_list.back());
      reg.free_list.pop_back();
    } else {
      slot.buffer = std::make_shared<ThreadBuffer>();
      reg.all.push_back(slot.buffer);
    }
    slot.tid = reg.next_tid++;
  }
  *tid_out = slot.tid;
  return *slot.buffer;
}

void record_event(std::string_view name, std::string_view cat,
                  std::uint64_t ts_us, std::uint64_t dur_us,
                  std::string_view detail, char phase) {
  std::uint32_t tid = 0;
  ThreadBuffer& buf = local_buffer(&tid);
  const std::size_t slot = buf.claim();
  ThreadBuffer::Hot& ev = buf.hot[slot];
  copy_capped(ev.name, TraceEvent::kNameCap, name);
  copy_capped(ev.cat, TraceEvent::kCatCap, cat);
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.tid = tid;
  ev.phase = phase;
  ev.has_detail = !detail.empty();
  if (ev.has_detail)
    copy_capped((*buf.details)[slot].data(), TraceEvent::kDetailCap, detail);
  buf.publish();
}

void append_json_escaped(std::string* out, const char* s) {
  for (; *s; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (c < 0x20 || c >= 0x7f) {
          // Control or non-ASCII byte (a torn concurrent write could leave
          // anything): emit as a \u escape so the JSON stays valid.
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          *out += buf;
        } else {
          *out += static_cast<char>(c);
        }
    }
  }
}

}  // namespace

#ifndef PATTY_OBSERVE_DISABLED
bool enabled() { return g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  if (on) epoch();  // pin the epoch no later than first enablement
  g_enabled.store(on, std::memory_order_relaxed);
}
#endif

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch())
          .count());
}

void record_complete(std::string_view name, std::string_view cat,
                     std::uint64_t ts_us, std::uint64_t dur_us,
                     std::string_view detail) {
  if (!enabled()) return;
  record_event(name, cat, ts_us, dur_us, detail, 'X');
}

void record_instant(std::string_view name, std::string_view cat,
                    std::string_view detail) {
  if (!enabled()) return;
  record_event(name, cat, now_us(), 0, detail, 'i');
}

Span::Span(std::string_view name, std::string_view cat) {
  if (!enabled()) return;
  active_ = true;
  start_us_ = now_us();
  copy_capped(name_, TraceEvent::kNameCap, name);
  copy_capped(cat_, TraceEvent::kCatCap, cat);
  detail_[0] = '\0';
}

void Span::set_detail(std::string_view detail) {
  if (active_) copy_capped(detail_, TraceEvent::kDetailCap, detail);
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end = now_us();
  record_event(name_, cat_, start_us_, end - start_us_, detail_, 'X');
}

TraceSnapshot drain() {
  TraceSnapshot snap;
  BufferRegistry& reg = registry();
  std::scoped_lock lock(reg.mutex);
  for (const auto& buf : reg.all) {
    const std::uint64_t written = buf->head.load(std::memory_order_acquire);
    const std::uint64_t kept =
        std::min<std::uint64_t>(written, ThreadBuffer::kRingCapacity);
    snap.dropped += written - kept;
    // Chronological order: oldest surviving slot first.
    const std::uint64_t start = written - kept;
    for (std::uint64_t i = 0; i < kept; ++i) {
      const std::size_t slot =
          static_cast<std::size_t>((start + i) % ThreadBuffer::kRingCapacity);
      const ThreadBuffer::Hot& hot = buf->hot[slot];
      TraceEvent ev;
      copy_capped(ev.name, TraceEvent::kNameCap, hot.name);
      copy_capped(ev.cat, TraceEvent::kCatCap, hot.cat);
      if (hot.has_detail)
        copy_capped(ev.detail, TraceEvent::kDetailCap,
                    (*buf->details)[slot].data());
      ev.ts_us = hot.ts_us;
      ev.dur_us = hot.dur_us;
      ev.tid = hot.tid;
      ev.phase = hot.phase;
      snap.events.push_back(ev);
    }
  }
  std::stable_sort(snap.events.begin(), snap.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return snap;
}

void clear() {
  BufferRegistry& reg = registry();
  std::scoped_lock lock(reg.mutex);
  for (const auto& buf : reg.all) buf->head.store(0, std::memory_order_release);
}

std::string chrome_trace_json(const TraceSnapshot& snap) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : snap.events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    append_json_escaped(&out, ev.name);
    out += "\",\"cat\":\"";
    append_json_escaped(&out, ev.cat);
    out += "\",\"ph\":\"";
    out += ev.phase;
    out += "\",\"pid\":1,\"tid\":" + std::to_string(ev.tid);
    out += ",\"ts\":" + std::to_string(ev.ts_us);
    if (ev.phase == 'X') out += ",\"dur\":" + std::to_string(ev.dur_us);
    if (ev.phase == 'i') out += ",\"s\":\"t\"";
    if (ev.detail[0] != '\0') {
      out += ",\"args\":{\"detail\":\"";
      append_json_escaped(&out, ev.detail);
      out += "\"}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string chrome_trace_json() { return chrome_trace_json(drain()); }

std::string trace_summary(const TraceSnapshot& snap) {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    std::uint64_t max_us = 0;
  };
  std::map<std::string, Agg> by_name;
  for (const TraceEvent& ev : snap.events) {
    Agg& a = by_name[ev.name];
    ++a.count;
    a.total_us += ev.dur_us;
    a.max_us = std::max(a.max_us, ev.dur_us);
  }
  Table t({"event", "count", "total ms", "mean us", "max us"});
  for (const auto& [name, a] : by_name) {
    t.add_row({name, std::to_string(a.count),
               fmt(static_cast<double>(a.total_us) / 1000.0),
               fmt(a.count ? static_cast<double>(a.total_us) /
                                 static_cast<double>(a.count)
                           : 0.0),
               std::to_string(a.max_us)});
  }
  std::string out = t.str();
  if (snap.dropped > 0)
    out += "(ring wrapped: " + std::to_string(snap.dropped) +
           " oldest events dropped)\n";
  return out;
}

}  // namespace patty::observe
