#pragma once
// Lock-free bounded rings for the pipeline's stage-connecting buffers.
//
//   SpscRing  Lamport ring with cached indices: one producer, one consumer.
//             The hot path touches only the owner's cached copy of the
//             remote index; the shared atomic is re-read only when the
//             cached view says full/empty. Batched pop amortizes the index
//             publication over up to `n` elements.
//   MpmcRing  Vyukov bounded MPMC queue: every slot carries a sequence
//             number; producers/consumers claim a position with one CAS and
//             then synchronize on the slot's own sequence, so unrelated
//             pushes and pops never contend on the same cache line.
//
// Both rings allocate the next power of two of the requested capacity but
// enforce the *logical* capacity (the BufferCapacity tuning value), so a
// capacity-3 buffer still exerts capacity-3 backpressure. The SPSC check is
// exact (the single producer is the only one adding); the MPMC check can
// transiently overshoot by at most producers-1 elements under a photo-finish
// race, which backpressure tuning tolerates.
//
// Elements live in raw aligned storage (no default-construction
// requirement); the destructor drains whatever was left behind.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

namespace patty::rt {

namespace ring_detail {
inline std::size_t round_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace ring_detail

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : capacity_(capacity ? capacity : 1),
        slots_(ring_detail::round_pow2(capacity_)),
        mask_(slots_ - 1),
        storage_(new Cell[slots_]) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  ~SpscRing() {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    for (std::uint64_t h = head_.load(std::memory_order_relaxed); h != t; ++h)
      slot(h)->~T();
  }

  /// Producer only. False when full.
  bool try_push(T&& value) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (t - cached_head_ >= capacity_) return false;
    }
    ::new (static_cast<void*>(slot(t))) T(std::move(value));
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Producer only. Moves up to `n` elements out of `items` (from the
  /// front); returns how many were accepted. One index publication for the
  /// whole batch.
  std::size_t try_push_n(T* items, std::size_t n) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    std::uint64_t free = capacity_ - (t - cached_head_);
    if (free < n) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = capacity_ - (t - cached_head_);
    }
    const std::size_t take = n < free ? n : static_cast<std::size_t>(free);
    for (std::size_t i = 0; i < take; ++i)
      ::new (static_cast<void*>(slot(t + i))) T(std::move(items[i]));
    if (take) tail_.store(t + take, std::memory_order_release);
    return take;
  }

  /// Consumer only. nullopt when empty.
  std::optional<T> try_pop() {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (h == cached_tail_) return std::nullopt;
    }
    T* p = slot(h);
    std::optional<T> value(std::move(*p));
    p->~T();
    head_.store(h + 1, std::memory_order_release);
    return value;
  }

  /// Consumer only. Appends up to `max` elements to `out`; returns count.
  std::size_t try_pop_n(std::vector<T>* out, std::size_t max) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    std::uint64_t avail = cached_tail_ - h;
    if (avail < max) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - h;
    }
    const std::size_t take = max < avail ? max : static_cast<std::size_t>(avail);
    for (std::size_t i = 0; i < take; ++i) {
      T* p = slot(h + i);
      out->push_back(std::move(*p));
      p->~T();
    }
    if (take) head_.store(h + take, std::memory_order_release);
    return take;
  }

  /// Approximate from a racing thread; exact from producer or consumer side.
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    return t > h ? static_cast<std::size_t>(t - h) : 0;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct alignas(alignof(T)) Cell {
    unsigned char bytes[sizeof(T)];
  };
  T* slot(std::uint64_t i) {
    return reinterpret_cast<T*>(
        storage_[static_cast<std::size_t>(i) & mask_].bytes);
  }

  const std::uint64_t capacity_;  // logical (tuning value)
  const std::size_t slots_;       // pow2 >= capacity_
  const std::size_t mask_;
  std::unique_ptr<Cell[]> storage_;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // next pop
  alignas(64) std::uint64_t cached_tail_ = 0;       // consumer's view
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // next push
  alignas(64) std::uint64_t cached_head_ = 0;       // producer's view
};

template <typename T>
class MpmcRing {
 public:
  explicit MpmcRing(std::size_t capacity)
      : capacity_(capacity ? capacity : 1),
        // At least two slots: with one, "ready to dequeue at pos" and
        // "ready to enqueue at pos+1" share the sequence value pos+1, so a
        // producer could reuse the slot while a consumer is mid-read. The
        // logical-capacity check below still enforces the configured bound.
        slots_(ring_detail::round_pow2(capacity_ < 2 ? 2 : capacity_)),
        mask_(slots_ - 1),
        cells_(new Cell[slots_]) {
    for (std::size_t i = 0; i < slots_; ++i)
      cells_[i].seq.store(i, std::memory_order_relaxed);
  }

  MpmcRing(const MpmcRing&) = delete;
  MpmcRing& operator=(const MpmcRing&) = delete;

  ~MpmcRing() {
    while (try_pop()) {
    }
  }

  /// Any producer. False when full (logical capacity).
  bool try_push(T&& value) {
    if (capacity_ != slots_ && size() >= capacity_) return false;
    std::uint64_t pos = enqueue_pos_.load(std::memory_order_relaxed);
    Cell* cell;
    for (;;) {
      cell = &cells_[static_cast<std::size_t>(pos) & mask_];
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos);
      if (dif == 0) {
        if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return false;  // full ring
      } else {
        pos = enqueue_pos_.load(std::memory_order_relaxed);
      }
    }
    ::new (static_cast<void*>(cell->storage())) T(std::move(value));
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  std::size_t try_push_n(T* items, std::size_t n) {
    std::size_t pushed = 0;
    while (pushed < n && try_push(std::move(items[pushed]))) ++pushed;
    return pushed;
  }

  /// Any consumer. nullopt when empty.
  std::optional<T> try_pop() {
    std::uint64_t pos = dequeue_pos_.load(std::memory_order_relaxed);
    Cell* cell;
    for (;;) {
      cell = &cells_[static_cast<std::size_t>(pos) & mask_];
      const std::uint64_t seq = cell->seq.load(std::memory_order_acquire);
      const std::int64_t dif =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                               std::memory_order_relaxed))
          break;
      } else if (dif < 0) {
        return std::nullopt;  // empty
      } else {
        pos = dequeue_pos_.load(std::memory_order_relaxed);
      }
    }
    T* p = cell->storage();
    std::optional<T> value(std::move(*p));
    p->~T();
    cell->seq.store(pos + slots_, std::memory_order_release);
    return value;
  }

  std::size_t try_pop_n(std::vector<T>* out, std::size_t max) {
    std::size_t popped = 0;
    while (popped < max) {
      std::optional<T> v = try_pop();
      if (!v) break;
      out->push_back(std::move(*v));
      ++popped;
    }
    return popped;
  }

  /// Approximate under concurrency (two racing loads).
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t e = enqueue_pos_.load(std::memory_order_relaxed);
    const std::uint64_t d = dequeue_pos_.load(std::memory_order_relaxed);
    return e > d ? static_cast<std::size_t>(e - d) : 0;
  }

  [[nodiscard]] std::size_t capacity() const {
    return static_cast<std::size_t>(capacity_);
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq;
    alignas(alignof(T)) unsigned char bytes[sizeof(T)];
    T* storage() { return reinterpret_cast<T*>(bytes); }
  };

  const std::uint64_t capacity_;  // logical (tuning value)
  const std::size_t slots_;       // pow2 >= capacity_
  const std::size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<std::uint64_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::uint64_t> dequeue_pos_{0};
};

}  // namespace patty::rt
