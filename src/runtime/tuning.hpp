#pragma once
// Tuning parameters and the tuning configuration file (paper §2.1, fig 3c).
//
// Every tunable parallel pattern registers its runtime-relevant knobs here:
// changing a value changes performance but never semantics (except
// OrderPreservation, whose semantic admissibility is checked by the
// generated correctness tests — §2.2 PLTP). The configuration is written
// next to the transformed program and re-read at startup, so applications
// re-tune to new hardware without recompilation.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace patty::rt {

enum class TuningKind : std::uint8_t { Int, Bool };

struct TuningParameter {
  std::string name;         // e.g. "Process.pipeline.stage2.replication"
  TuningKind kind = TuningKind::Int;
  std::int64_t value = 0;
  std::int64_t min = 0;
  std::int64_t max = 1;
  std::int64_t step = 1;
  std::string location;     // source range the parameter belongs to
  std::string description;

  [[nodiscard]] bool as_bool() const { return value != 0; }
  /// All admissible values, in order (bools: 0,1; ints: min..max by step).
  [[nodiscard]] std::vector<std::int64_t> domain() const;
};

class TuningConfig {
 public:
  /// Add or overwrite a parameter. Returns a stable reference.
  TuningParameter& define(TuningParameter param);

  [[nodiscard]] bool has(const std::string& name) const;
  /// Value lookup with fallback (patterns use this so a missing config
  /// degrades to defaults instead of failing).
  [[nodiscard]] std::int64_t get_or(const std::string& name,
                                    std::int64_t fallback) const;
  [[nodiscard]] bool get_bool_or(const std::string& name, bool fallback) const;
  void set(const std::string& name, std::int64_t value);

  [[nodiscard]] const std::map<std::string, TuningParameter>& params() const {
    return params_;
  }
  [[nodiscard]] std::size_t size() const { return params_.size(); }

  /// Text serialization (one `param` line per entry, `#` comments).
  [[nodiscard]] std::string serialize() const;
  /// Parse the serialized form; returns nullopt and leaves *error set on a
  /// malformed line.
  static std::optional<TuningConfig> parse(const std::string& text,
                                           std::string* error = nullptr);

  /// Total size of the search space (product of domain sizes).
  [[nodiscard]] std::uint64_t search_space_size() const;

 private:
  std::map<std::string, TuningParameter> params_;
};

}  // namespace patty::rt
