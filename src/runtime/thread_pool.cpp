#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "runtime/ring_buffer.hpp"
#include "runtime/ws_deque.hpp"

namespace patty::rt {

namespace {
thread_local bool g_on_pool_worker = false;

/// Pool instruments, resolved once (registry references are stable).
struct PoolMetrics {
  observe::Counter& submitted;
  observe::Counter& executed;
  observe::Counter& idle_waits;
  observe::Counter& steals;
  observe::Gauge& queue_depth;
  observe::Histogram& queue_wait_us;
  observe::Histogram& exec_us;
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m{
      observe::Registry::global().counter("threadpool.submitted"),
      observe::Registry::global().counter("threadpool.executed"),
      observe::Registry::global().counter("threadpool.idle_waits"),
      observe::Registry::global().counter("threadpool.steals"),
      observe::Registry::global().gauge("threadpool.queue_depth"),
      observe::Registry::global().histogram("threadpool.queue_wait_us"),
      observe::Registry::global().histogram("threadpool.exec_us"),
  };
  return m;
}

std::uint64_t xorshift64(std::uint64_t& state) {
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return state;
}

std::atomic<std::uint64_t> g_task_exceptions{0};

/// Count an exception that escaped a raw pool task. Regions route their
/// exceptions through a TaskGroup fault slot before they reach the pool's
/// run loop; one arriving here came from a bare submit()/submit_fast(), and
/// letting it escape would std::terminate the worker (and the process).
void note_task_exception() {
  g_task_exceptions.fetch_add(1, std::memory_order_relaxed);
  if (observe::enabled())
    observe::Registry::global().counter("threadpool.task_exceptions").add();
}
}  // namespace

std::uint64_t ThreadPool::task_exception_count() {
  return g_task_exceptions.load(std::memory_order_relaxed);
}

/// Per-worker scheduling state. The deque holds this worker's own tasks
/// (LIFO pop); other workers steal from its top (FIFO).
struct ThreadPool::Worker {
  WsDeque<Job*> deque;
  std::uint64_t rng;
};

/// Central submission ring for tasks coming from non-worker threads. The
/// overflow deque behind it keeps submit() unbounded (the old pool's deque
/// had no capacity limit either, and callers rely on submit never blocking
/// or running tasks inline).
struct ThreadPool::Injector {
  explicit Injector(std::size_t capacity) : ring(capacity) {}
  MpmcRing<Job*> ring;
};

namespace {
/// Which worker of which pool the calling thread is, for same-pool
/// submit-to-own-deque routing. (Opaque pointer: Worker is private.)
struct WorkerIdentity {
  ThreadPool* pool = nullptr;
  void* worker = nullptr;
};
thread_local WorkerIdentity g_worker_identity;
}  // namespace

bool ThreadPool::on_worker_thread() { return g_on_pool_worker; }

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  injector_ = std::make_unique<Injector>(4096);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>();
    w->rng = 0x9e3779b97f4a7c15ull * (i + 1) + 0x2545f4914f6cdd1dull;
    workers_.push_back(std::move(w));
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    threads_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  stopping_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
  // Workers only exit once pending_ hit zero, so nothing should remain; be
  // defensive anyway (leaked-but-unrun beats leaked-and-lost memory).
  while (std::optional<Job*> j = injector_->ring.try_pop()) {
    try {
      (*j)->run(*j);
    } catch (...) {
      note_task_exception();
    }
  }
  for (Job* j : overflow_) {
    try {
      j->run(j);
    } catch (...) {
      note_task_exception();
    }
  }
}

void ThreadPool::wake_one() {
  if (sleepers_.load(std::memory_order_seq_cst) > 0) {
    {
      // Empty critical section: serializes with a worker between its
      // pending_ re-check and wait(), so the notify cannot land in that
      // window and get lost.
      std::lock_guard<std::mutex> lock(sleep_mutex_);
    }
    wake_.notify_one();
  }
}

void ThreadPool::enqueue(Job* job) {
  pending_.fetch_add(1, std::memory_order_seq_cst);
  const WorkerIdentity& id = g_worker_identity;
  if (id.pool == this) {
    static_cast<Worker*>(id.worker)->deque.push(job);
  } else {
    // FIFO invariant: every overflow job is newer than every ring job. A
    // submission takes the ring only while no backlog exists; otherwise it
    // queues behind the backlog, which drains back into the ring as workers
    // pop (refill_injector_from_overflow) — so overflow jobs are neither
    // starved nor overtaken by fresh ring traffic.
    const bool ringed =
        overflow_size_.load(std::memory_order_seq_cst) == 0 &&
        injector_->ring.try_push(std::move(job));
    if (!ringed) {
      std::lock_guard<std::mutex> lock(overflow_mutex_);
      overflow_.push_back(job);
      overflow_size_.fetch_add(1, std::memory_order_release);
    }
  }
  if (observe::enabled())
    pool_metrics().queue_depth.set(
        static_cast<std::int64_t>(pending_.load(std::memory_order_relaxed)));
  wake_one();
}

void ThreadPool::submit(std::function<void()> task) {
  if (observe::enabled()) {
    // Task latency telemetry: wrap so queue wait (submit -> start) and
    // execution time land in the pool histograms. Only built when enabled,
    // so the disabled path keeps the original single-move submit.
    PoolMetrics& m = pool_metrics();
    m.submitted.add();
    task = [inner = std::move(task), enqueued = observe::now_us()] {
      PoolMetrics& pm = pool_metrics();
      const std::uint64_t start = observe::now_us();
      pm.queue_wait_us.record(static_cast<double>(start - enqueued));
      inner();
      pm.exec_us.record(static_cast<double>(observe::now_us() - start));
      pm.executed.add();
    };
  }
  submit_fast(std::move(task));
}

void ThreadPool::refill_injector_from_overflow() {
  std::lock_guard<std::mutex> lock(overflow_mutex_);
  std::size_t moved = 0;
  while (!overflow_.empty()) {
    Job* j = overflow_.front();
    if (!injector_->ring.try_push(std::move(j))) break;
    overflow_.pop_front();
    ++moved;
  }
  if (moved > 0) overflow_size_.fetch_sub(moved, std::memory_order_release);
}

ThreadPool::Job* ThreadPool::find_job(Worker& self) {
  // Own work first (LIFO: cache-warm, and what recursive splitting wants).
  if (std::optional<Job*> j = self.deque.pop()) return *j;
  // External submissions. The ring holds the oldest ones (enqueue diverts
  // to overflow_ while a backlog exists), so ring-first is FIFO; every pop
  // frees a slot, so top the ring up from the backlog — it drains at pool
  // consumption speed instead of one job per empty-ring scan.
  if (std::optional<Job*> j = injector_->ring.try_pop()) {
    if (overflow_size_.load(std::memory_order_acquire) > 0)
      refill_injector_from_overflow();
    return *j;
  }
  if (overflow_size_.load(std::memory_order_acquire) > 0) {
    std::lock_guard<std::mutex> lock(overflow_mutex_);
    if (!overflow_.empty()) {
      Job* j = overflow_.front();
      overflow_.pop_front();
      overflow_size_.fetch_sub(1, std::memory_order_release);
      return j;
    }
  }
  // Steal from randomized victims; a couple of sweeps before giving up.
  const std::size_t n = workers_.size();
  if (n > 1) {
    const bool telemetry = observe::enabled();
    for (std::size_t attempt = 0; attempt < 2 * n; ++attempt) {
      Worker& victim = *workers_[xorshift64(self.rng) % n];
      if (&victim == &self) continue;
      if (std::optional<Job*> j = victim.deque.steal()) {
        if (telemetry) pool_metrics().steals.add();
        return *j;
      }
    }
  }
  return nullptr;
}

void ThreadPool::worker_loop(std::size_t index) {
  g_on_pool_worker = true;
  Worker& self = *workers_[index];
  g_worker_identity = {this, &self};
  for (;;) {
    if (Job* job = find_job(self)) {
      // Claim-time decrement: pending_ tracks *unclaimed* work, so a
      // sleeping-candidate worker is not kept spinning by a long-running
      // task elsewhere.
      pending_.fetch_sub(1, std::memory_order_seq_cst);
      try {
        job->run(job);
      } catch (...) {
        note_task_exception();
      }
      continue;
    }
    if (stopping_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_seq_cst) == 0)
      return;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    if (pending_.load(std::memory_order_seq_cst) > 0 ||
        stopping_.load(std::memory_order_acquire)) {
      // Work arrived (or shutdown started) between the failed scan and the
      // sleeper registration: don't sleep.
      sleepers_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    if (observe::enabled()) pool_metrics().idle_waits.add();
    // Bounded park: the seq_cst sleeper/pending handshake makes a lost
    // wakeup impossible in theory; the timeout turns "in theory" into a
    // worst-case 100 ms hiccup in practice.
    wake_.wait_for(lock, std::chrono::milliseconds(100));
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ThreadPool::wait_on(TaskGroup& group) {
  const WorkerIdentity& id = g_worker_identity;
  if (id.pool != this) {
    group.wait();
    return;
  }
  // Helping join: keep draining pool work (own deque first — that's where
  // a nested fork-join's own children land — then injector/steals) until
  // the group goes idle. The worker never parks here: its condvar wakeup
  // belongs to *new* work, while group completion is signalled only by the
  // counters we poll.
  Worker& self = *static_cast<Worker*>(id.worker);
  std::size_t starved = 0;
  while (!group.idle()) {
    if (Job* job = find_job(self)) {
      pending_.fetch_sub(1, std::memory_order_seq_cst);
      try {
        job->run(job);
      } catch (...) {
        note_task_exception();
      }
      starved = 0;
      continue;
    }
    // Nothing runnable: the group's remaining tasks are in flight on other
    // workers. Yield a while, then back off to short sleeps.
    if (++starved < 64)
      std::this_thread::yield();
    else
      std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
}

ThreadPool& ThreadPool::shared() {
  // At least four workers even on small hosts: fork-join users block a
  // caller thread on pool progress, and wait-dominated tasks (pipelines
  // over I/O-like stages) still overlap when cores are scarce.
  static ThreadPool pool(std::max<std::size_t>(
      4, std::thread::hardware_concurrency()));
  return pool;
}

void TaskGroup::finish() {
  // Register before the decrement that can make wait() eligible to return:
  // a waiter that observes outstanding_ == 0 then also observes this
  // registration until our very last access to the group has completed, so
  // the caller cannot destroy the (stack-allocated) group under us.
  finishing_.fetch_add(1, std::memory_order_seq_cst);
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Same Dekker shape as the pool's sleep protocol: wait() publishes its
    // registration (seq_cst) before re-checking outstanding_, we order the
    // final decrement before the waiter check.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_relaxed) > 0) {
      // Deregister and notify while HOLDING the mutex: the parked waiter
      // can observe finishing_ == 0 only after we release, i.e. after our
      // last touch of done_/mutex_. (Notify-after-unlock here is exactly
      // the use-after-free the lifetime contract forbids.)
      std::lock_guard<std::mutex> lock(mutex_);
      finishing_.fetch_sub(1, std::memory_order_seq_cst);
      done_.notify_all();
      return;
    }
  }
  // Non-final, or final with no waiter registered yet: this atomic is the
  // last access — a later wait() returns only once it reads the decrement.
  finishing_.fetch_sub(1, std::memory_order_seq_cst);
}

void TaskGroup::wait() {
  // No lock-free fast path: returning off a bare outstanding_ load could
  // race a finish() still between its decrement and its deregistration.
  std::unique_lock<std::mutex> lock(mutex_);
  waiters_.fetch_add(1, std::memory_order_seq_cst);
  // The finishing_ term closes the destruction race; a stale registration
  // with no notify pending resolves at the bounded-park timeout (the
  // preempted-between-two-atomics window, vanishingly rare).
  while (outstanding_.load(std::memory_order_seq_cst) != 0 ||
         finishing_.load(std::memory_order_seq_cst) != 0)
    done_.wait_for(lock, std::chrono::milliseconds(50));
  waiters_.fetch_sub(1, std::memory_order_relaxed);
}

void TaskGroup::capture_exception() noexcept {
  if (slot_.capture_current() && observe::enabled())
    observe::Registry::global().counter("fault.captured").add();
  cancel();
}

void TaskGroup::run_on(ThreadPool& pool, std::function<void()> task) {
  add();
  pool.submit([this, task = std::move(task)] {
    // finish() runs on every path: a throwing task must not strand the
    // joiner, and a cancelled group still has to drain its task count.
    if (!cancelled()) {
      try {
        task();
      } catch (...) {
        capture_exception();
      }
    }
    finish();
  });
}

}  // namespace patty::rt
