#include "runtime/thread_pool.hpp"

#include <algorithm>

#include "observe/metrics.hpp"
#include "observe/trace.hpp"

namespace patty::rt {

namespace {
thread_local bool g_on_pool_worker = false;

/// Pool instruments, resolved once (registry references are stable).
struct PoolMetrics {
  observe::Counter& submitted;
  observe::Counter& executed;
  observe::Counter& idle_waits;
  observe::Gauge& queue_depth;
  observe::Histogram& queue_wait_us;
  observe::Histogram& exec_us;
};

PoolMetrics& pool_metrics() {
  static PoolMetrics m{
      observe::Registry::global().counter("threadpool.submitted"),
      observe::Registry::global().counter("threadpool.executed"),
      observe::Registry::global().counter("threadpool.idle_waits"),
      observe::Registry::global().gauge("threadpool.queue_depth"),
      observe::Registry::global().histogram("threadpool.queue_wait_us"),
      observe::Registry::global().histogram("threadpool.exec_us"),
  };
  return m;
}
}  // namespace

bool ThreadPool::on_worker_thread() { return g_on_pool_worker; }

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (observe::enabled()) {
    // Task latency telemetry: wrap so queue wait (submit -> start) and
    // execution time land in the pool histograms. Only built when enabled,
    // so the disabled path keeps the original single-move submit.
    PoolMetrics& m = pool_metrics();
    m.submitted.add();
    task = [inner = std::move(task), enqueued = observe::now_us()] {
      PoolMetrics& pm = pool_metrics();
      const std::uint64_t start = observe::now_us();
      pm.queue_wait_us.record(static_cast<double>(start - enqueued));
      inner();
      pm.exec_us.record(static_cast<double>(observe::now_us() - start));
      pm.executed.add();
    };
  }
  {
    std::scoped_lock lock(mutex_);
    tasks_.push_back(std::move(task));
    if (observe::enabled())
      pool_metrics().queue_depth.set(
          static_cast<std::int64_t>(tasks_.size()));
  }
  work_available_.notify_one();
}

void ThreadPool::worker_loop() {
  g_on_pool_worker = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      if (tasks_.empty() && !stopping_ && observe::enabled())
        pool_metrics().idle_waits.add();
      work_available_.wait(lock, [&] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::shared() {
  // At least four workers even on small hosts: fork-join users block a
  // caller thread on pool progress, and wait-dominated tasks (pipelines
  // over I/O-like stages) still overlap when cores are scarce.
  static ThreadPool pool(std::max<std::size_t>(
      4, std::thread::hardware_concurrency()));
  return pool;
}

void TaskGroup::add(std::size_t n) {
  std::scoped_lock lock(mutex_);
  outstanding_ += n;
}

void TaskGroup::finish() {
  std::scoped_lock lock(mutex_);
  if (outstanding_ > 0) --outstanding_;
  if (outstanding_ == 0) done_.notify_all();
}

void TaskGroup::wait() {
  std::unique_lock lock(mutex_);
  done_.wait(lock, [&] { return outstanding_ == 0; });
}

void TaskGroup::run_on(ThreadPool& pool, std::function<void()> task) {
  add();
  pool.submit([this, task = std::move(task)] {
    task();
    finish();
  });
}

}  // namespace patty::rt
