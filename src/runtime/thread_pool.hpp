#pragma once
// Work-stealing thread pool plus a TaskGroup join primitive. Used by the
// master/worker pattern and parallel-for; pipelines bind threads to stages
// directly (stage binding) and do not go through the pool.
//
// Each worker owns a Chase–Lev deque (LIFO pop keeps caches warm, FIFO
// steal hands thieves the largest remaining subtree). External submitters
// feed a bounded MPMC injector ring, with a mutex-protected overflow list
// behind it so submit() never blocks and never runs tasks inline. While a
// backlog exists new submissions queue behind it and workers refill the
// ring from the backlog as they pop, so external submission order stays
// FIFO and overflow jobs cannot be starved by fresh ring traffic. Workers
// sleep on a condvar only when the whole pool is starved; producers take
// the wakeup lock only when a sleeper is registered, so the steady-state
// submit path is lock-free.
//
// Tasks are heap-allocated Job nodes dispatched through a plain function
// pointer. submit_fast<F>() stores the callable directly in the node — no
// std::function type-erasure allocation on the hot path; submit() keeps the
// std::function API (and its per-task telemetry wrapper) on top of it.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/cancellation.hpp"

namespace patty::rt {

class TaskGroup;

class ThreadPool {
 public:
  /// `threads` == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);

  /// Hot-path submission: one allocation sized to the callable, function-
  /// pointer dispatch, no std::function. From a worker thread the task goes
  /// straight into that worker's own deque (LIFO).
  template <typename F>
  void submit_fast(F&& fn) {
    using Fn = std::decay_t<F>;
    struct JobOf final : Job {
      explicit JobOf(Fn f) : fn(std::move(f)) {}
      Fn fn;
    };
    auto* job = new JobOf(std::forward<F>(fn));
    job->run = [](Job* j) {
      // Own the node before invoking: if fn throws, the node still frees on
      // unwind (the pool's run loop catches and counts the exception).
      std::unique_ptr<JobOf> self(static_cast<JobOf*>(j));
      self->fn();
    };
    enqueue(job);
  }

  [[nodiscard]] std::size_t thread_count() const { return threads_.size(); }

  /// Process-wide shared pool (lazily constructed, default-sized).
  static ThreadPool& shared();

  /// True while the calling thread is a pool worker. Nested fork-join
  /// constructs use wait_on() to join without blocking the worker; code
  /// that cannot help (e.g. holds a lock the tasks may take) can use this
  /// to fall back to inline execution.
  static bool on_worker_thread();

  /// Join `group` cooperatively. On a worker thread of *this* pool the
  /// caller keeps executing pool tasks (own deque, injector, steals) until
  /// the group drains — so nested fork-join submitted from a worker is
  /// inline-or-stolen rather than a deadlock. On any other thread this is
  /// group.wait(). The group must have exactly one joiner (see
  /// TaskGroup::idle()).
  void wait_on(TaskGroup& group);

  /// Exceptions that escaped a raw pool task (not routed through a
  /// TaskGroup fault domain) since process start. The pool swallows them —
  /// regions own propagation; a bare submit() with a throwing task is a
  /// caller bug this counter makes visible even with observe off.
  static std::uint64_t task_exception_count();

 private:
  /// Intrusive task node; `run` executes and frees it.
  struct Job {
    void (*run)(Job*) = nullptr;
  };
  struct Worker;  // per-worker deque + RNG, defined in the .cpp

  void enqueue(Job* job);
  Job* find_job(Worker& self);
  void worker_loop(std::size_t index);
  void wake_one();
  void refill_injector_from_overflow();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  /// Submitted-but-unclaimed task count; doubles as the Dekker flag of the
  /// sleep protocol (worker: register sleeper, re-check pending; producer:
  /// bump pending, check sleepers — both seq_cst).
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::uint32_t> sleepers_{0};
  std::atomic<bool> stopping_{false};

  struct Injector;  // bounded MPMC ring, defined in the .cpp
  std::unique_ptr<Injector> injector_;
  std::mutex overflow_mutex_;
  std::deque<Job*> overflow_;
  std::atomic<std::size_t> overflow_size_{0};

  std::mutex sleep_mutex_;
  std::condition_variable wake_;
};

/// Counts outstanding tasks; wait() blocks until all finished. RAII-friendly:
/// add() before submit, finish() inside the task (see run_on). Lock-free on
/// the add/finish side: the mutex is touched only by the final finish() when
/// a waiter is registered.
///
/// Lifetime contract: once wait() returns, the group may be destroyed —
/// groups live on the stack of the waiting caller (parallel_for,
/// master/worker). finish() therefore registers in `finishing_` before its
/// `outstanding_` decrement and deregisters as its very last member access,
/// and wait() returns only after observing both counters at zero under the
/// mutex; the final finish() notifies while *holding* the mutex so a parked
/// waiter cannot wake, observe completion, and free the group mid-notify.
class TaskGroup {
 public:
  void add(std::size_t n = 1) {
    outstanding_.fetch_add(n, std::memory_order_relaxed);
  }

  void finish();
  void wait();

  /// True when no task is outstanding and no finish() is mid-flight.
  /// Safe to poll without registering as a waiter: with no waiter
  /// registered, finish()'s last access to the group is its `finishing_`
  /// decrement, so observing outstanding_ == 0 and then finishing_ == 0
  /// (both seq_cst) proves every finisher is done touching the group.
  /// Only valid while no other thread is blocked in wait() on the same
  /// group (a waiter flips the final finish onto the notify path, whose
  /// last access is the mutex unlock) — i.e. one joiner per group.
  [[nodiscard]] bool idle() const {
    return outstanding_.load(std::memory_order_seq_cst) == 0 &&
           finishing_.load(std::memory_order_seq_cst) == 0;
  }

  /// Convenience: submit `task` to `pool` tracked by this group. The task
  /// is skipped when the group is already cancelled; if it throws, the
  /// exception is captured into the group's fault slot (first thrower wins,
  /// siblings are cancelled) and finish() still runs — a fault can never
  /// leave the group un-joinable.
  void run_on(ThreadPool& pool, std::function<void()> task);

  // --- Fault domain -------------------------------------------------------
  // One slot + one flag per group: the region that owns the group rethrows
  // via rethrow_if_faulted() after its join, so the caller sees exactly one
  // exception no matter how many tasks threw.

  /// Request cooperative cancellation: tasks that check cancelled() (run_on
  /// does, before invoking) skip their body and just finish().
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Capture std::current_exception() into the group's slot (first claim
  /// wins) and cancel the siblings. Call from inside a catch block.
  void capture_exception() noexcept;
  [[nodiscard]] bool faulted() const noexcept { return slot_.set(); }
  /// Rethrow the first captured exception, if any. Call after the join.
  void rethrow_if_faulted() { slot_.rethrow_if_set(); }

 private:
  std::atomic<std::size_t> outstanding_{0};
  /// finish() calls between their outstanding_ decrement and their last
  /// access to this object; wait() may not return while nonzero.
  std::atomic<std::uint32_t> finishing_{0};
  std::atomic<std::uint32_t> waiters_{0};
  std::mutex mutex_;
  std::condition_variable done_;
  std::atomic<bool> cancelled_{false};
  ExceptionSlot slot_;
};

}  // namespace patty::rt
