#pragma once
// Fixed-size thread pool plus a TaskGroup join primitive. Used by the
// master/worker pattern and parallel-for; pipelines bind threads to stages
// directly (stage binding) and do not go through the pool.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace patty::rt {

class ThreadPool {
 public:
  /// `threads` == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Process-wide shared pool (lazily constructed, default-sized).
  static ThreadPool& shared();

  /// True while the calling thread is a pool worker. Nested fork-join
  /// constructs (parallel_for inside a parallel_for task, master/worker
  /// inside a pool task) must run inline instead of submitting to the pool
  /// and waiting — blocking a worker on tasks that need that same worker
  /// deadlocks small pools.
  static bool on_worker_thread();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Counts outstanding tasks; wait() blocks until all finished. RAII-friendly:
/// add() before submit, finish() inside the task (see run_on).
class TaskGroup {
 public:
  void add(std::size_t n = 1);
  void finish();
  void wait();

  /// Convenience: submit `task` to `pool` tracked by this group.
  void run_on(ThreadPool& pool, std::function<void()> task);

 private:
  std::mutex mutex_;
  std::condition_variable done_;
  std::size_t outstanding_ = 0;
};

}  // namespace patty::rt
