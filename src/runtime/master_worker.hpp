#pragma once
// Master/worker pattern (paper §2: one of the three implemented patterns;
// figure 3d instantiates it for the three independent filter statements
// A || B || C inside a pipeline stage).
//
// The master decomposes work into independent tasks; a worker crew executes
// them; results come back in task-submission order. The worker count is the
// pattern's tuning parameter.

#include <functional>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace patty::rt {

class MasterWorker {
 public:
  /// workers == 0 uses the shared process pool; otherwise a dedicated crew
  /// of exactly `workers` threads is spun up per run() call.
  explicit MasterWorker(int workers = 0) : workers_(workers) {}

  /// Execute all tasks, return when every one finished (fork-join).
  void run(const std::vector<std::function<void()>>& tasks) const;

  /// Execute tasks returning values; results are in submission order.
  template <typename R>
  std::vector<R> map(const std::vector<std::function<R()>>& tasks) const {
    std::vector<R> results(tasks.size());
    std::vector<std::function<void()>> wrapped;
    wrapped.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      wrapped.push_back([&results, &tasks, i] { results[i] = tasks[i](); });
    }
    run(wrapped);
    return results;
  }

  [[nodiscard]] int workers() const { return workers_; }

 private:
  int workers_;
};

}  // namespace patty::rt
