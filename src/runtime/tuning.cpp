#include "runtime/tuning.hpp"

#include <sstream>

#include "support/diagnostics.hpp"

namespace patty::rt {

std::vector<std::int64_t> TuningParameter::domain() const {
  std::vector<std::int64_t> values;
  if (kind == TuningKind::Bool) return {0, 1};
  const std::int64_t stride = step > 0 ? step : 1;
  for (std::int64_t v = min; v <= max; v += stride) values.push_back(v);
  if (values.empty()) values.push_back(value);
  return values;
}

TuningParameter& TuningConfig::define(TuningParameter param) {
  if (param.name.empty()) fatal("tuning parameter without a name");
  auto [it, inserted] = params_.insert_or_assign(param.name, std::move(param));
  (void)inserted;
  return it->second;
}

bool TuningConfig::has(const std::string& name) const {
  return params_.count(name) > 0;
}

std::int64_t TuningConfig::get_or(const std::string& name,
                                  std::int64_t fallback) const {
  auto it = params_.find(name);
  return it == params_.end() ? fallback : it->second.value;
}

bool TuningConfig::get_bool_or(const std::string& name, bool fallback) const {
  auto it = params_.find(name);
  return it == params_.end() ? fallback : it->second.as_bool();
}

void TuningConfig::set(const std::string& name, std::int64_t value) {
  auto it = params_.find(name);
  if (it == params_.end()) fatal("unknown tuning parameter '" + name + "'");
  it->second.value = value;
}

std::uint64_t TuningConfig::search_space_size() const {
  std::uint64_t total = 1;
  for (const auto& [name, p] : params_) {
    (void)name;
    total *= static_cast<std::uint64_t>(p.domain().size());
  }
  return total;
}

namespace {

std::string quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

}  // namespace

std::string TuningConfig::serialize() const {
  std::string out = "# Patty tuning configuration\n";
  for (const auto& [name, p] : params_) {
    out += "param " + name;
    out += p.kind == TuningKind::Bool ? " kind=bool" : " kind=int";
    out += " value=" + std::to_string(p.value);
    out += " min=" + std::to_string(p.min);
    out += " max=" + std::to_string(p.max);
    out += " step=" + std::to_string(p.step);
    if (!p.location.empty()) out += " loc=" + p.location;
    if (!p.description.empty()) out += " desc=" + quote(p.description);
    out += "\n";
  }
  return out;
}

std::optional<TuningConfig> TuningConfig::parse(const std::string& text,
                                                std::string* error) {
  TuningConfig config;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  auto fail = [&](const std::string& message) {
    if (error)
      *error = "line " + std::to_string(line_no) + ": " + message;
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string word;
    ls >> word;
    if (word != "param") return fail("expected 'param', got '" + word + "'");
    TuningParameter p;
    if (!(ls >> p.name)) return fail("missing parameter name");
    std::string kv;
    while (ls >> kv) {
      const auto eq = kv.find('=');
      if (eq == std::string::npos) return fail("expected key=value: " + kv);
      const std::string key = kv.substr(0, eq);
      std::string val = kv.substr(eq + 1);
      if (key == "kind") {
        if (val == "int") p.kind = TuningKind::Int;
        else if (val == "bool") p.kind = TuningKind::Bool;
        else return fail("unknown kind '" + val + "'");
      } else if (key == "value" || key == "min" || key == "max" ||
                 key == "step") {
        std::int64_t num = 0;
        try {
          num = std::stoll(val);
        } catch (...) {
          return fail("bad integer '" + val + "'");
        }
        if (key == "value") p.value = num;
        else if (key == "min") p.min = num;
        else if (key == "max") p.max = num;
        else p.step = num;
      } else if (key == "loc") {
        p.location = val;
      } else if (key == "desc") {
        // Quoted; may contain spaces: re-read the raw remainder of the line.
        const auto pos = line.find("desc=");
        std::string raw = line.substr(pos + 5);
        if (raw.size() >= 2 && raw.front() == '"') {
          std::string body;
          for (std::size_t i = 1; i < raw.size(); ++i) {
            if (raw[i] == '\\' && i + 1 < raw.size()) {
              body += raw[++i];
            } else if (raw[i] == '"') {
              break;
            } else {
              body += raw[i];
            }
          }
          p.description = body;
        } else {
          p.description = raw;
        }
        break;  // desc is always last
      } else {
        return fail("unknown key '" + key + "'");
      }
    }
    config.define(std::move(p));
  }
  return config;
}

}  // namespace patty::rt
