#pragma once
// Bounded blocking MPMC queue: the buffer that connects pipeline stages
// (paper §2.2, "we implement stage binding and use buffers to connect
// predecessor and successor stages"). Capacity is a tuning parameter.
//
// close() signals end-of-stream: pending pops drain remaining elements,
// then fail. Multiple producers each call close via a producer count.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace patty::rt {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Occupancy telemetry, maintained unconditionally (a compare and two
  /// increments under the already-held lock): the high-water mark says how
  /// close the buffer ran to capacity, the wait counts say how often a
  /// producer found it full / a consumer found it empty. observe::explain
  /// turns these into the paper's BufferCapacity / StageReplication advice.
  struct Stats {
    std::size_t high_water = 0;
    std::uint64_t full_waits = 0;
    std::uint64_t empty_waits = 0;
  };

  /// Blocks while full. Returns false (drops the element) if closed.
  /// The wakeup is signalled after the lock is released: notifying while
  /// still holding the mutex wakes a waiter that immediately blocks on the
  /// lock we still own (a "hurry up and wait" handoff).
  bool push(T item) {
    {
      std::unique_lock lock(mutex_);
      if (items_.size() >= capacity_ && !closed_) ++stats_.full_waits;
      not_full_.wait(lock,
                     [&] { return items_.size() < capacity_ || closed_; });
      if (closed_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > stats_.high_water) stats_.high_water = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while empty and not closed. nullopt = closed and drained.
  std::optional<T> pop() {
    std::optional<T> item;
    {
      std::unique_lock lock(mutex_);
      if (items_.empty() && !closed_) ++stats_.empty_waits;
      not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when empty (closed or not).
  std::optional<T> try_pop() {
    std::optional<T> item;
    {
      std::scoped_lock lock(mutex_);
      if (items_.empty()) return std::nullopt;
      item = std::move(items_.front());
      items_.pop_front();
    }
    not_full_.notify_one();
    return item;
  }

  /// End of stream: wakes all waiters. Remaining items stay poppable.
  void close() {
    {
      std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::scoped_lock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] Stats stats() const {
    std::scoped_lock lock(mutex_);
    return stats_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  Stats stats_;
  bool closed_ = false;
};

}  // namespace patty::rt
