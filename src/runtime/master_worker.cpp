#include "runtime/master_worker.hpp"

#include <atomic>

#include <thread>

namespace patty::rt {

void MasterWorker::run(const std::vector<std::function<void()>>& tasks) const {
  if (tasks.empty()) return;
  if (tasks.size() == 1 || workers_ == 1) {
    for (const auto& t : tasks) t();
    return;
  }
  if (workers_ == 0) {
    if (ThreadPool::on_worker_thread()) {
      // Nested master/worker inside a pool task: run inline rather than
      // blocking a pool worker on tasks that need that same worker.
      for (const auto& t : tasks) t();
      return;
    }
    // Shared pool: no thread creation cost; the common configuration.
    TaskGroup group;
    for (const auto& t : tasks) group.run_on(ThreadPool::shared(), t);
    group.wait();
    return;
  }
  // Dedicated crew: `workers_` threads pull tasks by index.
  std::atomic<std::size_t> next{0};
  const std::size_t crew =
      std::min(static_cast<std::size_t>(workers_), tasks.size());
  std::vector<std::thread> threads;
  threads.reserve(crew);
  for (std::size_t w = 0; w < crew; ++w) {
    threads.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= tasks.size()) return;
        tasks[i]();
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace patty::rt
