#include "runtime/master_worker.hpp"

#include <atomic>
#include <string>

#include <thread>

#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "runtime/cancellation.hpp"
#include "support/failpoint.hpp"

namespace patty::rt {

namespace {

/// Master/worker instruments, resolved once (registry refs are stable).
struct MwMetrics {
  observe::Counter& runs;
  observe::Counter& tasks;
  observe::Counter& faults;
  observe::Gauge& queue_depth;
  observe::Histogram& task_us;
};

MwMetrics& mw_metrics() {
  static MwMetrics m{
      observe::Registry::global().counter("master_worker.runs"),
      observe::Registry::global().counter("master_worker.tasks"),
      observe::Registry::global().counter("master_worker.faults"),
      observe::Registry::global().gauge("master_worker.queue_depth"),
      observe::Registry::global().histogram("master_worker.task_us"),
  };
  return m;
}

/// One task body: failpoint site, telemetry, user code. Throws propagate to
/// the caller, who owns capture into the run's fault domain.
void run_task(const std::function<void()>& t, bool telemetry) {
  PATTY_FAILPOINT("master_worker.task");
  if (!telemetry) {
    t();
    return;
  }
  const std::uint64_t t0 = observe::now_us();
  t();
  const std::uint64_t dur = observe::now_us() - t0;
  mw_metrics().task_us.record(static_cast<double>(dur));
  observe::record_complete("mw.task", "mw", t0, dur);
}

}  // namespace

void MasterWorker::run(const std::vector<std::function<void()>>& tasks) const {
  if (tasks.empty()) return;
  const bool telemetry = observe::enabled();
  observe::Span span("master_worker.run", "mw");
  if (telemetry) {
    span.set_detail("tasks=" + std::to_string(tasks.size()) +
                    " workers=" + std::to_string(workers_));
    MwMetrics& m = mw_metrics();
    m.runs.add();
    m.tasks.add(tasks.size());
    m.queue_depth.set(static_cast<std::int64_t>(tasks.size()));
  }
  const StopToken inherited = current_stop_token();
  if (tasks.size() == 1 || workers_ == 1) {
    // Inline: exceptions already reach the caller directly; just honour
    // inherited cancellation between tasks and count the fault.
    try {
      for (const auto& t : tasks) {
        if (inherited.stop_requested())
          throw OperationCancelled("master_worker");
        run_task(t, telemetry);
      }
    } catch (...) {
      if (telemetry) mw_metrics().faults.add();
      throw;
    }
    return;
  }
  // This run's own StopSource, installed as the ambient token around every
  // task so nested regions chain their cancellation to this one.
  StopSource stop;
  if (workers_ == 0) {
    // Shared pool: no thread creation cost; the common configuration.
    // submit_fast with a by-reference capture: the tasks vector outlives
    // the join, so no per-task std::function copy is needed. The helping
    // join keeps a nested master/worker inside a pool task from blocking
    // pool capacity: the worker runs queued tasks while it waits.
    TaskGroup group;
    group.add(tasks.size());
    for (const auto& t : tasks) {
      ThreadPool::shared().submit_fast(
          [&group, &stop, &t, inherited, telemetry] {
            // finish() on every path: a fault must not strand the joiner.
            if (!group.cancelled() && !inherited.stop_requested()) {
              StopScope ambient(stop.token());
              try {
                run_task(t, telemetry);
              } catch (...) {
                group.capture_exception();
                stop.request_stop();
              }
            }
            group.finish();
          });
    }
    ThreadPool::shared().wait_on(group);
    if (group.faulted()) {
      if (telemetry) mw_metrics().faults.add();
      group.rethrow_if_faulted();
    }
    if (inherited.stop_requested()) throw OperationCancelled("master_worker");
    return;
  }
  // Dedicated crew: `workers_` threads pull tasks by index. The crew has
  // its own fault domain (slot + cancel flag) since no TaskGroup is
  // involved; same first-thrower-wins / siblings-unwind protocol.
  ExceptionSlot slot;
  std::atomic<bool> cancelled{false};
  std::atomic<std::size_t> next{0};
  const std::size_t crew =
      std::min(static_cast<std::size_t>(workers_), tasks.size());
  std::vector<std::thread> threads;
  threads.reserve(crew);
  for (std::size_t w = 0; w < crew; ++w) {
    threads.emplace_back([&] {
      StopScope ambient(stop.token());
      while (true) {
        if (cancelled.load(std::memory_order_acquire) ||
            inherited.stop_requested())
          return;
        const std::size_t i = next.fetch_add(1);
        if (i >= tasks.size()) return;
        try {
          run_task(tasks[i], telemetry);
        } catch (...) {
          slot.capture_current();
          cancelled.store(true, std::memory_order_release);
          stop.request_stop();
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (slot.set()) {
    if (telemetry) mw_metrics().faults.add();
    slot.rethrow_if_set();
  }
  if (inherited.stop_requested()) throw OperationCancelled("master_worker");
}

}  // namespace patty::rt
