#include "runtime/master_worker.hpp"

#include <atomic>
#include <string>

#include <thread>

#include "observe/metrics.hpp"
#include "observe/trace.hpp"

namespace patty::rt {

namespace {

/// Master/worker instruments, resolved once (registry refs are stable).
struct MwMetrics {
  observe::Counter& runs;
  observe::Counter& tasks;
  observe::Gauge& queue_depth;
  observe::Histogram& task_us;
};

MwMetrics& mw_metrics() {
  static MwMetrics m{
      observe::Registry::global().counter("master_worker.runs"),
      observe::Registry::global().counter("master_worker.tasks"),
      observe::Registry::global().gauge("master_worker.queue_depth"),
      observe::Registry::global().histogram("master_worker.task_us"),
  };
  return m;
}

}  // namespace

void MasterWorker::run(const std::vector<std::function<void()>>& tasks) const {
  if (tasks.empty()) return;
  const bool telemetry = observe::enabled();
  observe::Span span("master_worker.run", "mw");
  if (telemetry) {
    span.set_detail("tasks=" + std::to_string(tasks.size()) +
                    " workers=" + std::to_string(workers_));
    MwMetrics& m = mw_metrics();
    m.runs.add();
    m.tasks.add(tasks.size());
    m.queue_depth.set(static_cast<std::int64_t>(tasks.size()));
  }
  if (tasks.size() == 1 || workers_ == 1) {
    for (const auto& t : tasks) t();
    return;
  }
  if (workers_ == 0) {
    // Shared pool: no thread creation cost; the common configuration.
    // submit_fast with a by-reference capture: the tasks vector outlives
    // the join, so no per-task std::function copy is needed. The helping
    // join keeps a nested master/worker inside a pool task from blocking
    // pool capacity: the worker runs queued tasks while it waits.
    TaskGroup group;
    group.add(tasks.size());
    for (const auto& t : tasks) {
      ThreadPool::shared().submit_fast([&group, &t, telemetry] {
        if (!telemetry) {
          t();
        } else {
          const std::uint64_t t0 = observe::now_us();
          t();
          const std::uint64_t dur = observe::now_us() - t0;
          mw_metrics().task_us.record(static_cast<double>(dur));
          observe::record_complete("mw.task", "mw", t0, dur);
        }
        group.finish();
      });
    }
    ThreadPool::shared().wait_on(group);
    return;
  }
  // Dedicated crew: `workers_` threads pull tasks by index.
  std::atomic<std::size_t> next{0};
  const std::size_t crew =
      std::min(static_cast<std::size_t>(workers_), tasks.size());
  std::vector<std::thread> threads;
  threads.reserve(crew);
  for (std::size_t w = 0; w < crew; ++w) {
    threads.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1);
        if (i >= tasks.size()) return;
        if (!telemetry) {
          tasks[i]();
        } else {
          const std::uint64_t t0 = observe::now_us();
          tasks[i]();
          const std::uint64_t dur = observe::now_us() - t0;
          mw_metrics().task_us.record(static_cast<double>(dur));
          observe::record_complete("mw.task", "mw", t0, dur);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace patty::rt
