#pragma once
// Data-parallel loop pattern (paper §2: the third implemented pattern).
// Work-stealing range splitting over the shared pool: the caller recursively
// halves its range, spawning the right half into its own deque (idle workers
// steal the biggest pieces from the top) and keeping the left half, until
// chunks reach the grain floor. Split points are grain-aligned, so an
// explicit grain G yields exactly ceil(range/G) chunks, each at most G wide.
// Tuning parameters: thread count, grain size, and the SequentialExecution
// escape hatch.

#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>

namespace patty::rt {

struct ParallelForTuning {
  int threads = 0;         // 0 = hardware concurrency
  std::int64_t grain = 0;  // 0 = auto (range / (threads * 8), at least 1)
  bool sequential = false;
  /// Graceful degradation: when the parallel run faults (a chunk throws) or
  /// the deadline expires, rerun the WHOLE range sequentially instead of
  /// rethrowing. Requires an idempotent loop body — the paper's patterns
  /// qualify (each iteration overwrites its own output slots).
  bool fallback_sequential = false;
  /// 0 = no deadline; otherwise cancel the region after this many ms
  /// (OperationCancelled at the join, or sequential rerun with fallback).
  std::int64_t deadline_ms = 0;
};

namespace detail {
using ChunkInvoker = void (*)(void* ctx, std::int64_t lo, std::int64_t hi);

/// Non-template driver behind every loop entry point: splitting, spawning,
/// telemetry. `invoke(ctx, lo, hi)` runs one chunk.
void parallel_for_driver(std::int64_t begin, std::int64_t end,
                         ChunkInvoker invoke, void* ctx,
                         const ParallelForTuning& tuning);
}  // namespace detail

/// Template fast path: the chunk body is called through a function pointer
/// + context, never wrapped in std::function — no per-chunk type-erasure
/// allocation. fn(lo, hi) must tolerate concurrent invocation on disjoint
/// subranges.
template <typename ChunkFn>
void parallel_for_blocked(std::int64_t begin, std::int64_t end, ChunkFn&& fn,
                          ParallelForTuning tuning = {}) {
  using Fn = std::remove_reference_t<ChunkFn>;
  detail::parallel_for_driver(
      begin, end,
      [](void* ctx, std::int64_t lo, std::int64_t hi) {
        (*static_cast<Fn*>(ctx))(lo, hi);
      },
      const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
      tuning);
}

/// Invoke fn(i) for every i in [begin, end). Iterations must be independent
/// (that is what the detector verified before emitting this pattern).
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  ParallelForTuning tuning = {});

/// Chunked variant: fn(lo, hi) per chunk — lets callers hoist per-chunk
/// state and is what the code generator emits.
void parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    ParallelForTuning tuning = {});

/// Reduction: combine(map(i)) over [begin, end) with identity `init`.
/// combine must be associative; per-thread partials keep it race-free.
std::int64_t parallel_reduce(
    std::int64_t begin, std::int64_t end, std::int64_t init,
    const std::function<std::int64_t(std::int64_t)>& map,
    const std::function<std::int64_t(std::int64_t, std::int64_t)>& combine,
    ParallelForTuning tuning = {});

}  // namespace patty::rt
