#pragma once
// Data-parallel loop pattern (paper §2: the third implemented pattern).
// Static chunking over the shared pool. Tuning parameters: thread count,
// grain (chunk) size, and the SequentialExecution escape hatch.

#include <cstdint>
#include <functional>

namespace patty::rt {

struct ParallelForTuning {
  int threads = 0;      // 0 = hardware concurrency
  std::int64_t grain = 0;  // 0 = auto (range / (threads * 4))
  bool sequential = false;
};

/// Invoke fn(i) for every i in [begin, end). Iterations must be independent
/// (that is what the detector verified before emitting this pattern).
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  ParallelForTuning tuning = {});

/// Chunked variant: fn(lo, hi) per chunk — lets callers hoist per-chunk
/// state and is what the code generator emits.
void parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    ParallelForTuning tuning = {});

/// Reduction: combine(map(i)) over [begin, end) with identity `init`.
/// combine must be associative; per-thread partials keep it race-free.
std::int64_t parallel_reduce(
    std::int64_t begin, std::int64_t end, std::int64_t init,
    const std::function<std::int64_t(std::int64_t)>& map,
    const std::function<std::int64_t(std::int64_t, std::int64_t)>& combine,
    ParallelForTuning tuning = {});

}  // namespace patty::rt
