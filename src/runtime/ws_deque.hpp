#pragma once
// Chase–Lev work-stealing deque (the Le/Pop/Cohen/Nardelli weak-memory
// formulation). One owner thread pushes and pops at the bottom (LIFO, cache
// warm); any number of thieves steal from the top (FIFO, oldest = largest
// remaining subtree under recursive splitting). Lock-free: the only
// contended operation is a single CAS on `top`, taken by thieves and by the
// owner only on the last-element race.
//
// T must be trivially copyable (the pool stores Job pointers) so cells can
// be std::atomic<T>: racy cell reads are then real atomic loads, which keeps
// the structure exact under TSan instead of relying on benign races.
//
// Memory-ordering notes (see DESIGN.md "Runtime core"):
//   * owner push:  relaxed cell store, release store of bottom — a thief
//     that acquires bottom sees the element.
//   * owner pop:   store bottom, seq_cst fence, load top. The fence pairs
//     with the thief's CAS so owner and thief cannot both take the last
//     element.
//   * steal:       acquire top, seq_cst fence, acquire bottom, read cell,
//     then CAS top (seq_cst). A failed CAS means another thief or the owner
//     won; the element must not be used.
// Grown arrays are retired, not freed: a concurrent thief may still read a
// cell of the old array. Retired arrays are reclaimed in the destructor.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

namespace patty::rt {

template <typename T>
class WsDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "WsDeque cells are std::atomic<T>");

 public:
  explicit WsDeque(std::size_t initial_capacity = 256)
      : array_(new Array(round_pow2(initial_capacity))) {}

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  ~WsDeque() {
    delete array_.load(std::memory_order_relaxed);
    for (Array* a : retired_) delete a;
  }

  /// Owner only. Never fails: grows (2x) when full.
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(a->capacity)) {
      a = grow(a, t, b);
    }
    a->cell(b).store(std::move(value), std::memory_order_relaxed);
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. LIFO: most recently pushed element.
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Empty: restore bottom.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return std::nullopt;
    }
    T value = a->cell(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race the thieves for it via the top CAS.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        // A thief won.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return std::nullopt;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return value;
  }

  /// Any thread. FIFO: oldest element, or nullopt when empty or lost race.
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;
    Array* a = array_.load(std::memory_order_acquire);
    T value = a->cell(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost to the owner or another thief
    }
    return value;
  }

  /// Approximate occupancy (racy reads; exact only when quiescent).
  [[nodiscard]] std::size_t size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  [[nodiscard]] bool empty() const { return size() == 0; }

 private:
  struct Array {
    explicit Array(std::size_t cap)
        : capacity(cap), mask(cap - 1), cells(new std::atomic<T>[cap]) {}
    const std::size_t capacity;
    const std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> cells;
    std::atomic<T>& cell(std::int64_t i) {
      return cells[static_cast<std::size_t>(i) & mask];
    }
  };

  static std::size_t round_pow2(std::size_t n) {
    std::size_t p = 2;
    while (p < n) p <<= 1;
    return p;
  }

  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Array(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i)
      bigger->cell(i).store(old->cell(i).load(std::memory_order_relaxed),
                            std::memory_order_relaxed);
    array_.store(bigger, std::memory_order_release);
    retired_.push_back(old);  // thieves may still be reading it
    return bigger;
  }

  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  alignas(64) std::atomic<Array*> array_;
  std::vector<Array*> retired_;  // owner-only
};

}  // namespace patty::rt
