#pragma once
// Tunable stage-binding pipeline (paper §2.2).
//
// Threads are bound to stages; bounded queues connect neighbours. The four
// tuning parameters of the paper are all implemented:
//   StageReplication   run a stage R-fold on consecutive stream elements
//   OrderPreservation  restore stream order behind a replicated stage
//   StageFusion        run adjacent stages in one thread (drops one queue)
//   SequentialExecution run the whole pipeline inline (short streams)
// plus the buffer capacity of the connecting queues.
//
// The element type is a template parameter: the code generator instantiates
// Pipeline over interpreter environments, the C++ examples over structs.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "observe/explain.hpp"
#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "runtime/cancellation.hpp"
#include "runtime/stage_queue.hpp"
#include "support/diagnostics.hpp"
#include "support/failpoint.hpp"

namespace patty::rt {

struct PipelineConfig {
  std::size_t buffer_capacity = 16;
  bool sequential = false;  // SequentialExecution tuning parameter
  /// BatchSize tuning parameter: elements moved per queue operation.
  /// Workers pop/push up to this many items per synchronization point, which
  /// amortizes queue overhead on fine-grained streams at the cost of some
  /// pipelining latency. 1 (the default) reproduces item-at-a-time behavior.
  std::size_t batch_size = 1;
  /// Stage-queue implementation. Auto picks the SPSC ring for unreplicated
  /// edges and the MPMC ring for replicated neighbours; Locking forces the
  /// legacy mutex-based BoundedQueue.
  QueueBackend queue_backend = QueueBackend::Auto;
  /// Name under which telemetry-enabled runs publish their per-stage
  /// observation (observe::recent_pipelines) and trace spans.
  std::string name = "pipeline";
  /// Graceful degradation for run_over(): when the parallel run faults, the
  /// input is replayed through the stages sequentially on the caller thread
  /// (the SequentialExecution escape hatch, applied after the fact). The
  /// input is copied up front so a partially-consumed source can be
  /// replayed; stage fns must be idempotent per element.
  bool fallback_sequential = false;
  /// 0 = no deadline; otherwise the run is cancelled (queues poisoned,
  /// workers unwound) after this many ms and run() throws
  /// OperationCancelled — or run_over falls back when enabled.
  std::int64_t deadline_ms = 0;
};

template <typename T>
class Pipeline {
 public:
  struct Stage {
    std::string name;
    std::function<void(T&)> fn;
    int replication = 1;        // StageReplication
    bool preserve_order = false;  // OrderPreservation (replicated stages)
    bool fuse_with_next = false;  // StageFusion with the following stage
  };

  struct RunStats {
    std::uint64_t elements = 0;
    std::size_t threads_used = 0;
    std::size_t stages_after_fusion = 0;
    /// Per-stage telemetry of this run; null unless observe::enabled() was
    /// true when run() started. Also published to observe::recent_pipelines.
    std::shared_ptr<const observe::PipelineObservation> observation;
  };

  Pipeline(std::vector<Stage> stages, PipelineConfig config = {})
      : config_(config) {
    if (stages.empty()) fatal("pipeline needs at least one stage");
    // StageFusion: merge each stage marked fuse_with_next into its
    // successor. Composed stages run both bodies in one thread and share
    // one queue hop.
    for (std::size_t i = 0; i < stages.size(); ++i) {
      Stage merged = std::move(stages[i]);
      while (merged.fuse_with_next && i + 1 < stages.size()) {
        Stage& next = stages[i + 1];
        merged.name += "+" + next.name;
        merged.fn = [a = std::move(merged.fn), b = std::move(next.fn)](T& x) {
          a(x);
          b(x);
        };
        merged.replication = std::max(merged.replication, next.replication);
        merged.preserve_order = merged.preserve_order || next.preserve_order;
        merged.fuse_with_next = next.fuse_with_next;
        ++i;
      }
      merged.fuse_with_next = false;
      if (merged.replication < 1) merged.replication = 1;
      effective_.push_back(std::move(merged));
    }
  }

  /// Execute: `source` yields elements until nullopt (the StreamGenerator,
  /// the paper's implicit first stage); `sink` receives each element after
  /// the last stage, on the caller's thread.
  RunStats run(std::function<std::optional<T>()> source,
               std::function<void(T&&)> sink) {
    RunStats stats;
    stats.stages_after_fusion = effective_.size();
    // Telemetry is decided once per run: one relaxed atomic load. When off
    // (the default) the only per-item cost below is a null-pointer check.
    const bool telemetry = observe::enabled();
    const std::uint64_t run_start_us = telemetry ? observe::now_us() : 0;
    observe::Span run_span("pipeline.run", "pipeline");
    run_span.set_detail(config_.name);

    if (config_.sequential) {
      stats.threads_used = 0;
      const StopToken inherited = current_stop_token();
      std::vector<std::unique_ptr<StageTelemetry>> telem;
      if (telemetry)
        for (std::size_t i = 0; i < effective_.size(); ++i)
          telem.push_back(std::make_unique<StageTelemetry>());
      while (std::optional<T> item = source()) {
        if (inherited.stop_requested())
          throw OperationCancelled(config_.name);
        if (!telemetry) {
          for (const Stage& s : effective_) s.fn(*item);
        } else {
          for (std::size_t i = 0; i < effective_.size(); ++i) {
            const std::uint64_t t0 = observe::now_us();
            effective_[i].fn(*item);
            const std::uint64_t t1 = observe::now_us();
            telem[i]->items.fetch_add(1, std::memory_order_relaxed);
            telem[i]->busy_us.fetch_add(t1 - t0, std::memory_order_relaxed);
            observe::record_complete(effective_[i].name, "pipeline", t0,
                                     t1 - t0);
          }
        }
        sink(std::move(*item));
        ++stats.elements;
      }
      if (telemetry)
        publish_observation(&stats, /*sequential=*/true, run_start_us, telem,
                            nullptr);
      return stats;
    }

    const std::size_t n_stages = effective_.size();
    // One fault domain per run: the first thread (worker, generator, or
    // sink) to catch an exception claims ctl.slot, requests stop, and
    // poisons every queue so peers blocked on a dead neighbour wake and
    // unwind; run() rethrows the captured exception after the joins.
    RunControl ctl;
    ctl.inherited = current_stop_token();
    // queues[i] feeds stage i; queues[n_stages] feeds the sink. Backend per
    // edge from the stage topology: the generator and the sink are single
    // producer/consumer endpoints; a stage contributes its replication.
    std::vector<std::unique_ptr<StageQueue<Item>>> queues;
    queues.reserve(n_stages + 1);
    for (std::size_t i = 0; i <= n_stages; ++i) {
      const std::size_t producers =
          i == 0 ? 1
                 : static_cast<std::size_t>(effective_[i - 1].replication);
      const std::size_t consumers =
          i < n_stages ? static_cast<std::size_t>(effective_[i].replication)
                       : 1;
      queues.push_back(make_stage_queue<Item>(config_.buffer_capacity,
                                              producers, consumers,
                                              config_.queue_backend));
    }

    std::vector<std::unique_ptr<StageState>> states;
    states.reserve(n_stages);
    for (std::size_t i = 0; i < n_stages; ++i) {
      auto st = std::make_unique<StageState>();
      st->active_workers.store(effective_[i].replication);
      states.push_back(std::move(st));
    }

    std::vector<std::unique_ptr<StageTelemetry>> telem;
    if (telemetry)
      for (std::size_t i = 0; i < n_stages; ++i)
        telem.push_back(std::make_unique<StageTelemetry>());

    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < n_stages; ++i) {
      const Stage& stage = effective_[i];
      const bool restore =
          stage.preserve_order && stage.replication > 1;
      StageTelemetry* tm = telemetry ? telem[i].get() : nullptr;
      for (int w = 0; w < stage.replication; ++w) {
        threads.emplace_back([this, i, restore, tm, &queues, &states, &ctl] {
          worker(effective_[i], *queues[i], *queues[i + 1], *states[i],
                 restore, tm, queues, ctl);
        });
      }
      stats.threads_used += static_cast<std::size_t>(stage.replication);
    }

    // Deadline: expiry poisons the run like a fault, minus the exception.
    // Declared after ctl and queues — the destructor joins the deadline
    // thread before anything it captures leaves scope.
    std::optional<Watchdog> watchdog;
    if (config_.deadline_ms > 0)
      watchdog.emplace(std::chrono::milliseconds(config_.deadline_ms),
                       [&ctl, &queues] {
                         ctl.stop.request_stop();
                         poison_all(queues);
                       });

    // The StreamGenerator needs its own thread: if the caller thread both
    // fed the first queue and drained the last one, a stream longer than
    // the total buffer capacity would fill every queue and deadlock.
    const std::size_t batch = std::max<std::size_t>(1, config_.batch_size);
    std::thread generator([&queues, &source, &ctl, batch] {
      std::uint64_t seq = 0;
      std::vector<Item> buf;
      buf.reserve(batch);
      try {
        while (!ctl.stopped()) {
          PATTY_FAILPOINT("pipeline.generator.emit");
          std::optional<T> item = source();
          if (!item) break;
          buf.push_back(Item{seq++, std::move(*item)});
          if (buf.size() >= batch && queues.front()->push_n(&buf) < batch)
            break;  // closed downstream
        }
        if (!buf.empty() && !ctl.stopped()) queues.front()->push_n(&buf);
      } catch (...) {
        ctl.slot.capture_current();
        ctl.stop.request_stop();
        poison_all(queues);
      }
      queues.front()->close();
    });
    ++stats.threads_used;

    // Caller thread is the sink: drain the last queue (batched pops keep
    // FIFO order; elements arrive already order-restored when requested).
    {
      std::vector<Item> drained;
      drained.reserve(batch);
      while (!ctl.stopped() && queues.back()->pop_n(&drained, batch)) {
        try {
          for (Item& item : drained) {
            PATTY_FAILPOINT("pipeline.sink.item");
            sink(std::move(item.value));
            ++stats.elements;
          }
        } catch (...) {
          ctl.slot.capture_current();
          ctl.stop.request_stop();
          poison_all(queues);
          break;
        }
      }
    }
    generator.join();
    for (std::thread& t : threads) t.join();
    if (watchdog) watchdog->disarm();
    const bool expired = watchdog && watchdog->fired();
    if (telemetry)
      publish_observation(&stats, /*sequential=*/false, run_start_us, telem,
                          &queues);
    if (ctl.slot.set() || expired || ctl.inherited.stop_requested()) {
      if (telemetry) {
        observe::Registry::global().counter("pipeline.faults").add();
        if (expired)
          observe::Registry::global()
              .counter("fault.deadline_cancellations")
              .add();
        if (ctl.slot.set())
          observe::Registry::global().counter("fault.rethrown").add();
      }
      // Exactly one exception at the join: the first captured one, or
      // OperationCancelled when the run was stopped without a fault.
      ctl.slot.rethrow_if_set();
      throw OperationCancelled(config_.name);
    }
    return stats;
  }

  /// Convenience: run over a vector, collect results in arrival order.
  /// With config.fallback_sequential, a faulted parallel run is replayed
  /// sequentially from a copy of the input (graceful degradation); the
  /// degradation is visible via degraded()/degrade_reason() and the
  /// "fault.fallbacks" counter.
  std::vector<T> run_over(std::vector<T> input) {
    degraded_ = false;
    degrade_reason_.clear();
    std::vector<T> backup;
    if constexpr (std::is_copy_constructible_v<T>) {
      // Copy up front: the failed run consumes an unknown prefix of the
      // source, so replay needs the original elements.
      if (config_.fallback_sequential) backup = input;
    }
    std::size_t idx = 0;
    std::vector<T> out;
    out.reserve(input.size());
    try {
      run(
          [&]() -> std::optional<T> {
            if (idx >= input.size()) return std::nullopt;
            return std::move(input[idx++]);
          },
          [&](T&& v) { out.push_back(std::move(v)); });
      return out;
    } catch (const std::exception& e) {
      if constexpr (std::is_copy_constructible_v<T>) {
        if (config_.fallback_sequential) {
          degraded_ = true;
          degrade_reason_ = e.what();
          if (observe::enabled())
            observe::Registry::global().counter("fault.fallbacks").add();
          out.clear();
          for (T& v : backup) {
            for (const Stage& s : effective_) s.fn(v);
            out.push_back(std::move(v));
          }
          return out;
        }
      }
      throw;
    }
  }

  /// True when the last run_over() degraded to the sequential replay.
  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] const std::string& degrade_reason() const {
    return degrade_reason_;
  }

  [[nodiscard]] std::size_t stage_count_after_fusion() const {
    return effective_.size();
  }

 private:
  struct Item {
    std::uint64_t seq = 0;
    T value;
  };

  /// Per-run fault domain: this run's StopSource (also the ambient token
  /// for nested regions inside stage bodies), the enclosing region's token,
  /// and the single exception slot the first thrower claims.
  struct RunControl {
    StopSource stop;
    StopToken inherited;
    ExceptionSlot slot;
    [[nodiscard]] bool stopped() const {
      return stop.stop_requested() || inherited.stop_requested();
    }
  };

  /// Poison protocol: closing every queue wakes any producer or consumer
  /// parked on a full or empty edge; their next push returns false / pop
  /// drains-then-ends, so every thread reaches its join. close() is
  /// idempotent and safe to race from several failing threads.
  static void poison_all(std::vector<std::unique_ptr<StageQueue<Item>>>& qs) {
    for (auto& q : qs) q->close();
  }

  /// Reorder buffer for OrderPreservation: releases items to the out queue
  /// strictly by sequence number.
  struct StageState {
    std::atomic<int> active_workers{0};
    std::mutex reorder_mutex;
    std::map<std::uint64_t, T> pending;
    std::uint64_t next_seq = 0;
  };

  /// Per-stage run telemetry, shared by all workers of the stage. Written
  /// with relaxed atomics; read once after the join barrier in run().
  struct StageTelemetry {
    std::atomic<std::uint64_t> items{0};
    std::atomic<std::uint64_t> busy_us{0};
    std::atomic<std::uint64_t> in_wait_us{0};   // blocked popping input
    std::atomic<std::uint64_t> out_wait_us{0};  // blocked pushing output
  };

  void worker(const Stage& stage, StageQueue<Item>& in, StageQueue<Item>& out,
              StageState& state, bool restore, StageTelemetry* tm,
              std::vector<std::unique_ptr<StageQueue<Item>>>& queues,
              RunControl& ctl) {
    // BatchSize: pop up to `batch` items per queue synchronization, run the
    // stage body over the whole batch, push the results in one batched call
    // (relative order inside a batch is preserved by push_n). Per-item
    // telemetry granularity is unchanged; wait time is counted per batch.
    const std::size_t batch = std::max<std::size_t>(1, config_.batch_size);
    // This run's token is the ambient one while the stage body runs, so a
    // nested region inside fn chains its cancellation to this pipeline.
    StopScope ambient(ctl.stop.token());
    std::vector<Item> buf;
    buf.reserve(batch);
    std::uint64_t t_pop = tm ? observe::now_us() : 0;
    while (!ctl.stopped() && in.pop_n(&buf, batch)) {
      try {
        std::uint64_t t_work = 0;
        if (tm) {
          t_work = observe::now_us();
          tm->in_wait_us.fetch_add(t_work - t_pop, std::memory_order_relaxed);
        }
        PATTY_FAILPOINT("pipeline.worker.body");
        if (!tm) {
          for (Item& item : buf) stage.fn(item.value);
        } else {
          std::uint64_t t0 = t_work;
          for (Item& item : buf) {
            stage.fn(item.value);
            const std::uint64_t t1 = observe::now_us();
            tm->items.fetch_add(1, std::memory_order_relaxed);
            tm->busy_us.fetch_add(t1 - t0, std::memory_order_relaxed);
            observe::record_complete(stage.name, "pipeline", t0, t1 - t0);
            t0 = t1;
          }
        }
        std::uint64_t t_push = tm ? observe::now_us() : 0;
        PATTY_FAILPOINT("pipeline.worker.push");
        if (!restore) {
          out.push_n(&buf);
        } else {
          // Order restore: emit the longest ready run starting at next_seq.
          // The push happens under the reorder mutex: releasing it first
          // would let another worker emit a later run ahead of this one. A
          // full out queue serializes this stage briefly but cannot deadlock
          // (downstream drains independently of this mutex).
          std::scoped_lock lock(state.reorder_mutex);
          for (Item& item : buf) {
            state.pending.emplace(item.seq, std::move(item.value));
          }
          buf.clear();
          while (!state.pending.empty() &&
                 state.pending.begin()->first == state.next_seq) {
            auto first = state.pending.begin();
            Item ready{first->first, std::move(first->second)};
            state.pending.erase(first);
            ++state.next_seq;
            out.push(std::move(ready));
          }
        }
        if (tm) {
          t_pop = observe::now_us();
          tm->out_wait_us.fetch_add(t_pop - t_push,
                                    std::memory_order_relaxed);
        }
      } catch (...) {
        // First thrower wins the slot; everyone poisons (idempotent) so
        // peers blocked on our dead edges wake, then unwinds to the join.
        ctl.slot.capture_current();
        ctl.stop.request_stop();
        poison_all(queues);
        break;
      }
    }
    if (state.active_workers.fetch_sub(1) == 1) {
      // Last worker of this stage: downstream sees end-of-stream.
      out.close();
    }
  }

  /// Assemble the per-stage observation, publish it to the global ring and
  /// attach it to the run's stats. `queues` is null for sequential runs.
  void publish_observation(
      RunStats* stats, bool sequential, std::uint64_t run_start_us,
      const std::vector<std::unique_ptr<StageTelemetry>>& telem,
      const std::vector<std::unique_ptr<StageQueue<Item>>>* queues) {
    auto obs = std::make_shared<observe::PipelineObservation>();
    obs->pipeline = config_.name;
    obs->sequential = sequential;
    obs->wall_ms =
        static_cast<double>(observe::now_us() - run_start_us) / 1000.0;
    obs->elements = stats->elements;
    for (std::size_t i = 0; i < effective_.size(); ++i) {
      observe::StageObservation so;
      so.name = effective_[i].name;
      so.replication = sequential ? 1 : effective_[i].replication;
      if (i < telem.size()) {
        so.items = telem[i]->items.load(std::memory_order_relaxed);
        so.busy_ms = static_cast<double>(
                         telem[i]->busy_us.load(std::memory_order_relaxed)) /
                     1000.0;
        so.input_wait_ms =
            static_cast<double>(
                telem[i]->in_wait_us.load(std::memory_order_relaxed)) /
            1000.0;
        so.output_wait_ms =
            static_cast<double>(
                telem[i]->out_wait_us.load(std::memory_order_relaxed)) /
            1000.0;
      }
      if (queues) {
        const auto qs = (*queues)[i]->stats();
        so.input_queue_high_water = qs.high_water;
        so.input_queue_capacity = (*queues)[i]->capacity();
        so.input_queue_full_waits = qs.full_waits;
        so.input_queue_empty_waits = qs.empty_waits;
      }
      // Registry histograms keyed by stage index, one sample per run: the
      // per-item service time and the per-item queue wait of this stage.
      // Snapshot/delta windows (observe/snapshot.hpp) read these to fit
      // pipeline cost models without holding the observation object.
      if (so.items > 0) {
        const std::string key = "pipeline.stage" + std::to_string(i);
        const double items = static_cast<double>(so.items);
        observe::Registry::global()
            .histogram(key + ".service_us")
            .record(so.busy_ms * 1000.0 / items);
        observe::Registry::global()
            .histogram(key + ".wait_us")
            .record((so.input_wait_ms + so.output_wait_ms) * 1000.0 / items);
      }
      obs->stages.push_back(std::move(so));
    }
    observe::Registry::global().counter("pipeline.runs").add();
    observe::Registry::global().counter("pipeline.elements").add(
        stats->elements);
    observe::record_pipeline(*obs);
    stats->observation = std::move(obs);
  }

  PipelineConfig config_;
  std::vector<Stage> effective_;
  bool degraded_ = false;
  std::string degrade_reason_;
};

}  // namespace patty::rt
