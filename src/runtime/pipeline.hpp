#pragma once
// Tunable stage-binding pipeline (paper §2.2).
//
// Threads are bound to stages; bounded queues connect neighbours. The four
// tuning parameters of the paper are all implemented:
//   StageReplication   run a stage R-fold on consecutive stream elements
//   OrderPreservation  restore stream order behind a replicated stage
//   StageFusion        run adjacent stages in one thread (drops one queue)
//   SequentialExecution run the whole pipeline inline (short streams)
// plus the buffer capacity of the connecting queues.
//
// The element type is a template parameter: the code generator instantiates
// Pipeline over interpreter environments, the C++ examples over structs.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/bounded_queue.hpp"
#include "support/diagnostics.hpp"

namespace patty::rt {

struct PipelineConfig {
  std::size_t buffer_capacity = 16;
  bool sequential = false;  // SequentialExecution tuning parameter
};

template <typename T>
class Pipeline {
 public:
  struct Stage {
    std::string name;
    std::function<void(T&)> fn;
    int replication = 1;        // StageReplication
    bool preserve_order = false;  // OrderPreservation (replicated stages)
    bool fuse_with_next = false;  // StageFusion with the following stage
  };

  struct RunStats {
    std::uint64_t elements = 0;
    std::size_t threads_used = 0;
    std::size_t stages_after_fusion = 0;
  };

  Pipeline(std::vector<Stage> stages, PipelineConfig config = {})
      : config_(config) {
    if (stages.empty()) fatal("pipeline needs at least one stage");
    // StageFusion: merge each stage marked fuse_with_next into its
    // successor. Composed stages run both bodies in one thread and share
    // one queue hop.
    for (std::size_t i = 0; i < stages.size(); ++i) {
      Stage merged = std::move(stages[i]);
      while (merged.fuse_with_next && i + 1 < stages.size()) {
        Stage& next = stages[i + 1];
        merged.name += "+" + next.name;
        merged.fn = [a = std::move(merged.fn), b = std::move(next.fn)](T& x) {
          a(x);
          b(x);
        };
        merged.replication = std::max(merged.replication, next.replication);
        merged.preserve_order = merged.preserve_order || next.preserve_order;
        merged.fuse_with_next = next.fuse_with_next;
        ++i;
      }
      merged.fuse_with_next = false;
      if (merged.replication < 1) merged.replication = 1;
      effective_.push_back(std::move(merged));
    }
  }

  /// Execute: `source` yields elements until nullopt (the StreamGenerator,
  /// the paper's implicit first stage); `sink` receives each element after
  /// the last stage, on the caller's thread.
  RunStats run(std::function<std::optional<T>()> source,
               std::function<void(T&&)> sink) {
    RunStats stats;
    stats.stages_after_fusion = effective_.size();
    if (config_.sequential) {
      stats.threads_used = 0;
      while (std::optional<T> item = source()) {
        for (const Stage& s : effective_) s.fn(*item);
        sink(std::move(*item));
        ++stats.elements;
      }
      return stats;
    }

    const std::size_t n_stages = effective_.size();
    // queues[i] feeds stage i; queues[n_stages] feeds the sink.
    std::vector<std::unique_ptr<BoundedQueue<Item>>> queues;
    queues.reserve(n_stages + 1);
    for (std::size_t i = 0; i <= n_stages; ++i)
      queues.push_back(
          std::make_unique<BoundedQueue<Item>>(config_.buffer_capacity));

    std::vector<std::unique_ptr<StageState>> states;
    states.reserve(n_stages);
    for (std::size_t i = 0; i < n_stages; ++i) {
      auto st = std::make_unique<StageState>();
      st->active_workers.store(effective_[i].replication);
      states.push_back(std::move(st));
    }

    std::vector<std::thread> threads;
    for (std::size_t i = 0; i < n_stages; ++i) {
      const Stage& stage = effective_[i];
      const bool restore =
          stage.preserve_order && stage.replication > 1;
      for (int w = 0; w < stage.replication; ++w) {
        threads.emplace_back([this, i, restore, &queues, &states] {
          worker(effective_[i], *queues[i], *queues[i + 1], *states[i],
                 restore);
        });
      }
      stats.threads_used += static_cast<std::size_t>(stage.replication);
    }

    // The StreamGenerator needs its own thread: if the caller thread both
    // fed the first queue and drained the last one, a stream longer than
    // the total buffer capacity would fill every queue and deadlock.
    std::thread generator([&queues, &source] {
      std::uint64_t seq = 0;
      while (std::optional<T> item = source()) {
        queues.front()->push(Item{seq++, std::move(*item)});
      }
      queues.front()->close();
    });
    ++stats.threads_used;

    // Caller thread is the sink: drain the last queue.
    while (std::optional<Item> item = queues.back()->pop()) {
      sink(std::move(item->value));
      ++stats.elements;
    }
    generator.join();
    for (std::thread& t : threads) t.join();
    return stats;
  }

  /// Convenience: run over a vector, collect results in arrival order.
  std::vector<T> run_over(std::vector<T> input) {
    std::size_t idx = 0;
    std::vector<T> out;
    out.reserve(input.size());
    run(
        [&]() -> std::optional<T> {
          if (idx >= input.size()) return std::nullopt;
          return std::move(input[idx++]);
        },
        [&](T&& v) { out.push_back(std::move(v)); });
    return out;
  }

  [[nodiscard]] std::size_t stage_count_after_fusion() const {
    return effective_.size();
  }

 private:
  struct Item {
    std::uint64_t seq = 0;
    T value;
  };

  /// Reorder buffer for OrderPreservation: releases items to the out queue
  /// strictly by sequence number.
  struct StageState {
    std::atomic<int> active_workers{0};
    std::mutex reorder_mutex;
    std::map<std::uint64_t, T> pending;
    std::uint64_t next_seq = 0;
  };

  void worker(const Stage& stage, BoundedQueue<Item>& in,
              BoundedQueue<Item>& out, StageState& state, bool restore) {
    while (std::optional<Item> item = in.pop()) {
      stage.fn(item->value);
      if (!restore) {
        out.push(std::move(*item));
        continue;
      }
      // Order restore: emit the longest ready run starting at next_seq.
      // The push happens under the reorder mutex: releasing it first would
      // let another worker emit a later run ahead of this one. A full out
      // queue serializes this stage briefly but cannot deadlock (downstream
      // drains independently of this mutex).
      std::scoped_lock lock(state.reorder_mutex);
      state.pending.emplace(item->seq, std::move(item->value));
      while (!state.pending.empty() &&
             state.pending.begin()->first == state.next_seq) {
        auto first = state.pending.begin();
        Item ready{first->first, std::move(first->second)};
        state.pending.erase(first);
        ++state.next_seq;
        out.push(std::move(ready));
      }
    }
    if (state.active_workers.fetch_sub(1) == 1) {
      // Last worker of this stage: downstream sees end-of-stream.
      out.close();
    }
  }

  PipelineConfig config_;
  std::vector<Stage> effective_;
};

}  // namespace patty::rt
