#include "runtime/parallel_for.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "runtime/cancellation.hpp"
#include "runtime/thread_pool.hpp"
#include "support/failpoint.hpp"

namespace patty::rt {

namespace {

/// Loop instruments, resolved once (registry references are stable).
struct LoopMetrics {
  observe::Counter& loops;
  observe::Counter& sequential_fallbacks;
  observe::Counter& chunks;
  observe::Counter& faults;
  observe::Counter& spawns;
  observe::Counter& iterations;
  observe::Histogram& chunk_us;
};

LoopMetrics& loop_metrics() {
  static LoopMetrics m{
      observe::Registry::global().counter("parallel_for.loops"),
      observe::Registry::global().counter("parallel_for.sequential"),
      observe::Registry::global().counter("parallel_for.chunks"),
      observe::Registry::global().counter("parallel_for.faults"),
      observe::Registry::global().counter("parallel_for.spawns"),
      observe::Registry::global().counter("parallel_for.iterations"),
      observe::Registry::global().histogram("parallel_for.chunk_us"),
  };
  return m;
}

std::int64_t effective_threads(const ParallelForTuning& tuning) {
  if (tuning.threads > 0) return tuning.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::int64_t>(hw);
}

std::int64_t effective_grain(std::int64_t range,
                             const ParallelForTuning& tuning,
                             std::int64_t threads) {
  if (tuning.grain > 0) return tuning.grain;
  // Auto grain: ~8 chunks per thread gives stealing room without drowning
  // in scheduling overhead. Clamped to >=1: small ranges must not
  // degenerate to zero-width (infinite) or per-iteration chunks.
  const std::int64_t g = range / (threads * 8);
  return std::max<std::int64_t>(1, g);
}

/// Shared state of one splitting loop. Chunks run through the function
/// pointer; telemetry mirrors the old static-chunking implementation. The
/// group is the loop's fault domain: the first leaf to throw claims its
/// exception slot and cancels the siblings; `stop` is this loop's own
/// StopSource, installed as the ambient token around each leaf so nested
/// regions started from the body chain their cancellation to this one.
struct SplitCtx {
  detail::ChunkInvoker invoke;
  void* ctx;
  std::int64_t grain;
  bool telemetry;
  TaskGroup group;
  StopSource stop;
  StopToken inherited;  // enclosing region's token at driver entry

  /// Cooperative cancellation check, polled between splits and before each
  /// leaf. An inherited (parent-region) stop is folded into this loop's own
  /// source so nested regions under *us* stop too.
  bool cancelled() {
    if (inherited.stop_requested()) stop.request_stop();
    return group.cancelled() || stop.stop_requested();
  }

  void run_leaf(std::int64_t lo, std::int64_t hi) {
    if (cancelled()) return;
    StopScope ambient(stop.token());
    try {
      PATTY_FAILPOINT("parallel_for.leaf");
      if (!telemetry) {
        invoke(ctx, lo, hi);
        return;
      }
      const std::uint64_t t0 = observe::now_us();
      invoke(ctx, lo, hi);
      const std::uint64_t dur = observe::now_us() - t0;
      LoopMetrics& m = loop_metrics();
      m.chunks.add();
      m.iterations.add(static_cast<std::uint64_t>(hi - lo));
      m.chunk_us.record(static_cast<double>(dur));
      observe::record_complete("pf.chunk", "loop", t0, dur,
                               std::to_string(lo) + ".." + std::to_string(hi));
    } catch (...) {
      group.capture_exception();
      stop.request_stop();
    }
  }
};

/// Split-half until the grain floor: spawn the right half (stealable from
/// the deque top — thieves get the biggest remaining piece), keep the left.
/// The midpoint is rounded up to a grain multiple, so every split point is
/// grain-aligned and an explicit grain G produces exactly ceil(range/G)
/// leaves of width <= G.
void run_range(SplitCtx& c, std::int64_t lo, std::int64_t hi) {
  while (hi - lo > c.grain) {
    if (c.cancelled()) return;  // faulted sibling: stop splitting, unwind
    const std::int64_t half = (hi - lo) / 2;
    const std::int64_t mid =
        lo + ((half + c.grain - 1) / c.grain) * c.grain;
    c.group.add(1);
    if (c.telemetry) loop_metrics().spawns.add();
    ThreadPool::shared().submit_fast([&c, mid, hi] {
      run_range(c, mid, hi);
      c.group.finish();
    });
    hi = mid;
  }
  c.run_leaf(lo, hi);
}

}  // namespace

namespace detail {

void parallel_for_driver(std::int64_t begin, std::int64_t end,
                         ChunkInvoker invoke, void* ctx,
                         const ParallelForTuning& tuning) {
  if (begin >= end) return;
  const std::int64_t range = end - begin;
  const std::int64_t threads = effective_threads(tuning);
  const bool telemetry = observe::enabled();
  if (telemetry) loop_metrics().loops.add();
  if (current_stop_token().stop_requested())
    throw OperationCancelled("parallel_for");
  if (tuning.sequential || threads <= 1 || range == 1) {
    if (telemetry) loop_metrics().sequential_fallbacks.add();
    invoke(ctx, begin, end);
    return;
  }
  const std::int64_t grain = effective_grain(range, tuning, threads);
  observe::Span span("parallel_for", "loop");
  span.set_detail("range=" + std::to_string(range) +
                  " grain=" + std::to_string(grain) +
                  " threads=" + std::to_string(threads));
  SplitCtx c{invoke, ctx, grain, telemetry, {}, {}, current_stop_token()};
  // Declared after c: the destructor joins the deadline thread before c (and
  // the group it cancels) leaves scope.
  std::optional<Watchdog> watchdog;
  if (tuning.deadline_ms > 0)
    watchdog.emplace(std::chrono::milliseconds(tuning.deadline_ms), [&c] {
      c.stop.request_stop();
      c.group.cancel();
    });
  // The caller participates: it keeps splitting left halves and runs leaves
  // itself while pool workers steal and process the spawned right halves.
  // The helping join makes this safe from inside a pool task too — a worker
  // joining a nested loop keeps executing pool work (its own spawned halves
  // first, LIFO) instead of blocking pool capacity: inline-or-stolen.
  run_range(c, begin, end);
  ThreadPool::shared().wait_on(c.group);
  if (watchdog) watchdog->disarm();
  const bool expired = watchdog && watchdog->fired();
  if (!c.group.faulted() && !expired) {
    // Inherited cancellation that arrived mid-loop: surface it even though
    // no task of ours threw, so the enclosing region unwinds promptly.
    if (c.inherited.stop_requested())
      throw OperationCancelled("parallel_for");
    return;
  }
  if (telemetry) {
    loop_metrics().faults.add();
    if (expired)
      observe::Registry::global()
          .counter("fault.deadline_cancellations")
          .add();
  }
  if (tuning.fallback_sequential && !c.inherited.stop_requested()) {
    // Graceful degradation: the paper's SequentialExecution escape hatch,
    // applied after the fact. Safe for idempotent bodies only (each
    // iteration writes its own output), which is what the detector emits.
    if (telemetry) {
      observe::Registry::global().counter("fault.fallbacks").add();
      loop_metrics().sequential_fallbacks.add();
    }
    invoke(ctx, begin, end);
    return;
  }
  if (telemetry && c.group.faulted())
    observe::Registry::global().counter("fault.rethrown").add();
  c.group.rethrow_if_faulted();
  throw OperationCancelled("parallel_for");
}

}  // namespace detail

void parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    ParallelForTuning tuning) {
  parallel_for_blocked(
      begin, end,
      [&fn](std::int64_t lo, std::int64_t hi) { fn(lo, hi); }, tuning);
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  ParallelForTuning tuning) {
  parallel_for_blocked(
      begin, end,
      [&fn](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) fn(i);
      },
      tuning);
}

std::int64_t parallel_reduce(
    std::int64_t begin, std::int64_t end, std::int64_t init,
    const std::function<std::int64_t(std::int64_t)>& map,
    const std::function<std::int64_t(std::int64_t, std::int64_t)>& combine,
    ParallelForTuning tuning) {
  std::mutex result_mutex;
  std::int64_t result = init;
  parallel_for_blocked(
      begin, end,
      [&](std::int64_t lo, std::int64_t hi) {
        std::int64_t partial = init;
        for (std::int64_t i = lo; i < hi; ++i)
          partial = combine(partial, map(i));
        std::scoped_lock lock(result_mutex);
        result = combine(result, partial);
      },
      tuning);
  return result;
}

}  // namespace patty::rt
