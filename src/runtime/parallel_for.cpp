#include "runtime/parallel_for.hpp"

#include <algorithm>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace patty::rt {

namespace {

/// Loop instruments, resolved once (registry references are stable).
struct LoopMetrics {
  observe::Counter& loops;
  observe::Counter& sequential_fallbacks;
  observe::Counter& chunks;
  observe::Histogram& chunk_us;
};

LoopMetrics& loop_metrics() {
  static LoopMetrics m{
      observe::Registry::global().counter("parallel_for.loops"),
      observe::Registry::global().counter("parallel_for.sequential"),
      observe::Registry::global().counter("parallel_for.chunks"),
      observe::Registry::global().histogram("parallel_for.chunk_us"),
  };
  return m;
}

std::int64_t effective_threads(const ParallelForTuning& tuning) {
  if (tuning.threads > 0) return tuning.threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::int64_t>(hw);
}

std::int64_t effective_grain(std::int64_t range,
                             const ParallelForTuning& tuning,
                             std::int64_t threads) {
  if (tuning.grain > 0) return tuning.grain;
  const std::int64_t g = range / (threads * 4);
  return std::max<std::int64_t>(1, g);
}

}  // namespace

void parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    ParallelForTuning tuning) {
  if (begin >= end) return;
  const std::int64_t range = end - begin;
  const std::int64_t threads = effective_threads(tuning);
  const bool telemetry = observe::enabled();
  if (telemetry) loop_metrics().loops.add();
  // Nested parallelism runs inline: a pool worker waiting on pool tasks
  // deadlocks when the pool is small (see ThreadPool::on_worker_thread).
  if (tuning.sequential || threads <= 1 || range == 1 ||
      ThreadPool::on_worker_thread()) {
    if (telemetry) loop_metrics().sequential_fallbacks.add();
    fn(begin, end);
    return;
  }
  const std::int64_t grain = effective_grain(range, tuning, threads);
  observe::Span span("parallel_for", "loop");
  span.set_detail("range=" + std::to_string(range) +
                  " grain=" + std::to_string(grain) +
                  " threads=" + std::to_string(threads));
  TaskGroup group;
  for (std::int64_t lo = begin; lo < end; lo += grain) {
    const std::int64_t hi = std::min(end, lo + grain);
    if (!telemetry) {
      group.run_on(ThreadPool::shared(), [&fn, lo, hi] { fn(lo, hi); });
    } else {
      group.run_on(ThreadPool::shared(), [&fn, lo, hi] {
        const std::uint64_t t0 = observe::now_us();
        fn(lo, hi);
        const std::uint64_t dur = observe::now_us() - t0;
        LoopMetrics& m = loop_metrics();
        m.chunks.add();
        m.chunk_us.record(static_cast<double>(dur));
        observe::record_complete("pf.chunk", "loop", t0, dur,
                                 std::to_string(lo) + ".." +
                                     std::to_string(hi));
      });
    }
  }
  group.wait();
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  ParallelForTuning tuning) {
  parallel_for_chunked(
      begin, end,
      [&fn](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) fn(i);
      },
      tuning);
}

std::int64_t parallel_reduce(
    std::int64_t begin, std::int64_t end, std::int64_t init,
    const std::function<std::int64_t(std::int64_t)>& map,
    const std::function<std::int64_t(std::int64_t, std::int64_t)>& combine,
    ParallelForTuning tuning) {
  std::mutex result_mutex;
  std::int64_t result = init;
  parallel_for_chunked(
      begin, end,
      [&](std::int64_t lo, std::int64_t hi) {
        std::int64_t partial = init;
        for (std::int64_t i = lo; i < hi; ++i)
          partial = combine(partial, map(i));
        std::scoped_lock lock(result_mutex);
        result = combine(result, partial);
      },
      tuning);
  return result;
}

}  // namespace patty::rt
