#include "runtime/cancellation.hpp"

namespace patty::rt {

namespace {
thread_local StopToken t_ambient_token;
}  // namespace

StopToken current_stop_token() { return t_ambient_token; }

StopScope::StopScope(StopToken token) : previous_(t_ambient_token) {
  t_ambient_token = std::move(token);
}

StopScope::~StopScope() { t_ambient_token = previous_; }

Watchdog::Watchdog(std::chrono::milliseconds deadline,
                   std::function<void()> on_expire) {
  thread_ = std::thread([this, deadline, fn = std::move(on_expire)] {
    std::unique_lock<std::mutex> lock(mutex_);
    if (cv_.wait_for(lock, deadline, [this] { return disarmed_; })) return;
    // Expired. Mark fired before invoking so the owner's post-join check
    // sees it even if fn itself is what unblocks the join.
    fired_.store(true, std::memory_order_release);
    lock.unlock();
    fn();
  });
}

Watchdog::~Watchdog() {
  disarm();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::disarm() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    disarmed_ = true;
  }
  cv_.notify_all();
}

DeadlineScheduler& DeadlineScheduler::global() {
  static DeadlineScheduler* s = new DeadlineScheduler();  // immortal
  return *s;
}

DeadlineScheduler::DeadlineScheduler() {
  // The timer thread is detached on purpose: the global scheduler is
  // immortal (leaked), so there is no destruction point to join at, and a
  // detached sleeper cannot outlive anything it touches — the queue it
  // reads lives in the same leaked object.
  std::thread([this] { run(); }).detach();
}

void DeadlineScheduler::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (queue_.empty()) {
      cv_.wait(lock, [this] { return !queue_.empty(); });
      continue;
    }
    const Clock::time_point earliest = queue_.begin()->first;
    if (Clock::now() < earliest) {
      // Wake early if a sooner entry arrives or the earliest is cancelled.
      cv_.wait_until(lock, earliest, [this, earliest] {
        return queue_.empty() || queue_.begin()->first < earliest;
      });
      continue;
    }
    auto it = queue_.begin();
    Entry entry = std::move(it->second);
    index_.erase(entry.id);
    queue_.erase(it);
    lock.unlock();
    try {
      entry.fn();
    } catch (...) {
      // Contract: callbacks must not throw. Swallow so one bad callback
      // cannot take the process-wide timer thread down with it.
    }
    lock.lock();
  }
}

DeadlineScheduler::Handle DeadlineScheduler::schedule(
    std::chrono::milliseconds delay, std::function<void()> on_expire) {
  const Clock::time_point when = Clock::now() + delay;
  Handle id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
    auto it = queue_.emplace(when, Entry{id, std::move(on_expire)});
    index_.emplace(id, it);
  }
  cv_.notify_all();
  return id;
}

bool DeadlineScheduler::cancel(Handle handle) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto found = index_.find(handle);
  if (found == index_.end()) return false;
  queue_.erase(found->second);
  index_.erase(found);
  return true;
}

std::size_t DeadlineScheduler::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

ScopedDeadline::ScopedDeadline(StopSource source,
                               std::chrono::milliseconds delay)
    : fired_(std::make_shared<std::atomic<bool>>(false)) {
  handle_ = DeadlineScheduler::global().schedule(
      delay, [source = std::move(source), fired = fired_]() mutable {
        fired->store(true, std::memory_order_release);
        source.request_stop();
      });
}

ScopedDeadline::~ScopedDeadline() {
  if (handle_ != 0) DeadlineScheduler::global().cancel(handle_);
}

}  // namespace patty::rt
