#include "runtime/cancellation.hpp"

namespace patty::rt {

namespace {
thread_local StopToken t_ambient_token;
}  // namespace

StopToken current_stop_token() { return t_ambient_token; }

StopScope::StopScope(StopToken token) : previous_(t_ambient_token) {
  t_ambient_token = std::move(token);
}

StopScope::~StopScope() { t_ambient_token = previous_; }

Watchdog::Watchdog(std::chrono::milliseconds deadline,
                   std::function<void()> on_expire) {
  thread_ = std::thread([this, deadline, fn = std::move(on_expire)] {
    std::unique_lock<std::mutex> lock(mutex_);
    if (cv_.wait_for(lock, deadline, [this] { return disarmed_; })) return;
    // Expired. Mark fired before invoking so the owner's post-join check
    // sees it even if fn itself is what unblocks the join.
    fired_.store(true, std::memory_order_release);
    lock.unlock();
    fn();
  });
}

Watchdog::~Watchdog() {
  disarm();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::disarm() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    disarmed_ = true;
  }
  cv_.notify_all();
}

}  // namespace patty::rt
