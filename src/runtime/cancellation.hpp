#pragma once
// Structured cancellation and first-exception capture for parallel regions.
//
// Every region (parallel_for, Pipeline, master_worker) owns one fault domain:
// the first task to throw claims the region's ExceptionSlot, the region's
// stop flag flips, siblings observe it cooperatively and unwind without
// running further work, and the join point rethrows exactly the captured
// exception. Cancellation is purely cooperative — nothing is killed — so a
// task already inside user code finishes (or throws) on its own.
//
// StopSource/StopToken also nest: a region installs its token as the
// thread-ambient token (StopScope) before running user code, so a nested
// region started from inside a task inherits its parent's cancellation and
// stops when the parent does. Deadlines reuse the same mechanism via
// Watchdog, which requests stop when a wall-clock budget expires.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>

namespace patty::rt {

/// Thrown at a region's join point when the region was cancelled (deadline
/// or inherited stop) without any task of its own throwing.
class OperationCancelled : public std::runtime_error {
 public:
  explicit OperationCancelled(const std::string& region)
      : std::runtime_error("operation cancelled: " + region) {}
};

namespace detail {
struct StopState {
  std::atomic<bool> stop{false};
};
}  // namespace detail

class StopSource;

/// Observer end of a StopSource. Copyable, cheap, and safely empty: a
/// default-constructed token never reports stop.
class StopToken {
 public:
  StopToken() = default;
  [[nodiscard]] bool stop_possible() const { return state_ != nullptr; }
  [[nodiscard]] bool stop_requested() const {
    return state_ && state_->stop.load(std::memory_order_acquire);
  }

 private:
  friend class StopSource;
  explicit StopToken(std::shared_ptr<detail::StopState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::StopState> state_;
};

/// Owner end: request_stop() flips the shared flag exactly once.
class StopSource {
 public:
  StopSource() : state_(std::make_shared<detail::StopState>()) {}
  [[nodiscard]] StopToken token() const { return StopToken(state_); }
  void request_stop() { state_->stop.store(true, std::memory_order_release); }
  [[nodiscard]] bool stop_requested() const {
    return state_->stop.load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<detail::StopState> state_;
};

/// The calling thread's inherited cancellation token. Empty (never stops)
/// outside any region; inside a region's task it is the region's token, so
/// nested regions chain their cancellation to the enclosing one.
[[nodiscard]] StopToken current_stop_token();

/// RAII: installs `token` as the thread-ambient token, restoring the
/// previous one on destruction. Regions wrap user-code invocation in this.
class StopScope {
 public:
  explicit StopScope(StopToken token);
  ~StopScope();
  StopScope(const StopScope&) = delete;
  StopScope& operator=(const StopScope&) = delete;

 private:
  StopToken previous_;
};

/// One exception_ptr per fault domain, claimed atomically by the first
/// thrower. Later captures are dropped (the region rethrows exactly one).
class ExceptionSlot {
 public:
  /// Capture std::current_exception() if the slot is unclaimed.
  /// Returns true when this call won the claim.
  bool capture_current() noexcept {
    bool expected = false;
    if (!claimed_.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel))
      return false;
    error_ = std::current_exception();
    ready_.store(true, std::memory_order_release);
    return true;
  }

  [[nodiscard]] bool set() const noexcept {
    return claimed_.load(std::memory_order_acquire);
  }

  /// Rethrow the captured exception, if any. Spins briefly for the winner's
  /// store between its claim and ready publication (a few instructions).
  void rethrow_if_set() {
    if (!claimed_.load(std::memory_order_acquire)) return;
    while (!ready_.load(std::memory_order_acquire)) std::this_thread::yield();
    std::rethrow_exception(error_);
  }

 private:
  std::atomic<bool> claimed_{false};
  std::atomic<bool> ready_{false};
  std::exception_ptr error_;
};

/// Wall-clock deadline for a region or tuner candidate: fires `on_expire`
/// from a dedicated thread once `deadline` elapses, unless disarmed first.
/// The destructor disarms and joins, so `on_expire` never outlives the
/// objects it captures as long as the Watchdog is declared after them.
///
/// Watchdog spends one thread per instance — fine for the handful of
/// long-lived region/tuner deadlines it was built for, wrong for the
/// many-concurrent-requests regime (a daemon with 100 in-flight deadlined
/// requests must not run 100 timer threads). That regime routes through
/// DeadlineScheduler below instead.
class Watchdog {
 public:
  Watchdog(std::chrono::milliseconds deadline, std::function<void()> on_expire);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Cancel the deadline (idempotent). Returns without waiting.
  void disarm();
  /// True once on_expire has been invoked.
  [[nodiscard]] bool fired() const {
    return fired_.load(std::memory_order_acquire);
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::atomic<bool> fired_{false};
  std::thread thread_;
};

/// Shared deadline thread: any number of concurrent deadlines, one timer
/// thread for the whole process. Entries are kept in a time-ordered map;
/// the thread sleeps until the earliest expiry, fires its callback, and
/// moves on. This is the scheduler the service layer arms one entry per
/// in-flight request on — 100 concurrent deadlined requests cost 100 map
/// nodes, not 100 threads (tests/service_test.cpp pins that bound).
///
/// Callback contract: `on_expire` runs on the scheduler thread, must not
/// throw (escapes are swallowed and counted nowhere — keep callbacks
/// trivial), must not block, and must OWN everything it touches (capture a
/// StopSource by value, not a reference to stack state): cancel() does not
/// wait for an in-flight callback, it only reports whether it lost the
/// race. ScopedDeadline below packages the safe idiom.
class DeadlineScheduler {
 public:
  using Handle = std::uint64_t;

  /// Process-global scheduler (lazily started, immortal).
  static DeadlineScheduler& global();

  /// Arm `on_expire` to run once `delay` from now elapses.
  Handle schedule(std::chrono::milliseconds delay,
                  std::function<void()> on_expire);

  /// Disarm. True when the entry was still pending (the callback will not
  /// run); false when it already fired or is firing right now.
  bool cancel(Handle handle);

  /// Currently armed entries (tests).
  [[nodiscard]] std::size_t pending() const;

 private:
  DeadlineScheduler();
  void run();

  using Clock = std::chrono::steady_clock;
  struct Entry {
    Handle id = 0;
    std::function<void()> fn;
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::multimap<Clock::time_point, Entry> queue_;
  std::unordered_map<Handle, std::multimap<Clock::time_point, Entry>::iterator>
      index_;
  Handle next_id_ = 1;
};

/// RAII deadline on the shared scheduler: requests stop on `source` when
/// the budget expires, cancels on destruction. The callback captures the
/// StopSource (shared state) by value, so it stays safe even if it fires
/// after this object is gone.
class ScopedDeadline {
 public:
  ScopedDeadline(StopSource source, std::chrono::milliseconds delay);
  ~ScopedDeadline();
  ScopedDeadline(const ScopedDeadline&) = delete;
  ScopedDeadline& operator=(const ScopedDeadline&) = delete;
  /// Movable: the moved-from deadline forgets its handle and cancels
  /// nothing on destruction.
  ScopedDeadline(ScopedDeadline&& other) noexcept
      : fired_(std::move(other.fired_)), handle_(other.handle_) {
    other.handle_ = 0;
    other.fired_ = std::make_shared<std::atomic<bool>>(false);
  }
  ScopedDeadline& operator=(ScopedDeadline&&) = delete;

  /// True once the deadline fired (and stop was requested on the source).
  [[nodiscard]] bool expired() const {
    return fired_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> fired_;
  DeadlineScheduler::Handle handle_ = 0;
};

}  // namespace patty::rt
