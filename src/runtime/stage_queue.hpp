#pragma once
// Stage-connecting queue interface for the pipeline (paper §2.2 "buffers to
// connect predecessor and successor stages"), with three backends behind
// one blocking contract:
//
//   spsc     SpscRing + parking  one producer, one consumer (unreplicated
//                                pipeline edges — the common case)
//   mpmc     MpmcRing + parking  replicated neighbours
//   locking  BoundedQueue        legacy fallback, still exercised in tests
//
// The blocking contract is exactly BoundedQueue's: push blocks while full
// and returns false once closed; pop blocks while empty-and-open, drains
// remaining elements after close, then returns nullopt; close wakes all.
// Batched push_n/pop_n move several elements per synchronization point
// (the BatchSize tuning parameter).
//
// Fast paths never touch the mutex: a failed try on the ring falls into a
// park protocol (waiter counter + condvar). The lost-wakeup race between
// "ring op failed, register waiter" and "peer made room, saw no waiter" is
// closed with seq_cst ordering on the waiter counters (Dekker-style: the
// waiter re-tries the ring after publishing its registration; the peer
// checks the counter after publishing its ring update). Parks additionally
// use a bounded wait so a missed edge degrades to a 50 ms hiccup instead of
// a hang — it should never fire, but lock-free + condvar seams earn an
// airbag.
//
// Stats semantics match BoundedQueue: high_water is the max occupancy seen
// at push, full_waits/empty_waits count blocking episodes (not retries),
// feeding observe::explain's BufferCapacity / StageReplication advice.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "runtime/bounded_queue.hpp"
#include "runtime/ring_buffer.hpp"
#include "support/failpoint.hpp"

namespace patty::rt {

/// Occupancy telemetry, backend-independent (mirrors BoundedQueue::Stats).
struct QueueStats {
  std::size_t high_water = 0;
  std::uint64_t full_waits = 0;
  std::uint64_t empty_waits = 0;
};

enum class QueueBackend {
  Auto,      // spsc for 1 producer x 1 consumer edges, mpmc otherwise
  Locking,   // legacy BoundedQueue
  LockFree,  // force ring selection (still spsc vs mpmc by topology)
};

template <typename T>
class StageQueue {
 public:
  virtual ~StageQueue() = default;

  /// Blocks while full. Returns false (drops the element) once closed.
  virtual bool push(T item) = 0;
  /// Blocking batch push; consumes `*items` front-to-back. Returns how many
  /// were accepted (short only when the queue closed mid-batch). Clears the
  /// vector.
  virtual std::size_t push_n(std::vector<T>* items) = 0;
  /// Blocks while empty and not closed. nullopt = closed and drained.
  virtual std::optional<T> pop() = 0;
  /// Blocking batch pop: waits for at least one element (or close), then
  /// grabs up to `max` without further waiting. False = closed and drained
  /// (`*out` left empty). Clears `*out` first.
  virtual bool pop_n(std::vector<T>* out, std::size_t max) = 0;
  /// Non-blocking pop; nullopt when currently empty (closed or not).
  virtual std::optional<T> try_pop() = 0;
  /// End of stream: wakes all waiters. Remaining items stay poppable.
  virtual void close() = 0;
  [[nodiscard]] virtual bool closed() const = 0;
  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::size_t capacity() const = 0;
  [[nodiscard]] virtual QueueStats stats() const = 0;
  [[nodiscard]] virtual const char* backend() const = 0;
};

/// Legacy backend: delegates to the mutex-based BoundedQueue.
template <typename T>
class LockingStageQueue final : public StageQueue<T> {
 public:
  explicit LockingStageQueue(std::size_t capacity) : q_(capacity) {}

  bool push(T item) override { return q_.push(std::move(item)); }

  std::size_t push_n(std::vector<T>* items) override {
    std::size_t accepted = 0;
    for (T& item : *items) {
      if (!q_.push(std::move(item))) break;
      ++accepted;
    }
    items->clear();
    return accepted;
  }

  std::optional<T> pop() override { return q_.pop(); }

  bool pop_n(std::vector<T>* out, std::size_t max) override {
    out->clear();
    std::optional<T> first = q_.pop();
    if (!first) return false;
    out->push_back(std::move(*first));
    while (out->size() < max) {
      std::optional<T> next = q_.try_pop();
      if (!next) break;
      out->push_back(std::move(*next));
    }
    return true;
  }

  std::optional<T> try_pop() override { return q_.try_pop(); }
  void close() override { q_.close(); }
  [[nodiscard]] bool closed() const override { return q_.closed(); }
  [[nodiscard]] std::size_t size() const override { return q_.size(); }
  [[nodiscard]] std::size_t capacity() const override { return q_.capacity(); }
  [[nodiscard]] QueueStats stats() const override {
    const auto s = q_.stats();
    return {s.high_water, s.full_waits, s.empty_waits};
  }
  [[nodiscard]] const char* backend() const override { return "locking"; }

 private:
  BoundedQueue<T> q_;
};

/// Ring backend: lock-free fast path, mutex-parked slow path.
/// `Ring` is SpscRing<T> or MpmcRing<T>.
template <typename T, typename Ring>
class RingStageQueue final : public StageQueue<T> {
 public:
  RingStageQueue(std::size_t capacity, const char* backend_name)
      : ring_(capacity), backend_(backend_name) {}

  bool push(T item) override {
    if (closed_.load(std::memory_order_acquire)) return false;
    if (ring_.try_push(std::move(item))) {
      after_push(1);
      return true;
    }
    return push_slow(std::move(item));
  }

  std::size_t push_n(std::vector<T>* items) override {
    std::size_t accepted = 0;
    const std::size_t n = items->size();
    while (accepted < n) {
      if (closed_.load(std::memory_order_acquire)) break;
      const std::size_t took =
          ring_.try_push_n(items->data() + accepted, n - accepted);
      if (took > 0) {
        accepted += took;
        after_push(took);
        continue;
      }
      // Full: push one element through the blocking path, then retry the
      // batch fast path.
      if (!push_slow(std::move((*items)[accepted]))) break;
      ++accepted;
    }
    items->clear();
    return accepted;
  }

  std::optional<T> pop() override {
    if (std::optional<T> v = ring_.try_pop()) {
      after_pop(1);
      return v;
    }
    return pop_slow();
  }

  bool pop_n(std::vector<T>* out, std::size_t max) override {
    out->clear();
    if (ring_.try_pop_n(out, max) == 0) {
      std::optional<T> first = pop_slow();
      if (!first) return false;
      out->push_back(std::move(*first));
      if (max > 1) ring_.try_pop_n(out, max - 1);
      // pop_slow already ran after_pop for its element; report only the
      // slots the extra batch grab freed, or the producer-side wakeup
      // breadth (freed > 1 => notify_all) double-counts.
      if (out->size() > 1) after_pop(out->size() - 1);
      return true;
    }
    after_pop(out->size());
    return true;
  }

  std::optional<T> try_pop() override {
    std::optional<T> v = ring_.try_pop();
    if (v) after_pop(1);
    return v;
  }

  void close() override {
    closed_.store(true, std::memory_order_seq_cst);
    {
      // Empty critical section: a waiter between its predicate check and
      // wait() holds the mutex, so acquiring it here orders the notify
      // after that waiter is actually parked.
      std::lock_guard<std::mutex> lock(mutex_);
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] bool closed() const override {
    return closed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t size() const override { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const override {
    return ring_.capacity();
  }

  [[nodiscard]] QueueStats stats() const override {
    return {high_water_.load(std::memory_order_relaxed),
            full_waits_.load(std::memory_order_relaxed),
            empty_waits_.load(std::memory_order_relaxed)};
  }

  [[nodiscard]] const char* backend() const override { return backend_; }

 private:
  static constexpr auto kParkBound = std::chrono::milliseconds(50);

  void after_push(std::size_t pushed) {
    // High-water from the producer side, like BoundedQueue's push.
    const std::size_t occupancy = ring_.size();
    std::size_t seen = high_water_.load(std::memory_order_relaxed);
    while (occupancy > seen &&
           !high_water_.compare_exchange_weak(seen, occupancy,
                                              std::memory_order_relaxed)) {
    }
    // Dekker edge: the element store (release on the ring index) must be
    // ordered before the waiter-count load, and the consumer's count store
    // before its ring re-check. seq_cst on both sides closes the window.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (pop_waiters_.load(std::memory_order_relaxed) > 0) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
      }
      // A batch made several elements available: one wakeup would leave the
      // other parked consumers to recover only via the bounded-park timeout.
      if (pushed > 1)
        not_empty_.notify_all();
      else
        not_empty_.notify_one();
    }
  }

  void after_pop(std::size_t freed) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (push_waiters_.load(std::memory_order_relaxed) > 0) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
      }
      // Same breadth rule as after_push: a batch pop freed several slots,
      // so wake every parked producer, not just one.
      if (freed > 1)
        not_full_.notify_all();
      else
        not_full_.notify_one();
    }
  }

  bool push_slow(T item) {
    bool counted = false;
    std::unique_lock<std::mutex> lock(mutex_);
    push_waiters_.fetch_add(1, std::memory_order_seq_cst);
    for (;;) {
      if (closed_.load(std::memory_order_seq_cst)) {
        push_waiters_.fetch_sub(1, std::memory_order_relaxed);
        return false;
      }
      if (ring_.try_push(std::move(item))) {
        push_waiters_.fetch_sub(1, std::memory_order_relaxed);
        lock.unlock();
        after_push(1);
        return true;
      }
      if (!counted) {
        counted = true;
        full_waits_.fetch_add(1, std::memory_order_relaxed);
      }
      // Failpoint: a forced spurious wakeup re-runs the predicate loop,
      // proving the park protocol tolerates wakeups without a cause.
      if (!PATTY_FAILPOINT_WAKE("stage_queue.push.park"))
        not_full_.wait_for(lock, kParkBound);
    }
  }

  std::optional<T> pop_slow() {
    bool counted = false;
    std::unique_lock<std::mutex> lock(mutex_);
    pop_waiters_.fetch_add(1, std::memory_order_seq_cst);
    for (;;) {
      if (std::optional<T> v = ring_.try_pop()) {
        pop_waiters_.fetch_sub(1, std::memory_order_relaxed);
        lock.unlock();
        after_pop(1);
        return v;
      }
      if (closed_.load(std::memory_order_seq_cst)) {
        // Re-check after observing closed: a push that won its race against
        // close() may have landed between our try_pop and the closed load.
        // (Pipelines close a queue only after all its producers finished,
        // so this is belt-and-braces for direct users of the queue.)
        if (std::optional<T> v = ring_.try_pop()) {
          pop_waiters_.fetch_sub(1, std::memory_order_relaxed);
          lock.unlock();
          after_pop(1);
          return v;
        }
        pop_waiters_.fetch_sub(1, std::memory_order_relaxed);
        return std::nullopt;
      }
      if (!counted) {
        counted = true;
        empty_waits_.fetch_add(1, std::memory_order_relaxed);
      }
      if (!PATTY_FAILPOINT_WAKE("stage_queue.pop.park"))
        not_empty_.wait_for(lock, kParkBound);
    }
  }

  Ring ring_;
  const char* backend_;
  std::atomic<bool> closed_{false};
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::uint64_t> full_waits_{0};
  std::atomic<std::uint64_t> empty_waits_{0};
  std::atomic<std::uint32_t> push_waiters_{0};
  std::atomic<std::uint32_t> pop_waiters_{0};
  std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
};

/// Backend selection from stage topology: an edge with one producer and one
/// consumer (no replication on either side) gets the SPSC ring; replicated
/// neighbours get the MPMC ring.
template <typename T>
std::unique_ptr<StageQueue<T>> make_stage_queue(
    std::size_t capacity, std::size_t producers, std::size_t consumers,
    QueueBackend backend = QueueBackend::Auto) {
  if (backend == QueueBackend::Locking)
    return std::make_unique<LockingStageQueue<T>>(capacity);
  if (producers <= 1 && consumers <= 1)
    return std::make_unique<RingStageQueue<T, SpscRing<T>>>(capacity, "spsc");
  return std::make_unique<RingStageQueue<T, MpmcRing<T>>>(capacity, "mpmc");
}

}  // namespace patty::rt
