#include <algorithm>

#include "corpus/corpus.hpp"
#include "support/rng.hpp"

namespace patty::corpus {

namespace {

/// Builds one synthetic program as source text while tracking line numbers
/// for ground-truth labels.
class ProgramBuilder {
 public:
  void line(const std::string& text) {
    source_ += text;
    source_ += "\n";
    ++line_no_;
  }
  /// Line number the *next* emitted line will get.
  [[nodiscard]] std::uint32_t next_line() const { return line_no_; }
  void label(bool parallelizable, const std::string& pattern,
             const std::string& description) {
    truth_.push_back({next_line(), parallelizable, pattern, description});
  }

  CorpusProgram finish(std::string name) {
    CorpusProgram p;
    p.name = std::move(name);
    p.source = std::move(source_);
    p.truth = std::move(truth_);
    return p;
  }

 private:
  std::string source_;
  std::uint32_t line_no_ = 1;
  std::vector<TruthLocation> truth_;
};

/// Dead sequential filler: scales program size the way real business logic
/// pads real codebases. Never called from main.
void emit_filler(ProgramBuilder& b, Rng& rng, int methods) {
  for (int m = 0; m < methods; ++m) {
    const int id = rng.int_in(0, 999999);
    b.line("  int Helper" + std::to_string(m) + "_" + std::to_string(id) +
           "(int v) {");
    b.line("    int acc = v;");
    const int steps = rng.int_in(4, 9);
    for (int s = 0; s < steps; ++s) {
      switch (rng.int_in(0, 3)) {
        case 0:
          b.line("    acc = acc * " + std::to_string(rng.int_in(2, 9)) +
                 " + " + std::to_string(rng.int_in(1, 99)) + ";");
          break;
        case 1:
          b.line("    if (acc % " + std::to_string(rng.int_in(2, 7)) +
                 " == 0) { acc = acc + 1; }");
          break;
        case 2:
          b.line("    acc = clamp(acc, 0, " +
                 std::to_string(rng.int_in(100, 10000)) + ");");
          break;
        default:
          b.line("    acc = abs(acc - " + std::to_string(rng.int_in(1, 50)) +
                 ");");
          break;
      }
    }
    b.line("    return acc;");
    b.line("  }");
  }
}

CorpusProgram make_block(int index, Rng& rng, const SyntheticConfig& config) {
  ProgramBuilder b;
  const std::string cls = "Synth" + std::to_string(index);
  const int n = rng.int_in(config.min_elems, config.max_elems);
  const std::string N = std::to_string(n);

  b.line("class " + cls + " {");
  b.line("  int[] src;");
  b.line("  int[] dst;");
  b.line("  int[] idx;");
  b.line("  int[] chain;");
  b.line("  list<int> out;");
  b.line("  void init() {");
  b.line("    src = new int[" + N + "];");
  b.line("    dst = new int[" + N + "];");
  b.line("    idx = new int[" + N + "];");
  b.line("    chain = new int[" + N + "];");
  b.line("    out = new list<int>();");
  b.line("    for (int i = 0; i < " + N + "; i++) {");
  b.line("      src[i] = (i * " + std::to_string(rng.int_in(3, 17)) + " + " +
         std::to_string(rng.int_in(1, 29)) + ") % 101;");
  b.line("      idx[i] = i;");  // identity permutation under this input
  b.line("    }");
  b.line("  }");

  // 1) Clear data-parallel positive (found: TP).
  if (config.map_kernels) {
    b.line("  void MapKernel() {");
    b.label(true, "parfor", "independent element map");
    b.line("    for (int i = 0; i < " + N + "; i++) {");
    b.line("      dst[i] = src[i] * " + std::to_string(rng.int_in(2, 9)) +
           " + work(2);");
    b.line("    }");
    b.line("  }");
  }

  // 2) Clear reduction positive (found: TP).
  if (config.reduction_kernels) {
    b.line("  int SumKernel() {");
    b.line("    int total = 0;");
    b.label(true, "reduction", "associative accumulation");
    b.line("    for (int i = 0; i < " + N + "; i++) {");
    b.line("      total = total + src[i] * src[i];");
    b.line("    }");
    b.line("    return total;");
    b.line("  }");
  }

  // 3) Pipeline positive (found: TP).
  if (config.pipeline_kernels) {
    b.line("  void PipeKernel() {");
    b.label(true, "pipeline", "two-stage stream with ordered append");
    b.line("    foreach (int v in src) {");
    b.line("      int cooked = v * 3 + work(3);");
    b.line("      push(out, cooked);");
    b.line("    }");
    b.line("  }");
  }

  // 3b) Shifted-subscript map (found by optimism: TP; the static baseline
  // keeps the type-aliased carried dependence because the read subscript is
  // i + 1, outside the induction-uniform refinement).
  if (config.shift_kernels) {
    b.line("  void ShiftKernel() {");
    b.label(true, "parfor", "shifted read from a distinct array");
    b.line("    for (int i = 0; i < " + N + " - 1; i++) {");
    b.line("      dst[i] = src[i + 1] * " + std::to_string(rng.int_in(2, 9)) +
           ";");
    b.line("    }");
    b.line("  }");
  }

  // 4) Positives hidden in never-executed code. ColdKernel0 is an
  // induction-uniform map: the static fallback discharges its type-aliased
  // carried dependence (every subscript is exactly i), so it is found
  // without profiling (TP). Odd blocks add ColdKernel1, whose shifted read
  // (i + 1) defeats the refinement — missed (FN) until the analysis learns
  // subscript ranges.
  const int cold_count = config.cold_kernels ? ((index % 2 == 0) ? 1 : 2) : 0;
  for (int f = 0; f < cold_count; ++f) {
    b.line("  void ColdKernel" + std::to_string(f) + "(int flag) {");
    b.line("    if (flag > " + std::to_string(1000 + f) + ") {");
    if (f == 0) {
      b.label(true, "parfor", "induction-uniform map in never-profiled branch");
      b.line("      for (int i = 0; i < " + N + "; i++) {");
      b.line("        dst[i] = src[i] + " + std::to_string(rng.int_in(1, 9)) +
             ";");
    } else {
      b.label(true, "parfor", "shifted map in never-profiled branch");
      b.line("      for (int i = 0; i < " + N + " - 1; i++) {");
      b.line("        dst[i] = src[i + 1] + " +
             std::to_string(rng.int_in(1, 9)) + ";");
    }
    b.line("      }");
    b.line("    }");
    b.line("  }");
  }

  // 5) Input-dependent aliasing. idx is an identity permutation under the
  // profiled input, so the optimistic analysis sees independent writes —
  // but idx may contain duplicates in general, so the ground truth is NOT
  // parallelizable. The PLDS scatter guard rejects the direct form (the
  // write subscript loads memory): TN.
  if (config.scatter_kernels) {
    b.line("  void ScatterKernel() {");
    b.label(false, "none", "scatter through possibly-duplicating index");
    b.line("    for (int i = 0; i < " + N + "; i++) {");
    b.line("      dst[idx[i]] = src[i] + 1;");
    b.line("    }");
    b.line("  }");
  }

  // 5b) The same trap hidden behind a local copy of the index load: the
  // write subscript is a plain local, so the syntactic scatter guard does
  // not fire and the optimistic analysis still claims it (FP) — irreducible
  // without dataflow through per-iteration locals.
  if (config.indirect_kernels) {
    b.line("  void IndirectKernel() {");
    b.label(false, "none", "scatter behind a local alias of the index load");
    b.line("    for (int i = 0; i < " + N + "; i++) {");
    b.line("      int j = idx[i];");
    b.line("      dst[j] = src[i] + 2;");
    b.line("    }");
    b.line("  }");
  }

  // 6) True recurrence (correctly rejected: TN).
  if (config.chain_kernels) {
    b.line("  void ChainKernel() {");
    b.line("    chain[0] = 1;");
    b.label(false, "none", "first-order recurrence");
    b.line("    for (int i = 1; i < " + N + "; i++) {");
    b.line("      chain[i] = chain[i - 1] + src[i];");
    b.line("    }");
    b.line("  }");
  }

  emit_filler(b, rng, rng.int_in(config.min_filler, config.max_filler));

  b.line("  void main() {");
  if (config.map_kernels) b.line("    MapKernel();");
  b.line(config.reduction_kernels ? "    int s = SumKernel();"
                                  : "    int s = 0;");
  if (config.pipeline_kernels) b.line("    PipeKernel();");
  if (config.shift_kernels) b.line("    ShiftKernel();");
  if (cold_count > 0) b.line("    ColdKernel0(0);");
  if (cold_count > 1) b.line("    ColdKernel1(0);");
  if (config.scatter_kernels) b.line("    ScatterKernel();");
  if (config.indirect_kernels) b.line("    IndirectKernel();");
  if (config.chain_kernels) b.line("    ChainKernel();");
  b.line("    print(s + len(out) + chain[" + N + " - 1] + dst[0]);");
  b.line("  }");
  b.line("}");
  return b.finish("synth" + std::to_string(index));
}

}  // namespace

std::vector<CorpusProgram> synthetic_suite(const SyntheticConfig& config) {
  Rng rng(config.seed);
  std::vector<CorpusProgram> suite;
  suite.reserve(static_cast<std::size_t>(std::max(0, config.programs)));
  for (int i = 0; i < config.programs; ++i) {
    // One split per program: program i's content depends only on (seed, i,
    // config), never on how many neighbors exist — growing the corpus
    // extends it without rewriting the prefix.
    Rng child = rng.split();
    suite.push_back(make_block(i, child, config));
  }
  return suite;
}

std::vector<CorpusProgram> synthetic_suite(int blocks, std::uint64_t seed) {
  SyntheticConfig config;
  config.programs = blocks;
  config.seed = seed;
  return synthetic_suite(config);
}

}  // namespace patty::corpus
