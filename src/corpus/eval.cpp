#include <set>

#include "analysis/semantic_model.hpp"
#include "corpus/corpus.hpp"
#include "lang/sema.hpp"
#include "patterns/detector.hpp"

namespace patty::corpus {

DetectionScore score_program(const CorpusProgram& program, bool optimistic,
                             std::string* error) {
  DetectionScore score;
  DiagnosticSink diags;
  auto parsed = lang::parse_and_check(program.source, diags);
  if (!parsed) {
    if (error) *error = program.name + ": " + diags.to_string();
    return score;
  }
  std::unique_ptr<analysis::SemanticModel> model;
  try {
    model = analysis::SemanticModel::build(*parsed);
  } catch (const analysis::RuntimeError& e) {
    if (error) *error = program.name + ": " + e.message;
    return score;
  }
  patterns::DetectionOptions options;
  options.optimistic = optimistic;
  const patterns::DetectionResult result = patterns::detect_all(*model, options);

  std::set<std::uint32_t> detected_lines;
  for (const patterns::Candidate& c : result.candidates) {
    if (c.anchor) detected_lines.insert(c.anchor->range.begin.line);
  }

  // Only labeled locations are scored; unlabeled candidates (helper loops
  // etc.) are out of scope for the ground truth.
  for (const TruthLocation& t : program.truth) {
    const bool detected = detected_lines.count(t.line) > 0;
    if (t.parallelizable) {
      detected ? ++score.true_positives : ++score.false_negatives;
    } else {
      detected ? ++score.false_positives : ++score.true_negatives;
    }
  }
  return score;
}

}  // namespace patty::corpus
