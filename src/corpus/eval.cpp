#include <algorithm>
#include <cstdlib>
#include <set>
#include <thread>

#include "analysis/semantic_model.hpp"
#include "corpus/corpus.hpp"
#include "lang/sema.hpp"
#include "observe/explain.hpp"
#include "observe/trace.hpp"
#include "patterns/detector.hpp"
#include "runtime/cancellation.hpp"
#include "runtime/pipeline.hpp"

namespace patty::corpus {

ProgramArtifacts::ProgramArtifacts() = default;
ProgramArtifacts::ProgramArtifacts(ProgramArtifacts&&) noexcept = default;
ProgramArtifacts& ProgramArtifacts::operator=(ProgramArtifacts&&) noexcept =
    default;
ProgramArtifacts::~ProgramArtifacts() = default;

namespace {

/// One program moving through the front-end. Stages mutate it in place;
/// a nonempty `error` short-circuits the remaining stages (pipeline stage
/// bodies run on detached threads, so errors travel in the item rather
/// than as exceptions).
struct ProgramTask {
  std::size_t index = 0;  // slot in the report (arrival order varies)
  const CorpusProgram* program = nullptr;
  std::unique_ptr<lang::Program> parsed;
  std::unique_ptr<analysis::SemanticModel> model;
  patterns::DetectionResult detection;
  std::string error;
};

/// Pipeline work item: a *block* of consecutive programs. Batching
/// amortizes queue handoff and stage wake-ups over batch_size programs —
/// on real hardware the per-item constant cost is what separates the
/// parallel front-end from the sequential loop.
struct WorkItem {
  std::vector<ProgramTask> tasks;
};

void stage_parse(ProgramTask& item) {
  DiagnosticSink diags;
  item.parsed = lang::parse_and_check(item.program->source, diags);
  if (!item.parsed)
    item.error = item.program->name + ": " + diags.to_string();
}

/// Cooperative cancellation between front-end stages: a service request's
/// deadline flips the thread-ambient stop token (rt::StopScope installed by
/// the caller); the remaining stages for the item short-circuit with an
/// in-item error, the front-end's error convention. Granularity is the
/// stage boundary — a stage already running finishes on its own.
bool stop_requested(ProgramTask& item) {
  if (item.error.empty() && rt::current_stop_token().stop_requested())
    item.error = item.program->name + ": cancelled (stop requested)";
  return !item.error.empty();
}

void stage_model(ProgramTask& item, const FrontendConfig& config) {
  if (stop_requested(item)) return;
  analysis::SemanticModelOptions options;
  options.parallel = config.parallel;
  options.interp.work_sleeps = config.work_sleeps;
  options.interp.work_sleep_ns = config.work_sleep_ns;
  try {
    item.model = analysis::SemanticModel::build(*item.parsed, options);
  } catch (const analysis::RuntimeError& e) {
    item.error = item.program->name + ": " + e.message;
  }
}

void stage_detect(ProgramTask& item, const FrontendConfig& config) {
  if (stop_requested(item)) return;
  patterns::DetectionOptions options;
  options.optimistic = config.optimistic;
  options.parallel = config.parallel;
  item.detection = patterns::detect_all(*item.model, options);
}

/// Score detected loop locations (by line) against the program's truth.
DetectionScore score_detection(const CorpusProgram& program,
                               const patterns::DetectionResult& result) {
  DetectionScore score;
  std::set<std::uint32_t> detected_lines;
  for (const patterns::Candidate& c : result.candidates) {
    if (c.anchor) detected_lines.insert(c.anchor->range.begin.line);
  }
  // Only labeled locations are scored; unlabeled candidates (helper loops
  // etc.) are out of scope for the ground truth.
  for (const TruthLocation& t : program.truth) {
    const bool detected = detected_lines.count(t.line) > 0;
    if (t.parallelizable) {
      detected ? ++score.true_positives : ++score.false_negatives;
    } else {
      detected ? ++score.false_positives : ++score.true_negatives;
    }
  }
  return score;
}

ProgramReport report_for(ProgramTask& item, const FrontendConfig& config) {
  ProgramReport report;
  report.name = item.program->name;
  report.error = item.error;
  if (item.error.empty()) {
    report.score = score_detection(*item.program, item.detection);
    report.fingerprint = patterns::detection_fingerprint(item.detection);
    if (config.inspect) {
      ProgramInspection inspection;
      inspection.index = item.index;
      inspection.program = item.program;
      inspection.parsed = item.parsed.get();
      inspection.model = item.model.get();
      inspection.detection = &item.detection;
      config.inspect(inspection);
    }
    if (config.adopt) {
      ProgramArtifacts artifacts;
      artifacts.index = item.index;
      artifacts.program = item.program;
      artifacts.parsed = std::move(item.parsed);
      artifacts.model = std::move(item.model);
      artifacts.detection =
          std::make_unique<patterns::DetectionResult>(std::move(item.detection));
      artifacts.fingerprint = report.fingerprint;
      config.adopt(std::move(artifacts));
    }
  }
  return report;
}

}  // namespace

DetectionScore score_program(const CorpusProgram& program, bool optimistic,
                             std::string* error) {
  ProgramTask item;
  item.program = &program;
  FrontendConfig config;  // sequential defaults
  config.optimistic = optimistic;
  stage_parse(item);
  stage_model(item, config);
  stage_detect(item, config);
  if (!item.error.empty()) {
    if (error) *error = item.error;
    return {};
  }
  return score_detection(program, item.detection);
}

int resolve_batch_size(const FrontendConfig& config, std::size_t corpus_size,
                       int threads) {
  if (config.batch_size > 0) return config.batch_size;
  // Auto: keep ~8 batches in flight per worker so stages stay saturated
  // while handoff costs amortize; cap so one batch never starves the rest
  // of the pipeline.
  const std::size_t per =
      corpus_size / (static_cast<std::size_t>(std::max(1, threads)) * 8);
  return static_cast<int>(std::clamp<std::size_t>(per, 1, 32));
}

int frontend_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("PATTY_FRONTEND_THREADS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::string CorpusReport::fingerprint() const {
  std::string fp;
  for (const ProgramReport& p : programs) {
    fp += "== ";
    fp += p.name;
    fp += " ==\n";
    fp += p.error.empty() ? p.fingerprint : ("error: " + p.error + "\n");
  }
  return fp;
}

CorpusReport evaluate_corpus(
    const std::vector<const CorpusProgram*>& programs,
    const FrontendConfig& config) {
  CorpusReport report;
  report.programs.resize(programs.size());

  if (!config.parallel) {
    for (std::size_t i = 0; i < programs.size(); ++i) {
      ProgramTask item;
      item.index = i;
      item.program = programs[i];
      stage_parse(item);
      stage_model(item, config);
      stage_detect(item, config);
      report.programs[i] = report_for(item, config);
    }
  } else {
    // Self-hosted front-end: the corpus streams through the lock-free
    // Pipeline. The model stage carries the dynamic-analysis run (the
    // dominant cost) and gets the whole worker budget; parse and detect
    // are lighter and take fractions. Stage workers that hit nested
    // parallel_for/master_worker (model build, detect_all) submit to the
    // shared pool and join helpingly — that pool is shared across all
    // stage replicas, so the budget is approximate by design.
    const int threads = frontend_threads(config.threads);
    const std::size_t batch = static_cast<std::size_t>(
        resolve_batch_size(config, programs.size(), threads));
    rt::PipelineConfig pipe_config;
    pipe_config.name = "frontend";
    pipe_config.buffer_capacity =
        std::max<std::size_t>(4, static_cast<std::size_t>(threads));
    using Stage = rt::Pipeline<WorkItem>::Stage;
    std::vector<Stage> stages;
    stages.push_back({"parse",
                      [](WorkItem& item) {
                        for (ProgramTask& t : item.tasks) stage_parse(t);
                      },
                      std::max(1, threads / 4)});
    stages.push_back({"model",
                      [&config](WorkItem& item) {
                        for (ProgramTask& t : item.tasks)
                          stage_model(t, config);
                      },
                      threads});
    stages.push_back({"detect",
                      [&config](WorkItem& item) {
                        for (ProgramTask& t : item.tasks)
                          stage_detect(t, config);
                      },
                      std::max(1, threads / 2)});
    rt::Pipeline<WorkItem> pipeline(std::move(stages), pipe_config);
    std::size_t next = 0;
    pipeline.run(
        [&]() -> std::optional<WorkItem> {
          if (next >= programs.size()) return std::nullopt;
          WorkItem item;
          const std::size_t end = std::min(next + batch, programs.size());
          item.tasks.reserve(end - next);
          for (; next < end; ++next) {
            ProgramTask t;
            t.index = next;
            t.program = programs[next];
            item.tasks.push_back(std::move(t));
          }
          return item;
        },
        [&report, &config](WorkItem&& item) {
          // Arrival order is nondeterministic behind replicated stages;
          // index-addressed slots restore corpus order exactly.
          for (ProgramTask& t : item.tasks)
            report.programs[t.index] = report_for(t, config);
        });
  }

  for (const ProgramReport& p : report.programs) {
    report.total.true_positives += p.score.true_positives;
    report.total.false_positives += p.score.false_positives;
    report.total.false_negatives += p.score.false_negatives;
    report.total.true_negatives += p.score.true_negatives;
  }
  // Memory-footprint telemetry: sample process-wide arena totals and the
  // intern table into the frontend.* gauges (observe::memory_summary).
  if (observe::enabled()) observe::publish_frontend_memory();
  return report;
}

}  // namespace patty::corpus
