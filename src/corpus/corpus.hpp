#pragma once
// Benchmark corpus.
//
// Hand-written MiniOO programs:
//  * avistream       — the paper's running example (figures 2/3)
//  * raytracer       — the user-study benchmark: 13 classes, ~173 LoC,
//                      exactly 3 ground-truth parallelizable locations, of
//                      which only one dominates the profile (the paper's
//                      manual group found that one via the profiler), plus
//                      one deliberate data-race trap (the false positive
//                      the paper's manual group produced)
//  * desktop_search  — index-generator pipeline (paper ref [28])
//  * matrix          — dense data-parallel kernels
//  * histogram       — shared-bin accumulation: looks parallel, is not
//
// Plus a deterministic synthetic-program generator for the §5 study
// (26,580 LoC detection-quality corpus) with per-loop ground truth.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace patty::lang {
struct Program;
}
namespace patty::analysis {
class SemanticModel;
}
namespace patty::patterns {
struct DetectionResult;
}

namespace patty::corpus {

/// Ground truth for one source location (keyed by the loop's line).
struct TruthLocation {
  std::uint32_t line = 0;
  bool parallelizable = true;   // semantic ground truth
  std::string pattern;          // "pipeline", "parfor", "reduction", "masterworker"
  std::string description;
};

struct CorpusProgram {
  std::string name;
  std::string source;
  std::vector<TruthLocation> truth;  // only *labeled* locations
  /// Lines of code (non-empty, non-comment), computed from source.
  [[nodiscard]] std::size_t loc() const;
};

const CorpusProgram& avistream();
const CorpusProgram& raytracer();
const CorpusProgram& desktop_search();
const CorpusProgram& matrix();
const CorpusProgram& histogram();

/// All hand-written programs.
std::vector<const CorpusProgram*> handwritten();

/// Knobs for the seeded synthetic-program generator: corpus size, kernel
/// working-set size, noise (dead filler methods), and the pattern mix.
/// Same config + seed => byte-identical corpus, on any host.
struct SyntheticConfig {
  int programs = 110;          // generated program count
  std::uint64_t seed = 20150207;
  int min_elems = 24;          // kernel working-set size range (array length)
  int max_elems = 48;
  int min_filler = 18;         // dead helper methods per program (noise)
  int max_filler = 26;
  // Pattern mix: which labeled kernel families each program carries.
  bool map_kernels = true;        // clear parfor positives (TP)
  bool reduction_kernels = true;  // associative accumulations (TP)
  bool pipeline_kernels = true;   // ordered stream stages (TP)
  bool cold_kernels = true;       // positives in never-profiled code; the
                                  // induction-uniform ones are discharged
                                  // statically (TP), shifted-subscript ones
                                  // in odd blocks stay missed (FN)
  bool scatter_kernels = true;    // direct aliasing scatters, rejected by
                                  // the PLDS scatter guard (TN)
  bool chain_kernels = true;      // true recurrences (TN)
  bool shift_kernels = true;      // hot shifted-subscript maps: found by
                                  // optimism (TP), missed by the static
                                  // baseline (keeps the recall gap honest)
  bool indirect_kernels = true;   // scatter hidden behind a local copy of
                                  // the index load — escapes the syntactic
                                  // scatter guard (FP)
};

/// Deterministic synthetic suite for the precision/recall study. Programs
/// are generated from templates covering: clear positives, positives hidden
/// in never-executed code (optimism cannot help; static fallback misses
/// them), input-dependent aliasing (optimism produces false positives),
/// and true recurrences (correct rejections). `blocks` scales total size.
std::vector<CorpusProgram> synthetic_suite(int blocks, std::uint64_t seed);

/// Fully parameterized generator (synthetic_suite(blocks, seed) is the
/// default-mix shorthand; identical output for the same size and seed).
std::vector<CorpusProgram> synthetic_suite(const SyntheticConfig& config);

/// Detection-quality scoring: compares detected loop locations (by line)
/// against ground truth across a set of programs.
struct DetectionScore {
  int true_positives = 0;
  int false_positives = 0;
  int false_negatives = 0;
  int true_negatives = 0;

  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
  [[nodiscard]] double f1() const;
};

/// Run the detector over one program and score it against its truth.
/// `optimistic` selects the paper's mode vs. the static baseline.
DetectionScore score_program(const CorpusProgram& program, bool optimistic,
                             std::string* error = nullptr);

/// Self-hosted front-end configuration for corpus-wide evaluation.
struct FrontendConfig {
  /// Pipeline the corpus through the lock-free runtime — parse ->
  /// semantic model -> detect, scored at the sink — with parallel model
  /// construction and per-loop matching inside each stage. False runs the
  /// identical per-program functions inline on the calling thread, so the
  /// two modes produce byte-identical reports (the determinism suite
  /// asserts this).
  bool parallel = false;
  /// Worker budget across the pipeline stages; 0 resolves through
  /// frontend_threads() (PATTY_FRONTEND_THREADS env var, else hardware).
  int threads = 0;
  /// Detection mode (the paper's optimistic default vs static baseline).
  bool optimistic = true;
  /// Forwarded to the interpreter for the dynamic-analysis run: emulated
  /// multicore (work(n) sleeps instead of burning CPU) lets the analysis
  /// benches reproduce parallel speedup shapes on few-core hosts.
  bool work_sleeps = false;
  std::uint64_t work_sleep_ns = 2'000;
  /// Programs per pipeline work item. Small MiniOO programs make per-item
  /// queue/handoff overhead visible, so the parallel front-end moves
  /// *blocks* of programs through the stages. 0 = auto-size from corpus
  /// size and worker count (~8 batches in flight per worker, capped at
  /// 32 programs per batch). Ignored by the sequential path.
  int batch_size = 0;
  /// Optional per-program tap, invoked at the report sink with the full
  /// front-end artifacts (AST, semantic model, detection result) before
  /// they are torn down. Lets downstream drivers — the MHP certifier in
  /// particular — run over every corpus program without re-parsing or
  /// re-analyzing. Under the parallel front-end the hook fires on sink
  /// threads, possibly concurrently: it must be thread-safe. Never called
  /// for programs whose front-end failed (see ProgramReport::error).
  std::function<void(const struct ProgramInspection&)> inspect;
  /// Like inspect, but receives OWNERSHIP of the artifacts instead of a
  /// borrowed view (fires after inspect, same threading contract). This is
  /// how the service layer's model cache keeps the frozen semantic model
  /// alive past the evaluation: the front-end built it once, the adopter
  /// files it under the source's content hash. A program whose front-end
  /// failed is never adopted.
  std::function<void(struct ProgramArtifacts&&)> adopt;
};

/// Front-end artifacts for one successfully analyzed corpus program,
/// handed to FrontendConfig::inspect. Pointers are valid only for the
/// duration of the call.
struct ProgramInspection {
  std::size_t index = 0;  // corpus position
  const CorpusProgram* program = nullptr;
  const lang::Program* parsed = nullptr;
  const analysis::SemanticModel* model = nullptr;
  const patterns::DetectionResult* detection = nullptr;
};

/// Owned front-end artifacts for one successfully analyzed program, handed
/// to FrontendConfig::adopt. `model` holds internal references into
/// `parsed`, so the trio must stay together for its lifetime. (Special
/// members are out of line: the pointees are forward-declared here.)
struct ProgramArtifacts {
  std::size_t index = 0;  // corpus position
  const CorpusProgram* program = nullptr;
  std::unique_ptr<lang::Program> parsed;
  std::unique_ptr<analysis::SemanticModel> model;
  std::unique_ptr<patterns::DetectionResult> detection;
  std::string fingerprint;  // patterns::detection_fingerprint(detection)

  ProgramArtifacts();
  ProgramArtifacts(ProgramArtifacts&&) noexcept;
  ProgramArtifacts& operator=(ProgramArtifacts&&) noexcept;
  ~ProgramArtifacts();
};

/// The batch size the parallel front-end will use for a corpus of
/// `corpus_size` programs on `threads` workers (resolves batch_size = 0).
int resolve_batch_size(const FrontendConfig& config, std::size_t corpus_size,
                       int threads);

/// Per-program outcome of a corpus evaluation, in corpus order.
struct ProgramReport {
  std::string name;
  DetectionScore score;
  std::string error;        // nonempty when parse/analysis failed
  std::string fingerprint;  // patterns::detection_fingerprint of the result
};

struct CorpusReport {
  DetectionScore total;
  std::vector<ProgramReport> programs;  // corpus order, independent of mode
  /// Corpus-wide detection fingerprint (program name + per-program
  /// fingerprints, corpus order): equal strings prove two evaluations
  /// detected exactly the same candidates everywhere.
  [[nodiscard]] std::string fingerprint() const;
};

/// Resolve the front-end worker count: `requested` if positive, else the
/// PATTY_FRONTEND_THREADS environment variable, else hardware concurrency.
int frontend_threads(int requested = 0);

/// Evaluate a corpus through the detection front-end (see FrontendConfig
/// for the sequential/parallel contract).
CorpusReport evaluate_corpus(const std::vector<const CorpusProgram*>& programs,
                             const FrontendConfig& config = {});

}  // namespace patty::corpus
