#include "corpus/corpus.hpp"

#include <sstream>

#include "support/diagnostics.hpp"

namespace patty::corpus {

namespace {

/// Line (1-based) of the first occurrence of `needle` in `source`.
std::uint32_t line_of(const std::string& source, const std::string& needle) {
  const std::size_t pos = source.find(needle);
  if (pos == std::string::npos)
    fatal("corpus marker not found: " + needle);
  std::uint32_t line = 1;
  for (std::size_t i = 0; i < pos; ++i)
    if (source[i] == '\n') ++line;
  return line;
}

}  // namespace

std::size_t CorpusProgram::loc() const {
  std::istringstream in(source);
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line.compare(first, 2, "//") == 0) continue;
    ++count;
  }
  return count;
}

double DetectionScore::precision() const {
  const int denom = true_positives + false_positives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
}

double DetectionScore::recall() const {
  const int denom = true_positives + false_negatives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
}

double DetectionScore::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

// ---------------------------------------------------------------------------
// avistream — the paper's running example (figures 2/3).
// ---------------------------------------------------------------------------

const CorpusProgram& avistream() {
  static const CorpusProgram program = [] {
    CorpusProgram p;
    p.name = "avistream";
    p.source = R"(class Image {
  int data;
  Image WithData(int d) {
    Image r = new Image();
    r.data = d;
    return r;
  }
}
class Filter {
  int strength;
  Image Apply(Image img) {
    work(40);
    return img.WithData(img.data + strength);
  }
}
class Conv32bpp {
  Image Apply(Image a, Image b, Image c) {
    work(10);
    return a.WithData(a.data + b.data + c.data);
  }
}
class VideoApp {
  Filter cropFilter;
  Filter histogramFilter;
  Filter oilFilter;
  Conv32bpp conv;
  void init() {
    cropFilter = new Filter();
    cropFilter.strength = 1;
    histogramFilter = new Filter();
    histogramFilter.strength = 2;
    oilFilter = new Filter();
    oilFilter.strength = 3;
    conv = new Conv32bpp();
  }
  list<Image> Process(list<Image> aviIn) {
    list<Image> aviOut = new list<Image>();
    foreach (Image i in aviIn) {
      Image c = cropFilter.Apply(i);
      Image h = histogramFilter.Apply(i);
      Image o = oilFilter.Apply(i);
      Image r = conv.Apply(c, h, o);
      push(aviOut, r);
    }
    return aviOut;
  }
  void main() {
    list<Image> aviIn = new list<Image>();
    for (int k = 0; k < 24; k++) {
      Image img = new Image();
      img.data = k * 7 % 31;
      push(aviIn, img);
    }
    list<Image> aviOut = Process(aviIn);
    int checksum = 0;
    foreach (Image r in aviOut) {
      checksum = checksum + r.data;
    }
    print(checksum);
  }
}
)";
    p.truth.push_back({line_of(p.source, "foreach (Image i in aviIn)"), true,
                       "pipeline", "video filter chain (fig. 2)"});
    p.truth.push_back({line_of(p.source, "foreach (Image r in aviOut)"), true,
                       "reduction", "checksum over processed frames"});
    return p;
  }();
  return program;
}

// ---------------------------------------------------------------------------
// raytracer — the user-study benchmark: 13 classes, ~173 LoC, 3 locations.
// ---------------------------------------------------------------------------

const CorpusProgram& raytracer() {
  static const CorpusProgram program = [] {
    CorpusProgram p;
    p.name = "raytracer";
    p.source = R"(class Vec3 {
  double x; double y; double z;
  void init(double ax, double ay, double az) { x = ax; y = ay; z = az; }
  Vec3 Add(Vec3 o) { return new Vec3(x + o.x, y + o.y, z + o.z); }
  Vec3 Sub(Vec3 o) { return new Vec3(x - o.x, y - o.y, z - o.z); }
  Vec3 Scale(double s) { return new Vec3(x * s, y * s, z * s); }
  double Dot(Vec3 o) { return x * o.x + y * o.y + z * o.z; }
  Vec3 Norm() {
    double len = sqrt(Dot(this_ref()));
    return new Vec3(x / len, y / len, z / len);
  }
  Vec3 Cross(Vec3 o) {
    double cx = y * o.z - z * o.y;
    double cy = z * o.x - x * o.z;
    double cz = x * o.y - y * o.x;
    return new Vec3(cx, cy, cz);
  }
  Vec3 Reflect(Vec3 normal) {
    double d = 2.0 * Dot(normal);
    return Sub(normal.Scale(d));
  }
  Vec3 this_ref() { return new Vec3(x, y, z); }
}
class Ray {
  Vec3 origin; Vec3 dir;
  void init(Vec3 o, Vec3 d) { origin = o; dir = d; }
  Vec3 At(double t) { return origin.Add(dir.Scale(t)); }
}
class Material {
  double reflect; int color; double shine;
  void init(int c, double r) { color = c; reflect = r; shine = 8.0; }
  int Blend(int other) {
    double mixed = color * (1.0 - reflect) + other * reflect;
    return clamp(floor(mixed), 0, 255);
  }
}
class Sphere {
  Vec3 center; double radius; Material mat;
  void init(Vec3 c, double r, Material m) { center = c; radius = r; mat = m; }
  double Intersect(Ray ray) {
    Vec3 oc = ray.origin.Sub(center);
    double b = oc.Dot(ray.dir);
    double disc = b * b - oc.Dot(oc) + radius * radius;
    if (disc < 0.0) { return 0.0 - 1.0; }
    return 0.0 - b - sqrt(disc);
  }
  Vec3 Normal(Vec3 point) {
    return point.Sub(center).Norm();
  }
}
class Hit {
  double t; Sphere obj; bool found;
}
class Light {
  Vec3 pos; double intensity;
  void init(Vec3 p, double i) { pos = p; intensity = i; }
  double Attenuate(double distance) {
    double falloff = 1.0 / (1.0 + distance * distance * 0.02);
    return intensity * falloff;
  }
}
class Camera {
  Vec3 eye;
  void init(Vec3 e) { eye = e; }
  Ray Shoot(int px, int py, int w, int h) {
    double dx = (px * 2.0 - w) / h;
    double dy = (py * 2.0 - h) / h;
    Vec3 d = new Vec3(dx, dy, 1.0);
    return new Ray(eye, d.Norm());
  }
  double Aspect(int w, int h) {
    if (h == 0) { return 1.0; }
    return (w * 1.0) / h;
  }
}
class Scene {
  list<Sphere> spheres; Light light;
  void init() {
    spheres = new list<Sphere>();
    light = new Light(new Vec3(5.0, 5.0, 0.0 - 3.0), 0.9);
  }
  Hit Trace(Ray ray) {
    Hit best = new Hit();
    best.found = false;
    best.t = 100000.0;
    foreach (Sphere s in spheres) {
      double t = s.Intersect(ray);
      if (t > 0.001 && t < best.t) {
        best.t = t;
        best.obj = s;
        best.found = true;
      }
    }
    return best;
  }
  bool InShadow(Vec3 point) {
    Vec3 toLight = light.pos.Sub(point);
    Ray shadowRay = new Ray(point, toLight.Norm());
    Hit hit = Trace(shadowRay);
    return hit.found && hit.t * hit.t < toLight.Dot(toLight);
  }
  int Background(Ray ray) {
    double t = 0.5 * (ray.dir.y + 1.0);
    return clamp(floor(16.0 + t * 48.0), 0, 255);
  }
}
class Bitmap {
  int width; int height; int[] pixels;
  void init(int w, int h) { width = w; height = h; pixels = new int[w * h]; }
  int At(int px, int py) { return pixels[py * width + px]; }
  void Fill(int value) {
    for (int i = 0; i < width * height; i++) { pixels[i] = value; }
  }
}
class Shader {
  Scene scene;
  void init(Scene s) { scene = s; }
  int ShadePixel(Ray ray) {
    Hit hit = scene.Trace(ray);
    if (!hit.found) { return scene.Background(ray); }
    Vec3 point = ray.At(hit.t);
    Vec3 normal = hit.obj.Normal(point);
    Vec3 toLight = scene.light.pos.Sub(point).Norm();
    double lambert = max(0.0, toLight.Dot(normal));
    double glow = scene.light.Attenuate(hit.t);
    int base = hit.obj.mat.color;
    int lit = clamp(floor(base * lambert * glow), 0, 255);
    return hit.obj.mat.Blend(lit);
  }
}
class ToneMapper {
  int Map(int v) { return clamp(floor(sqrt(v * 255.0)), 0, 255); }
  int Gamma(int v, double g) {
    double scaled = v / 255.0;
    double lifted = scaled * g + scaled * (1.0 - g);
    return clamp(floor(lifted * 255.0), 0, 255);
  }
}
class Histogram {
  int[] bins;
  void init() { bins = new int[16]; }
}
class RayTracerApp {
  Scene scene; Camera camera; Shader shader; ToneMapper tone; Histogram histo;
  void init() {
    scene = new Scene();
    push(scene.spheres, new Sphere(new Vec3(0.0, 0.0, 5.0), 1.5, new Material(200, 0.3)));
    push(scene.spheres, new Sphere(new Vec3(2.0, 1.0, 6.0), 1.0, new Material(120, 0.1)));
    push(scene.spheres, new Sphere(new Vec3(0.0 - 2.0, 0.0 - 1.0, 4.0), 0.8, new Material(80, 0.5)));
    camera = new Camera(new Vec3(0.0, 0.0, 0.0 - 1.0));
    shader = new Shader(scene);
    tone = new ToneMapper();
    histo = new Histogram();
  }
  void main() {
    Bitmap img = new Bitmap(16, 12);
    for (int i = 0; i < img.width * img.height; i++) {
      Ray ray = camera.Shoot(i % img.width, i / img.width, img.width, img.height);
      img.pixels[i] = shader.ShadePixel(ray);
    }
    for (int i = 0; i < img.width * img.height; i++) {
      img.pixels[i] = tone.Map(img.pixels[i]);
    }
    for (int i = 0; i < img.width * img.height; i++) {
      histo.bins[img.pixels[i] / 16] = histo.bins[img.pixels[i] / 16] + 1;
    }
    double total = 0.0;
    for (int i = 0; i < img.width * img.height; i++) {
      total = total + img.pixels[i];
    }
    print(floor(total));
    print(histo.bins[0]);
  }
}
)";
    // Ground truth: the three locations the study's task asks for.
    p.truth.push_back({line_of(p.source, "Ray ray = camera.Shoot") - 1, true,
                       "parfor", "render loop (the profiler hotspot)"});
    p.truth.push_back({line_of(p.source, "img.pixels[i] = tone.Map") - 1, true,
                       "parfor", "tone-mapping pass"});
    p.truth.push_back({line_of(p.source, "total = total + img.pixels[i]") - 1,
                       true, "reduction", "luminance accumulation"});
    // The trap: shared-bin histogram. Looks like an independent pixel loop,
    // but bins collide — the false positive the manual group produced.
    p.truth.push_back({line_of(p.source, "histo.bins[img.pixels[i] / 16]") - 1,
                       false, "none",
                       "histogram with shared bins (data race trap)"});
    return p;
  }();
  return program;
}

// ---------------------------------------------------------------------------
// desktop_search — index-generator pipeline (paper ref [28]).
// ---------------------------------------------------------------------------

const CorpusProgram& desktop_search() {
  static const CorpusProgram program = [] {
    CorpusProgram p;
    p.name = "desktop_search";
    p.source = R"(class Document {
  int id; int words; int hash;
}
class Loader {
  Document Load(int id) {
    work(20);
    Document d = new Document();
    d.id = id;
    d.words = 50 + id * 13 % 200;
    return d;
  }
}
class Tokenizer {
  Document Tokenize(Document d) {
    work(35);
    d.hash = d.words * 31 + d.id;
    return d;
  }
}
class StopwordFilter {
  Document Strip(Document d) {
    work(15);
    d.words = d.words - d.words / 10;
    return d;
  }
}
class Index {
  list<int> entries;
  void init() { entries = new list<int>(); }
  void Add(Document d) { push(entries, d.hash + d.words); }
}
class SearchApp {
  Loader loader; Tokenizer tokenizer; StopwordFilter stopper; Index index;
  void init() {
    loader = new Loader();
    tokenizer = new Tokenizer();
    stopper = new StopwordFilter();
    index = new Index();
  }
  void main() {
    list<int> ids = new list<int>();
    for (int i = 0; i < 30; i++) { push(ids, i); }
    foreach (int id in ids) {
      Document d = loader.Load(id);
      Document t = tokenizer.Tokenize(d);
      Document s = stopper.Strip(t);
      index.Add(s);
    }
    print(len(index.entries));
  }
}
)";
    p.truth.push_back({line_of(p.source, "foreach (int id in ids)"), true,
                       "pipeline", "load => tokenize => strip => index"});
    return p;
  }();
  return program;
}

// ---------------------------------------------------------------------------
// matrix — dense data-parallel kernels.
// ---------------------------------------------------------------------------

const CorpusProgram& matrix() {
  static const CorpusProgram program = [] {
    CorpusProgram p;
    p.name = "matrix";
    p.source = R"(class Mat {
  int n; double[] cells;
  void init(int an) { n = an; cells = new double[an * an]; }
  double Get(int r, int c) { return cells[r * n + c]; }
  void Set(int r, int c, double v) { cells[r * n + c] = v; }
}
class Kernels {
  Mat Multiply(Mat a, Mat b) {
    Mat out = new Mat(a.n);
    for (int i = 0; i < a.n * a.n; i++) {
      int r = i / a.n;
      int c = i % a.n;
      double acc = 0.0;
      for (int k = 0; k < a.n; k++) {
        acc = acc + a.Get(r, k) * b.Get(k, c);
      }
      out.cells[i] = acc;
    }
    return out;
  }
  double FrobeniusSq(Mat m) {
    double total = 0.0;
    for (int i = 0; i < m.n * m.n; i++) {
      total = total + m.cells[i] * m.cells[i];
    }
    return total;
  }
}
class MatrixApp {
  Kernels kernels;
  void init() { kernels = new Kernels(); }
  void main() {
    Mat a = new Mat(12);
    Mat b = new Mat(12);
    for (int i = 0; i < 144; i++) {
      a.cells[i] = (i % 7) * 0.5;
      b.cells[i] = (i % 5) * 0.25;
    }
    Mat c = kernels.Multiply(a, b);
    print(floor(kernels.FrobeniusSq(c)));
  }
}
)";
    p.truth.push_back({line_of(p.source, "int r = i / a.n") - 1, true,
                       "parfor", "matrix-multiply row loop"});
    p.truth.push_back(
        {line_of(p.source, "total = total + m.cells[i] * m.cells[i]") - 1,
         true, "reduction", "Frobenius norm"});
    p.truth.push_back({line_of(p.source, "a.cells[i] = (i % 7) * 0.5") - 1,
                       true, "parfor", "matrix initialization"});
    return p;
  }();
  return program;
}

// ---------------------------------------------------------------------------
// histogram — shared-bin accumulation (correctly NOT parallelizable).
// ---------------------------------------------------------------------------

const CorpusProgram& histogram() {
  static const CorpusProgram program = [] {
    CorpusProgram p;
    p.name = "histogram";
    p.source = R"(class HistogramApp {
  void main() {
    int[] data = new int[300];
    for (int i = 0; i < 300; i++) {
      data[i] = (i * 37 + 11) % 64;
    }
    int[] bins = new int[8];
    for (int i = 0; i < 300; i++) {
      bins[data[i] / 8] = bins[data[i] / 8] + 1;
    }
    int peak = 0;
    for (int i = 0; i < 8; i++) {
      peak = max(peak, bins[i]);
    }
    print(peak);
  }
}
)";
    p.truth.push_back({line_of(p.source, "data[i] = (i * 37 + 11) % 64") - 1,
                       true, "parfor", "input generation"});
    p.truth.push_back({line_of(p.source, "bins[data[i] / 8]") - 1, false,
                       "none", "shared-bin accumulation (carried)"});
    return p;
  }();
  return program;
}

std::vector<const CorpusProgram*> handwritten() {
  return {&avistream(), &raytracer(), &desktop_search(), &matrix(),
          &histogram()};
}

}  // namespace patty::corpus
