#pragma once
// Source-pattern detection (paper §2.1 phase 1, §2.2 rules).
//
// The catalog holds one detector per source/target pattern pair. Detection
// is optimistic by default: observed (dynamic) dependences override the
// pessimistic static ones wherever profiling covered the loop, which is
// what lets Patty expose more parallelism than a conservative compiler —
// at the price of needing the generated correctness tests afterwards.

#include <memory>

#include "analysis/semantic_model.hpp"
#include "patterns/candidate.hpp"

namespace patty::patterns {

struct DetectionOptions {
  /// Use dynamic dependences when available (the paper's mode). False
  /// reproduces a purely static tool (used as baseline in the benches).
  bool optimistic = true;
  /// Ignore candidates whose whole-program runtime share is below this.
  double min_runtime_share = 0.0;
  /// Default replication ceiling offered to the tuner.
  int max_replication = 8;
  /// PLDS: distrust observed independence for array writes whose subscript
  /// loads memory (`a[idx[i]] = ...`): the profiled input may be a
  /// collision-free special case of an aliasing access pattern. Fires only
  /// when the static analysis disagrees (sees a carried dependence), so
  /// statically-proven loops are unaffected. Off reproduces the pre-guard
  /// optimistic detector (used by the certification tests to manufacture
  /// racy residue).
  bool scatter_guard = true;
  /// Self-hosted front-end: per-loop pattern matching fans out over the
  /// runtime's own pool (parallel_for over the loop list, master/worker
  /// region detection concurrently). Output is byte-identical to the
  /// sequential path — outcomes land in index-stable slots and are
  /// assembled in loop order before the (stable) ranking sort.
  bool parallel = false;
};

/// Detect pipeline candidates in one loop. Returns a candidate or a
/// rejection (exactly one of the optionals is set).
struct PipelineOutcome {
  std::optional<Candidate> candidate;
  std::optional<RejectedLoop> rejection;
};
PipelineOutcome detect_pipeline(const analysis::SemanticModel& model,
                                const lang::Stmt& loop,
                                const DetectionOptions& options);

/// Detect a data-parallel loop (incl. reduction recognition) in one loop.
PipelineOutcome detect_data_parallel(const analysis::SemanticModel& model,
                                     const lang::Stmt& loop,
                                     const DetectionOptions& options);

/// Detect standalone master/worker regions (runs of >= 2 consecutive,
/// mutually independent, call-bearing statements) in all method bodies.
std::vector<Candidate> detect_master_worker(
    const analysis::SemanticModel& model, const DetectionOptions& options);

/// Run the whole catalog: every loop is tried as data-parallel first (the
/// stronger pattern), then as pipeline; plus standalone master/worker
/// regions. Candidates are ranked by runtime share.
DetectionResult detect_all(const analysis::SemanticModel& model,
                           DetectionOptions options = {});

/// Stage labels "A", "B", ..., "Z", "A1", ...
std::string stage_label(std::size_t index);

/// Canonical serialization of a detection result (every candidate field
/// that downstream phases consume, plus rejections). Two runs produced the
/// same detection exactly when the fingerprints are string-equal — the
/// determinism harness compares parallel vs sequential front-ends with it.
std::string detection_fingerprint(const DetectionResult& result);

}  // namespace patty::patterns
