#pragma once
// Detection results: parallelization candidates found by matching the
// source-pattern catalog against the semantic model (paper §2.1, step 2).
//
// A Candidate carries everything the later phases need: the matched source
// location, the target pattern, the stage structure (for pipelines), the
// derived tuning parameters (PLTP), and the TADL expression that the
// annotator writes into the source.

#include <string>
#include <vector>

#include "lang/ast.hpp"
#include "runtime/tuning.hpp"

namespace patty::patterns {

enum class PatternKind : std::uint8_t {
  Pipeline,
  DataParallelLoop,
  MasterWorker,
};

const char* pattern_kind_name(PatternKind kind);

/// One pipeline stage: a contiguous interval of top-level loop-body
/// statements (PLDD merges statements connected by carried dependences,
/// including everything in between).
struct StageSpec {
  std::string label;             // "A", "B", ... as in figure 3b
  std::vector<int> stmt_ids;     // top-level body statements, program order
  bool replicable = false;       // no carried deps touch this stage
  bool writes_io = false;        // print() inside: never replicate
  double runtime_share = 0.0;    // fraction of the loop body's cost
};

struct Candidate {
  PatternKind kind = PatternKind::Pipeline;
  const lang::Stmt* anchor = nullptr;        // the loop / first statement
  const lang::MethodDecl* method = nullptr;
  double runtime_share = 0.0;                // of whole-program cost
  std::string reason;                        // why this location qualified

  // Pipeline-specific:
  std::vector<StageSpec> stages;
  /// Sections group consecutive mutually independent stages: each inner
  /// vector holds stage indices that may run as master/worker (fig. 2's
  /// (A || B || C+) section). Singleton sections are plain stages.
  std::vector<std::vector<std::size_t>> sections;

  // Data-parallel-loop-specific:
  bool is_reduction = false;
  int reduction_stmt_id = -1;

  // Master/worker-specific (standalone): the independent statements.
  std::vector<int> task_stmt_ids;

  /// Tuning parameters derived for this candidate (PLTP).
  std::vector<rt::TuningParameter> tuning;
  /// TADL expression, e.g. "(A || B || C+) => D => E".
  std::string tadl;
  /// Predicted speedup of the best tuned configuration over sequential,
  /// from the design-time cost model (tuning::annotate_predicted_speedups).
  /// 0 = not predicted. Deliberately absent from detection fingerprints:
  /// it depends on the machine, not the source.
  double predicted_speedup = 0.0;

  [[nodiscard]] std::string location() const {
    return anchor ? anchor->range.str() : "<unknown>";
  }
};

/// A loop the detector examined and rejected, with the PL-rule that failed.
struct RejectedLoop {
  const lang::Stmt* loop = nullptr;
  std::string rule;    // "PLCD", "PLDD", ...
  std::string reason;
};

struct DetectionResult {
  std::vector<Candidate> candidates;  // ranked by runtime share, descending
  std::vector<RejectedLoop> rejected;
};

}  // namespace patty::patterns
