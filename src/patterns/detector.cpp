#include "patterns/detector.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "runtime/master_worker.hpp"
#include "runtime/parallel_for.hpp"
#include "support/diagnostics.hpp"

namespace patty::patterns {

using analysis::Dep;
using analysis::DepKind;
using analysis::SemanticModel;
using lang::Stmt;
using lang::StmtKind;

const char* pattern_kind_name(PatternKind kind) {
  switch (kind) {
    case PatternKind::Pipeline: return "pipeline";
    case PatternKind::DataParallelLoop: return "data-parallel loop";
    case PatternKind::MasterWorker: return "master/worker";
  }
  return "?";
}

std::string stage_label(std::size_t index) {
  std::string label(1, static_cast<char>('A' + index % 26));
  if (index >= 26) label += std::to_string(index / 26);
  return label;
}

namespace {

/// PLCD: control statements that affect other stream elements.
/// `allow_continue`: a top-level continue only skips its own element and is
/// admissible for data-parallel loops, but breaks the fixed processing
/// chain of a pipeline.
bool control_violation(const Stmt& loop, bool allow_continue,
                       std::string* what) {
  // break/continue that target the analyzed loop itself (depth 0) affect
  // other stream elements; the same statements inside a *nested* loop only
  // affect that inner loop and are harmless. `return` always escapes.
  struct DepthWalk {
    bool bad = false;
    std::string found;
    bool allow_continue;

    void walk(const Stmt& st, int depth) {
      if (bad) return;
      switch (st.kind) {
        case StmtKind::Break:
          if (depth == 0) { bad = true; found = "break"; }
          break;
        case StmtKind::Continue:
          if (depth == 0 && !allow_continue) { bad = true; found = "continue"; }
          break;
        case StmtKind::Return:
          bad = true;
          found = "return";
          break;
        case StmtKind::Block:
          for (const auto& s : st.as<lang::Block>().stmts) walk(*s, depth);
          break;
        case StmtKind::If: {
          const auto& i = st.as<lang::If>();
          walk(*i.then_branch, depth);
          if (i.else_branch) walk(*i.else_branch, depth);
          break;
        }
        case StmtKind::While:
          walk(*st.as<lang::While>().body, depth + 1);
          break;
        case StmtKind::For:
          walk(*st.as<lang::For>().body, depth + 1);
          break;
        case StmtKind::Foreach:
          walk(*st.as<lang::Foreach>().body, depth + 1);
          break;
        default:
          break;
      }
    }
  };
  DepthWalk w{.allow_continue = allow_continue};
  for (const Stmt* top : analysis::loop_body_statements(loop)) {
    w.walk(*top, 0);
    if (w.bad) break;
  }
  if (w.bad && what) *what = w.found;
  return w.bad;
}

/// Index of a top-level body statement by id, or -1.
int body_index(const std::vector<const Stmt*>& body, int stmt_id) {
  for (std::size_t i = 0; i < body.size(); ++i)
    if (body[i]->id == stmt_id) return static_cast<int>(i);
  return -1;
}

/// Sum of inclusive profiled cost over a set of statements.
double stage_cost(const SemanticModel& model,
                  const std::vector<const Stmt*>& body,
                  const std::vector<int>& indices) {
  if (!model.profile()) return 0.0;
  double total = 0.0;
  for (int i : indices) {
    total += static_cast<double>(
        model.profile()->stmt_profile(body[static_cast<std::size_t>(i)]->id)
            .inclusive_cost);
  }
  return total;
}

/// Does this statement subtree write to the output stream (print)?
bool stmt_writes_io(const analysis::EffectAnalysis& effects, const Stmt& st) {
  return effects.stmt_effects(st).writes.count(analysis::AbsLoc::io()) > 0;
}

/// The loop's name prefix for tuning parameters:
/// "<Class>.<method>.<pattern>@<line>".
std::string loop_prefix(const SemanticModel& model, const Stmt& loop,
                        const char* pattern) {
  const lang::MethodDecl* m = model.method_of(loop);
  std::string prefix;
  if (m) {
    if (m->owner) prefix += m->owner->name + ".";
    prefix += m->name + ".";
  }
  prefix += pattern;
  prefix += "@" + std::to_string(loop.range.begin.line);
  return prefix;
}

/// Intra-iteration dependence between two top-level statements?
bool sections_independent(const std::vector<Dep>& deps,
                          const std::vector<const Stmt*>& body,
                          const std::vector<int>& a,
                          const std::vector<int>& b) {
  std::set<int> ids_a, ids_b;
  for (int i : a) ids_a.insert(body[static_cast<std::size_t>(i)]->id);
  for (int i : b) ids_b.insert(body[static_cast<std::size_t>(i)]->id);
  for (const Dep& d : deps) {
    if ((ids_a.count(d.from_id) && ids_b.count(d.to_id)) ||
        (ids_b.count(d.from_id) && ids_a.count(d.to_id)))
      return false;
  }
  return true;
}

}  // namespace

PipelineOutcome detect_pipeline(const SemanticModel& model, const Stmt& loop,
                                const DetectionOptions& options) {
  PipelineOutcome outcome;
  const std::vector<const Stmt*> body = analysis::loop_body_statements(loop);

  // PLPL: a loop with at least two top-level statements can form stages.
  if (body.size() < 2) {
    outcome.rejection = {&loop, "PLPL",
                         "loop body has fewer than two statements"};
    return outcome;
  }

  // PLCD: no control flow that affects other stream elements.
  std::string what;
  if (control_violation(loop, /*allow_continue=*/false, &what)) {
    outcome.rejection = {&loop, "PLCD",
                         "'" + what + "' affects the processing chain"};
    return outcome;
  }

  // PLDD: merge statements connected by loop-carried dependences, together
  // with everything in between (interval merging over body positions).
  const std::vector<Dep>& deps =
      model.loop_dependences(loop, options.optimistic);

  // Carried deps between positions a < b glue the whole interval [a, b]
  // into one stage (paper: "subsume si, sk, and all statements in between").
  std::vector<std::pair<int, int>> merges;
  for (const Dep& d : deps) {
    if (!d.carried) continue;
    const int a = body_index(body, d.from_id);
    const int b = body_index(body, d.to_id);
    if (a < 0 || b < 0) continue;
    if (a != b) merges.emplace_back(std::min(a, b), std::max(a, b));
  }
  // Interval union: mark boundaries that must stay glued.
  std::vector<bool> glued(body.size(), false);  // glued[i]: i and i+1 together
  for (auto [lo, hi] : merges)
    for (int i = lo; i < hi; ++i) glued[static_cast<std::size_t>(i)] = true;

  // Build stages as maximal glued runs.
  std::vector<std::vector<int>> stage_indices;
  std::vector<int> current = {0};
  for (std::size_t i = 1; i < body.size(); ++i) {
    if (glued[i - 1]) {
      current.push_back(static_cast<int>(i));
    } else {
      stage_indices.push_back(std::move(current));
      current = {static_cast<int>(i)};
    }
  }
  stage_indices.push_back(std::move(current));

  if (stage_indices.size() < 2) {
    outcome.rejection = {&loop, "PLDD",
                         "loop-carried dependences collapse the body into a "
                         "single stage"};
    return outcome;
  }

  // Which statements are touched by any carried dep (incl. self)?
  std::set<int> carried_ids;
  for (const Dep& d : deps) {
    if (!d.carried) continue;
    carried_ids.insert(d.from_id);
    carried_ids.insert(d.to_id);
  }

  Candidate cand;
  cand.kind = PatternKind::Pipeline;
  cand.anchor = &loop;
  cand.method = model.method_of(loop);
  cand.runtime_share = model.runtime_share(loop);

  double body_total = 0.0;
  for (const auto& idxs : stage_indices)
    body_total += stage_cost(model, body, idxs);

  for (std::size_t s = 0; s < stage_indices.size(); ++s) {
    StageSpec spec;
    spec.label = stage_label(s);
    bool touched = false;
    for (int i : stage_indices[s]) {
      const Stmt* st = body[static_cast<std::size_t>(i)];
      spec.stmt_ids.push_back(st->id);
      if (carried_ids.count(st->id)) touched = true;
      if (stmt_writes_io(model.effects(), *st)) spec.writes_io = true;
    }
    spec.replicable = !touched && !spec.writes_io;
    const double cost = stage_cost(model, body, stage_indices[s]);
    spec.runtime_share = body_total > 0.0 ? cost / body_total : 0.0;
    cand.stages.push_back(std::move(spec));
  }

  // Section grouping for master/worker inside the pipeline: greedily extend
  // a section while the next stage is independent of every stage in it
  // (intra-iteration deps only; carried deps already shaped the stages).
  std::vector<Dep> intra;
  for (const Dep& d : deps)
    if (!d.carried) intra.push_back(d);
  std::vector<std::vector<std::size_t>> sections;
  std::vector<std::size_t> section = {0};
  for (std::size_t s = 1; s < cand.stages.size(); ++s) {
    bool independent = true;
    for (std::size_t prev : section) {
      if (!sections_independent(intra, body, stage_indices[prev],
                                stage_indices[s])) {
        independent = false;
        break;
      }
    }
    if (independent) {
      section.push_back(s);
    } else {
      sections.push_back(std::move(section));
      section = {s};
    }
  }
  sections.push_back(std::move(section));
  cand.sections = std::move(sections);

  // TADL expression.
  std::string tadl;
  for (std::size_t g = 0; g < cand.sections.size(); ++g) {
    if (g) tadl += " => ";
    const auto& sec = cand.sections[g];
    if (sec.size() > 1) tadl += "(";
    for (std::size_t k = 0; k < sec.size(); ++k) {
      if (k) tadl += " || ";
      tadl += cand.stages[sec[k]].label;
      if (cand.stages[sec[k]].replicable) tadl += "+";
    }
    if (sec.size() > 1) tadl += ")";
  }
  cand.tadl = tadl;

  // PLTP: tuning parameters.
  const std::string prefix = loop_prefix(model, loop, "pipeline");
  auto add_param = [&](std::string name, rt::TuningKind kind,
                       std::int64_t value, std::int64_t min, std::int64_t max,
                       std::string desc) {
    rt::TuningParameter p;
    p.name = prefix + "." + std::move(name);
    p.kind = kind;
    p.value = value;
    p.min = min;
    p.max = max;
    p.location = loop.range.str();
    p.description = std::move(desc);
    cand.tuning.push_back(std::move(p));
  };
  for (std::size_t s = 0; s < cand.stages.size(); ++s) {
    const StageSpec& spec = cand.stages[s];
    if (spec.replicable) {
      add_param("stage" + spec.label + ".replication", rt::TuningKind::Int, 1,
                1, options.max_replication,
                "StageReplication for stage " + spec.label);
      add_param("stage" + spec.label + ".order", rt::TuningKind::Bool, 1, 0, 1,
                "OrderPreservation for replicated stage " + spec.label);
    }
    if (s + 1 < cand.stages.size()) {
      add_param("fuse" + spec.label + cand.stages[s + 1].label,
                rt::TuningKind::Bool, 0, 0, 1,
                "StageFusion of stages " + spec.label + " and " +
                    cand.stages[s + 1].label);
    }
  }
  add_param("sequential", rt::TuningKind::Bool, 0, 0, 1,
            "SequentialExecution fallback for short streams");
  // Coarse domain: buffer depth has secondary impact, so the tuner should
  // not burn its budget sweeping it value by value.
  add_param("buffer", rt::TuningKind::Int, 16, 1, 49,
            "capacity of inter-stage buffers");
  cand.tuning.back().step = 16;
  // BatchSize: elements moved per queue operation. Amortizes stage-queue
  // synchronization on fine-grained streams; coarse domain {1,5,9} for the
  // same budget reason as the buffer depth.
  add_param("batch", rt::TuningKind::Int, 1, 1, 9,
            "BatchSize: elements per stage-queue operation");
  cand.tuning.back().step = 4;

  cand.reason = "loop with " + std::to_string(cand.stages.size()) +
                " stages, " + std::to_string(deps.size()) + " dependences (" +
                (options.optimistic && model.loop_was_profiled(loop)
                     ? "observed"
                     : "static") +
                ")";
  outcome.candidate = std::move(cand);
  return outcome;
}

PipelineOutcome detect_data_parallel(const SemanticModel& model,
                                     const Stmt& loop,
                                     const DetectionOptions& options) {
  PipelineOutcome outcome;
  if (loop.kind == StmtKind::While) {
    outcome.rejection = {&loop, "PLPL",
                         "while-loops have no decomposable iteration space"};
    return outcome;
  }
  std::string what;
  if (control_violation(loop, /*allow_continue=*/true, &what)) {
    outcome.rejection = {&loop, "PLCD", "'" + what + "' escapes the loop"};
    return outcome;
  }

  const std::vector<const Stmt*> body = analysis::loop_body_statements(loop);
  if (body.empty()) {
    outcome.rejection = {&loop, "PLPL", "empty loop body"};
    return outcome;
  }
  const std::vector<Dep>& deps =
      model.loop_dependences(loop, options.optimistic);

  // Classify carried dependences: none -> plain data-parallel;
  // all on a single associative accumulator statement -> reduction.
  int reduction_stmt = -1;
  for (const Dep& d : deps) {
    if (!d.carried) continue;
    if (d.from_id == d.to_id) {
      const Stmt* st = model.stmt_by_id(d.from_id);
      // Reduction shape: `x = x op <expr>` with op in {+, *, min, max} and
      // x a scalar local or field.
      bool is_reduction_stmt = false;
      if (st && st->kind == StmtKind::Assign) {
        const auto& a = st->as<lang::Assign>();
        if (a.target->kind == lang::ExprKind::VarRef &&
            a.value->kind == lang::ExprKind::Binary) {
          const auto& bin = a.value->as<lang::Binary>();
          const auto& tgt = a.target->as<lang::VarRef>();
          auto matches_target = [&](const lang::Expr& e) {
            if (e.kind != lang::ExprKind::VarRef) return false;
            const auto& r = e.as<lang::VarRef>();
            return r.slot == tgt.slot && r.field_index == tgt.field_index;
          };
          if ((bin.op == lang::BinaryOp::Add ||
               bin.op == lang::BinaryOp::Mul) &&
              (matches_target(*bin.lhs) || matches_target(*bin.rhs))) {
            is_reduction_stmt = true;
          }
        }
      }
      if (is_reduction_stmt &&
          (reduction_stmt == -1 || reduction_stmt == st->id)) {
        reduction_stmt = st->id;
        continue;
      }
      outcome.rejection = {&loop, "PLDD",
                           "carried dependence " + d.str() +
                               " is not a recognized reduction"};
      return outcome;
    }
    outcome.rejection = {&loop, "PLDD",
                         "loop-carried dependence between iterations: " +
                             d.str()};
    return outcome;
  }

  // PLDS: the loop passed on *observed* independence. If an array write
  // subscripts through memory (another element, a field, a call result),
  // the profiled input may be a collision-free special case — e.g. an
  // identity permutation — of an aliasing scatter. Only when the static
  // analysis disagrees (a carried dependence survives the induction
  // refinement) is the observed evidence decisive, and then we do not
  // trust it for memory-derived subscripts.
  if (options.scatter_guard && options.optimistic &&
      model.loop_was_profiled(loop)) {
    bool memory_subscript_write = false;
    for (const Stmt* top : body) {
      lang::for_each_stmt(*top, [&](const Stmt& st) {
        if (st.kind != StmtKind::Assign) return;
        const auto& a = st.as<lang::Assign>();
        if (a.target->kind != lang::ExprKind::IndexAccess) return;
        const auto& ix = a.target->as<lang::IndexAccess>();
        lang::for_each_expr_in(*ix.index, [&](const lang::Expr& e) {
          if (e.kind == lang::ExprKind::IndexAccess ||
              e.kind == lang::ExprKind::FieldAccess ||
              e.kind == lang::ExprKind::Call ||
              (e.kind == lang::ExprKind::VarRef &&
               !e.as<lang::VarRef>().is_local()))
            memory_subscript_write = true;
        });
      });
      if (memory_subscript_write) break;
    }
    if (memory_subscript_write) {
      bool static_carried = false;
      for (const Dep& d : model.loop_dependences(loop, /*optimistic=*/false))
        if (d.carried) static_carried = true;
      if (static_carried) {
        outcome.rejection = {&loop, "PLDS",
                             "array write subscripted through memory; "
                             "observed independence may not generalize "
                             "beyond the profiled input"};
        return outcome;
      }
    }
  }

  Candidate cand;
  cand.kind = PatternKind::DataParallelLoop;
  cand.anchor = &loop;
  cand.method = model.method_of(loop);
  cand.runtime_share = model.runtime_share(loop);
  cand.is_reduction = reduction_stmt >= 0;
  cand.reduction_stmt_id = reduction_stmt;
  cand.tadl = cand.is_reduction ? "reduce(ALL+)" : "ALL+";
  cand.reason = cand.is_reduction
                    ? "independent iterations up to one associative reduction"
                    : "no loop-carried dependences between iterations";

  const std::string prefix = loop_prefix(model, loop, "parfor");
  rt::TuningParameter threads;
  threads.name = prefix + ".threads";
  threads.kind = rt::TuningKind::Int;
  threads.value = 0;
  threads.min = 0;
  threads.max = options.max_replication;
  threads.location = loop.range.str();
  threads.description = "worker threads (0 = hardware)";
  cand.tuning.push_back(threads);
  rt::TuningParameter grain;
  grain.name = prefix + ".grain";
  grain.kind = rt::TuningKind::Int;
  grain.value = 0;
  grain.min = 0;
  grain.max = 256;
  grain.step = 64;
  grain.location = loop.range.str();
  grain.description = "chunk size (0 = auto)";
  cand.tuning.push_back(grain);
  rt::TuningParameter seq;
  seq.name = prefix + ".sequential";
  seq.kind = rt::TuningKind::Bool;
  seq.value = 0;
  seq.min = 0;
  seq.max = 1;
  seq.location = loop.range.str();
  seq.description = "SequentialExecution fallback";
  cand.tuning.push_back(seq);

  outcome.candidate = std::move(cand);
  return outcome;
}

std::vector<Candidate> detect_master_worker(const SemanticModel& model,
                                            const DetectionOptions& options) {
  std::vector<Candidate> out;
  const lang::Program& program = model.program();
  for (const auto& cls : program.classes) {
    for (const auto& method : cls->methods) {
      // Consider every block in the method.
      std::vector<const lang::Block*> blocks;
      lang::for_each_stmt(*method->body, [&](const Stmt& st) {
        if (st.kind == StmtKind::Block)
          blocks.push_back(&st.as<lang::Block>());
      });
      for (const lang::Block* block : blocks) {
        // Candidate statements: contain a user-method call (worth a task).
        std::vector<const Stmt*> stmts;
        for (const auto& s : block->stmts)
          if (s->kind != StmtKind::Annotation) stmts.push_back(s.get());

        auto is_task_like = [&](const Stmt& st) {
          if (st.kind != StmtKind::VarDecl && st.kind != StmtKind::Assign &&
              st.kind != StmtKind::ExprStmt)
            return false;
          bool has_call = false;
          lang::for_each_expr(st, [&](const lang::Expr& e) {
            if (e.kind == lang::ExprKind::Call &&
                e.as<lang::Call>().resolved != nullptr)
              has_call = true;
          });
          return has_call;
        };
        auto independent = [&](const Stmt& a, const Stmt& b) {
          const analysis::EffectSet ea = model.effects().stmt_effects(a);
          const analysis::EffectSet eb = model.effects().stmt_effects(b);
          return !ea.writes_intersect_reads(eb) &&
                 !eb.writes_intersect_reads(ea) &&
                 !ea.writes_intersect_writes(eb);
        };

        std::size_t i = 0;
        while (i < stmts.size()) {
          if (!is_task_like(*stmts[i])) {
            ++i;
            continue;
          }
          std::vector<const Stmt*> run = {stmts[i]};
          std::size_t j = i + 1;
          while (j < stmts.size() && is_task_like(*stmts[j])) {
            bool ok = true;
            for (const Stmt* prev : run) {
              if (!independent(*prev, *stmts[j])) {
                ok = false;
                break;
              }
            }
            if (!ok) break;
            run.push_back(stmts[j]);
            ++j;
          }
          if (run.size() >= 2) {
            Candidate cand;
            cand.kind = PatternKind::MasterWorker;
            cand.anchor = run.front();
            cand.method = method.get();
            double share = 0.0;
            for (const Stmt* st : run) {
              cand.task_stmt_ids.push_back(st->id);
              share += model.runtime_share(*st);
            }
            cand.runtime_share = share;
            std::string tadl;
            for (std::size_t k = 0; k < run.size(); ++k) {
              if (k) tadl += " || ";
              tadl += stage_label(k);
            }
            cand.tadl = "(" + tadl + ")";
            cand.reason = std::to_string(run.size()) +
                          " consecutive independent call statements";
            rt::TuningParameter workers;
            workers.name =
                loop_prefix(model, *run.front(), "masterworker") + ".workers";
            workers.kind = rt::TuningKind::Int;
            workers.value = 0;
            workers.min = 0;
            workers.max = options.max_replication;
            workers.location = run.front()->range.str();
            workers.description = "worker crew size (0 = shared pool)";
            cand.tuning.push_back(workers);
            out.push_back(std::move(cand));
          }
          i = j > i ? j : i + 1;
        }
      }
    }
  }
  return out;
}

namespace {

/// Match the catalog against one loop: data-parallel first (the stronger
/// pattern — fully independent iteration space, no buffers), then
/// pipeline. Pure per-loop function, so the parallel front-end can run it
/// from any worker; the model's dependence cache absorbs the repeated
/// loop_dependences queries both detectors make.
PipelineOutcome match_loop(const SemanticModel& model,
                           const analysis::LoopInfo& li,
                           const DetectionOptions& options) {
  PipelineOutcome dp = detect_data_parallel(model, *li.loop, options);
  if (dp.candidate) {
    if (dp.candidate->runtime_share < options.min_runtime_share)
      return {};  // matched but below threshold: no candidate, no rejection
    return dp;
  }
  // A PLDS verdict is a safety rejection, not a shape mismatch: the loop
  // must not run in parallel at all, so do not offer it as a pipeline and
  // keep the guard's reason visible.
  if (dp.rejection && dp.rejection->rule == "PLDS") return dp;
  PipelineOutcome pl = detect_pipeline(model, *li.loop, options);
  if (pl.candidate) {
    if (pl.candidate->runtime_share < options.min_runtime_share) return {};
    return pl;
  }
  // Keep the more informative rejection (pipeline's, if both failed).
  if (pl.rejection) return pl;
  return dp;
}

}  // namespace

DetectionResult detect_all(const SemanticModel& model,
                           DetectionOptions options) {
  const std::vector<analysis::LoopInfo>& loops = model.loops();
  std::vector<PipelineOutcome> outcomes(loops.size());
  std::vector<Candidate> mw_candidates;

  if (options.parallel && !loops.empty()) {
    // Self-hosted matching: per-loop outcomes fan out through parallel_for
    // into index-stable slots while the master/worker region scan runs as
    // the second concurrent task. Assembly below walks slots in loop
    // order, so the result is byte-identical to the sequential branch.
    rt::MasterWorker mw;  // workers=0: shared pool + helping join
    mw.run({[&] {
              rt::parallel_for(
                  0, static_cast<std::int64_t>(loops.size()),
                  [&](std::int64_t i) {
                    const auto idx = static_cast<std::size_t>(i);
                    outcomes[idx] = match_loop(model, loops[idx], options);
                  });
            },
            [&] { mw_candidates = detect_master_worker(model, options); }});
  } else {
    for (std::size_t i = 0; i < loops.size(); ++i)
      outcomes[i] = match_loop(model, loops[i], options);
    mw_candidates = detect_master_worker(model, options);
  }

  DetectionResult result;
  for (PipelineOutcome& o : outcomes) {
    if (o.candidate)
      result.candidates.push_back(std::move(*o.candidate));
    else if (o.rejection)
      result.rejected.push_back(std::move(*o.rejection));
  }
  for (Candidate& mw : mw_candidates) {
    if (mw.runtime_share >= options.min_runtime_share)
      result.candidates.push_back(std::move(mw));
  }

  std::stable_sort(result.candidates.begin(), result.candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.runtime_share > b.runtime_share;
                   });
  return result;
}

std::string detection_fingerprint(const DetectionResult& result) {
  std::string fp;
  char buf[64];
  auto num = [&](double v) {
    // %.17g round-trips doubles exactly: byte-equal fingerprints mean
    // bit-equal runtime shares, not merely close ones.
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    fp += buf;
  };
  for (const Candidate& c : result.candidates) {
    fp += pattern_kind_name(c.kind);
    fp += '@';
    fp += c.location();
    fp += " share=";
    num(c.runtime_share);
    fp += " reason=";
    fp += c.reason;
    for (const StageSpec& s : c.stages) {
      fp += " stage:";
      fp += s.label;
      fp += s.replicable ? "+r" : "";
      fp += s.writes_io ? "+io" : "";
      fp += "=";
      num(s.runtime_share);
      for (int id : s.stmt_ids) {
        fp += ',';
        fp += std::to_string(id);
      }
    }
    for (const auto& section : c.sections) {
      fp += " sec:";
      for (std::size_t idx : section) {
        fp += std::to_string(idx);
        fp += '|';
      }
    }
    if (c.is_reduction) {
      fp += " red=";
      fp += std::to_string(c.reduction_stmt_id);
    }
    for (int id : c.task_stmt_ids) {
      fp += " task=";
      fp += std::to_string(id);
    }
    for (const rt::TuningParameter& p : c.tuning) {
      fp += " tune:";
      fp += p.name;
      fp += '=';
      fp += std::to_string(p.value);
      fp += '[';
      fp += std::to_string(p.min);
      fp += "..";
      fp += std::to_string(p.max);
      fp += ']';
    }
    fp += " tadl=";
    fp += c.tadl;
    fp += '\n';
  }
  for (const RejectedLoop& r : result.rejected) {
    fp += "rejected@";
    fp += r.loop ? r.loop->range.str() : "<unknown>";
    fp += ' ';
    fp += r.rule;
    fp += ": ";
    fp += r.reason;
    fp += '\n';
  }
  return fp;
}

}  // namespace patty::patterns
