#pragma once
// User-study simulation (paper §4).
//
// The paper's evaluation is a 10-participant study on a ray-tracing
// benchmark: group 1 used Patty, group 2 Intel Parallel Studio, group 3
// worked manually with stock Visual Studio. We cannot run humans, so the
// study is reproduced as an explicit behaviour simulation:
//
//  * the RayTracing benchmark is the real MiniOO program in patty::corpus
//    (13 classes, ~173 LoC, 3 ground-truth locations, 1 hotspot, 1 race
//    trap),
//  * group 1's "tool" is the real detector: its findings on the benchmark
//    are what the simulated participants report,
//  * group 2 is modeled after the paper's description of Parallel Studio:
//    a profiler surfaces the hotspot; further locations require learning an
//    annotation language first (hence the late first identification),
//  * group 3 is modeled after the paper's observations: participants find
//    the built-in profiler quickly (fast first identification), miss the
//    cold locations, and produce false positives by overlooking data races.
//
// All stochastic behaviour is seeded; the default seed reproduces the
// tables in EXPERIMENTS.md bit-for-bit.

#include <cstdint>
#include <string>
#include <vector>

namespace patty::study {

enum class Group : std::uint8_t { Patty, ParallelStudio, Manual };

const char* group_name(Group group);

struct Participant {
  int id = 0;
  Group group = Group::Patty;
  double se_skill = 0.5;  // software-engineering experience, 0..1
  double mc_skill = 0.5;  // multicore experience, 0..1
};

/// Objective measurements of one working session (paper fig. 5b / §4.2).
struct Session {
  Participant participant;
  double first_tool_use_min = 0.0;        // 0 for the manual group
  double first_identification_min = 0.0;
  double total_time_min = 0.0;
  int locations_found = 0;   // correct ones (of 3)
  int false_positives = 0;
};

/// Questionnaire answers, normalized to [-3, +3] (paper tables 1 and 2).
struct Questionnaire {
  double clarity = 0.0;
  double complexity = 0.0;
  double perceivability = 0.0;
  double learnability = 0.0;
  double perceived_support = 0.0;
  double satisfaction = 0.0;
};

/// One of the nine tool features of figure 5a.
struct Feature {
  std::string name;
  bool patty_has = false;
  bool intel_has = false;
  /// Desirability answers collected from the manual group, [-3, +3].
  std::vector<double> desirability;
};

struct StudyOutcome {
  std::vector<Session> sessions;
  std::vector<Questionnaire> questionnaires;  // parallel to sessions (tool groups)
  std::vector<Feature> features;              // figure 5a
  int ground_truth_locations = 3;
};

struct StudyConfig {
  std::uint64_t seed = 20150207;  // PMAM'15 conference date
  /// Participants per group; the paper had 3 / 4 / 3.
  int patty_group = 3;
  int intel_group = 4;
  int manual_group = 3;
};

class StudySimulator {
 public:
  explicit StudySimulator(StudyConfig config = {});

  /// Run the full study once. Group 1's findings come from the real
  /// detector on corpus::raytracer().
  StudyOutcome run();

  /// What the real detector finds on the study benchmark: correct
  /// locations (of the 3) and false positives (should be 0).
  struct DetectorFindings {
    int correct = 0;
    int false_positives = 0;
  };
  static DetectorFindings run_patty_tool();

 private:
  StudyConfig config_;
};

/// Aggregates per group (means and sample standard deviations).
struct GroupStats {
  double mean = 0.0;
  double stddev = 0.0;
};
GroupStats stats_over(const std::vector<double>& values);

}  // namespace patty::study
