#include "study/study.hpp"

#include <algorithm>

#include "analysis/semantic_model.hpp"
#include "corpus/corpus.hpp"
#include "lang/sema.hpp"
#include "patterns/detector.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace patty::study {

const char* group_name(Group group) {
  switch (group) {
    case Group::Patty: return "Patty";
    case Group::ParallelStudio: return "Parallel Studio";
    case Group::Manual: return "Manual";
  }
  return "?";
}

GroupStats stats_over(const std::vector<double>& values) {
  return {mean(values), sample_stddev(values)};
}

StudySimulator::StudySimulator(StudyConfig config) : config_(config) {}

StudySimulator::DetectorFindings StudySimulator::run_patty_tool() {
  DetectorFindings findings;
  const corpus::CorpusProgram& benchmark = corpus::raytracer();
  const corpus::DetectionScore score =
      corpus::score_program(benchmark, /*optimistic=*/true);
  findings.correct = score.true_positives;
  findings.false_positives = score.false_positives;
  return findings;
}

namespace {

double clip3(double v) { return std::max(-3.0, std::min(3.0, v)); }

/// Questionnaire response model: a tool-specific base level plus
/// skill-dependent shift plus response noise. Base levels encode the
/// qualitative findings of §4.2 (Patty clearer, easier to learn; the most
/// multicore-skilled Intel user loved Parallel Studio).
Questionnaire answer_questionnaire(Group group, const Participant& p,
                                   Rng& rng) {
  Questionnaire q;
  auto draw = [&](double base, double noise_sd) {
    return clip3(base + rng.normal(0.0, noise_sd));
  };
  if (group == Group::Patty) {
    q.clarity = draw(2.0, 0.6);
    // Inexperienced engineers find the process chart slightly complex.
    q.complexity = draw(1.6 + 0.8 * p.se_skill, 1.0);
    q.perceivability = draw(2.3, 0.7);
    q.learnability = draw(2.3, 0.5);
    q.perceived_support = draw(2.3, 0.4);
    q.satisfaction = draw(0.7, 0.6);
  } else {
    // Parallel Studio rewards multicore expertise: the annotation language
    // is opaque to novices and excellent for the one expert (the paper's
    // high-variance satisfaction).
    const double expertise = p.mc_skill;
    q.clarity = draw(0.4 + 1.6 * expertise, 1.2);
    q.complexity = draw(0.2 + 1.4 * expertise, 0.9);
    q.perceivability = draw(0.5 + 1.2 * expertise, 0.9);
    q.learnability = draw(0.6 + 1.6 * expertise, 1.1);
    q.perceived_support = draw(0.8 + 1.4 * expertise, 0.4);
    q.satisfaction = draw(-1.5 + 3.6 * expertise, 0.9);
  }
  return q;
}

/// Figure 5a: the nine candidate tool features and which tool provides
/// them. Coverage follows the paper: Patty 5/9 (3 of the top five), Intel
/// 2/9 (1 of the top five, the runtime distribution view).
std::vector<Feature> make_features() {
  // name, patty, intel, base desirability
  struct Spec {
    const char* name;
    bool patty;
    bool intel;
    double base;
  };
  static const Spec specs[] = {
      {"Emphasize source", true, false, 1.9},
      {"Model source", true, false, 0.4},
      {"Visualize call graph", false, false, 0.9},
      {"Visualize runtime distribution", false, true, 2.4},
      {"Show data dependencies", false, false, 2.2},
      {"Show control dependencies", false, false, 0.2},
      {"Provide parallel strategies", true, false, 2.6},
      {"Support validation", true, true, 1.2},
      {"Support performance optimization", true, false, 2.1},
  };
  std::vector<Feature> features;
  for (const Spec& s : specs) {
    Feature f;
    f.name = s.name;
    f.patty_has = s.patty;
    f.intel_has = s.intel;
    features.push_back(std::move(f));
  }
  return features;
}

/// Base desirability per feature (same order as make_features); the manual
/// group's answers are drawn around these.
constexpr double kFeatureBases[] = {1.9, 0.4, 0.9, 2.4, 2.2,
                                    0.2, 2.6, 1.2, 2.1};

}  // namespace

StudyOutcome StudySimulator::run() {
  Rng rng(config_.seed);
  StudyOutcome outcome;

  // --- Assemble groups with balanced average experience (paper §4.1). ----
  std::vector<Participant> participants;
  int id = 0;
  auto add = [&](Group g, double se, double mc) {
    participants.push_back({id++, g, se, mc});
  };
  // Ten participants, skills spread from novice to multicore expert, with
  // equal group averages (0.5 SE / 0.4 MC per group).
  add(Group::Patty, 0.2, 0.1);
  add(Group::Patty, 0.5, 0.3);
  add(Group::Patty, 0.8, 0.8);
  add(Group::ParallelStudio, 0.2, 0.1);
  add(Group::ParallelStudio, 0.45, 0.3);
  add(Group::ParallelStudio, 0.55, 0.3);
  add(Group::ParallelStudio, 0.8, 0.9);  // the multicore expert of §4.2
  add(Group::Manual, 0.2, 0.2);
  add(Group::Manual, 0.5, 0.4);
  add(Group::Manual, 0.8, 0.6);

  // Ground truth comes from the benchmark's labels; what Patty's tool
  // reports comes from the real detector.
  const DetectorFindings patty_tool = run_patty_tool();
  int truth_count = 0;
  for (const corpus::TruthLocation& t : corpus::raytracer().truth)
    if (t.parallelizable) ++truth_count;
  outcome.ground_truth_locations = truth_count;

  outcome.features = make_features();

  for (const Participant& p : participants) {
    Rng prng = rng.split();
    Session s;
    s.participant = p;
    switch (p.group) {
      case Group::Patty: {
        // Wizard-driven: participants start the automatic mode right away.
        s.first_tool_use_min = std::max(0.1, prng.normal(0.33, 0.15));
        // First candidate appears after model creation + pattern analysis;
        // reviewing it takes longer for novices.
        s.first_identification_min =
            std::max(2.0, prng.normal(7.5, 1.8) - 2.0 * p.mc_skill);
        // Everyone reviews all reported candidates.
        s.total_time_min = std::max(20.0, prng.normal(40.5, 5.0));
        s.locations_found = patty_tool.correct;
        s.false_positives = patty_tool.false_positives;
        break;
      }
      case Group::ParallelStudio: {
        // The fixed three-step process requires reading before running.
        s.first_tool_use_min = std::max(0.5, prng.normal(4.0, 1.5));
        // First identification needs the annotation language (paper: more
        // than twice Patty's time), mitigated by multicore expertise.
        s.first_identification_min =
            std::max(4.0, prng.normal(15.2, 3.0) - 4.0 * p.mc_skill);
        s.total_time_min = std::max(30.0, prng.normal(49.0, 5.0));
        // The profiler surfaces the hotspot; annotations reveal more for
        // the skilled. Expert finds all three, novices stop at 2.
        s.locations_found = p.mc_skill > 0.7 ? 3 : 2;
        s.false_positives = 0;
        break;
      }
      case Group::Manual: {
        s.first_tool_use_min = 0.0;  // no parallelization tool
        // Everyone found the built-in profiler during warm-up: the hotspot
        // is identified almost immediately.
        s.first_identification_min = std::max(1.0, prng.normal(2.66, 0.8));
        // They finish first - and believe they are done (overconfidence
        // observed in the questionnaires).
        s.total_time_min = std::max(20.0, prng.normal(34.7, 4.0));
        // The hotspot plus, for the skilled, one more location.
        s.locations_found = 1 + (p.se_skill > 0.15 ? 1 : 0);
        // Overlooked data races: the histogram trap looks parallel.
        s.false_positives = p.mc_skill < 0.5 ? 1 : 0;
        break;
      }
    }
    outcome.sessions.push_back(s);

    if (p.group != Group::Manual) {
      outcome.questionnaires.push_back(
          answer_questionnaire(p.group, p, prng));
    } else {
      outcome.questionnaires.push_back({});  // no tool questionnaire
      // Manual participants answer the desired-features questionnaire
      // (figure 5a) instead.
      for (std::size_t f = 0; f < outcome.features.size(); ++f) {
        outcome.features[f].desirability.push_back(
            clip3(kFeatureBases[f] + prng.normal(0.0, 0.5)));
      }
    }
  }
  return outcome;
}

}  // namespace patty::study
