#include "lang/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace patty::lang {

namespace {

const std::unordered_map<std::string_view, TokenKind>& keyword_table() {
  static const std::unordered_map<std::string_view, TokenKind> table = {
      {"class", TokenKind::KwClass},     {"int", TokenKind::KwInt},
      {"double", TokenKind::KwDouble},   {"bool", TokenKind::KwBool},
      {"string", TokenKind::KwString},   {"void", TokenKind::KwVoid},
      {"list", TokenKind::KwList},       {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},       {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},         {"foreach", TokenKind::KwForeach},
      {"in", TokenKind::KwIn},           {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},     {"continue", TokenKind::KwContinue},
      {"new", TokenKind::KwNew},         {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},     {"null", TokenKind::KwNull},
  };
  return table;
}

}  // namespace

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::Identifier: return "identifier";
    case TokenKind::IntLiteral: return "integer literal";
    case TokenKind::DoubleLiteral: return "double literal";
    case TokenKind::StringLiteral: return "string literal";
    case TokenKind::KwClass: return "'class'";
    case TokenKind::KwInt: return "'int'";
    case TokenKind::KwDouble: return "'double'";
    case TokenKind::KwBool: return "'bool'";
    case TokenKind::KwString: return "'string'";
    case TokenKind::KwVoid: return "'void'";
    case TokenKind::KwList: return "'list'";
    case TokenKind::KwIf: return "'if'";
    case TokenKind::KwElse: return "'else'";
    case TokenKind::KwWhile: return "'while'";
    case TokenKind::KwFor: return "'for'";
    case TokenKind::KwForeach: return "'foreach'";
    case TokenKind::KwIn: return "'in'";
    case TokenKind::KwReturn: return "'return'";
    case TokenKind::KwBreak: return "'break'";
    case TokenKind::KwContinue: return "'continue'";
    case TokenKind::KwNew: return "'new'";
    case TokenKind::KwTrue: return "'true'";
    case TokenKind::KwFalse: return "'false'";
    case TokenKind::KwNull: return "'null'";
    case TokenKind::LParen: return "'('";
    case TokenKind::RParen: return "')'";
    case TokenKind::LBrace: return "'{'";
    case TokenKind::RBrace: return "'}'";
    case TokenKind::LBracket: return "'['";
    case TokenKind::RBracket: return "']'";
    case TokenKind::Comma: return "','";
    case TokenKind::Semicolon: return "';'";
    case TokenKind::Dot: return "'.'";
    case TokenKind::Less: return "'<'";
    case TokenKind::LessEq: return "'<='";
    case TokenKind::Greater: return "'>'";
    case TokenKind::GreaterEq: return "'>='";
    case TokenKind::EqEq: return "'=='";
    case TokenKind::NotEq: return "'!='";
    case TokenKind::Assign: return "'='";
    case TokenKind::Plus: return "'+'";
    case TokenKind::Minus: return "'-'";
    case TokenKind::Star: return "'*'";
    case TokenKind::Slash: return "'/'";
    case TokenKind::Percent: return "'%'";
    case TokenKind::PlusAssign: return "'+='";
    case TokenKind::MinusAssign: return "'-='";
    case TokenKind::StarAssign: return "'*='";
    case TokenKind::SlashAssign: return "'/='";
    case TokenKind::PlusPlus: return "'++'";
    case TokenKind::MinusMinus: return "'--'";
    case TokenKind::AmpAmp: return "'&&'";
    case TokenKind::PipePipe: return "'||'";
    case TokenKind::Bang: return "'!'";
    case TokenKind::AnnotationLine: return "annotation";
    case TokenKind::Eof: return "end of input";
  }
  return "?";
}

Lexer::Lexer(std::string_view source, DiagnosticSink& diags)
    : source_(source), diags_(diags) {}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  const char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (at_end() || source_[pos_] != expected) return false;
  advance();
  return true;
}

Token Lexer::make(TokenKind kind, SourcePos begin, std::string text) {
  Token t;
  t.kind = kind;
  t.text = std::move(text);
  t.range = {begin, here()};
  return t;
}

void Lexer::skip_line_comment() {
  while (!at_end() && peek() != '\n') advance();
}

void Lexer::skip_block_comment(SourcePos begin) {
  while (!at_end()) {
    if (peek() == '*' && peek(1) == '/') {
      advance();
      advance();
      return;
    }
    advance();
  }
  diags_.error({begin, here()}, "unterminated block comment");
}

Token Lexer::lex_number(SourcePos begin) {
  std::string digits;
  bool is_double = false;
  while (std::isdigit(static_cast<unsigned char>(peek()))) digits += advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    is_double = true;
    digits += advance();
    while (std::isdigit(static_cast<unsigned char>(peek()))) digits += advance();
  }
  Token t = make(is_double ? TokenKind::DoubleLiteral : TokenKind::IntLiteral,
                 begin, digits);
  if (is_double) {
    t.double_value = std::strtod(digits.c_str(), nullptr);
  } else {
    t.int_value = std::strtoll(digits.c_str(), nullptr, 10);
  }
  return t;
}

Token Lexer::lex_identifier(SourcePos begin) {
  // Slice the source instead of building the spelling char-by-char: the
  // identifier is source_[start, pos_) once we advance past its tail.
  const std::size_t start = pos_;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  const std::string_view name = source_.substr(start, pos_ - start);
  auto it = keyword_table().find(name);
  if (it != keyword_table().end()) return make(it->second, begin, std::string(name));
  // Intern identifiers once during lexing; every later name lookup (parser,
  // sema, effects, detector) compares 32-bit symbol ids instead of strings.
  const support::Symbol sym = support::Symbol::intern(name);
  Token t = make(TokenKind::Identifier, begin, sym.str());
  t.symbol = sym;
  return t;
}

Token Lexer::lex_string(SourcePos begin) {
  std::string value;
  while (!at_end() && peek() != '"') {
    char c = advance();
    if (c == '\\' && !at_end()) {
      const char esc = advance();
      switch (esc) {
        case 'n': value += '\n'; break;
        case 't': value += '\t'; break;
        case '"': value += '"'; break;
        case '\\': value += '\\'; break;
        default:
          diags_.error({begin, here()},
                       std::string("unknown escape sequence \\") + esc);
      }
    } else {
      value += c;
    }
  }
  if (at_end()) {
    diags_.error({begin, here()}, "unterminated string literal");
  } else {
    advance();  // closing quote
  }
  return make(TokenKind::StringLiteral, begin, std::move(value));
}

Token Lexer::lex_annotation(SourcePos begin) {
  // `@` introduces an annotation line: everything until end of line is the
  // annotation body (`tadl ...` or `end`). This mirrors the paper's use of
  // preprocessor regions: visible to TADL-aware tools, inert otherwise.
  std::string body;
  while (!at_end() && peek() != '\n') body += advance();
  // Trim trailing carriage return / spaces.
  while (!body.empty() && (body.back() == '\r' || body.back() == ' '))
    body.pop_back();
  return make(TokenKind::AnnotationLine, begin, std::move(body));
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> tokens;
  while (!at_end()) {
    const SourcePos begin = here();
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      skip_line_comment();
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      advance();
      advance();
      skip_block_comment(begin);
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      tokens.push_back(lex_number(begin));
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      tokens.push_back(lex_identifier(begin));
      continue;
    }
    advance();
    switch (c) {
      case '"': tokens.push_back(lex_string(begin)); break;
      case '@': tokens.push_back(lex_annotation(begin)); break;
      case '(': tokens.push_back(make(TokenKind::LParen, begin)); break;
      case ')': tokens.push_back(make(TokenKind::RParen, begin)); break;
      case '{': tokens.push_back(make(TokenKind::LBrace, begin)); break;
      case '}': tokens.push_back(make(TokenKind::RBrace, begin)); break;
      case '[': tokens.push_back(make(TokenKind::LBracket, begin)); break;
      case ']': tokens.push_back(make(TokenKind::RBracket, begin)); break;
      case ',': tokens.push_back(make(TokenKind::Comma, begin)); break;
      case ';': tokens.push_back(make(TokenKind::Semicolon, begin)); break;
      case '.': tokens.push_back(make(TokenKind::Dot, begin)); break;
      case '<':
        tokens.push_back(make(match('=') ? TokenKind::LessEq : TokenKind::Less, begin));
        break;
      case '>':
        tokens.push_back(
            make(match('=') ? TokenKind::GreaterEq : TokenKind::Greater, begin));
        break;
      case '=':
        tokens.push_back(make(match('=') ? TokenKind::EqEq : TokenKind::Assign, begin));
        break;
      case '!':
        tokens.push_back(make(match('=') ? TokenKind::NotEq : TokenKind::Bang, begin));
        break;
      case '+':
        if (match('=')) tokens.push_back(make(TokenKind::PlusAssign, begin));
        else if (match('+')) tokens.push_back(make(TokenKind::PlusPlus, begin));
        else tokens.push_back(make(TokenKind::Plus, begin));
        break;
      case '-':
        if (match('=')) tokens.push_back(make(TokenKind::MinusAssign, begin));
        else if (match('-')) tokens.push_back(make(TokenKind::MinusMinus, begin));
        else tokens.push_back(make(TokenKind::Minus, begin));
        break;
      case '*':
        tokens.push_back(make(match('=') ? TokenKind::StarAssign : TokenKind::Star, begin));
        break;
      case '/':
        tokens.push_back(make(match('=') ? TokenKind::SlashAssign : TokenKind::Slash, begin));
        break;
      case '%': tokens.push_back(make(TokenKind::Percent, begin)); break;
      case '&':
        if (match('&')) {
          tokens.push_back(make(TokenKind::AmpAmp, begin));
        } else {
          diags_.error({begin, here()}, "expected '&&'");
        }
        break;
      case '|':
        if (match('|')) {
          tokens.push_back(make(TokenKind::PipePipe, begin));
        } else {
          diags_.error({begin, here()}, "expected '||'");
        }
        break;
      default:
        diags_.error({begin, here()},
                     std::string("unexpected character '") + c + "'");
    }
  }
  Token eof;
  eof.kind = TokenKind::Eof;
  eof.range = {here(), here()};
  tokens.push_back(eof);
  return tokens;
}

}  // namespace patty::lang
