#pragma once
// Deep-cloning of AST subtrees with fresh node ids. The transformation phase
// builds parallel programs out of pieces of the analyzed sequential tree;
// cloning keeps the original intact (detection artifacts stay valid) and
// gives the new tree its own id space entries.

#include "lang/ast.hpp"

namespace patty::lang {

/// Clone an expression; new ids are drawn from `program.next_node_id`.
/// Resolved fields (slots, field indices, targets) are preserved.
ExprPtr clone_expr(const Expr& e, Program& program);

/// Clone a statement subtree.
StmtPtr clone_stmt(const Stmt& st, Program& program);

}  // namespace patty::lang
