#include "lang/ast.hpp"

#include "support/diagnostics.hpp"

namespace patty::lang {

namespace {

void walk_expr(const Expr& e, const std::function<void(const Expr&)>& fn) {
  fn(e);
  switch (e.kind) {
    case ExprKind::IntLit:
    case ExprKind::DoubleLit:
    case ExprKind::BoolLit:
    case ExprKind::StringLit:
    case ExprKind::NullLit:
    case ExprKind::VarRef:
      break;
    case ExprKind::FieldAccess:
      walk_expr(*e.as<FieldAccess>().object, fn);
      break;
    case ExprKind::IndexAccess: {
      const auto& ix = e.as<IndexAccess>();
      walk_expr(*ix.base, fn);
      walk_expr(*ix.index, fn);
      break;
    }
    case ExprKind::Call: {
      const auto& c = e.as<Call>();
      if (c.receiver) walk_expr(*c.receiver, fn);
      for (const auto& a : c.args) walk_expr(*a, fn);
      break;
    }
    case ExprKind::New: {
      const auto& n = e.as<New>();
      for (const auto& a : n.args) walk_expr(*a, fn);
      break;
    }
    case ExprKind::NewArray: {
      const auto& n = e.as<NewArray>();
      if (n.size) walk_expr(*n.size, fn);
      break;
    }
    case ExprKind::Binary: {
      const auto& b = e.as<Binary>();
      walk_expr(*b.lhs, fn);
      walk_expr(*b.rhs, fn);
      break;
    }
    case ExprKind::Unary:
      walk_expr(*e.as<Unary>().operand, fn);
      break;
  }
}

void walk_stmt(const Stmt& st, const std::function<void(const Stmt&)>& stmt_fn,
               const std::function<void(const Expr&)>* expr_fn) {
  if (stmt_fn) stmt_fn(st);
  auto on_expr = [&](const Expr& e) {
    if (expr_fn) walk_expr(e, *expr_fn);
  };
  switch (st.kind) {
    case StmtKind::Block:
      for (const auto& s : st.as<Block>().stmts) walk_stmt(*s, stmt_fn, expr_fn);
      break;
    case StmtKind::VarDecl: {
      const auto& d = st.as<VarDecl>();
      if (d.init) on_expr(*d.init);
      break;
    }
    case StmtKind::Assign: {
      const auto& a = st.as<Assign>();
      on_expr(*a.target);
      on_expr(*a.value);
      break;
    }
    case StmtKind::ExprStmt:
      on_expr(*st.as<ExprStmt>().expr);
      break;
    case StmtKind::If: {
      const auto& i = st.as<If>();
      on_expr(*i.cond);
      walk_stmt(*i.then_branch, stmt_fn, expr_fn);
      if (i.else_branch) walk_stmt(*i.else_branch, stmt_fn, expr_fn);
      break;
    }
    case StmtKind::While: {
      const auto& w = st.as<While>();
      on_expr(*w.cond);
      walk_stmt(*w.body, stmt_fn, expr_fn);
      break;
    }
    case StmtKind::For: {
      const auto& f = st.as<For>();
      if (f.init) walk_stmt(*f.init, stmt_fn, expr_fn);
      if (f.cond) on_expr(*f.cond);
      if (f.step) walk_stmt(*f.step, stmt_fn, expr_fn);
      walk_stmt(*f.body, stmt_fn, expr_fn);
      break;
    }
    case StmtKind::Foreach: {
      const auto& f = st.as<Foreach>();
      on_expr(*f.iterable);
      walk_stmt(*f.body, stmt_fn, expr_fn);
      break;
    }
    case StmtKind::Return: {
      const auto& r = st.as<Return>();
      if (r.value) on_expr(*r.value);
      break;
    }
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Annotation:
      break;
  }
}

}  // namespace

void ClassDecl::build_member_index() {
  static const Symbol kInit = Symbol::intern("init");
  static const Symbol kMain = Symbol::intern("main");
  method_index.clear();
  method_index.reserve(methods.size());
  for (const auto& m : methods) method_index.emplace(m->name, m.get());
  field_index.clear();
  field_index.reserve(fields.size());
  for (std::size_t i = 0; i < fields.size(); ++i)
    field_index.emplace(fields[i].name, static_cast<int>(i));
  auto ctor_it = method_index.find(kInit);
  ctor = ctor_it == method_index.end() ? nullptr : ctor_it->second;
  auto main_it = method_index.find(kMain);
  main_method = main_it == method_index.end() ? nullptr : main_it->second;
}

void Program::build_class_index() {
  class_index.clear();
  class_index.reserve(classes.size());
  for (const auto& c : classes) class_index.emplace(c->name, c.get());
}

void for_each_stmt(const Stmt& st, const std::function<void(const Stmt&)>& fn) {
  walk_stmt(st, fn, nullptr);
}

void for_each_expr(const Stmt& st, const std::function<void(const Expr&)>& fn) {
  walk_stmt(st, nullptr, &fn);
}

void for_each_expr_in(const Expr& e,
                      const std::function<void(const Expr&)>& fn) {
  walk_expr(e, fn);
}

const char* binary_op_str(BinaryOp op) {
  switch (op) {
    case BinaryOp::Add: return "+";
    case BinaryOp::Sub: return "-";
    case BinaryOp::Mul: return "*";
    case BinaryOp::Div: return "/";
    case BinaryOp::Mod: return "%";
    case BinaryOp::Lt: return "<";
    case BinaryOp::Le: return "<=";
    case BinaryOp::Gt: return ">";
    case BinaryOp::Ge: return ">=";
    case BinaryOp::Eq: return "==";
    case BinaryOp::Ne: return "!=";
    case BinaryOp::And: return "&&";
    case BinaryOp::Or: return "||";
  }
  return "?";
}

const char* unary_op_str(UnaryOp op) {
  switch (op) {
    case UnaryOp::Neg: return "-";
    case UnaryOp::Not: return "!";
  }
  return "?";
}

}  // namespace patty::lang
