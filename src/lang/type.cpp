#include "lang/type.hpp"

namespace patty::lang {

namespace {
TypePtr make_simple(Type::Kind kind) {
  auto t = std::make_shared<Type>();
  t->kind = kind;
  return t;
}
}  // namespace

std::string Type::str() const {
  switch (kind) {
    case Kind::Void: return "void";
    case Kind::Int: return "int";
    case Kind::Double: return "double";
    case Kind::Bool: return "bool";
    case Kind::String: return "string";
    case Kind::Null: return "null";
    case Kind::Class: return class_name.str();
    case Kind::Array: return element->str() + "[]";
    case Kind::List: return "list<" + element->str() + ">";
  }
  return "?";
}

support::Symbol Type::sig() const {
  const std::uint32_t cached = sig_cache_.load(std::memory_order_relaxed);
  if (cached != 0) return support::Symbol::from_id(cached);
  if (kind == Kind::Class) {
    // Class types carry their interned spelling already; skip the re-intern.
    sig_cache_.store(class_name.id(), std::memory_order_relaxed);
    return class_name;
  }
  const support::Symbol s = support::Symbol::intern(str());
  sig_cache_.store(s.id(), std::memory_order_relaxed);
  return s;
}

TypePtr Type::void_t() {
  static const TypePtr t = make_simple(Kind::Void);
  return t;
}
TypePtr Type::int_t() {
  static const TypePtr t = make_simple(Kind::Int);
  return t;
}
TypePtr Type::double_t() {
  static const TypePtr t = make_simple(Kind::Double);
  return t;
}
TypePtr Type::bool_t() {
  static const TypePtr t = make_simple(Kind::Bool);
  return t;
}
TypePtr Type::string_t() {
  static const TypePtr t = make_simple(Kind::String);
  return t;
}
TypePtr Type::null_t() {
  static const TypePtr t = make_simple(Kind::Null);
  return t;
}

TypePtr Type::class_t(support::Symbol name) {
  auto t = std::make_shared<Type>();
  t->kind = Kind::Class;
  t->class_name = name;
  return t;
}

TypePtr Type::class_t(const std::string& name) {
  return class_t(support::Symbol::intern(name));
}

TypePtr Type::array_t(TypePtr element) {
  auto t = std::make_shared<Type>();
  t->kind = Kind::Array;
  t->element = std::move(element);
  return t;
}

TypePtr Type::list_t(TypePtr element) {
  auto t = std::make_shared<Type>();
  t->kind = Kind::List;
  t->element = std::move(element);
  return t;
}

bool same_type(const Type& a, const Type& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Type::Kind::Class: return a.class_name == b.class_name;
    case Type::Kind::Array:
    case Type::Kind::List: return same_type(*a.element, *b.element);
    default: return true;
  }
}

bool assignable(const Type& target, const Type& source) {
  if (same_type(target, source)) return true;
  if (target.kind == Type::Kind::Double && source.kind == Type::Kind::Int)
    return true;
  if (target.is_reference() && source.kind == Type::Kind::Null) return true;
  return false;
}

}  // namespace patty::lang
