#include "lang/parser.hpp"

#include "lang/lexer.hpp"
#include "support/diagnostics.hpp"

namespace patty::lang {

namespace {

/// Binary operator precedence; higher binds tighter. -1 = not a binary op.
int precedence_of(TokenKind kind) {
  switch (kind) {
    case TokenKind::PipePipe: return 1;
    case TokenKind::AmpAmp: return 2;
    case TokenKind::EqEq:
    case TokenKind::NotEq: return 3;
    case TokenKind::Less:
    case TokenKind::LessEq:
    case TokenKind::Greater:
    case TokenKind::GreaterEq: return 4;
    case TokenKind::Plus:
    case TokenKind::Minus: return 5;
    case TokenKind::Star:
    case TokenKind::Slash:
    case TokenKind::Percent: return 6;
    default: return -1;
  }
}

BinaryOp binop_of(TokenKind kind) {
  switch (kind) {
    case TokenKind::PipePipe: return BinaryOp::Or;
    case TokenKind::AmpAmp: return BinaryOp::And;
    case TokenKind::EqEq: return BinaryOp::Eq;
    case TokenKind::NotEq: return BinaryOp::Ne;
    case TokenKind::Less: return BinaryOp::Lt;
    case TokenKind::LessEq: return BinaryOp::Le;
    case TokenKind::Greater: return BinaryOp::Gt;
    case TokenKind::GreaterEq: return BinaryOp::Ge;
    case TokenKind::Plus: return BinaryOp::Add;
    case TokenKind::Minus: return BinaryOp::Sub;
    case TokenKind::Star: return BinaryOp::Mul;
    case TokenKind::Slash: return BinaryOp::Div;
    case TokenKind::Percent: return BinaryOp::Mod;
    default: fatal("not a binary operator token");
  }
}

}  // namespace

Parser::Parser(std::vector<Token> tokens, DiagnosticSink& diags)
    : tokens_(std::move(tokens)), diags_(diags) {
  if (tokens_.empty() || tokens_.back().kind != TokenKind::Eof)
    fatal("token stream must end with Eof");
}

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
  return tokens_[i];
}

const Token& Parser::advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  last_end_ = t.range.end;
  return t;
}

bool Parser::accept(TokenKind kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

const Token& Parser::expect(TokenKind kind, const char* context) {
  if (check(kind)) return advance();
  diags_.error(peek().range, std::string("expected ") + token_kind_name(kind) +
                                 " " + context + ", found " +
                                 token_kind_name(peek().kind));
  return peek();  // do not consume; caller synchronizes
}

void Parser::synchronize() {
  // Skip to the next statement/member boundary after a parse error.
  while (!at_end()) {
    const TokenKind k = peek().kind;
    if (k == TokenKind::Semicolon) {
      advance();
      return;
    }
    if (k == TokenKind::RBrace || k == TokenKind::KwClass) return;
    advance();
  }
}

std::unique_ptr<Program> Parser::parse_program() {
  program_ = std::make_unique<Program>();
  while (!at_end()) {
    if (check(TokenKind::KwClass)) {
      auto cls = parse_class();
      if (cls) program_->classes.push_back(std::move(cls));
    } else {
      diags_.error(peek().range, std::string("expected 'class', found ") +
                                     token_kind_name(peek().kind));
      advance();
    }
  }
  if (diags_.has_errors()) return nullptr;
  return std::move(program_);
}

AstPtr<ClassDecl> Parser::parse_class() {
  const SourcePos begin = begin_pos();
  expect(TokenKind::KwClass, "to start class declaration");
  auto cls = support::make_in<ClassDecl>(program_->arena);
  cls->name = expect(TokenKind::Identifier, "as class name").symbol;
  expect(TokenKind::LBrace, "to open class body");
  while (!check(TokenKind::RBrace) && !at_end()) {
    parse_member(*cls);
  }
  expect(TokenKind::RBrace, "to close class body");
  cls->range = {begin, last_end()};
  return cls;
}

void Parser::parse_member(ClassDecl& cls) {
  const SourcePos begin = begin_pos();
  TypePtr type = parse_type();
  const Symbol name = expect(TokenKind::Identifier, "as member name").symbol;
  if (accept(TokenKind::Semicolon)) {
    FieldDecl field;
    field.type = std::move(type);
    field.name = name;
    field.range = {begin, last_end()};
    cls.fields.push_back(std::move(field));
    return;
  }
  auto method = support::make_in<MethodDecl>(program_->arena);
  method->return_type = std::move(type);
  method->name = name;
  expect(TokenKind::LParen, "to open parameter list");
  if (!check(TokenKind::RParen)) {
    do {
      Param p;
      const SourcePos pbegin = begin_pos();
      p.type = parse_type();
      p.name = expect(TokenKind::Identifier, "as parameter name").symbol;
      p.range = {pbegin, last_end()};
      method->params.push_back(std::move(p));
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close parameter list");
  method->body = parse_block();
  method->range = {begin, last_end()};
  cls.methods.push_back(std::move(method));
}

TypePtr Parser::parse_type() {
  TypePtr base;
  switch (peek().kind) {
    case TokenKind::KwInt: advance(); base = Type::int_t(); break;
    case TokenKind::KwDouble: advance(); base = Type::double_t(); break;
    case TokenKind::KwBool: advance(); base = Type::bool_t(); break;
    case TokenKind::KwString: advance(); base = Type::string_t(); break;
    case TokenKind::KwVoid: advance(); base = Type::void_t(); break;
    case TokenKind::KwList: {
      advance();
      expect(TokenKind::Less, "after 'list'");
      TypePtr elem = parse_type();
      expect(TokenKind::Greater, "to close 'list<...>'");
      base = Type::list_t(std::move(elem));
      break;
    }
    case TokenKind::Identifier:
      base = Type::class_t(advance().symbol);
      break;
    default:
      diags_.error(peek().range, std::string("expected a type, found ") +
                                     token_kind_name(peek().kind));
      advance();
      base = Type::int_t();
      break;
  }
  while (check(TokenKind::LBracket) && peek(1).kind == TokenKind::RBracket) {
    advance();
    advance();
    base = Type::array_t(std::move(base));
  }
  return base;
}

bool Parser::looks_like_type_start() const {
  switch (peek().kind) {
    case TokenKind::KwInt:
    case TokenKind::KwDouble:
    case TokenKind::KwBool:
    case TokenKind::KwString:
    case TokenKind::KwVoid:
    case TokenKind::KwList:
      return true;
    default:
      return false;
  }
}

bool Parser::looks_like_var_decl() const {
  if (looks_like_type_start()) return true;
  if (!check(TokenKind::Identifier)) return false;
  // `C x ...` or `C[] x ...`
  std::size_t i = 1;
  while (peek(i).kind == TokenKind::LBracket &&
         peek(i + 1).kind == TokenKind::RBracket)
    i += 2;
  return peek(i).kind == TokenKind::Identifier;
}

AstPtr<Block> Parser::parse_block() {
  const SourcePos begin = begin_pos();
  expect(TokenKind::LBrace, "to open block");
  auto block = make_stmt<Block>(begin);
  while (!check(TokenKind::RBrace) && !at_end()) {
    const std::size_t before = pos_;
    StmtPtr st = parse_stmt();
    if (st) block->stmts.push_back(std::move(st));
    if (pos_ == before) {  // no progress: error recovery
      synchronize();
      if (pos_ == before) advance();
    }
  }
  expect(TokenKind::RBrace, "to close block");
  block->range.end = last_end();
  return block;
}

StmtPtr Parser::parse_stmt() {
  switch (peek().kind) {
    case TokenKind::LBrace: return parse_block();
    case TokenKind::KwIf: return parse_if();
    case TokenKind::KwWhile: return parse_while();
    case TokenKind::KwFor: return parse_for();
    case TokenKind::KwForeach: return parse_foreach();
    case TokenKind::AnnotationLine: {
      const SourcePos begin = begin_pos();
      auto ann = make_stmt<Annotation>(begin);
      ann->text = advance().text;
      ann->range.end = last_end();
      return ann;
    }
    case TokenKind::KwReturn: {
      const SourcePos begin = begin_pos();
      advance();
      auto ret = make_stmt<Return>(begin);
      if (!check(TokenKind::Semicolon)) ret->value = parse_expr();
      expect(TokenKind::Semicolon, "after return");
      ret->range.end = last_end();
      return ret;
    }
    case TokenKind::KwBreak: {
      const SourcePos begin = begin_pos();
      advance();
      auto br = make_stmt<Break>(begin);
      expect(TokenKind::Semicolon, "after break");
      br->range.end = last_end();
      return br;
    }
    case TokenKind::KwContinue: {
      const SourcePos begin = begin_pos();
      advance();
      auto ct = make_stmt<Continue>(begin);
      expect(TokenKind::Semicolon, "after continue");
      ct->range.end = last_end();
      return ct;
    }
    default:
      if (looks_like_var_decl()) return parse_var_decl(/*eat_semicolon=*/true);
      return parse_simple_stmt(/*eat_semicolon=*/true);
  }
}

StmtPtr Parser::parse_var_decl(bool eat_semicolon) {
  const SourcePos begin = begin_pos();
  auto decl = make_stmt<VarDecl>(begin);
  decl->declared = parse_type();
  decl->name = expect(TokenKind::Identifier, "as variable name").symbol;
  if (accept(TokenKind::Assign)) decl->init = parse_expr();
  if (eat_semicolon) expect(TokenKind::Semicolon, "after variable declaration");
  decl->range.end = last_end();
  return decl;
}

StmtPtr Parser::parse_if() {
  const SourcePos begin = begin_pos();
  expect(TokenKind::KwIf, "to start if");
  auto node = make_stmt<If>(begin);
  expect(TokenKind::LParen, "after 'if'");
  node->cond = parse_expr();
  expect(TokenKind::RParen, "to close if condition");
  node->then_branch = parse_stmt();
  if (accept(TokenKind::KwElse)) node->else_branch = parse_stmt();
  node->range.end = last_end();
  return node;
}

StmtPtr Parser::parse_while() {
  const SourcePos begin = begin_pos();
  expect(TokenKind::KwWhile, "to start while");
  auto node = make_stmt<While>(begin);
  expect(TokenKind::LParen, "after 'while'");
  node->cond = parse_expr();
  expect(TokenKind::RParen, "to close while condition");
  node->body = parse_stmt();
  node->range.end = last_end();
  return node;
}

StmtPtr Parser::parse_for() {
  const SourcePos begin = begin_pos();
  expect(TokenKind::KwFor, "to start for");
  auto node = make_stmt<For>(begin);
  expect(TokenKind::LParen, "after 'for'");
  if (!check(TokenKind::Semicolon)) {
    node->init = looks_like_var_decl() ? parse_var_decl(/*eat_semicolon=*/false)
                                       : parse_simple_stmt(false);
  }
  expect(TokenKind::Semicolon, "after for-init");
  if (!check(TokenKind::Semicolon)) node->cond = parse_expr();
  expect(TokenKind::Semicolon, "after for-condition");
  if (!check(TokenKind::RParen)) node->step = parse_simple_stmt(false);
  expect(TokenKind::RParen, "to close for header");
  node->body = parse_stmt();
  node->range.end = last_end();
  return node;
}

StmtPtr Parser::parse_foreach() {
  const SourcePos begin = begin_pos();
  expect(TokenKind::KwForeach, "to start foreach");
  auto node = make_stmt<Foreach>(begin);
  expect(TokenKind::LParen, "after 'foreach'");
  node->element_declared = parse_type();
  node->var_name = expect(TokenKind::Identifier, "as loop variable").symbol;
  expect(TokenKind::KwIn, "in foreach header");
  node->iterable = parse_expr();
  expect(TokenKind::RParen, "to close foreach header");
  node->body = parse_stmt();
  node->range.end = last_end();
  return node;
}

StmtPtr Parser::parse_simple_stmt(bool eat_semicolon) {
  const SourcePos begin = begin_pos();
  // Remember the token position so compound assignments can re-parse the
  // target to build the desugared right-hand-side copy.
  const std::size_t target_start = pos_;
  ExprPtr first = parse_expr();

  auto reparse_target = [&]() {
    const std::size_t save = pos_;
    pos_ = target_start;
    ExprPtr copy = parse_expr();
    pos_ = save;
    return copy;
  };

  auto finish = [&](StmtPtr st) {
    if (eat_semicolon) expect(TokenKind::Semicolon, "after statement");
    st->range.end = last_end();
    return st;
  };

  const TokenKind k = peek().kind;
  if (k == TokenKind::Assign) {
    advance();
    auto assign = make_stmt<Assign>(begin);
    assign->target = std::move(first);
    assign->value = parse_expr();
    return finish(std::move(assign));
  }
  if (k == TokenKind::PlusAssign || k == TokenKind::MinusAssign ||
      k == TokenKind::StarAssign || k == TokenKind::SlashAssign) {
    // Desugar `x op= e` into `x = x op e` before consuming the operator, so
    // the re-parse of the target sees the same tokens.
    ExprPtr lhs_copy = reparse_target();
    advance();
    BinaryOp op = BinaryOp::Add;
    if (k == TokenKind::MinusAssign) op = BinaryOp::Sub;
    if (k == TokenKind::StarAssign) op = BinaryOp::Mul;
    if (k == TokenKind::SlashAssign) op = BinaryOp::Div;
    auto rhs = make_expr<Binary>(begin);
    rhs->op = op;
    rhs->lhs = std::move(lhs_copy);
    rhs->rhs = parse_expr();
    rhs->range.end = last_end();
    auto assign = make_stmt<Assign>(begin);
    assign->target = std::move(first);
    assign->value = std::move(rhs);
    return finish(std::move(assign));
  }
  if (k == TokenKind::PlusPlus || k == TokenKind::MinusMinus) {
    ExprPtr lhs_copy = reparse_target();
    advance();
    auto one = make_expr<IntLit>(begin);
    one->value = 1;
    one->range.end = last_end();
    auto rhs = make_expr<Binary>(begin);
    rhs->op = (k == TokenKind::PlusPlus) ? BinaryOp::Add : BinaryOp::Sub;
    rhs->lhs = std::move(lhs_copy);
    rhs->rhs = std::move(one);
    rhs->range.end = last_end();
    auto assign = make_stmt<Assign>(begin);
    assign->target = std::move(first);
    assign->value = std::move(rhs);
    return finish(std::move(assign));
  }

  auto st = make_stmt<ExprStmt>(begin);
  st->expr = std::move(first);
  return finish(std::move(st));
}

ExprPtr Parser::parse_expr() { return parse_binary(1); }

ExprPtr Parser::parse_binary(int min_precedence) {
  ExprPtr lhs = parse_unary();
  while (true) {
    const int prec = precedence_of(peek().kind);
    if (prec < min_precedence) return lhs;
    const SourcePos begin = lhs->range.begin;
    const TokenKind op_token = advance().kind;
    ExprPtr rhs = parse_binary(prec + 1);
    auto node = make_expr<Binary>(begin);
    node->op = binop_of(op_token);
    node->lhs = std::move(lhs);
    node->rhs = std::move(rhs);
    node->range.end = last_end();
    lhs = std::move(node);
  }
}

ExprPtr Parser::parse_unary() {
  const SourcePos begin = begin_pos();
  if (accept(TokenKind::Minus)) {
    auto node = make_expr<Unary>(begin);
    node->op = UnaryOp::Neg;
    node->operand = parse_unary();
    node->range.end = last_end();
    return node;
  }
  if (accept(TokenKind::Bang)) {
    auto node = make_expr<Unary>(begin);
    node->op = UnaryOp::Not;
    node->operand = parse_unary();
    node->range.end = last_end();
    return node;
  }
  return parse_postfix();
}

ExprPtr Parser::parse_postfix() {
  ExprPtr expr = parse_primary();
  while (true) {
    if (check(TokenKind::Dot)) {
      advance();
      const SourcePos begin = expr->range.begin;
      const Symbol name = expect(TokenKind::Identifier, "after '.'").symbol;
      if (check(TokenKind::LParen)) {
        auto call = make_expr<Call>(begin);
        call->receiver = std::move(expr);
        call->name = name;
        call->args = parse_args();
        call->range.end = last_end();
        expr = std::move(call);
      } else {
        auto field = make_expr<FieldAccess>(begin);
        field->object = std::move(expr);
        field->field = name;
        field->range.end = last_end();
        expr = std::move(field);
      }
      continue;
    }
    if (check(TokenKind::LBracket)) {
      advance();
      const SourcePos begin = expr->range.begin;
      auto index = make_expr<IndexAccess>(begin);
      index->base = std::move(expr);
      index->index = parse_expr();
      expect(TokenKind::RBracket, "to close index");
      index->range.end = last_end();
      expr = std::move(index);
      continue;
    }
    return expr;
  }
}

std::vector<ExprPtr> Parser::parse_args() {
  expect(TokenKind::LParen, "to open argument list");
  std::vector<ExprPtr> args;
  if (!check(TokenKind::RParen)) {
    do {
      args.push_back(parse_expr());
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close argument list");
  return args;
}

ExprPtr Parser::parse_primary() {
  const SourcePos begin = begin_pos();
  switch (peek().kind) {
    case TokenKind::IntLiteral: {
      auto node = make_expr<IntLit>(begin);
      node->value = advance().int_value;
      node->range.end = last_end();
      return node;
    }
    case TokenKind::DoubleLiteral: {
      auto node = make_expr<DoubleLit>(begin);
      node->value = advance().double_value;
      node->range.end = last_end();
      return node;
    }
    case TokenKind::StringLiteral: {
      auto node = make_expr<StringLit>(begin);
      node->value = advance().text;
      node->range.end = last_end();
      return node;
    }
    case TokenKind::KwTrue:
    case TokenKind::KwFalse: {
      auto node = make_expr<BoolLit>(begin);
      node->value = advance().kind == TokenKind::KwTrue;
      node->range.end = last_end();
      return node;
    }
    case TokenKind::KwNull: {
      advance();
      auto node = make_expr<NullLit>(begin);
      node->range.end = last_end();
      return node;
    }
    case TokenKind::KwNew:
      return parse_new();
    case TokenKind::LParen: {
      advance();
      ExprPtr inner = parse_expr();
      expect(TokenKind::RParen, "to close parenthesized expression");
      return inner;
    }
    case TokenKind::Identifier: {
      const Symbol name = advance().symbol;
      if (check(TokenKind::LParen)) {
        auto call = make_expr<Call>(begin);
        call->name = name;
        call->args = parse_args();
        call->range.end = last_end();
        return call;
      }
      auto ref = make_expr<VarRef>(begin);
      ref->name = name;
      ref->range.end = last_end();
      return ref;
    }
    default: {
      diags_.error(peek().range,
                   std::string("expected an expression, found ") +
                       token_kind_name(peek().kind));
      advance();
      auto node = make_expr<IntLit>(begin);
      node->range.end = last_end();
      return node;
    }
  }
}

ExprPtr Parser::parse_new() {
  const SourcePos begin = begin_pos();
  expect(TokenKind::KwNew, "to start new-expression");
  if (check(TokenKind::KwList)) {
    // `new list<T>()`
    TypePtr list_type = parse_type();
    expect(TokenKind::LParen, "after list type");
    expect(TokenKind::RParen, "after list type");
    auto node = make_expr<NewArray>(begin);
    node->allocated = std::move(list_type);
    node->range.end = last_end();
    return node;
  }
  TypePtr base;
  switch (peek().kind) {
    case TokenKind::KwInt: advance(); base = Type::int_t(); break;
    case TokenKind::KwDouble: advance(); base = Type::double_t(); break;
    case TokenKind::KwBool: advance(); base = Type::bool_t(); break;
    case TokenKind::KwString: advance(); base = Type::string_t(); break;
    case TokenKind::Identifier: base = Type::class_t(advance().symbol); break;
    default:
      diags_.error(peek().range, "expected type after 'new'");
      advance();
      base = Type::int_t();
      break;
  }
  if (check(TokenKind::LBracket)) {
    advance();
    auto node = make_expr<NewArray>(begin);
    node->size = parse_expr();
    expect(TokenKind::RBracket, "to close array size");
    node->allocated = Type::array_t(std::move(base));
    node->range.end = last_end();
    return node;
  }
  if (base->kind != Type::Kind::Class) {
    diags_.error({begin, last_end()}, "'new' of non-class type needs '[size]'");
  }
  auto node = make_expr<New>(begin);
  node->class_name = base->class_name;
  node->args = parse_args();
  node->range.end = last_end();
  return node;
}

std::unique_ptr<Program> parse_source(std::string_view source,
                                      DiagnosticSink& diags) {
  Lexer lexer(source, diags);
  std::vector<Token> tokens = lexer.tokenize();
  if (diags.has_errors()) return nullptr;
  Parser parser(std::move(tokens), diags);
  return parser.parse_program();
}

}  // namespace patty::lang
