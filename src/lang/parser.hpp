#pragma once
// Recursive-descent parser for MiniOO.
//
// Grammar (EBNF, `?` optional, `*` repetition):
//   program   := classDecl*
//   classDecl := "class" IDENT "{" member* "}"
//   member    := type IDENT ( ";" | "(" params ")" block )
//   type      := ("int"|"double"|"bool"|"string"|"void"|IDENT
//                 |"list" "<" type ">") ("[" "]")*
//   block     := "{" stmt* "}"
//   stmt      := block | "@..." annotation line | varDecl
//              | "if" "(" expr ")" stmt ("else" stmt)?
//              | "while" "(" expr ")" stmt
//              | "for" "(" simple? ";" expr? ";" simple? ")" stmt
//              | "foreach" "(" type IDENT "in" expr ")" stmt
//              | "return" expr? ";" | "break" ";" | "continue" ";"
//              | exprOrAssign ";"
//   exprOrAssign := expr (("="|"+="|"-="|"*="|"/=") expr)? | expr("++"|"--")
//   expr      := precedence climbing over || && ==/!= relational +- */% unary
//   postfix   := primary ("." IDENT ("(" args ")")? | "[" expr "]" )*
//   primary   := literal | IDENT | IDENT "(" args ")" | "(" expr ")"
//              | "new" baseType ("[" expr "]" | "(" args ")")
//
// Compound assignment and ++/-- are desugared to plain assignments during
// parsing, so downstream analyses only ever see canonical forms.

#include <memory>
#include <string_view>
#include <vector>

#include "lang/ast.hpp"
#include "lang/token.hpp"
#include "support/diagnostics.hpp"

namespace patty::lang {

class Parser {
 public:
  Parser(std::vector<Token> tokens, DiagnosticSink& diags);

  /// Parse a whole program. Returns nullptr if parsing failed hard.
  std::unique_ptr<Program> parse_program();

 private:
  const Token& peek(std::size_t ahead = 0) const;
  const Token& advance();
  bool check(TokenKind kind) const { return peek().kind == kind; }
  bool accept(TokenKind kind);
  const Token& expect(TokenKind kind, const char* context);
  [[nodiscard]] bool at_end() const { return peek().kind == TokenKind::Eof; }

  int fresh_id() { return program_->next_node_id++; }
  // All AST nodes live in the program's arena (see support/arena.hpp):
  // allocation is a pointer bump, and the whole tree's memory is released
  // in one chunk drop when the Program dies.
  template <typename T>
  AstPtr<T> make_expr(SourcePos begin) {
    auto node = program_->make<T>();
    node->id = fresh_id();
    node->range.begin = begin;
    return node;
  }
  template <typename T>
  AstPtr<T> make_stmt(SourcePos begin) {
    auto node = program_->make<T>();
    node->id = fresh_id();
    node->range.begin = begin;
    return node;
  }
  SourcePos begin_pos() const { return peek().range.begin; }
  SourcePos last_end() const { return last_end_; }

  AstPtr<ClassDecl> parse_class();
  void parse_member(ClassDecl& cls);
  TypePtr parse_type();
  [[nodiscard]] bool looks_like_type_start() const;
  [[nodiscard]] bool looks_like_var_decl() const;

  AstPtr<Block> parse_block();
  StmtPtr parse_stmt();
  StmtPtr parse_var_decl(bool eat_semicolon);
  StmtPtr parse_if();
  StmtPtr parse_while();
  StmtPtr parse_for();
  StmtPtr parse_foreach();
  StmtPtr parse_simple_stmt(bool eat_semicolon);

  ExprPtr parse_expr();
  ExprPtr parse_binary(int min_precedence);
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();
  ExprPtr parse_new();
  std::vector<ExprPtr> parse_args();

  void synchronize();

  std::vector<Token> tokens_;
  DiagnosticSink& diags_;
  std::size_t pos_ = 0;
  SourcePos last_end_;
  std::unique_ptr<Program> program_;
};

/// Convenience: lex + parse in one step.
std::unique_ptr<Program> parse_source(std::string_view source,
                                      DiagnosticSink& diags);

}  // namespace patty::lang
