#pragma once
// MiniOO's type system: void, int (64-bit), double, bool, string, class
// types, fixed arrays `T[]` and growable lists `list<T>`. Types are small
// value objects; element types are shared.

#include <atomic>
#include <memory>
#include <string>

#include "support/intern.hpp"

namespace patty::lang {

struct Type;
using TypePtr = std::shared_ptr<const Type>;

struct Type {
  enum class Kind { Void, Int, Double, Bool, String, Class, Array, List, Null };

  Kind kind = Kind::Void;
  support::Symbol class_name;  // Kind::Class only
  TypePtr element;             // Kind::Array / Kind::List only

  [[nodiscard]] bool is_numeric() const {
    return kind == Kind::Int || kind == Kind::Double;
  }
  [[nodiscard]] bool is_reference() const {
    return kind == Kind::Class || kind == Kind::Array || kind == Kind::List ||
           kind == Kind::Null;
  }

  [[nodiscard]] std::string str() const;

  /// Interned spelling of str(), memoized. The cache is an atomic symbol id
  /// because builtin singleton types are shared across analysis threads; a
  /// racing recompute is benign (interning the same text yields the same id).
  [[nodiscard]] support::Symbol sig() const;

  static TypePtr void_t();
  static TypePtr int_t();
  static TypePtr double_t();
  static TypePtr bool_t();
  static TypePtr string_t();
  static TypePtr null_t();
  static TypePtr class_t(support::Symbol name);
  static TypePtr class_t(const std::string& name);
  static TypePtr array_t(TypePtr element);
  static TypePtr list_t(TypePtr element);

 private:
  mutable std::atomic<std::uint32_t> sig_cache_{0};  // 0 = not computed
};

/// Structural equality (Null compares equal only to Null).
bool same_type(const Type& a, const Type& b);

/// Assignment compatibility: exact match, int->double widening, or null into
/// any reference type.
bool assignable(const Type& target, const Type& source);

}  // namespace patty::lang
