#pragma once
// MiniOO's type system: void, int (64-bit), double, bool, string, class
// types, fixed arrays `T[]` and growable lists `list<T>`. Types are small
// value objects; element types are shared.

#include <memory>
#include <string>

namespace patty::lang {

struct Type;
using TypePtr = std::shared_ptr<const Type>;

struct Type {
  enum class Kind { Void, Int, Double, Bool, String, Class, Array, List, Null };

  Kind kind = Kind::Void;
  std::string class_name;  // Kind::Class only
  TypePtr element;         // Kind::Array / Kind::List only

  [[nodiscard]] bool is_numeric() const {
    return kind == Kind::Int || kind == Kind::Double;
  }
  [[nodiscard]] bool is_reference() const {
    return kind == Kind::Class || kind == Kind::Array || kind == Kind::List ||
           kind == Kind::Null;
  }

  [[nodiscard]] std::string str() const;

  static TypePtr void_t();
  static TypePtr int_t();
  static TypePtr double_t();
  static TypePtr bool_t();
  static TypePtr string_t();
  static TypePtr null_t();
  static TypePtr class_t(std::string name);
  static TypePtr array_t(TypePtr element);
  static TypePtr list_t(TypePtr element);
};

/// Structural equality (Null compares equal only to Null).
bool same_type(const Type& a, const Type& b);

/// Assignment compatibility: exact match, int->double widening, or null into
/// any reference type.
bool assignable(const Type& target, const Type& source);

}  // namespace patty::lang
