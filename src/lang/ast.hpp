#pragma once
// MiniOO abstract syntax tree.
//
// Design notes:
//  * Plain class hierarchy with a Kind tag and checked downcast helpers —
//    analyses switch on the tag, which keeps the dependence/CFG code flat.
//  * Every statement and expression carries a unique integer id (assigned by
//    the parser) used as the key in all side tables (CFG nodes, dependence
//    edges, profiles, tuning-parameter locations).
//  * Semantic analysis fills in the `resolved_*` fields in place; the tree
//    is otherwise immutable after parsing. The transformer builds new trees
//    rather than mutating analyzed ones.
//  * Memory layout: every node lives in its Program's bump arena
//    (support/arena.hpp) — ExprPtr/StmtPtr run destructors but the bytes
//    are reclaimed wholesale when the Program drops. Names are interned
//    Symbols (support/intern.hpp): comparisons are integer compares and
//    member lookup is an indexed map built by sema.

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "lang/type.hpp"
#include "support/arena.hpp"
#include "support/intern.hpp"
#include "support/source_location.hpp"

namespace patty::lang {

using support::Symbol;
using support::SymbolHash;

struct ClassDecl;
struct MethodDecl;
struct Stmt;

/// Owning pointer to an arena-placed AST node: the destructor runs (nodes
/// hold std::vector/TypePtr members), the memory stays with the arena.
template <typename T>
using AstPtr = support::ArenaPtr<T>;

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind : std::uint8_t {
  IntLit, DoubleLit, BoolLit, StringLit, NullLit,
  VarRef, FieldAccess, IndexAccess,
  Call, New, NewArray,
  Binary, Unary,
};

enum class BinaryOp : std::uint8_t {
  Add, Sub, Mul, Div, Mod,
  Lt, Le, Gt, Ge, Eq, Ne,
  And, Or,
};

enum class UnaryOp : std::uint8_t { Neg, Not };

/// Builtin free functions recognized by name during semantic analysis.
enum class Builtin : std::uint8_t {
  None,
  Print,    // print(any) -> void
  Len,      // len(array|list|string) -> int
  Push,     // push(list<T>, T) -> void
  Work,     // work(int) -> int : burns n deterministic cost units of CPU
  Sqrt,     // sqrt(double) -> double
  Abs,      // abs(numeric) -> numeric
  MinOf,    // min(numeric, numeric) -> numeric
  MaxOf,    // max(numeric, numeric) -> numeric
  Floor,    // floor(double) -> int
  ToStr,    // str(any) -> string
  Clamp,    // clamp(int v, int lo, int hi) -> int
};

struct Expr {
  ExprKind kind;
  int id = -1;                 // unique within the Program
  SourceRange range;
  TypePtr type;                // filled by sema

  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  template <typename T>
  [[nodiscard]] const T& as() const { return static_cast<const T&>(*this); }
  template <typename T>
  [[nodiscard]] T& as() { return static_cast<T&>(*this); }
};

using ExprPtr = AstPtr<Expr>;

struct IntLit : Expr {
  std::int64_t value = 0;
  IntLit() : Expr(ExprKind::IntLit) {}
};

struct DoubleLit : Expr {
  double value = 0.0;
  DoubleLit() : Expr(ExprKind::DoubleLit) {}
};

struct BoolLit : Expr {
  bool value = false;
  BoolLit() : Expr(ExprKind::BoolLit) {}
};

struct StringLit : Expr {
  std::string value;
  StringLit() : Expr(ExprKind::StringLit) {}
};

struct NullLit : Expr {
  NullLit() : Expr(ExprKind::NullLit) {}
};

/// A bare name. Sema resolves it to either a local slot or (implicit `this`)
/// a field of the enclosing class.
struct VarRef : Expr {
  Symbol name;
  int slot = -1;         // >= 0 when resolved to a local/parameter
  int field_index = -1;  // >= 0 when resolved to a field of `this`
  const ClassDecl* owner_class = nullptr;  // set when resolved to a field
  VarRef() : Expr(ExprKind::VarRef) {}
  [[nodiscard]] bool is_local() const { return slot >= 0; }
};

struct FieldAccess : Expr {
  ExprPtr object;
  Symbol field;
  int field_index = -1;  // filled by sema
  FieldAccess() : Expr(ExprKind::FieldAccess) {}
};

struct IndexAccess : Expr {
  ExprPtr base;
  ExprPtr index;
  IndexAccess() : Expr(ExprKind::IndexAccess) {}
};

/// `name(args)` (builtin or same-class method via implicit this) or
/// `receiver.name(args)` (method call).
struct Call : Expr {
  ExprPtr receiver;  // null for builtin / implicit-this calls
  Symbol name;
  std::vector<ExprPtr> args;
  Builtin builtin = Builtin::None;          // filled by sema
  const MethodDecl* resolved = nullptr;     // filled by sema
  bool implicit_this = false;               // filled by sema
  Call() : Expr(ExprKind::Call) {}
};

/// `new C(args)`; if C declares a method `init`, it runs as constructor.
struct New : Expr {
  Symbol class_name;
  std::vector<ExprPtr> args;
  const ClassDecl* resolved = nullptr;  // filled by sema
  New() : Expr(ExprKind::New) {}
};

/// `new T[n]` or `new list<T>()`.
struct NewArray : Expr {
  TypePtr allocated;  // Array or List type
  ExprPtr size;       // null for lists
  NewArray() : Expr(ExprKind::NewArray) {}
};

struct Binary : Expr {
  BinaryOp op = BinaryOp::Add;
  ExprPtr lhs;
  ExprPtr rhs;
  Binary() : Expr(ExprKind::Binary) {}
};

struct Unary : Expr {
  UnaryOp op = UnaryOp::Neg;
  ExprPtr operand;
  Unary() : Expr(ExprKind::Unary) {}
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind : std::uint8_t {
  Block, VarDecl, Assign, ExprStmt,
  If, While, For, Foreach,
  Return, Break, Continue,
  Annotation,
};

struct Stmt {
  StmtKind kind;
  int id = -1;  // unique within the Program
  SourceRange range;

  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
  Stmt(const Stmt&) = delete;
  Stmt& operator=(const Stmt&) = delete;

  template <typename T>
  [[nodiscard]] const T& as() const { return static_cast<const T&>(*this); }
  template <typename T>
  [[nodiscard]] T& as() { return static_cast<T&>(*this); }
};

using StmtPtr = AstPtr<Stmt>;

struct Block : Stmt {
  std::vector<StmtPtr> stmts;
  Block() : Stmt(StmtKind::Block) {}
};

struct VarDecl : Stmt {
  TypePtr declared;
  Symbol name;
  ExprPtr init;   // may be null (default-initialized)
  int slot = -1;  // filled by sema
  VarDecl() : Stmt(StmtKind::VarDecl) {}
};

struct Assign : Stmt {
  ExprPtr target;  // VarRef, FieldAccess, or IndexAccess
  ExprPtr value;
  Assign() : Stmt(StmtKind::Assign) {}
};

struct ExprStmt : Stmt {
  ExprPtr expr;
  ExprStmt() : Stmt(StmtKind::ExprStmt) {}
};

struct If : Stmt {
  ExprPtr cond;
  StmtPtr then_branch;
  StmtPtr else_branch;  // may be null
  If() : Stmt(StmtKind::If) {}
};

struct While : Stmt {
  ExprPtr cond;
  StmtPtr body;
  While() : Stmt(StmtKind::While) {}
};

struct For : Stmt {
  StmtPtr init;  // VarDecl or Assign; may be null
  ExprPtr cond;  // may be null (treated as true)
  StmtPtr step;  // Assign or ExprStmt; may be null
  StmtPtr body;
  For() : Stmt(StmtKind::For) {}
};

struct Foreach : Stmt {
  TypePtr element_declared;
  Symbol var_name;
  ExprPtr iterable;  // array or list expression
  StmtPtr body;
  int slot = -1;  // loop variable slot, filled by sema
  Foreach() : Stmt(StmtKind::Foreach) {}
};

struct Return : Stmt {
  ExprPtr value;  // may be null
  Return() : Stmt(StmtKind::Return) {}
};

struct Break : Stmt {
  Break() : Stmt(StmtKind::Break) {}
};

struct Continue : Stmt {
  Continue() : Stmt(StmtKind::Continue) {}
};

/// `@tadl ...` / `@end` annotation line kept in statement position so the
/// TADL annotator and the transformation phase can locate regions exactly
/// where the detector inserted them (paper §2.1, figure 3b).
struct Annotation : Stmt {
  std::string text;  // body after '@', e.g. "tadl (A || B) => C"
  Annotation() : Stmt(StmtKind::Annotation) {}
};

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

struct Param {
  TypePtr type;
  Symbol name;
  SourceRange range;
  int slot = -1;  // filled by sema
};

struct FieldDecl {
  TypePtr type;
  Symbol name;
  SourceRange range;
  int index = -1;  // position in the object layout, filled by sema
};

struct MethodDecl {
  TypePtr return_type;
  Symbol name;
  std::vector<Param> params;
  AstPtr<Block> body;
  SourceRange range;

  const ClassDecl* owner = nullptr;  // filled by sema
  int local_slot_count = 0;          // params + locals, filled by sema
  std::vector<Symbol> slot_names;    // debug names per slot, filled by sema
};

struct ClassDecl {
  Symbol name;
  std::vector<FieldDecl> fields;
  std::vector<AstPtr<MethodDecl>> methods;
  SourceRange range;

  // Interned-symbol member index, built by sema (build_member_index).
  // Before sema runs the maps are empty and lookup falls back to the
  // linear scan, so pre-sema callers keep working.
  std::unordered_map<Symbol, const MethodDecl*, SymbolHash> method_index;
  std::unordered_map<Symbol, int, SymbolHash> field_index;
  const MethodDecl* ctor = nullptr;         // cached find_method("init")
  const MethodDecl* main_method = nullptr;  // cached find_method("main")

  void build_member_index();

  [[nodiscard]] const MethodDecl* find_method(Symbol n) const {
    if (!method_index.empty() || methods.empty()) {
      auto it = method_index.find(n);
      return it == method_index.end() ? nullptr : it->second;
    }
    for (const auto& m : methods)
      if (m->name == n) return m.get();
    return nullptr;
  }
  [[nodiscard]] const MethodDecl* find_method(const std::string& n) const {
    return find_method(Symbol::intern(n));
  }
  [[nodiscard]] int find_field(Symbol n) const {
    if (!field_index.empty() || fields.empty()) {
      auto it = field_index.find(n);
      return it == field_index.end() ? -1 : it->second;
    }
    for (std::size_t i = 0; i < fields.size(); ++i)
      if (fields[i].name == n) return static_cast<int>(i);
    return -1;
  }
  [[nodiscard]] int find_field(const std::string& n) const {
    return find_field(Symbol::intern(n));
  }
};

struct Program {
  // Declared first so it is destroyed last: every AST node below lives in
  // this arena, and their destructors (run via AstPtr) must finish before
  // the backing chunks drop.
  support::Arena arena;
  std::vector<AstPtr<ClassDecl>> classes;
  int next_node_id = 0;  // one id space for stmts and exprs

  // Symbol-indexed class lookup, built by sema; empty before that (the
  // linear fallback covers parse-time and hand-built programs).
  std::unordered_map<Symbol, const ClassDecl*, SymbolHash> class_index;

  /// Allocate an AST node in this program's arena.
  template <typename T, typename... Args>
  AstPtr<T> make(Args&&... args) {
    return support::make_in<T>(arena, std::forward<Args>(args)...);
  }

  void build_class_index();

  [[nodiscard]] const ClassDecl* find_class(Symbol n) const {
    if (!class_index.empty() || classes.empty()) {
      auto it = class_index.find(n);
      return it == class_index.end() ? nullptr : it->second;
    }
    for (const auto& c : classes)
      if (c->name == n) return c.get();
    return nullptr;
  }
  [[nodiscard]] const ClassDecl* find_class(const std::string& n) const {
    return find_class(Symbol::intern(n));
  }
};

// ---------------------------------------------------------------------------
// Generic traversal helpers (implemented in ast.cpp)
// ---------------------------------------------------------------------------

/// Invoke fn on every statement in the subtree (pre-order), including st.
void for_each_stmt(const Stmt& st, const std::function<void(const Stmt&)>& fn);

/// Invoke fn on every expression in the statement subtree (pre-order).
void for_each_expr(const Stmt& st, const std::function<void(const Expr&)>& fn);

/// Invoke fn on every expression in the expression subtree, including e.
void for_each_expr_in(const Expr& e, const std::function<void(const Expr&)>& fn);

/// Render an operator as source text.
const char* binary_op_str(BinaryOp op);
const char* unary_op_str(UnaryOp op);

}  // namespace patty::lang
