#include "lang/clone.hpp"

#include "support/diagnostics.hpp"

namespace patty::lang {

namespace {

// Clones live in the same program's arena as the originals, so transformed
// trees share the tree's memory lifetime.
template <typename T>
AstPtr<T> shell(const Expr& src, Program& program) {
  auto node = program.make<T>();
  node->id = program.next_node_id++;
  node->range = src.range;
  node->type = src.type;
  return node;
}

template <typename T>
AstPtr<T> shell_stmt(const Stmt& src, Program& program) {
  auto node = program.make<T>();
  node->id = program.next_node_id++;
  node->range = src.range;
  return node;
}

}  // namespace

ExprPtr clone_expr(const Expr& e, Program& program) {
  switch (e.kind) {
    case ExprKind::IntLit: {
      auto n = shell<IntLit>(e, program);
      n->value = e.as<IntLit>().value;
      return n;
    }
    case ExprKind::DoubleLit: {
      auto n = shell<DoubleLit>(e, program);
      n->value = e.as<DoubleLit>().value;
      return n;
    }
    case ExprKind::BoolLit: {
      auto n = shell<BoolLit>(e, program);
      n->value = e.as<BoolLit>().value;
      return n;
    }
    case ExprKind::StringLit: {
      auto n = shell<StringLit>(e, program);
      n->value = e.as<StringLit>().value;
      return n;
    }
    case ExprKind::NullLit:
      return shell<NullLit>(e, program);
    case ExprKind::VarRef: {
      const auto& src = e.as<VarRef>();
      auto n = shell<VarRef>(e, program);
      n->name = src.name;
      n->slot = src.slot;
      n->field_index = src.field_index;
      n->owner_class = src.owner_class;
      return n;
    }
    case ExprKind::FieldAccess: {
      const auto& src = e.as<FieldAccess>();
      auto n = shell<FieldAccess>(e, program);
      n->object = clone_expr(*src.object, program);
      n->field = src.field;
      n->field_index = src.field_index;
      return n;
    }
    case ExprKind::IndexAccess: {
      const auto& src = e.as<IndexAccess>();
      auto n = shell<IndexAccess>(e, program);
      n->base = clone_expr(*src.base, program);
      n->index = clone_expr(*src.index, program);
      return n;
    }
    case ExprKind::Call: {
      const auto& src = e.as<Call>();
      auto n = shell<Call>(e, program);
      if (src.receiver) n->receiver = clone_expr(*src.receiver, program);
      n->name = src.name;
      for (const auto& a : src.args) n->args.push_back(clone_expr(*a, program));
      n->builtin = src.builtin;
      n->resolved = src.resolved;
      n->implicit_this = src.implicit_this;
      return n;
    }
    case ExprKind::New: {
      const auto& src = e.as<New>();
      auto n = shell<New>(e, program);
      n->class_name = src.class_name;
      for (const auto& a : src.args) n->args.push_back(clone_expr(*a, program));
      n->resolved = src.resolved;
      return n;
    }
    case ExprKind::NewArray: {
      const auto& src = e.as<NewArray>();
      auto n = shell<NewArray>(e, program);
      n->allocated = src.allocated;
      if (src.size) n->size = clone_expr(*src.size, program);
      return n;
    }
    case ExprKind::Binary: {
      const auto& src = e.as<Binary>();
      auto n = shell<Binary>(e, program);
      n->op = src.op;
      n->lhs = clone_expr(*src.lhs, program);
      n->rhs = clone_expr(*src.rhs, program);
      return n;
    }
    case ExprKind::Unary: {
      const auto& src = e.as<Unary>();
      auto n = shell<Unary>(e, program);
      n->op = src.op;
      n->operand = clone_expr(*src.operand, program);
      return n;
    }
  }
  fatal("unknown expression kind in clone_expr");
}

StmtPtr clone_stmt(const Stmt& st, Program& program) {
  switch (st.kind) {
    case StmtKind::Block: {
      const auto& src = st.as<Block>();
      auto n = shell_stmt<Block>(st, program);
      for (const auto& s : src.stmts) n->stmts.push_back(clone_stmt(*s, program));
      return n;
    }
    case StmtKind::VarDecl: {
      const auto& src = st.as<VarDecl>();
      auto n = shell_stmt<VarDecl>(st, program);
      n->declared = src.declared;
      n->name = src.name;
      if (src.init) n->init = clone_expr(*src.init, program);
      n->slot = src.slot;
      return n;
    }
    case StmtKind::Assign: {
      const auto& src = st.as<Assign>();
      auto n = shell_stmt<Assign>(st, program);
      n->target = clone_expr(*src.target, program);
      n->value = clone_expr(*src.value, program);
      return n;
    }
    case StmtKind::ExprStmt: {
      const auto& src = st.as<ExprStmt>();
      auto n = shell_stmt<ExprStmt>(st, program);
      n->expr = clone_expr(*src.expr, program);
      return n;
    }
    case StmtKind::If: {
      const auto& src = st.as<If>();
      auto n = shell_stmt<If>(st, program);
      n->cond = clone_expr(*src.cond, program);
      n->then_branch = clone_stmt(*src.then_branch, program);
      if (src.else_branch) n->else_branch = clone_stmt(*src.else_branch, program);
      return n;
    }
    case StmtKind::While: {
      const auto& src = st.as<While>();
      auto n = shell_stmt<While>(st, program);
      n->cond = clone_expr(*src.cond, program);
      n->body = clone_stmt(*src.body, program);
      return n;
    }
    case StmtKind::For: {
      const auto& src = st.as<For>();
      auto n = shell_stmt<For>(st, program);
      if (src.init) n->init = clone_stmt(*src.init, program);
      if (src.cond) n->cond = clone_expr(*src.cond, program);
      if (src.step) n->step = clone_stmt(*src.step, program);
      n->body = clone_stmt(*src.body, program);
      return n;
    }
    case StmtKind::Foreach: {
      const auto& src = st.as<Foreach>();
      auto n = shell_stmt<Foreach>(st, program);
      n->element_declared = src.element_declared;
      n->var_name = src.var_name;
      n->iterable = clone_expr(*src.iterable, program);
      n->body = clone_stmt(*src.body, program);
      n->slot = src.slot;
      return n;
    }
    case StmtKind::Return: {
      const auto& src = st.as<Return>();
      auto n = shell_stmt<Return>(st, program);
      if (src.value) n->value = clone_expr(*src.value, program);
      return n;
    }
    case StmtKind::Break:
      return shell_stmt<Break>(st, program);
    case StmtKind::Continue:
      return shell_stmt<Continue>(st, program);
    case StmtKind::Annotation: {
      const auto& src = st.as<Annotation>();
      auto n = shell_stmt<Annotation>(st, program);
      n->text = src.text;
      return n;
    }
  }
  fatal("unknown statement kind in clone_stmt");
}

}  // namespace patty::lang
