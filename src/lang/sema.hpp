#pragma once
// Semantic analysis for MiniOO: name resolution (locals -> slots, implicit
// `this` fields, method calls, builtins), type checking, and layout
// assignment. Fills the `resolved_*` fields of the AST in place.
//
// After a successful run:
//  * every VarRef has slot >= 0 or field_index >= 0,
//  * every FieldAccess/Call/New has its target resolved,
//  * every Expr has a type,
//  * every MethodDecl knows its owner, slot count and slot names.

#include "lang/ast.hpp"
#include "support/diagnostics.hpp"

namespace patty::lang {

class Sema {
 public:
  explicit Sema(DiagnosticSink& diags) : diags_(diags) {}

  /// Analyze the whole program. Returns true when no errors were produced.
  bool analyze(Program& program);

 private:
  bool analyze_method(MethodDecl& method);
  void analyze_stmt(Stmt& st);
  TypePtr analyze_expr(Expr& e);
  TypePtr analyze_call(Call& call);
  TypePtr analyze_builtin(Call& call);
  TypePtr analyze_binary(Binary& b);
  void check_assignable_expr(const Expr& target);
  void require(bool ok, SourceRange range, const std::string& message);
  bool class_exists(const Type& t);

  int declare_local(Symbol name, SourceRange range);
  int lookup_local(Symbol name) const;
  void push_scope();
  void pop_scope();

  DiagnosticSink& diags_;
  Program* program_ = nullptr;
  ClassDecl* current_class_ = nullptr;
  MethodDecl* current_method_ = nullptr;
  int loop_depth_ = 0;

  struct LocalVar {
    Symbol name;
    int slot;
    TypePtr type;
  };
  std::vector<std::vector<LocalVar>> scopes_;
  std::vector<TypePtr> slot_types_;
};

/// Convenience: parse + analyze. Returns nullptr (and diagnostics) on error.
std::unique_ptr<Program> parse_and_check(std::string_view source,
                                         DiagnosticSink& diags);

}  // namespace patty::lang
