#pragma once
// Token definitions for MiniOO, the small object-oriented input language.
// MiniOO substitutes for the paper's C# frontend: it has classes, fields,
// methods, arrays, lists, `foreach`, and the usual statement forms — enough
// to express every program the paper's figures and study benchmark use.

#include <cstdint>
#include <string>

#include "support/intern.hpp"
#include "support/source_location.hpp"

namespace patty::lang {

enum class TokenKind : std::uint8_t {
  // Literals and identifiers.
  Identifier,
  IntLiteral,
  DoubleLiteral,
  StringLiteral,

  // Keywords.
  KwClass, KwInt, KwDouble, KwBool, KwString, KwVoid, KwList,
  KwIf, KwElse, KwWhile, KwFor, KwForeach, KwIn,
  KwReturn, KwBreak, KwContinue,
  KwNew, KwTrue, KwFalse, KwNull,

  // Punctuation.
  LParen, RParen, LBrace, RBrace, LBracket, RBracket,
  Comma, Semicolon, Dot,
  Less, LessEq, Greater, GreaterEq, EqEq, NotEq,
  Assign, Plus, Minus, Star, Slash, Percent,
  PlusAssign, MinusAssign, StarAssign, SlashAssign,
  PlusPlus, MinusMinus,
  AmpAmp, PipePipe, Bang,

  // A `#region`/`#endregion`-style annotation line: `@tadl ...` / `@end`.
  AnnotationLine,

  Eof,
};

struct Token {
  TokenKind kind = TokenKind::Eof;
  std::string text;        // identifier spelling, literal spelling, annotation body
  support::Symbol symbol;  // interned spelling for Identifier tokens
  std::int64_t int_value = 0;
  double double_value = 0.0;
  SourceRange range;
};

/// Human-readable token-kind name for diagnostics.
const char* token_kind_name(TokenKind kind);

}  // namespace patty::lang
