#include "lang/sema.hpp"

#include <unordered_map>
#include <unordered_set>

#include "lang/parser.hpp"

namespace patty::lang {

namespace {

using support::Symbol;
using support::SymbolHash;

// Keyed by interned symbol: builtin lookup in analyze_call is an integer
// hash instead of a string hash.
const std::unordered_map<Symbol, Builtin, SymbolHash>& builtin_table() {
  static const std::unordered_map<Symbol, Builtin, SymbolHash> table = {
      {Symbol::intern("print"), Builtin::Print},
      {Symbol::intern("len"), Builtin::Len},
      {Symbol::intern("push"), Builtin::Push},
      {Symbol::intern("work"), Builtin::Work},
      {Symbol::intern("sqrt"), Builtin::Sqrt},
      {Symbol::intern("abs"), Builtin::Abs},
      {Symbol::intern("min"), Builtin::MinOf},
      {Symbol::intern("max"), Builtin::MaxOf},
      {Symbol::intern("floor"), Builtin::Floor},
      {Symbol::intern("str"), Builtin::ToStr},
      {Symbol::intern("clamp"), Builtin::Clamp},
  };
  return table;
}

}  // namespace

void Sema::require(bool ok, SourceRange range, const std::string& message) {
  if (!ok) diags_.error(range, message);
}

bool Sema::class_exists(const Type& t) {
  switch (t.kind) {
    case Type::Kind::Class: return program_->find_class(t.class_name) != nullptr;
    case Type::Kind::Array:
    case Type::Kind::List: return class_exists(*t.element);
    default: return true;
  }
}

bool Sema::analyze(Program& program) {
  program_ = &program;
  const std::size_t errors_before = diags_.error_count();

  std::unordered_set<Symbol, SymbolHash> class_names;
  for (auto& cls : program.classes) {
    if (!class_names.insert(cls->name).second)
      diags_.error(cls->range, "duplicate class '" + cls->name + "'");
  }
  program.build_class_index();

  // Resolve field types and indices first so methods can reference any class.
  for (auto& cls : program.classes) {
    std::unordered_set<Symbol, SymbolHash> member_names;
    for (std::size_t i = 0; i < cls->fields.size(); ++i) {
      FieldDecl& f = cls->fields[i];
      f.index = static_cast<int>(i);
      if (!member_names.insert(f.name).second)
        diags_.error(f.range, "duplicate field '" + f.name + "'");
      require(class_exists(*f.type), f.range,
              "unknown type '" + f.type->str() + "'");
      require(f.type->kind != Type::Kind::Void, f.range,
              "field cannot have type void");
    }
    for (auto& m : cls->methods) {
      if (!member_names.insert(m->name).second)
        diags_.error(m->range, "duplicate member '" + m->name + "'");
      m->owner = cls.get();
    }
    // Freeze the indexed member tables (and the cached init/main methods)
    // now that fields and methods are final; every later find_method /
    // find_field on this class is a hash probe instead of a linear scan.
    cls->build_member_index();
  }

  for (auto& cls : program.classes) {
    current_class_ = cls.get();
    for (auto& m : cls->methods) analyze_method(*m);
  }
  current_class_ = nullptr;
  return diags_.error_count() == errors_before;
}

bool Sema::analyze_method(MethodDecl& method) {
  current_method_ = &method;
  scopes_.clear();
  slot_types_.clear();
  loop_depth_ = 0;
  push_scope();

  require(class_exists(*method.return_type), method.range,
          "unknown return type '" + method.return_type->str() + "'");
  for (Param& p : method.params) {
    require(class_exists(*p.type), p.range,
            "unknown parameter type '" + p.type->str() + "'");
    p.slot = declare_local(p.name, p.range);
    if (p.slot >= 0) slot_types_[static_cast<std::size_t>(p.slot)] = p.type;
  }

  analyze_stmt(*method.body);

  pop_scope();
  method.local_slot_count = static_cast<int>(slot_types_.size());
  method.slot_names.resize(slot_types_.size());
  current_method_ = nullptr;
  return true;
}

void Sema::push_scope() { scopes_.emplace_back(); }

void Sema::pop_scope() { scopes_.pop_back(); }

int Sema::declare_local(Symbol name, SourceRange range) {
  for (const LocalVar& v : scopes_.back()) {
    if (v.name == name) {
      diags_.error(range, "redeclaration of '" + name + "' in the same scope");
      return v.slot;
    }
  }
  const int slot = static_cast<int>(slot_types_.size());
  slot_types_.push_back(Type::void_t());
  scopes_.back().push_back({name, slot, Type::void_t()});
  if (current_method_) {
    current_method_->slot_names.resize(slot_types_.size());
    current_method_->slot_names[static_cast<std::size_t>(slot)] = name;
  }
  return slot;
}

int Sema::lookup_local(Symbol name) const {
  for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope)
    for (const LocalVar& v : *scope)
      if (v.name == name) return v.slot;
  return -1;
}

void Sema::analyze_stmt(Stmt& st) {
  switch (st.kind) {
    case StmtKind::Block: {
      push_scope();
      for (auto& s : st.as<Block>().stmts) analyze_stmt(*s);
      pop_scope();
      break;
    }
    case StmtKind::VarDecl: {
      auto& d = st.as<VarDecl>();
      require(class_exists(*d.declared), st.range,
              "unknown type '" + d.declared->str() + "'");
      require(d.declared->kind != Type::Kind::Void, st.range,
              "variable cannot have type void");
      TypePtr init_type;
      if (d.init) init_type = analyze_expr(*d.init);
      d.slot = declare_local(d.name, st.range);
      if (d.slot >= 0) slot_types_[static_cast<std::size_t>(d.slot)] = d.declared;
      if (d.init && init_type) {
        require(assignable(*d.declared, *init_type), st.range,
                "cannot initialize '" + d.declared->str() + "' from '" +
                    init_type->str() + "'");
      }
      break;
    }
    case StmtKind::Assign: {
      auto& a = st.as<Assign>();
      TypePtr target_type = analyze_expr(*a.target);
      check_assignable_expr(*a.target);
      TypePtr value_type = analyze_expr(*a.value);
      if (target_type && value_type) {
        require(assignable(*target_type, *value_type), st.range,
                "cannot assign '" + value_type->str() + "' to '" +
                    target_type->str() + "'");
      }
      break;
    }
    case StmtKind::ExprStmt:
      analyze_expr(*st.as<ExprStmt>().expr);
      break;
    case StmtKind::If: {
      auto& i = st.as<If>();
      TypePtr cond = analyze_expr(*i.cond);
      require(cond->kind == Type::Kind::Bool, i.cond->range,
              "if condition must be bool, got '" + cond->str() + "'");
      analyze_stmt(*i.then_branch);
      if (i.else_branch) analyze_stmt(*i.else_branch);
      break;
    }
    case StmtKind::While: {
      auto& w = st.as<While>();
      TypePtr cond = analyze_expr(*w.cond);
      require(cond->kind == Type::Kind::Bool, w.cond->range,
              "while condition must be bool, got '" + cond->str() + "'");
      ++loop_depth_;
      analyze_stmt(*w.body);
      --loop_depth_;
      break;
    }
    case StmtKind::For: {
      auto& f = st.as<For>();
      push_scope();
      if (f.init) analyze_stmt(*f.init);
      if (f.cond) {
        TypePtr cond = analyze_expr(*f.cond);
        require(cond->kind == Type::Kind::Bool, f.cond->range,
                "for condition must be bool, got '" + cond->str() + "'");
      }
      if (f.step) analyze_stmt(*f.step);
      ++loop_depth_;
      analyze_stmt(*f.body);
      --loop_depth_;
      pop_scope();
      break;
    }
    case StmtKind::Foreach: {
      auto& f = st.as<Foreach>();
      TypePtr iter = analyze_expr(*f.iterable);
      TypePtr elem;
      if (iter->kind == Type::Kind::Array || iter->kind == Type::Kind::List) {
        elem = iter->element;
      } else {
        diags_.error(f.iterable->range,
                     "foreach needs an array or list, got '" + iter->str() + "'");
        elem = Type::int_t();
      }
      require(class_exists(*f.element_declared), st.range,
              "unknown type '" + f.element_declared->str() + "'");
      require(assignable(*f.element_declared, *elem), st.range,
              "loop variable type '" + f.element_declared->str() +
                  "' does not match element type '" + elem->str() + "'");
      push_scope();
      f.slot = declare_local(f.var_name, st.range);
      if (f.slot >= 0)
        slot_types_[static_cast<std::size_t>(f.slot)] = f.element_declared;
      ++loop_depth_;
      analyze_stmt(*f.body);
      --loop_depth_;
      pop_scope();
      break;
    }
    case StmtKind::Return: {
      auto& r = st.as<Return>();
      const TypePtr& want = current_method_->return_type;
      if (r.value) {
        TypePtr got = analyze_expr(*r.value);
        require(want->kind != Type::Kind::Void, st.range,
                "void method cannot return a value");
        if (want->kind != Type::Kind::Void) {
          require(assignable(*want, *got), st.range,
                  "cannot return '" + got->str() + "' from method returning '" +
                      want->str() + "'");
        }
      } else {
        require(want->kind == Type::Kind::Void, st.range,
                "non-void method must return a value");
      }
      break;
    }
    case StmtKind::Break:
      require(loop_depth_ > 0, st.range, "break outside of a loop");
      break;
    case StmtKind::Continue:
      require(loop_depth_ > 0, st.range, "continue outside of a loop");
      break;
    case StmtKind::Annotation:
      break;  // annotations are semantically transparent
  }
}

void Sema::check_assignable_expr(const Expr& target) {
  switch (target.kind) {
    case ExprKind::VarRef:
    case ExprKind::FieldAccess:
    case ExprKind::IndexAccess:
      return;
    default:
      diags_.error(target.range, "expression is not assignable");
  }
}

TypePtr Sema::analyze_expr(Expr& e) {
  TypePtr result;
  switch (e.kind) {
    case ExprKind::IntLit: result = Type::int_t(); break;
    case ExprKind::DoubleLit: result = Type::double_t(); break;
    case ExprKind::BoolLit: result = Type::bool_t(); break;
    case ExprKind::StringLit: result = Type::string_t(); break;
    case ExprKind::NullLit: result = Type::null_t(); break;
    case ExprKind::VarRef: {
      auto& ref = e.as<VarRef>();
      const int slot = lookup_local(ref.name);
      if (slot >= 0) {
        ref.slot = slot;
        result = slot_types_[static_cast<std::size_t>(slot)];
        break;
      }
      const int field = current_class_ ? current_class_->find_field(ref.name) : -1;
      if (field >= 0) {
        ref.field_index = field;
        ref.owner_class = current_class_;
        result = current_class_->fields[static_cast<std::size_t>(field)].type;
        break;
      }
      diags_.error(e.range, "unknown name '" + ref.name + "'");
      result = Type::int_t();
      break;
    }
    case ExprKind::FieldAccess: {
      auto& f = e.as<FieldAccess>();
      TypePtr obj = analyze_expr(*f.object);
      if (obj->kind != Type::Kind::Class) {
        diags_.error(e.range,
                     "field access on non-class type '" + obj->str() + "'");
        result = Type::int_t();
        break;
      }
      const ClassDecl* cls = program_->find_class(obj->class_name);
      if (!cls) {
        diags_.error(e.range, "unknown class '" + obj->class_name + "'");
        result = Type::int_t();
        break;
      }
      const int idx = cls->find_field(f.field);
      if (idx < 0) {
        diags_.error(e.range, "class '" + cls->name + "' has no field '" +
                                  f.field + "'");
        result = Type::int_t();
        break;
      }
      f.field_index = idx;
      result = cls->fields[static_cast<std::size_t>(idx)].type;
      break;
    }
    case ExprKind::IndexAccess: {
      auto& ix = e.as<IndexAccess>();
      TypePtr base = analyze_expr(*ix.base);
      TypePtr index = analyze_expr(*ix.index);
      require(index->kind == Type::Kind::Int, ix.index->range,
              "index must be int, got '" + index->str() + "'");
      if (base->kind == Type::Kind::Array || base->kind == Type::Kind::List) {
        result = base->element;
      } else {
        diags_.error(e.range, "indexing non-array type '" + base->str() + "'");
        result = Type::int_t();
      }
      break;
    }
    case ExprKind::Call:
      result = analyze_call(e.as<Call>());
      break;
    case ExprKind::New: {
      auto& n = e.as<New>();
      const ClassDecl* cls = program_->find_class(n.class_name);
      if (!cls) {
        diags_.error(e.range, "unknown class '" + n.class_name + "'");
        result = Type::int_t();
        break;
      }
      n.resolved = cls;
      for (auto& a : n.args) analyze_expr(*a);
      const MethodDecl* ctor = cls->ctor;
      if (ctor) {
        require(n.args.size() == ctor->params.size(), e.range,
                "constructor of '" + cls->name + "' takes " +
                    std::to_string(ctor->params.size()) + " argument(s), got " +
                    std::to_string(n.args.size()));
        for (std::size_t i = 0;
             i < std::min(n.args.size(), ctor->params.size()); ++i) {
          require(assignable(*ctor->params[i].type, *n.args[i]->type),
                  n.args[i]->range,
                  "constructor argument " + std::to_string(i + 1) +
                      ": cannot pass '" + n.args[i]->type->str() + "' as '" +
                      ctor->params[i].type->str() + "'");
        }
      } else {
        require(n.args.empty(), e.range,
                "class '" + cls->name + "' has no 'init' constructor");
      }
      result = Type::class_t(n.class_name);
      break;
    }
    case ExprKind::NewArray: {
      auto& n = e.as<NewArray>();
      require(class_exists(*n.allocated), e.range,
              "unknown type '" + n.allocated->str() + "'");
      if (n.size) {
        TypePtr sz = analyze_expr(*n.size);
        require(sz->kind == Type::Kind::Int, n.size->range,
                "array size must be int");
      }
      result = n.allocated;
      break;
    }
    case ExprKind::Binary:
      result = analyze_binary(e.as<Binary>());
      break;
    case ExprKind::Unary: {
      auto& u = e.as<Unary>();
      TypePtr operand = analyze_expr(*u.operand);
      if (u.op == UnaryOp::Neg) {
        require(operand->is_numeric(), e.range,
                "unary '-' needs a numeric operand");
        result = operand;
      } else {
        require(operand->kind == Type::Kind::Bool, e.range,
                "unary '!' needs a bool operand");
        result = Type::bool_t();
      }
      break;
    }
  }
  if (!result) result = Type::int_t();
  e.type = result;
  return result;
}

TypePtr Sema::analyze_binary(Binary& b) {
  TypePtr lhs = analyze_expr(*b.lhs);
  TypePtr rhs = analyze_expr(*b.rhs);
  switch (b.op) {
    case BinaryOp::Add:
      // `+` is numeric addition or string concatenation (string with any
      // scalar operand on either side).
      if (lhs->kind == Type::Kind::String || rhs->kind == Type::Kind::String)
        return Type::string_t();
      [[fallthrough]];
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div:
      require(lhs->is_numeric() && rhs->is_numeric(), b.range,
              std::string("operator '") + binary_op_str(b.op) +
                  "' needs numeric operands, got '" + lhs->str() + "' and '" +
                  rhs->str() + "'");
      if (lhs->kind == Type::Kind::Double || rhs->kind == Type::Kind::Double)
        return Type::double_t();
      return Type::int_t();
    case BinaryOp::Mod:
      require(lhs->kind == Type::Kind::Int && rhs->kind == Type::Kind::Int,
              b.range, "operator '%' needs int operands");
      return Type::int_t();
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
      require((lhs->is_numeric() && rhs->is_numeric()) ||
                  (lhs->kind == Type::Kind::String &&
                   rhs->kind == Type::Kind::String),
              b.range, "relational operator needs numeric or string operands");
      return Type::bool_t();
    case BinaryOp::Eq:
    case BinaryOp::Ne:
      require((lhs->is_numeric() && rhs->is_numeric()) ||
                  same_type(*lhs, *rhs) ||
                  (lhs->is_reference() && rhs->kind == Type::Kind::Null) ||
                  (rhs->is_reference() && lhs->kind == Type::Kind::Null),
              b.range, "cannot compare '" + lhs->str() + "' with '" +
                           rhs->str() + "'");
      return Type::bool_t();
    case BinaryOp::And:
    case BinaryOp::Or:
      require(lhs->kind == Type::Kind::Bool && rhs->kind == Type::Kind::Bool,
              b.range, "logical operator needs bool operands");
      return Type::bool_t();
  }
  return Type::int_t();
}

TypePtr Sema::analyze_call(Call& call) {
  for (auto& a : call.args) analyze_expr(*a);

  if (!call.receiver) {
    // Builtin or implicit-this method.
    auto it = builtin_table().find(call.name);
    const MethodDecl* own =
        current_class_ ? current_class_->find_method(call.name) : nullptr;
    if (own) {
      call.resolved = own;
      call.implicit_this = true;
    } else if (it != builtin_table().end()) {
      call.builtin = it->second;
      return analyze_builtin(call);
    } else {
      diags_.error(call.range, "unknown function '" + call.name + "'");
      return Type::int_t();
    }
  } else {
    TypePtr recv = analyze_expr(*call.receiver);
    if (recv->kind != Type::Kind::Class) {
      diags_.error(call.range,
                   "method call on non-class type '" + recv->str() + "'");
      return Type::int_t();
    }
    const ClassDecl* cls = program_->find_class(recv->class_name);
    if (!cls) {
      diags_.error(call.range, "unknown class '" + recv->class_name + "'");
      return Type::int_t();
    }
    const MethodDecl* m = cls->find_method(call.name);
    if (!m) {
      diags_.error(call.range, "class '" + cls->name + "' has no method '" +
                                   call.name + "'");
      return Type::int_t();
    }
    call.resolved = m;
  }

  const MethodDecl* m = call.resolved;
  require(call.args.size() == m->params.size(), call.range,
          "method '" + m->name + "' takes " +
              std::to_string(m->params.size()) + " argument(s), got " +
              std::to_string(call.args.size()));
  for (std::size_t i = 0; i < std::min(call.args.size(), m->params.size());
       ++i) {
    require(assignable(*m->params[i].type, *call.args[i]->type),
            call.args[i]->range,
            "argument " + std::to_string(i + 1) + " of '" + m->name +
                "': cannot pass '" + call.args[i]->type->str() + "' as '" +
                m->params[i].type->str() + "'");
  }
  return m->return_type;
}

TypePtr Sema::analyze_builtin(Call& call) {
  auto arity = [&](std::size_t n) {
    require(call.args.size() == n, call.range,
            "builtin '" + call.name + "' takes " + std::to_string(n) +
                " argument(s), got " + std::to_string(call.args.size()));
    return call.args.size() == n;
  };
  auto arg_type = [&](std::size_t i) -> const Type& {
    return *call.args[i]->type;
  };
  switch (call.builtin) {
    case Builtin::Print:
      arity(1);
      return Type::void_t();
    case Builtin::Len:
      if (arity(1)) {
        const Type& t = arg_type(0);
        require(t.kind == Type::Kind::Array || t.kind == Type::Kind::List ||
                    t.kind == Type::Kind::String,
                call.range, "len() needs an array, list, or string");
      }
      return Type::int_t();
    case Builtin::Push:
      if (arity(2)) {
        const Type& t = arg_type(0);
        require(t.kind == Type::Kind::List, call.range,
                "push() needs a list as first argument");
        if (t.kind == Type::Kind::List) {
          require(assignable(*t.element, arg_type(1)), call.range,
                  "push() element type mismatch: list of '" +
                      t.element->str() + "', got '" + arg_type(1).str() + "'");
        }
      }
      return Type::void_t();
    case Builtin::Work:
      if (arity(1)) {
        require(arg_type(0).kind == Type::Kind::Int, call.range,
                "work() needs an int cost");
      }
      return Type::int_t();
    case Builtin::Sqrt:
      if (arity(1)) {
        require(arg_type(0).is_numeric(), call.range,
                "sqrt() needs a numeric argument");
      }
      return Type::double_t();
    case Builtin::Abs:
      if (arity(1)) {
        require(arg_type(0).is_numeric(), call.range,
                "abs() needs a numeric argument");
        return call.args[0]->type;
      }
      return Type::int_t();
    case Builtin::MinOf:
    case Builtin::MaxOf:
      if (arity(2)) {
        require(arg_type(0).is_numeric() && arg_type(1).is_numeric(),
                call.range, "min()/max() need numeric arguments");
        if (arg_type(0).kind == Type::Kind::Double ||
            arg_type(1).kind == Type::Kind::Double)
          return Type::double_t();
      }
      return Type::int_t();
    case Builtin::Floor:
      if (arity(1)) {
        require(arg_type(0).is_numeric(), call.range,
                "floor() needs a numeric argument");
      }
      return Type::int_t();
    case Builtin::ToStr:
      arity(1);
      return Type::string_t();
    case Builtin::Clamp:
      if (arity(3)) {
        for (std::size_t i = 0; i < 3; ++i)
          require(arg_type(i).kind == Type::Kind::Int, call.range,
                  "clamp() needs int arguments");
      }
      return Type::int_t();
    case Builtin::None:
      break;
  }
  fatal("unhandled builtin in sema");
}

std::unique_ptr<Program> parse_and_check(std::string_view source,
                                         DiagnosticSink& diags) {
  auto program = parse_source(source, diags);
  if (!program) return nullptr;
  Sema sema(diags);
  if (!sema.analyze(*program)) return nullptr;
  return program;
}

}  // namespace patty::lang
