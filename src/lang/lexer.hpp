#pragma once
// Hand-written lexer for MiniOO. Produces the full token stream eagerly;
// MiniOO programs are small (the paper's study benchmark is 173 LoC), so
// there is no need for lazy tokenization.

#include <string>
#include <string_view>
#include <vector>

#include "lang/token.hpp"
#include "support/diagnostics.hpp"

namespace patty::lang {

class Lexer {
 public:
  Lexer(std::string_view source, DiagnosticSink& diags);

  /// Tokenize the whole input. The last token is always Eof.
  std::vector<Token> tokenize();

 private:
  char peek(std::size_t ahead = 0) const;
  char advance();
  bool match(char expected);
  [[nodiscard]] bool at_end() const { return pos_ >= source_.size(); }
  SourcePos here() const { return {line_, column_}; }

  Token make(TokenKind kind, SourcePos begin, std::string text = {});
  Token lex_number(SourcePos begin);
  Token lex_identifier(SourcePos begin);
  Token lex_string(SourcePos begin);
  Token lex_annotation(SourcePos begin);
  void skip_line_comment();
  void skip_block_comment(SourcePos begin);

  std::string_view source_;
  DiagnosticSink& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
};

}  // namespace patty::lang
