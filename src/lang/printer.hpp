#pragma once
// Pretty-printer: renders AST back to MiniOO source text. Used for the
// annotated intermediate artifact (figure 3b), the generated parallel code
// (figure 3d), and round-trip testing of the frontend.

#include <string>

#include "lang/ast.hpp"

namespace patty::lang {

struct PrintOptions {
  int indent_width = 2;
};

std::string print_program(const Program& program, PrintOptions opts = {});
std::string print_class(const ClassDecl& cls, PrintOptions opts = {});
std::string print_stmt(const Stmt& st, int indent = 0, PrintOptions opts = {});
std::string print_expr(const Expr& e);

}  // namespace patty::lang
