#include "lang/printer.hpp"

#include "support/diagnostics.hpp"

namespace patty::lang {

namespace {

class Printer {
 public:
  explicit Printer(PrintOptions opts) : opts_(opts) {}

  std::string take() { return std::move(out_); }

  void program(const Program& p) {
    bool first = true;
    for (const auto& c : p.classes) {
      if (!first) out_ += "\n";
      first = false;
      cls(*c);
    }
  }

  void cls(const ClassDecl& c) {
    line(0, "class " + c.name + " {");
    for (const auto& f : c.fields) line(1, f.type->str() + " " + f.name + ";");
    if (!c.fields.empty() && !c.methods.empty()) out_ += "\n";
    bool first = true;
    for (const auto& m : c.methods) {
      if (!first) out_ += "\n";
      first = false;
      method(*m);
    }
    line(0, "}");
  }

  void method(const MethodDecl& m) {
    std::string header = m.return_type->str() + " " + m.name + "(";
    for (std::size_t i = 0; i < m.params.size(); ++i) {
      if (i) header += ", ";
      header += m.params[i].type->str() + " " + m.params[i].name;
    }
    header += ") {";
    line(1, header);
    for (const auto& s : m.body->stmts) stmt(*s, 2);
    line(1, "}");
  }

  void stmt(const Stmt& st, int depth) {
    switch (st.kind) {
      case StmtKind::Block:
        line(depth, "{");
        for (const auto& s : st.as<Block>().stmts) stmt(*s, depth + 1);
        line(depth, "}");
        break;
      case StmtKind::VarDecl: {
        const auto& d = st.as<VarDecl>();
        std::string text = d.declared->str() + " " + d.name;
        if (d.init) text += " = " + expr(*d.init);
        line(depth, text + ";");
        break;
      }
      case StmtKind::Assign: {
        const auto& a = st.as<Assign>();
        line(depth, expr(*a.target) + " = " + expr(*a.value) + ";");
        break;
      }
      case StmtKind::ExprStmt:
        line(depth, expr(*st.as<ExprStmt>().expr) + ";");
        break;
      case StmtKind::If: {
        const auto& i = st.as<If>();
        line(depth, "if (" + expr(*i.cond) + ")");
        branch_body(*i.then_branch, depth);
        if (i.else_branch) {
          line(depth, "else");
          branch_body(*i.else_branch, depth);
        }
        break;
      }
      case StmtKind::While: {
        const auto& w = st.as<While>();
        line(depth, "while (" + expr(*w.cond) + ")");
        branch_body(*w.body, depth);
        break;
      }
      case StmtKind::For: {
        const auto& f = st.as<For>();
        std::string header = "for (";
        if (f.init) header += inline_stmt(*f.init);
        header += "; ";
        if (f.cond) header += expr(*f.cond);
        header += "; ";
        if (f.step) header += inline_stmt(*f.step);
        header += ")";
        line(depth, header);
        branch_body(*f.body, depth);
        break;
      }
      case StmtKind::Foreach: {
        const auto& f = st.as<Foreach>();
        line(depth, "foreach (" + f.element_declared->str() + " " +
                        f.var_name + " in " + expr(*f.iterable) + ")");
        branch_body(*f.body, depth);
        break;
      }
      case StmtKind::Return: {
        const auto& r = st.as<Return>();
        line(depth, r.value ? "return " + expr(*r.value) + ";" : "return;");
        break;
      }
      case StmtKind::Break: line(depth, "break;"); break;
      case StmtKind::Continue: line(depth, "continue;"); break;
      case StmtKind::Annotation:
        line(depth, "@" + st.as<Annotation>().text);
        break;
    }
  }

  std::string expr(const Expr& e) {
    switch (e.kind) {
      case ExprKind::IntLit: return std::to_string(e.as<IntLit>().value);
      case ExprKind::DoubleLit: {
        std::string s = std::to_string(e.as<DoubleLit>().value);
        return s;
      }
      case ExprKind::BoolLit: return e.as<BoolLit>().value ? "true" : "false";
      case ExprKind::StringLit: return quote(e.as<StringLit>().value);
      case ExprKind::NullLit: return "null";
      case ExprKind::VarRef: return e.as<VarRef>().name;
      case ExprKind::FieldAccess: {
        const auto& f = e.as<FieldAccess>();
        return maybe_paren(*f.object) + "." + f.field;
      }
      case ExprKind::IndexAccess: {
        const auto& ix = e.as<IndexAccess>();
        return maybe_paren(*ix.base) + "[" + expr(*ix.index) + "]";
      }
      case ExprKind::Call: {
        const auto& c = e.as<Call>();
        std::string s;
        if (c.receiver) s = maybe_paren(*c.receiver) + ".";
        s += c.name + "(";
        for (std::size_t i = 0; i < c.args.size(); ++i) {
          if (i) s += ", ";
          s += expr(*c.args[i]);
        }
        return s + ")";
      }
      case ExprKind::New: {
        const auto& n = e.as<New>();
        std::string s = "new " + n.class_name + "(";
        for (std::size_t i = 0; i < n.args.size(); ++i) {
          if (i) s += ", ";
          s += expr(*n.args[i]);
        }
        return s + ")";
      }
      case ExprKind::NewArray: {
        const auto& n = e.as<NewArray>();
        if (n.allocated->kind == Type::Kind::List)
          return "new " + n.allocated->str() + "()";
        return "new " + n.allocated->element->str() + "[" + expr(*n.size) + "]";
      }
      case ExprKind::Binary: {
        const auto& b = e.as<Binary>();
        return maybe_paren(*b.lhs) + " " + binary_op_str(b.op) + " " +
               maybe_paren(*b.rhs);
      }
      case ExprKind::Unary: {
        const auto& u = e.as<Unary>();
        return std::string(unary_op_str(u.op)) + maybe_paren(*u.operand);
      }
    }
    fatal("unknown expression kind in printer");
  }

 private:
  /// Parenthesize nested binary/unary expressions; everything else is atomic.
  std::string maybe_paren(const Expr& e) {
    if (e.kind == ExprKind::Binary || e.kind == ExprKind::Unary)
      return "(" + expr(e) + ")";
    return expr(e);
  }

  /// Statement rendered without trailing semicolon/newline (for headers).
  std::string inline_stmt(const Stmt& st) {
    switch (st.kind) {
      case StmtKind::VarDecl: {
        const auto& d = st.as<VarDecl>();
        std::string text = d.declared->str() + " " + d.name;
        if (d.init) text += " = " + expr(*d.init);
        return text;
      }
      case StmtKind::Assign: {
        const auto& a = st.as<Assign>();
        return expr(*a.target) + " = " + expr(*a.value);
      }
      case StmtKind::ExprStmt:
        return expr(*st.as<ExprStmt>().expr);
      default:
        fatal("statement kind not valid in for-header");
    }
  }

  void branch_body(const Stmt& body, int depth) {
    if (body.kind == StmtKind::Block) {
      line(depth, "{");
      for (const auto& s : body.as<Block>().stmts) stmt(*s, depth + 1);
      line(depth, "}");
    } else {
      stmt(body, depth + 1);
    }
  }

  static std::string quote(const std::string& raw) {
    std::string s = "\"";
    for (char c : raw) {
      switch (c) {
        case '\n': s += "\\n"; break;
        case '\t': s += "\\t"; break;
        case '"': s += "\\\""; break;
        case '\\': s += "\\\\"; break;
        default: s += c;
      }
    }
    return s + "\"";
  }

  void line(int depth, const std::string& text) {
    out_ += std::string(static_cast<std::size_t>(depth) *
                            static_cast<std::size_t>(opts_.indent_width),
                        ' ');
    out_ += text;
    out_ += "\n";
  }

  PrintOptions opts_;
  std::string out_;
};

}  // namespace

std::string print_program(const Program& program, PrintOptions opts) {
  Printer p(opts);
  p.program(program);
  return p.take();
}

std::string print_class(const ClassDecl& cls, PrintOptions opts) {
  Printer p(opts);
  p.cls(cls);
  return p.take();
}

std::string print_stmt(const Stmt& st, int indent, PrintOptions opts) {
  Printer p(opts);
  p.stmt(st, indent);
  return p.take();
}

std::string print_expr(const Expr& e) {
  Printer p({});
  return p.expr(e);
}

}  // namespace patty::lang
