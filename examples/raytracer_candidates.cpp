// Automatic parallelization (operation mode 1) on the user-study benchmark:
// the 13-class ray tracer. Prints what the study's task asked for — "all
// source code locations that are appropriate candidates for parallel
// execution" — with runtime shares, pattern types and tuning parameters,
// and cross-checks them against the ground truth.

#include <cstdio>

#include "analysis/semantic_model.hpp"
#include "corpus/corpus.hpp"
#include "lang/sema.hpp"
#include "patterns/detector.hpp"

int main() {
  using namespace patty;
  const corpus::CorpusProgram& rt = corpus::raytracer();
  std::printf("Study benchmark: %s — %zu LoC\n\n", rt.name.c_str(), rt.loc());

  DiagnosticSink diags;
  auto program = lang::parse_and_check(rt.source, diags);
  if (!program) {
    std::fprintf(stderr, "%s", diags.to_string().c_str());
    return 1;
  }
  std::printf("classes: %zu\n", program->classes.size());

  auto model = analysis::SemanticModel::build(*program);
  auto detection = patterns::detect_all(*model);

  std::printf("\nCandidates (ranked by runtime share):\n");
  for (const patterns::Candidate& c : detection.candidates) {
    std::printf("  line %3u  %-18s  runtime %5.1f%%  %s\n",
                c.anchor->range.begin.line, pattern_kind_name(c.kind),
                100.0 * c.runtime_share, c.reason.c_str());
    for (const rt::TuningParameter& p : c.tuning)
      std::printf("            tuning: %s = %lld\n", p.name.c_str(),
                  static_cast<long long>(p.value));
  }

  std::printf("\nRejected loops:\n");
  for (const patterns::RejectedLoop& r : detection.rejected) {
    std::printf("  line %3u  (%s) %s\n", r.loop->range.begin.line,
                r.rule.c_str(), r.reason.c_str());
  }

  const corpus::DetectionScore score = corpus::score_program(rt, true);
  std::printf("\nAgainst ground truth: %d/3 locations found, %d false "
              "positives (trap %s)\n",
              score.true_positives, score.false_positives,
              score.false_positives == 0 ? "rejected" : "ACCEPTED");
  std::printf("The paper's study: Patty group 3.0/3, Parallel Studio 2.25/3, "
              "manual 2.0/3 with false positives.\n");
  return 0;
}
