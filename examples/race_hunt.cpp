// Correctness validation (§2.1): generated parallel unit tests are executed
// on the CHESS-style interleaving explorer. This example shows both halves:
//  * the generated unit tests of a detected pipeline, including the
//    OrderPreservation probe (the paper: whether an order violation
//    compromises semantics is undecidable, so it is *tested*) — both by
//    repeated execution and by systematic exploration, which hands back the
//    serialized schedule of the violating interleaving, and
//  * the explorer hunting seeded bugs in models of a replicated stage: an
//    order violation behind an atomic cursor (assertion failure, no data
//    race — the v2 detector knows atomic RMWs synchronize) and a plain
//    unsynchronized cursor (a genuine data race), then replaying a failing
//    schedule deterministically.

#include <cstdio>

#include "analysis/semantic_model.hpp"
#include "corpus/corpus.hpp"
#include "lang/sema.hpp"
#include "patterns/detector.hpp"
#include "race/explorer.hpp"
#include "transform/testgen.hpp"

int main() {
  using namespace patty;

  // --- Half 1: generated parallel unit tests on a real candidate.
  // avistream is the paper's running example: its pipeline candidate gets
  // the order-preservation-off probe.
  const corpus::CorpusProgram& app = corpus::avistream();
  DiagnosticSink diags;
  auto program = lang::parse_and_check(app.source, diags);
  if (!program) return 1;
  auto model = analysis::SemanticModel::build(*program);
  auto detection = patterns::detect_all(*model);
  auto tests = transform::generate_unit_tests(detection.candidates);

  std::printf("Generated parallel unit tests for %s:\n", app.name.c_str());
  for (const auto& t : tests) {
    const transform::TestOutcome outcome =
        transform::run_unit_test(*program, t, 3);
    std::printf("  %-60s %s\n", t.name.c_str(),
                outcome.passed ? "PASS" : outcome.detail.c_str());
  }

  // The order probe, systematically: where run_unit_test samples
  // interleavings, the explorer enumerates them and serializes the
  // violating schedule.
  bool probe_ok = true;
  for (const auto& t : tests) {
    if (!t.expects_possible_order_violation) continue;
    const transform::ExplorationOutcome probe =
        transform::explore_order_probe(t);
    std::printf("\nOrder probe (explored) for %s:\n  %zu schedules "
                "(exhausted: %s), violation possible: %s\n",
                t.name.c_str(), probe.schedules_explored,
                probe.exhausted ? "yes" : "no",
                probe.order_violation_possible ? "yes" : "no");
    if (probe.order_violation_possible)
      std::printf("  witness: %s\n  schedule: [%s]\n", probe.detail.c_str(),
                  probe.failing_schedule.c_str());
    probe_ok = probe_ok && probe.order_violation_possible &&
               !probe.failing_schedule.empty();
  }

  // --- Half 2: systematic interleaving exploration. -----------------------
  std::printf("\nSeeded bug: replicated stage appending through an atomic "
              "cursor without order restoration.\n");
  auto worker = [](int elem, int seq) {
    return [elem, seq](race::TaskContext& ctx) {
      // The atomic cursor itself is race-free (the v2 detector models the
      // RMW's synchronization); the bug is the emission *order*.
      const std::int64_t pos = ctx.fetch_add("cursor", 1);
      ctx.write("out" + std::to_string(pos), elem);
      ctx.check(pos == seq, "element order violated");
    };
  };
  race::ExploreOptions options;
  options.preemption_bound = 3;
  const race::ExploreResult seeded =
      race::explore({worker(10, 0), worker(20, 1)}, options);
  std::printf("  schedules explored: %zu (exhausted: %s)\n",
              seeded.schedules_explored, seeded.exhausted ? "yes" : "no");
  std::printf("  races: %zu (atomic cursor: none expected), assertion "
              "failures: %zu, distinct final states: %zu\n",
              seeded.races.size(), seeded.assertion_failures.size(),
              seeded.distinct_final_states);

  // Replay the failing schedule — the regression-test handle.
  bool replay_ok = false;
  if (!seeded.failing_schedules.empty()) {
    const race::ScheduleFailure& f = seeded.failing_schedules.front();
    std::printf("  first failing schedule: [%s] (%s)\n",
                f.schedule.to_string().c_str(), f.detail.c_str());
    const auto parsed = race::Schedule::from_string(f.schedule.to_string());
    if (parsed) {
      const race::ReplayResult rep =
          race::replay({worker(10, 0), worker(20, 1)}, *parsed, options);
      replay_ok = !rep.assertion_failures.empty() &&
                  rep.assertion_failures.front() == f.detail;
      std::printf("  replayed standalone: %s\n",
                  replay_ok ? "identical failure reproduced" : "MISMATCH");
    }
  }

  std::printf("\nSame stage with a plain (non-atomic) cursor: a data race, "
              "not just an order bug.\n");
  auto racy = [](int elem) {
    return [elem](race::TaskContext& ctx) {
      const std::int64_t pos = ctx.read("cursor");
      ctx.write("cursor", pos + 1);
      ctx.write("out" + std::to_string(pos), elem);
    };
  };
  const race::ExploreResult plain =
      race::explore({racy(10), racy(20)}, options);
  for (const auto& r : plain.races)
    std::printf("  race on '%s' between tasks %d and %d (%s)\n",
                r.var.c_str(), r.task_a, r.task_b,
                r.write_write ? "write-write" : "read-write");

  std::printf("\nFixed version: lock-protected sequencing (OrderPreservation "
              "on).\n");
  auto ordered = [](int elem, int seq) {
    return [elem, seq](race::TaskContext& ctx) {
      while (true) {
        ctx.lock("m");
        if (ctx.read("next") == seq) {
          ctx.write("out" + std::to_string(seq), elem);
          ctx.write("next", seq + 1);
          ctx.unlock("m");
          return;
        }
        ctx.unlock("m");
        ctx.yield();
      }
    };
  };
  race::ExploreOptions bounded = options;
  bounded.max_schedules = 400;
  const race::ExploreResult fixed =
      race::explore({ordered(10, 0), ordered(20, 1)}, bounded);
  std::printf("  schedules explored: %zu, races: %zu, distinct final states: "
              "%zu\n",
              fixed.schedules_explored, fixed.races.size(),
              fixed.distinct_final_states);

  const bool ok = probe_ok && seeded.races.empty() &&
                  !seeded.assertion_failures.empty() && replay_ok &&
                  !plain.races.empty() && fixed.races.empty() &&
                  fixed.distinct_final_states == 1;
  std::printf("\nrace hunt outcome: %s\n", ok ? "as expected" : "UNEXPECTED");
  return ok ? 0 : 1;
}
