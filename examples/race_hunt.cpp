// Correctness validation (§2.1): generated parallel unit tests are executed
// on the CHESS-style interleaving explorer. This example shows both halves:
//  * the generated unit tests of a detected pipeline, including the
//    OrderPreservation probe (the paper: whether an order violation
//    compromises semantics is undecidable, so it is *tested*), and
//  * the explorer hunting a seeded race in a model of a replicated stage
//    that writes shared state without synchronization.

#include <cstdio>

#include "analysis/semantic_model.hpp"
#include "corpus/corpus.hpp"
#include "lang/sema.hpp"
#include "patterns/detector.hpp"
#include "race/explorer.hpp"
#include "transform/testgen.hpp"

int main() {
  using namespace patty;

  // --- Half 1: generated parallel unit tests on a real candidate. ---------
  const corpus::CorpusProgram& app = corpus::desktop_search();
  DiagnosticSink diags;
  auto program = lang::parse_and_check(app.source, diags);
  if (!program) return 1;
  auto model = analysis::SemanticModel::build(*program);
  auto detection = patterns::detect_all(*model);
  auto tests = transform::generate_unit_tests(detection.candidates);

  std::printf("Generated parallel unit tests for %s:\n", app.name.c_str());
  for (const auto& t : tests) {
    const transform::TestOutcome outcome =
        transform::run_unit_test(*program, t, 3);
    std::printf("  %-60s %s\n", t.name.c_str(),
                outcome.passed ? "PASS" : outcome.detail.c_str());
  }

  // --- Half 2: systematic interleaving exploration. -----------------------
  std::printf("\nSeeded race: replicated stage appending to a shared output "
              "without order restoration.\n");
  auto worker = [](int elem) {
    return [elem](race::TaskContext& ctx) {
      // fetch_add models the unsynchronized 'next free slot' cursor.
      const std::int64_t pos = ctx.fetch_add("cursor", 1);
      ctx.write("out" + std::to_string(pos), elem);
      ctx.check(pos != 0 || elem == 10, "element order violated");
    };
  };
  race::ExploreOptions options;
  options.preemption_bound = 3;
  const race::ExploreResult seeded =
      race::explore({worker(10), worker(20)}, options);
  std::printf("  schedules explored: %zu (exhausted: %s)\n",
              seeded.schedules_explored, seeded.exhausted ? "yes" : "no");
  std::printf("  races found: %zu, assertion failures: %zu, distinct final "
              "states: %zu\n",
              seeded.races.size(), seeded.assertion_failures.size(),
              seeded.distinct_final_states);
  for (const auto& r : seeded.races)
    std::printf("    race on '%s' between tasks %d and %d (%s)\n",
                r.var.c_str(), r.task_a, r.task_b,
                r.write_write ? "write-write" : "read-write");

  std::printf("\nFixed version: lock-protected sequencing (OrderPreservation "
              "on).\n");
  auto ordered = [](int elem, int seq) {
    return [elem, seq](race::TaskContext& ctx) {
      while (true) {
        ctx.lock("m");
        if (ctx.read("next") == seq) {
          ctx.write("out" + std::to_string(seq), elem);
          ctx.write("next", seq + 1);
          ctx.unlock("m");
          return;
        }
        ctx.unlock("m");
        ctx.yield();
      }
    };
  };
  race::ExploreOptions bounded = options;
  bounded.max_schedules = 400;
  const race::ExploreResult fixed =
      race::explore({ordered(10, 0), ordered(20, 1)}, bounded);
  std::printf("  schedules explored: %zu, races: %zu, distinct final states: "
              "%zu\n",
              fixed.schedules_explored, fixed.races.size(),
              fixed.distinct_final_states);

  const bool ok = !seeded.races.empty() && fixed.races.empty() &&
                  fixed.distinct_final_states == 1;
  std::printf("\nrace hunt outcome: %s\n", ok ? "as expected" : "UNEXPECTED");
  return ok ? 0 : 1;
}
