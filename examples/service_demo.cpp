// Patty-as-a-service walkthrough: start the resident daemon in-process,
// speak its wire protocol through the blocking client, and exercise the
// request surface the way an IDE or CI integration would:
//
//   1. parse    — fast syntax/sema gate
//   2. detect   — full front-end; repeated with the same source to show the
//                 semantic-model cache answering (cached:true, same
//                 fingerprint byte for byte)
//   3. certify  — MHP certification of the detected regions
//   4. tune     — autotune the top candidate's tuning space
//   5. health   — load, cache and fault counters from one source of truth
//
// A production deployment runs the standalone `patty-serve` binary instead
// (see README "Resident daemon"); the protocol is identical.

#include <cstdio>
#include <string>

#include <unistd.h>

#include "service/client.hpp"
#include "service/server.hpp"

namespace {

const char* kSource = R"(class Main {
  int main() {
    int sum = 0;
    for (int i = 0; i < 64; i = i + 1) {
      sum = sum + i * i;
    }
    int product = 1;
    for (int j = 1; j < 10; j = j + 1) {
      product = product * j;
    }
    return sum + product;
  }
})";

patty::service::Request make(std::int64_t id, patty::service::RequestKind kind) {
  patty::service::Request req;
  req.id = id;
  req.kind = kind;
  req.source = kSource;
  req.max_evals = 6;
  return req;
}

void show(const char* label,
          const std::optional<patty::service::Response>& resp,
          const std::string& error) {
  if (!resp) {
    std::printf("%-8s transport error: %s\n", label, error.c_str());
    return;
  }
  if (!resp->ok) {
    std::printf("%-8s error: %s\n", label, resp->error_message.c_str());
    return;
  }
  std::printf("%-8s ok%s: %s\n", label, resp->cached ? " (cached)" : "",
              resp->result.dump().c_str());
}

}  // namespace

int main() {
  using namespace patty::service;

  ServerOptions options;
  options.socket_path =
      "/tmp/patty-demo-" + std::to_string(::getpid()) + ".sock";
  options.workers = 2;
  Server server(options);
  server.start();
  std::printf("daemon listening on %s\n\n", options.socket_path.c_str());

  Client client;
  std::string error;
  if (!client.connect(options.socket_path, &error)) {
    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
    return 1;
  }

  show("parse", client.call(make(1, RequestKind::Parse), &error), error);

  // First detect builds the semantic model; the second is answered from the
  // content-hash cache with the identical frozen fingerprint.
  const auto first = client.call(make(2, RequestKind::Detect), &error);
  show("detect", first, error);
  const auto second = client.call(make(3, RequestKind::Detect), &error);
  show("detect", second, error);
  if (first && second && first->ok && second->ok) {
    const bool same = first->result.at("fingerprint").as_string() ==
                      second->result.at("fingerprint").as_string();
    std::printf("         cache fingerprint %s\n\n",
                same ? "identical (frozen model)" : "DIVERGED");
  }

  show("certify", client.call(make(4, RequestKind::Certify), &error), error);
  show("tune", client.call(make(5, RequestKind::Tune), &error), error);

  std::printf("\n");
  show("health", client.call(make(6, RequestKind::Health), &error), error);

  Request bye;
  bye.id = 7;
  bye.kind = RequestKind::Shutdown;
  show("shutdown", client.call(bye, &error), error);

  server.wait_for_shutdown(std::chrono::milliseconds(5000));
  server.stop();
  return 0;
}
