// Program validation mode (operation mode 4, §3 R3): performance
// validation. The transformed application and its tuning configuration
// exist; the auto tuner repeatedly initializes the program with parameter
// values, executes it, measures the runtime, and computes new values
// (figure 4c) — no source-code insight required.

#include <chrono>
#include <cstdio>
#include <fstream>

#include "analysis/semantic_model.hpp"
#include "corpus/corpus.hpp"
#include "lang/sema.hpp"
#include "observe/explain.hpp"
#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "patterns/detector.hpp"
#include "transform/plan.hpp"
#include "tuning/tuner.hpp"

int main() {
  using namespace patty;

  // Telemetry on for the whole demo: every MeasureFn call becomes a
  // "tuner.eval" trace span and every pipeline run publishes per-stage
  // metrics that observe::explain turns into tuning advice.
  observe::set_enabled(true);

  // The transformed application: the avistream pipeline plan.
  const corpus::CorpusProgram& app = corpus::avistream();
  DiagnosticSink diags;
  auto program = lang::parse_and_check(app.source, diags);
  if (!program) return 1;
  auto model = analysis::SemanticModel::build(*program);
  auto detection = patterns::detect_all(*model);
  rt::TuningConfig config = transform::default_tuning(detection.candidates);

  std::printf("Tuning configuration (%zu parameters, search space %llu):\n%s\n",
              config.size(),
              static_cast<unsigned long long>(config.search_space_size()),
              config.serialize().c_str());

  // Emulated-multicore execution so stage overlap is measurable on any host
  // (see DESIGN.md substitutions).
  analysis::InterpreterOptions exec_options;
  exec_options.work_sleeps = true;
  exec_options.work_sleep_ns = 4'000;

  auto measure = [&](const rt::TuningConfig& candidate) {
    transform::ParallelPlanExecutor executor(*program, detection.candidates,
                                             &candidate);
    const auto start = std::chrono::steady_clock::now();
    executor.run_main(exec_options);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  const double before = measure(config);
  std::printf("untuned runtime: %.4f s\n\n", before);

  auto tuner = tuning::make_linear_tuner();
  const tuning::TuningRun run = tuner->tune(config, measure, 60);

  std::printf("tuning cycle (%s, %zu evaluations):\n", tuner->name().c_str(),
              run.evaluations);
  double best_so_far = run.history.front().score;
  for (std::size_t i = 0; i < run.history.size(); ++i) {
    best_so_far = std::min(best_so_far, run.history[i].score);
    if (i % 8 == 0 || i + 1 == run.history.size()) {
      std::printf("  eval %3zu: measured %.4f s (best so far %.4f s)\n", i,
                  run.history[i].score, best_so_far);
    }
  }
  std::printf("\nbest configuration (runtime %.4f s, %.2fx over untuned):\n",
              run.best_score, before / run.best_score);
  for (const auto& [name, p] : run.best.params()) {
    std::printf("  %s = %lld\n", name.c_str(), static_cast<long long>(p.value));
  }

  // Re-run the best configuration once so the freshest pipeline observation
  // reflects the tuned program, then explain where the time went.
  measure(run.best);
  if (auto obs = observe::latest_pipeline()) {
    std::printf("\nper-stage telemetry of the tuned run:\n%s\n",
                observe::render(*obs).c_str());
  }

  std::printf("runtime metrics:\n%s\n",
              observe::Registry::global().snapshot().str().c_str());

  // Chrome trace: one slice per tuner evaluation and per stage item.
  const observe::TraceSnapshot trace = observe::drain();
  const char* trace_path = "autotune_trace.json";
  std::ofstream out(trace_path, std::ios::binary);
  out << observe::chrome_trace_json(trace);
  out.close();
  std::printf("trace summary (%zu events):\n%s\n", trace.events.size(),
              observe::trace_summary(trace).c_str());
  std::printf("wrote %s -- open in chrome://tracing or ui.perfetto.dev\n",
              trace_path);
  return 0;
}
