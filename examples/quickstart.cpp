// Quickstart: the whole pattern-based parallelization process (figure 1)
// on the paper's running example, end to end:
//
//   1. Model creation      — semantic model (CFG x deps x call graph x profile)
//   2. Pattern analysis    — source-pattern detection, TADL expression
//   3. Tunable architecture — annotated source + tuning configuration
//   4. Code transform      — parallel code (figure 3d) + executable plan
//
// plus the generated parallel unit tests and a correctness check that the
// parallel execution matches the sequential output.

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "analysis/semantic_model.hpp"
#include "corpus/corpus.hpp"
#include "lang/sema.hpp"
#include "observe/explain.hpp"
#include "observe/trace.hpp"
#include "patterns/detector.hpp"
#include "tadl/annotator.hpp"
#include "transform/codegen.hpp"
#include "transform/plan.hpp"
#include "transform/testgen.hpp"
#include "tuning/model.hpp"

int main() {
  using namespace patty;

  // PATTY_TRACE=<file> records a Chrome trace of the run (see README).
  const char* trace_path = std::getenv("PATTY_TRACE");
  if (trace_path && *trace_path) observe::set_enabled(true);

  const corpus::CorpusProgram& example = corpus::avistream();
  std::printf("=== Input: %s (%zu LoC) ===\n%s\n", example.name.c_str(),
              example.loc(), example.source.c_str());

  // Phase 1: model creation (static analyses + profiled execution).
  DiagnosticSink diags;
  auto program = lang::parse_and_check(example.source, diags);
  if (!program) {
    std::fprintf(stderr, "frontend failed:\n%s", diags.to_string().c_str());
    return 1;
  }
  auto model = analysis::SemanticModel::build(*program);
  std::printf("=== Phase 1: semantic model ===\n");
  std::printf("methods: %zu, loops: %zu, profiled cost: %llu units\n\n",
              model->call_graph().methods.size(), model->loops().size(),
              static_cast<unsigned long long>(model->profile()->total_cost()));

  // Phase 2: source pattern detection.
  auto detection = patterns::detect_all(*model);
  // Design-time prediction: what the cost model says each region is worth
  // before any transformation runs (DESIGN.md §13). Predict for the paper's
  // quad-core target so the numbers are meaningful on single-core hosts too.
  tuning::annotate_predicted_speedups(detection.candidates,
                                      tuning::Hardware{4});
  std::printf("=== Phase 2: pattern analysis ===\n");
  for (const patterns::Candidate& c : detection.candidates) {
    std::printf("  %-18s @ line %u  runtime %4.1f%%  predicted %.2fx  "
                "TADL: %s\n",
                pattern_kind_name(c.kind), c.anchor->range.begin.line,
                100.0 * c.runtime_share, c.predicted_speedup, c.tadl.c_str());
  }
  for (const patterns::RejectedLoop& r : detection.rejected) {
    std::printf("  rejected loop @ line %u (%s): %s\n",
                r.loop->range.begin.line, r.rule.c_str(), r.reason.c_str());
  }
  std::printf("\n");

  // Phase 3: tunable architecture — annotated source + tuning config.
  const patterns::Candidate& top = detection.candidates.front();
  transform::TransformationArtifacts artifacts =
      transform::make_artifacts(*program, top);
  std::printf("=== Phase 3: annotated source (figure 3b) ===\n%s\n",
              artifacts.annotated_source.c_str());
  std::printf("=== Tuning configuration (figure 3c) ===\n%s\n",
              artifacts.tuning_file.c_str());

  // Phase 4: code transform.
  std::printf("=== Phase 4: parallel code (figure 3d) ===\n%s\n",
              artifacts.parallel_source.c_str());

  // Generated parallel unit tests (correctness validation).
  auto tests = transform::generate_unit_tests(detection.candidates);
  std::printf("=== Generated parallel unit tests ===\n");
  for (const auto& t : tests) {
    const transform::TestOutcome outcome =
        transform::run_unit_test(*program, t, 2);
    std::printf("  %-55s %s (%s)\n", t.name.c_str(),
                outcome.passed ? "PASS"
                : t.expects_possible_order_violation
                    ? "order probe"
                    : "FAIL",
                outcome.detail.c_str());
  }

  // Execute the transformed program and compare with sequential.
  analysis::Interpreter reference(*program);
  reference.run_main();
  transform::ParallelPlanExecutor executor(*program, detection.candidates,
                                           nullptr);
  executor.run_main();
  std::printf("\n=== Execution ===\nsequential output: %sparallel output:   %s",
              reference.output().c_str(), executor.output().c_str());
  std::printf("outputs %s\n",
              reference.output() == executor.output() ? "MATCH" : "DIFFER");

  if (trace_path && *trace_path) {
    if (auto obs = observe::latest_pipeline()) {
      std::printf("\n=== Pipeline telemetry ===\n%s\n",
                  observe::render(*obs).c_str());
    }
    const observe::TraceSnapshot trace = observe::drain();
    std::ofstream out(trace_path, std::ios::binary);
    out << observe::chrome_trace_json(trace);
    std::printf("wrote %s (%zu events) -- open in chrome://tracing or "
                "ui.perfetto.dev\n",
                trace_path, trace.events.size());
  }
  return reference.output() == executor.output() ? 0 : 1;
}
