// Library-based parallel programming (operation mode 3, §3 R3): a skilled
// engineer instantiates the parallel runtime library directly — the
// image-filter pipeline of figure 2 written against patty::rt with explicit
// tuning values, no detection involved.

#include <chrono>
#include <cstdio>
#include <optional>

#include "runtime/master_worker.hpp"
#include "runtime/pipeline.hpp"

namespace {

struct Frame {
  int id = 0;
  int crop = 0;
  int histo = 0;
  int oil = 0;
  int converted = 0;
};

void filter_work(int units) {
  volatile int spin = units * 2000;
  while (spin > 0) --spin;
}

}  // namespace

int main() {
  using patty::rt::MasterWorker;
  using patty::rt::Pipeline;
  using patty::rt::PipelineConfig;

  // (crop || histo || oil) => convert => collect — figure 2's architecture.
  // The first stage runs its three filters as a master/worker crew per
  // frame; convert is replicable; collect preserves stream order.
  Pipeline<Frame>::Stage filters{
      "crop||histo||oil",
      [](Frame& f) {
        MasterWorker mw(0);
        mw.run({[&f] { filter_work(20); f.crop = f.id + 1; },
                [&f] { filter_work(25); f.histo = f.id * 2; },
                [&f] { filter_work(15); f.oil = f.id - 3; }});
      },
      /*replication=*/2, /*preserve_order=*/true, /*fuse=*/false};
  Pipeline<Frame>::Stage convert{
      "convert",
      [](Frame& f) {
        filter_work(10);
        f.converted = f.crop + f.histo + f.oil;
      },
      /*replication=*/2, /*preserve_order=*/true, /*fuse=*/false};

  std::vector<Frame> collected;
  Pipeline<Frame>::Stage collect{
      "collect",
      [](Frame&) {},  // collection happens in the sink
      1, false, false};

  PipelineConfig config;
  config.buffer_capacity = 8;
  Pipeline<Frame> pipeline({filters, convert, collect}, config);

  constexpr int kFrames = 48;
  int next = 0;
  const auto start = std::chrono::steady_clock::now();
  auto stats = pipeline.run(
      [&next]() -> std::optional<Frame> {
        if (next >= kFrames) return std::nullopt;
        Frame f;
        f.id = next++;
        return f;
      },
      [&collected](Frame&& f) { collected.push_back(f); });
  const double ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  std::printf("video pipeline: %llu frames through %zu stages (%zu threads) "
              "in %.2f ms\n",
              static_cast<unsigned long long>(stats.elements),
              stats.stages_after_fusion, stats.threads_used, ms);

  // Verify order preservation and the filter arithmetic.
  bool ok = collected.size() == kFrames;
  for (std::size_t i = 0; ok && i < collected.size(); ++i) {
    const Frame& f = collected[i];
    ok = f.id == static_cast<int>(i) &&
         f.converted == (f.id + 1) + (f.id * 2) + (f.id - 3);
  }
  std::printf("stream order preserved and results correct: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
