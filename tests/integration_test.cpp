// End-to-end integration tests over the full process model (figure 1):
// source text in, semantic model, detection, annotation, transformation,
// parallel execution, generated tests, tuning — all phases chained, on
// every corpus program, with observational equivalence as the oracle.

#include <gtest/gtest.h>

#include "analysis/semantic_model.hpp"
#include "corpus/corpus.hpp"
#include "lang/printer.hpp"
#include "lang/sema.hpp"
#include "patterns/detector.hpp"
#include "tadl/annotator.hpp"
#include "transform/codegen.hpp"
#include "transform/plan.hpp"
#include "transform/testgen.hpp"
#include "tuning/tuner.hpp"

namespace patty {
namespace {

class EndToEnd : public ::testing::TestWithParam<int> {
 protected:
  const corpus::CorpusProgram& source() const {
    return *corpus::handwritten()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(EndToEnd, FullProcessModelPreservesSemantics) {
  const corpus::CorpusProgram& src = source();
  DiagnosticSink diags;
  auto program = lang::parse_and_check(src.source, diags);
  ASSERT_TRUE(program) << src.name << "\n" << diags.to_string();

  // Phase 1: semantic model with dynamic analysis.
  auto model = analysis::SemanticModel::build(*program);
  ASSERT_NE(model->profile(), nullptr);
  EXPECT_GT(model->profile()->total_cost(), 0u);

  // Phase 2: detection.
  auto detection = patterns::detect_all(*model);

  // Sequential reference BEFORE transformation.
  analysis::Interpreter reference(*program);
  const analysis::Value ref_result = reference.run_main();
  const std::string ref_output = reference.output();

  // Phase 3: annotation round-trips through source text.
  if (!detection.candidates.empty() &&
      detection.candidates[0].kind == patterns::PatternKind::Pipeline) {
    ASSERT_TRUE(tadl::insert_annotations(*program, detection.candidates[0]));
    const std::string annotated = lang::print_program(*program);
    EXPECT_NE(annotated.find("@tadl"), std::string::npos);
    DiagnosticSink diags2;
    auto reparsed = lang::parse_and_check(annotated, diags2);
    EXPECT_TRUE(reparsed) << src.name << "\n" << diags2.to_string();
    tadl::strip_annotations(*program);
  }

  // Phase 4: parallel plan, default tuning.
  transform::ParallelPlanExecutor executor(*program, detection.candidates,
                                           nullptr);
  const analysis::Value par_result = executor.run_main();
  EXPECT_TRUE(par_result.equals(ref_result)) << src.name;
  EXPECT_EQ(executor.output(), ref_output) << src.name;
}

TEST_P(EndToEnd, GeneratedTestsPassOnDefaultAndStressedConfigs) {
  const corpus::CorpusProgram& src = source();
  DiagnosticSink diags;
  auto program = lang::parse_and_check(src.source, diags);
  ASSERT_TRUE(program);
  auto model = analysis::SemanticModel::build(*program);
  auto detection = patterns::detect_all(*model);
  transform::TestGenOptions options;
  options.include_order_violation_probe = false;  // probes tested separately
  auto tests = transform::generate_unit_tests(detection.candidates, options);
  for (const auto& t : tests) {
    const transform::TestOutcome outcome =
        transform::run_unit_test(*program, t, 2);
    EXPECT_TRUE(outcome.passed) << src.name << " / " << t.name << ": "
                                << outcome.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, EndToEnd, ::testing::Values(0, 1, 2, 3, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return corpus::handwritten()
                               [static_cast<std::size_t>(info.param)]
                                   ->name;
                         });

TEST(IntegrationTest, TunedPlanStaysCorrect) {
  // Tune the avistream plan for real, then verify the best configuration
  // is still observationally equivalent (performance knobs never change
  // semantics).
  const corpus::CorpusProgram& src = corpus::avistream();
  DiagnosticSink diags;
  auto program = lang::parse_and_check(src.source, diags);
  ASSERT_TRUE(program);
  auto model = analysis::SemanticModel::build(*program);
  auto detection = patterns::detect_all(*model);
  rt::TuningConfig config = transform::default_tuning(detection.candidates);

  auto measure = [&](const rt::TuningConfig& c) {
    transform::ParallelPlanExecutor executor(*program, detection.candidates,
                                             &c);
    const auto start = std::chrono::steady_clock::now();
    executor.run_main();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  auto tuner = tuning::make_linear_tuner();
  const tuning::TuningRun run = tuner->tune(config, measure, 12);

  analysis::Interpreter reference(*program);
  reference.run_main();
  transform::ParallelPlanExecutor tuned(*program, detection.candidates,
                                        &run.best);
  tuned.run_main();
  EXPECT_EQ(tuned.output(), reference.output());
}

TEST(IntegrationTest, ArtifactBundleForEveryPipelineCandidate) {
  for (const corpus::CorpusProgram* src : corpus::handwritten()) {
    DiagnosticSink diags;
    auto program = lang::parse_and_check(src->source, diags);
    ASSERT_TRUE(program) << src->name;
    auto model = analysis::SemanticModel::build(*program);
    auto detection = patterns::detect_all(*model);
    for (const patterns::Candidate& c : detection.candidates) {
      transform::TransformationArtifacts artifacts =
          transform::make_artifacts(*program, c);
      EXPECT_FALSE(artifacts.parallel_source.empty()) << src->name;
      EXPECT_NE(artifacts.tuning_file.find("param"), std::string::npos);
      if (c.kind == patterns::PatternKind::Pipeline)
        EXPECT_NE(artifacts.annotated_source.find("@tadl"),
                  std::string::npos);
    }
    // All annotations must have been stripped again.
    EXPECT_EQ(lang::print_program(*program).find("@tadl"), std::string::npos)
        << src->name;
  }
}

TEST(IntegrationTest, OrderProbeDetectsNothingWhenOrderIrrelevant) {
  // For the matrix program (pure data-parallel, no ordered output), even
  // the order-violation probe must pass: order truly does not matter.
  const corpus::CorpusProgram& src = corpus::matrix();
  DiagnosticSink diags;
  auto program = lang::parse_and_check(src.source, diags);
  ASSERT_TRUE(program);
  auto model = analysis::SemanticModel::build(*program);
  auto detection = patterns::detect_all(*model);
  auto tests = transform::generate_unit_tests(detection.candidates);
  for (const auto& t : tests) {
    const transform::TestOutcome outcome =
        transform::run_unit_test(*program, t, 2);
    EXPECT_TRUE(outcome.passed) << t.name << ": " << outcome.detail;
  }
}

}  // namespace
}  // namespace patty
