// Printer tests: the pretty-printed output of a parsed program must itself
// parse, and re-printing must be a fixed point (round-trip stability). This
// property underpins the paper's transformation pipeline, which re-emits
// annotated and parallelized source text.

#include <gtest/gtest.h>

#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "lang/sema.hpp"

namespace patty::lang {
namespace {

std::string roundtrip(std::string_view src) {
  DiagnosticSink diags;
  auto program = parse_source(src, diags);
  EXPECT_TRUE(program) << diags.to_string();
  return print_program(*program);
}

TEST(PrinterTest, RoundTripIsFixedPoint) {
  const char* src = R"(
    class Image {
      int width;
      int height;
      int Area() { return width * height; }
    }
    class Main {
      void main() {
        list<int> xs = new list<int>();
        for (int i = 0; i < 10; i = i + 1) {
          push(xs, i * i);
        }
        foreach (int x in xs) {
          if (x % 2 == 0) { print(x); } else { print(0 - x); }
        }
      }
    }
  )";
  const std::string once = roundtrip(src);
  const std::string twice = roundtrip(once);
  EXPECT_EQ(once, twice);
}

TEST(PrinterTest, PrintedOutputParsesAndChecks) {
  const char* src = R"(
    class Filter {
      int strength;
      int Apply(int pixel) { return pixel + strength; }
    }
    class Main {
      Filter f;
      void main() {
        f = new Filter();
        int result = f.Apply(10);
        print(result);
      }
    }
  )";
  const std::string printed = roundtrip(src);
  DiagnosticSink diags;
  auto reparsed = parse_and_check(printed, diags);
  EXPECT_TRUE(reparsed) << diags.to_string() << "\n" << printed;
}

TEST(PrinterTest, ExprPrinting) {
  DiagnosticSink diags;
  auto p = parse_source(
      "class A { int F(int x, int y) { return (x + y) * 2 - x % 3; } }", diags);
  ASSERT_TRUE(p);
  const auto& ret = p->classes[0]->methods[0]->body->stmts[0]->as<Return>();
  EXPECT_EQ(print_expr(*ret.value), "((x + y) * 2) - (x % 3)");
}

TEST(PrinterTest, ParenthesizationPreservesPrecedence) {
  // 1 + 2 * 3 must not print as (1 + 2) * 3.
  const std::string printed =
      roundtrip("class A { int F() { return 1 + 2 * 3; } }");
  DiagnosticSink diags;
  auto p = parse_source(printed, diags);
  ASSERT_TRUE(p);
  const auto& ret = p->classes[0]->methods[0]->body->stmts[0]->as<Return>();
  const auto& add = ret.value->as<Binary>();
  EXPECT_EQ(add.op, BinaryOp::Add);
}

TEST(PrinterTest, AnnotationsSurviveRoundTrip) {
  const char* src = R"(
class A {
  void F() {
    @tadl (A || B) => C
    int x = 1;
    @end
  }
}
)";
  const std::string printed = roundtrip(src);
  EXPECT_NE(printed.find("@tadl (A || B) => C"), std::string::npos);
  EXPECT_NE(printed.find("@end"), std::string::npos);
  EXPECT_EQ(printed, roundtrip(printed));
}

TEST(PrinterTest, StringEscapesRoundTrip) {
  const char* src =
      "class A { void F() { print(\"line1\\nline2\\t\\\"q\\\"\"); } }";
  const std::string once = roundtrip(src);
  EXPECT_EQ(once, roundtrip(once));
}

TEST(PrinterTest, NewForms) {
  const std::string printed = roundtrip(R"(
    class B { }
    class A { void F() {
      B b = new B();
      int[] xs = new int[5];
      list<B> ys = new list<B>();
    } }
  )");
  EXPECT_NE(printed.find("new B()"), std::string::npos);
  EXPECT_NE(printed.find("new int[5]"), std::string::npos);
  EXPECT_NE(printed.find("new list<B>()"), std::string::npos);
}

}  // namespace
}  // namespace patty::lang
