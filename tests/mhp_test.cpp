// The MHP certification gate (ctest -L mhp): static may-happen-in-parallel
// facts over plan region graphs, effect-pair discharge, residue lowering
// into explorer probes, and corpus-wide certification verdicts.
//
// The load-bearing suite members:
//  * SyntheticSliceDischargesStatically — the >= 90% static-discharge gate
//    over a seeded synthetic corpus slice.
//  * RacedResidueNeverClaimedOrdered — the soundness differential: a pair
//    the explorer can race must never have been claimed "ordered" by the
//    MHP analysis (also exercised in the TSan configuration, which runs
//    this whole suite).

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "analysis/mhp.hpp"
#include "analysis/semantic_model.hpp"
#include "corpus/corpus.hpp"
#include "lang/sema.hpp"
#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "patterns/detector.hpp"
#include "transform/certify.hpp"
#include "transform/plan.hpp"

namespace patty::transform {
namespace {

struct Analyzed {
  std::unique_ptr<lang::Program> program;
  std::unique_ptr<analysis::SemanticModel> model;
  std::vector<patterns::Candidate> candidates;
};

Analyzed analyze(const std::string& source, bool optimistic = true) {
  Analyzed a;
  DiagnosticSink diags;
  a.program = lang::parse_and_check(source, diags);
  if (!a.program) throw std::runtime_error(diags.to_string());
  a.model = analysis::SemanticModel::build(*a.program);
  patterns::DetectionOptions options;
  options.optimistic = optimistic;
  a.candidates = patterns::detect_all(*a.model, options).candidates;
  return a;
}

// ---------------------------------------------------------------------------
// MhpFacts: the relation itself, over hand-built graphs.
// ---------------------------------------------------------------------------

TEST(MhpFactsTest, DistinctRegionsNeverOverlap) {
  analysis::MhpGraph graph;
  graph.nodes.push_back({"r0.body", 0, 4, -1, {}, nullptr});
  graph.nodes.push_back({"r1.body", 1, 4, -1, {}, nullptr});
  graph.concurrent_regions = {0, 1};
  analysis::MhpFacts facts(graph);
  EXPECT_FALSE(facts.may_happen_in_parallel(0, 1));
  EXPECT_TRUE(facts.must_be_sequential(0, 1));
  EXPECT_TRUE(facts.may_happen_in_parallel(0, 0));  // replicated with itself
}

TEST(MhpFactsTest, SequentialFallbackRegionsNeverOverlap) {
  analysis::MhpGraph graph;
  graph.nodes.push_back({"gen", 0, 1, -1, {}, nullptr});
  graph.nodes.push_back({"sink", 0, 1, -1, {}, nullptr});
  // Region 0 not in concurrent_regions: the executor took the fallback.
  analysis::MhpFacts facts(graph);
  EXPECT_FALSE(facts.may_happen_in_parallel(0, 1));
  EXPECT_FALSE(facts.may_happen_in_parallel(0, 0));
}

TEST(MhpFactsTest, StagesOfAConcurrentRegionOverlapAcrossElements) {
  analysis::MhpGraph graph;
  graph.nodes.push_back({"stageA", 0, 1, 2, {}, nullptr});
  graph.nodes.push_back({"stageB", 0, 1, 2, {}, nullptr});
  graph.concurrent_regions = {0};
  analysis::MhpFacts facts(graph);
  EXPECT_TRUE(facts.may_happen_in_parallel(0, 1));
  EXPECT_TRUE(facts.may_happen_in_parallel(1, 0));
  // A single-instance stage does not overlap itself (streaming order).
  EXPECT_FALSE(facts.may_happen_in_parallel(0, 0));
  EXPECT_FALSE(facts.may_happen_in_parallel(1, 1));
}

TEST(MhpFactsTest, MultiplicityMakesSelfOverlap) {
  analysis::MhpGraph graph;
  graph.nodes.push_back({"body", 0, 3, 1, {}, nullptr});
  graph.concurrent_regions = {0};
  analysis::MhpFacts facts(graph);
  EXPECT_TRUE(facts.may_happen_in_parallel(0, 0));
}

TEST(MhpFactsTest, DischargeNamesAreStable) {
  EXPECT_STREQ(analysis::discharge_name(analysis::Discharge::Ordered),
               "ordered");
  EXPECT_STREQ(analysis::discharge_name(analysis::Discharge::Disjoint),
               "disjoint");
  EXPECT_STREQ(analysis::discharge_name(analysis::Discharge::PrivateOrFresh),
               "private-or-fresh");
  EXPECT_STREQ(analysis::discharge_name(analysis::Discharge::Residue),
               "residue");
  EXPECT_STREQ(verdict_name(Verdict::CertifiedStatic), "certified-static");
  EXPECT_STREQ(verdict_name(Verdict::CertifiedExplored),
               "certified-explored");
  EXPECT_STREQ(verdict_name(Verdict::ResidueRaced), "residue-raced");
}

// ---------------------------------------------------------------------------
// certify_program: discharge rules over real detected candidates.
// ---------------------------------------------------------------------------

const char* kMapProgram = R"(
class P {
  int[] a;
  void init() {
    a = new int[16];
    for (int i = 0; i < 16; i++) { a[i] = i; }
  }
  void Kernel() {
    for (int i = 0; i < 16; i++) { a[i] = a[i] * 2; }
  }
  void main() { init(); Kernel(); print(a[0]); }
}
)";

TEST(CertifyProgramTest, UniformMapDischargesStatically) {
  Analyzed a = analyze(kMapProgram);
  ASSERT_FALSE(a.candidates.empty());
  const ProgramCertificate cert =
      certify_program(*a.program, a.candidates, nullptr, "map");
  EXPECT_EQ(cert.verdict, Verdict::CertifiedStatic);
  EXPECT_GT(cert.summary.total(), 0u) << "expected conflicting pairs";
  EXPECT_EQ(cert.summary.residue, 0u);
  EXPECT_TRUE(cert.probes.empty());
  // The write/write and write/read pairs on a[] discharge by the
  // induction-uniform subscript rule.
  bool saw_disjoint = false;
  for (const analysis::ConflictPair& p : cert.summary.pairs)
    saw_disjoint |= p.discharge == analysis::Discharge::Disjoint;
  EXPECT_TRUE(saw_disjoint);
}

const char* kStrideProgram = R"(
class P {
  int[] a;
  void init() {
    a = new int[32];
    for (int i = 0; i < 32; i++) { a[i] = i; }
  }
  void Kernel() {
    for (int i = 0; i < 16; i++) { a[i * 2] = a[i * 2] + 1; }
  }
  void main() { init(); Kernel(); print(a[0]); }
}
)";

TEST(CertifyProgramTest, PureStrideResidueIsExploredClean) {
  Analyzed a = analyze(kStrideProgram);
  // The optimistic analysis claims the strided loop (the profile observed
  // disjoint accesses); the uniform refinement cannot discharge i*2.
  bool claimed = false;
  for (const patterns::Candidate& c : a.candidates)
    claimed |= c.kind == patterns::PatternKind::DataParallelLoop;
  ASSERT_TRUE(claimed) << "strided map not claimed by optimistic detection";
  const ProgramCertificate cert =
      certify_program(*a.program, a.candidates, nullptr, "stride");
  EXPECT_EQ(cert.verdict, Verdict::CertifiedExplored);
  EXPECT_GT(cert.summary.residue, 0u);
  ASSERT_FALSE(cert.probes.empty());
  for (const ProbeOutcome& probe : cert.probes) {
    EXPECT_FALSE(probe.raced) << probe.label << ": " << probe.detail;
    EXPECT_GT(probe.schedules_explored, 0u);
  }
  // Pure index arithmetic: the residue is non-opaque, so the probe modeled
  // per-instance cells (the observed-independence contract).
  for (const analysis::ConflictPair& p : cert.summary.pairs) {
    if (p.discharge == analysis::Discharge::Residue) {
      EXPECT_FALSE(p.opaque) << p.rule;
    }
  }
}

const char* kIndirectProgram = R"(
class P {
  int[] src;
  int[] dst;
  int[] idx;
  void init() {
    src = new int[16];
    dst = new int[16];
    idx = new int[16];
    for (int i = 0; i < 16; i++) { src[i] = i; idx[i] = i; }
  }
  void Kernel() {
    for (int i = 0; i < 16; i++) {
      int j = idx[i];
      dst[j] = src[i] + 2;
    }
  }
  void main() { init(); Kernel(); print(dst[0]); }
}
)";

TEST(CertifyProgramTest, IndirectScatterResidueRaces) {
  Analyzed a = analyze(kIndirectProgram);
  // This is the detector's known irreducible false positive: the scatter
  // hides behind a local copy of the index load, so the optimistic
  // front-end claims it. The certifier is the net under that trapeze.
  bool claimed = false;
  for (const patterns::Candidate& c : a.candidates)
    claimed |= c.kind == patterns::PatternKind::DataParallelLoop &&
               c.anchor && c.anchor->range.begin.line == 13;
  ASSERT_TRUE(claimed) << "indirect scatter was not claimed — if the "
                          "detector learned to reject it, retire this test";
  const ProgramCertificate cert =
      certify_program(*a.program, a.candidates, nullptr, "indirect");
  EXPECT_EQ(cert.verdict, Verdict::ResidueRaced);
  bool raced = false;
  for (const ProbeOutcome& probe : cert.probes) raced |= probe.raced;
  EXPECT_TRUE(raced);
  // The racing pair is the opaque-subscript write on dst.
  bool opaque_residue = false;
  for (const analysis::ConflictPair& p : cert.summary.pairs)
    opaque_residue |=
        p.discharge == analysis::Discharge::Residue && p.opaque;
  EXPECT_TRUE(opaque_residue);
  // Reads from the distinct allocation-rooted arrays discharge statically.
  EXPECT_GT(cert.summary.disjoint, 0u);
}

TEST(CertifyProgramTest, OrderRelaxationLowersStructuralProbe) {
  Analyzed a = analyze(corpus::avistream().source);
  ASSERT_FALSE(a.candidates.empty());

  rt::TuningConfig config = default_tuning(a.candidates);
  // Replicate every replicable stage and drop order preservation — the
  // undecidable tuning the paper defers to testing.
  int relaxed = 0;
  for (const auto& [name, p] : config.params()) {
    (void)p;
    auto ends_with = [&](const std::string& suffix) {
      return name.size() >= suffix.size() &&
             name.compare(name.size() - suffix.size(), suffix.size(),
                          suffix) == 0;
    };
    if (ends_with(".replication")) config.set(name, 2);
    if (ends_with(".order")) {
      config.set(name, 0);
      ++relaxed;
    }
  }
  ASSERT_GT(relaxed, 0) << "avistream has no replicable stage to relax";

  const ProgramCertificate relaxed_cert =
      certify_program(*a.program, a.candidates, &config, "avistream");
  EXPECT_EQ(relaxed_cert.verdict, Verdict::ResidueRaced);
  bool order_probe_raced = false;
  for (const ProbeOutcome& probe : relaxed_cert.probes)
    if (probe.label.rfind("order:", 0) == 0 && probe.raced)
      order_probe_raced = true;
  EXPECT_TRUE(order_probe_raced)
      << "expected the structural order probe to find the violating "
         "schedule";

  // Under default tuning (order preserved) the same program certifies
  // without any explorer involvement.
  const ProgramCertificate default_cert =
      certify_program(*a.program, a.candidates, nullptr, "avistream");
  EXPECT_EQ(default_cert.verdict, Verdict::CertifiedStatic)
      << "residue pairs: " << default_cert.summary.residue;
}

// ---------------------------------------------------------------------------
// certify_corpus: the >= 90% static-discharge gate over a seeded slice.
// ---------------------------------------------------------------------------

corpus::SyntheticConfig gate_slice_config() {
  corpus::SyntheticConfig config;
  config.programs = 8;
  config.seed = 0xC0FFEE;
  // The indirect-scatter family is the detector's known false positive;
  // its certificates are asserted separately (residue-raced). The gate
  // measures the discharge rate over the *correctly* claimed patterns.
  config.indirect_kernels = false;
  return config;
}

TEST(CertifyCorpusTest, SyntheticSliceDischargesStatically) {
  const std::vector<corpus::CorpusProgram> suite =
      corpus::synthetic_suite(gate_slice_config());
  std::vector<const corpus::CorpusProgram*> programs;
  for (const corpus::CorpusProgram& p : suite) programs.push_back(&p);

  const CorpusCertification result = certify_corpus(programs);
  ASSERT_EQ(result.programs.size(), programs.size());
  EXPECT_EQ(result.totals.errors, 0u);
  ASSERT_GT(result.totals.programs, 0u);
  // Acceptance gate: >= 90% of transformed synthetic programs discharge
  // without any explorer run.
  const double static_rate =
      static_cast<double>(result.totals.certified_static) /
      static_cast<double>(result.totals.programs);
  EXPECT_GE(static_rate, 0.9)
      << result.totals.certified_static << "/" << result.totals.programs
      << " certified-static; " << result.totals.residue << " residue pairs";
  EXPECT_EQ(result.totals.residue_raced, 0u);
  // Every program produced pairs and discharged them.
  EXPECT_GT(result.totals.pairs, 0u);
  EXPECT_EQ(result.totals.ordered + result.totals.disjoint +
                result.totals.private_or_fresh + result.totals.residue,
            result.totals.pairs);
}

TEST(CertifyCorpusTest, IndirectFamilyIsCaughtAsResidueRaced) {
  corpus::SyntheticConfig config = gate_slice_config();
  config.programs = 3;
  config.indirect_kernels = true;
  const std::vector<corpus::CorpusProgram> suite =
      corpus::synthetic_suite(config);
  std::vector<const corpus::CorpusProgram*> programs;
  for (const corpus::CorpusProgram& p : suite) programs.push_back(&p);

  const CorpusCertification result = certify_corpus(programs);
  EXPECT_EQ(result.totals.errors, 0u);
  // Every synthetic program carries the indirect-scatter kernel the
  // optimistic detector wrongly claims; the certifier must flag each.
  EXPECT_EQ(result.totals.residue_raced, result.totals.programs);
  EXPECT_GT(result.totals.probes_raced, 0u);
}

TEST(CertifyCorpusTest, PublishesMhpCounters) {
  const bool was_enabled = observe::enabled();
  observe::set_enabled(true);
  observe::Registry& reg = observe::Registry::global();
  const std::uint64_t before = reg.counter("mhp.pairs").value();
  const std::uint64_t static_before =
      reg.counter("mhp.certified_static").value();

  corpus::SyntheticConfig config = gate_slice_config();
  config.programs = 2;
  const std::vector<corpus::CorpusProgram> suite =
      corpus::synthetic_suite(config);
  std::vector<const corpus::CorpusProgram*> programs;
  for (const corpus::CorpusProgram& p : suite) programs.push_back(&p);
  const CorpusCertification result = certify_corpus(programs);

  EXPECT_EQ(reg.counter("mhp.pairs").value() - before, result.totals.pairs);
  EXPECT_EQ(reg.counter("mhp.certified_static").value() - static_before,
            result.totals.certified_static);
  observe::set_enabled(was_enabled);
}

// ---------------------------------------------------------------------------
// Soundness differential (satellite): a pair the explorer can race must
// never have been claimed "ordered" by the MHP analysis. Runs over a seeded
// synthetic slice that includes the racy indirect-scatter family, so the
// property is exercised non-vacuously; the TSan configuration runs this
// same test over the real explorer threads.
// ---------------------------------------------------------------------------

TEST(SoundnessDifferentialTest, RacedResidueNeverClaimedOrdered) {
  corpus::SyntheticConfig config;
  config.programs = 4;
  config.seed = 20150207;
  const std::vector<corpus::CorpusProgram> suite =
      corpus::synthetic_suite(config);

  std::size_t raced_pairs = 0;
  for (const corpus::CorpusProgram& p : suite) {
    Analyzed a = analyze(p.source);
    const ProgramCertificate cert =
        certify_program(*a.program, a.candidates, nullptr, p.name);

    // Recompute the MHP facts the certifier used (same deterministic
    // pipeline) so probe outcomes can be checked against the relation.
    const std::vector<RegionShape> shapes =
        plan_region_shapes(*a.program, a.candidates, nullptr);
    const analysis::MhpGraph graph = build_region_graph(shapes);
    const analysis::MhpFacts facts(graph);

    // Internal consistency: "ordered" is exactly the MHP-false discharge.
    for (const analysis::ConflictPair& pair : cert.summary.pairs) {
      if (pair.discharge == analysis::Discharge::Ordered) {
        EXPECT_TRUE(facts.must_be_sequential(pair.a, pair.b))
            << p.name << ": ordered pair overlaps";
      } else {
        EXPECT_TRUE(facts.may_happen_in_parallel(pair.a, pair.b))
            << p.name << ": discharged/residue pair cannot overlap — "
            << "should have been ordered";
      }
    }

    // The differential: every probe the explorer raced maps back to a
    // residue pair the analysis admitted may overlap.
    for (const ProbeOutcome& probe : cert.probes) {
      if (!probe.raced) continue;
      ++raced_pairs;
      if (probe.label.rfind("pair", 0) != 0) continue;  // order probe
      const std::size_t index = static_cast<std::size_t>(
          std::atoll(probe.label.c_str() + 4));
      ASSERT_LT(index, cert.summary.pairs.size());
      const analysis::ConflictPair& pair = cert.summary.pairs[index];
      EXPECT_NE(pair.discharge, analysis::Discharge::Ordered)
          << p.name << ": explorer raced a pair MHP claimed ordered — "
          << "unsound";
      EXPECT_EQ(pair.discharge, analysis::Discharge::Residue);
      EXPECT_TRUE(facts.may_happen_in_parallel(pair.a, pair.b));
    }
  }
  // The slice includes the indirect-scatter family: the differential must
  // have had real races to check, or it proves nothing.
  EXPECT_GT(raced_pairs, 0u);
}

}  // namespace
}  // namespace patty::transform
