// Fault-tolerance suite (`ctest -L fault`): every unwind path of the
// runtime, driven deterministically through the failpoint harness
// (support/failpoint.hpp) and through stage bodies that throw on chosen
// elements. The contracts under test:
//
//   * a fault anywhere in a region (parallel_for chunk, master/worker task,
//     any pipeline stage position, generator, sink) cancels the region,
//     unwinds every worker, and rethrows EXACTLY ONE exception at the join;
//   * queues poisoned by close() wake producers parked on a full queue and
//     consumers parked on an empty one, on every backend;
//   * graceful degradation replays the region sequentially when enabled,
//     visibly (degraded()/observe counters/tuner report);
//   * the tuner survives throwing and hung candidates;
//   * the plan executor degrades a faulted region to the interpreter and
//     still produces the reference output.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/semantic_model.hpp"
#include "corpus/corpus.hpp"
#include "lang/sema.hpp"
#include "observe/metrics.hpp"
#include "observe/trace.hpp"
#include "patterns/detector.hpp"
#include "runtime/cancellation.hpp"
#include "runtime/master_worker.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/stage_queue.hpp"
#include "runtime/thread_pool.hpp"
#include "support/failpoint.hpp"
#include "transform/plan.hpp"
#include "tuning/tuner.hpp"

namespace patty {
namespace {

namespace fp = support::failpoint;
using namespace std::chrono_literals;

/// Every test leaves the process-global failpoint registry clean.
class FaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fp::disarm_all(); }

  static std::uint64_t counter(const char* name) {
    return observe::Registry::global().counter(name).value();
  }
};

// --- failpoint harness unit tests -------------------------------------------

TEST_F(FaultTest, FailpointThrowsOnNthHitOnly) {
  fp::arm("unit.throw", {fp::ActionKind::Throw, 3, 0});
  PATTY_FAILPOINT("unit.throw");  // hit 1
  PATTY_FAILPOINT("unit.throw");  // hit 2
  try {
    PATTY_FAILPOINT("unit.throw");  // hit 3: fires
    FAIL() << "failpoint did not fire";
  } catch (const fp::FailpointError& e) {
    EXPECT_EQ(e.site(), "unit.throw");
  }
  PATTY_FAILPOINT("unit.throw");  // one-shot: hit 4 passes through
  EXPECT_EQ(fp::hits("unit.throw"), 4u);
}

TEST_F(FaultTest, FailpointWakeReportsSpuriousWakeupOnce) {
  fp::arm("unit.wake", {fp::ActionKind::Wake, 2, 0});
  EXPECT_FALSE(PATTY_FAILPOINT_WAKE("unit.wake"));
  EXPECT_TRUE(PATTY_FAILPOINT_WAKE("unit.wake"));
  EXPECT_FALSE(PATTY_FAILPOINT_WAKE("unit.wake"));
}

TEST_F(FaultTest, FailpointDelayBlocksForConfiguredMs) {
  fp::arm("unit.delay", {fp::ActionKind::Delay, 1, 30});
  const auto t0 = std::chrono::steady_clock::now();
  PATTY_FAILPOINT("unit.delay");
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, 25ms);
}

TEST_F(FaultTest, FailpointSpecGrammarParses) {
  std::string error;
  EXPECT_TRUE(fp::arm_from_string("a.site=throw@2", &error)) << error;
  EXPECT_TRUE(fp::arm_from_string("b.site=delay@1:50", &error)) << error;
  EXPECT_TRUE(fp::arm_from_string("c.site=wake@4", &error)) << error;
  EXPECT_EQ(fp::armed_sites().size(), 3u);

  EXPECT_FALSE(fp::arm_from_string("no-equals-sign", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(fp::arm_from_string("d.site=zap@1", &error));
  EXPECT_FALSE(fp::arm_from_string("e.site=throw@", &error));
  EXPECT_FALSE(fp::arm_from_string("f.site=throw@0", &error));

  EXPECT_EQ(fp::arm_from_env("g=throw@1;h=wake@2,i=delay@3:7", &error), 3u)
      << error;
  fp::disarm("g");
  EXPECT_EQ(fp::armed_sites().size(), 5u);  // a,b,c + h,i
  fp::disarm_all();
  EXPECT_TRUE(fp::armed_sites().empty());
}

TEST_F(FaultTest, DisarmedSiteIsInert) {
  // Nothing armed: the macro must not throw, sleep, or count.
  PATTY_FAILPOINT("unit.never.armed");
  EXPECT_FALSE(PATTY_FAILPOINT_WAKE("unit.never.armed"));
  EXPECT_EQ(fp::hits("unit.never.armed"), 0u);
}

// --- satellite: queue shutdown wakes parked producers and consumers ---------

/// Producers parked on a FULL queue with a permanently-stalled consumer:
/// close() must wake all of them, and their push must report the closure.
/// Already-buffered elements stay poppable (drain-then-end).
void expect_close_wakes_parked_producers(rt::QueueBackend backend,
                                         std::size_t producers,
                                         std::size_t consumers) {
  constexpr std::size_t kCapacity = 4;
  auto q = rt::make_stage_queue<int>(kCapacity, producers, consumers, backend);
  // Fill to capacity from one thread (respects the SPSC single-producer
  // contract; the parked producers below only start after this is done).
  for (std::size_t i = 0; i < kCapacity; ++i) ASSERT_TRUE(q->push(1));

  std::atomic<int> rejected{0};
  std::vector<std::thread> threads;
  // For SPSC only a single producer thread may touch push; the fill above
  // finished before it starts, so the contract holds.
  const std::size_t pushers = producers;
  for (std::size_t p = 0; p < pushers; ++p) {
    threads.emplace_back([&q, &rejected] {
      if (!q->push(2)) rejected.fetch_add(1);
    });
  }
  // Let every producer reach the park on the full queue. Nobody pops.
  std::this_thread::sleep_for(50ms);
  q->close();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(rejected.load(), static_cast<int>(pushers))
      << q->backend() << ": a parked producer was not woken by close()";

  // Drain-then-end: the pre-close elements survive, then pop reports closed.
  std::size_t drained = 0;
  while (q->pop()) ++drained;
  EXPECT_EQ(drained, kCapacity) << q->backend();
  EXPECT_FALSE(q->pop().has_value());
  EXPECT_FALSE(q->push(3)) << q->backend() << ": push after close succeeded";
}

/// Consumers parked on an EMPTY queue: close() wakes them; pop reports end.
void expect_close_wakes_parked_consumers(rt::QueueBackend backend,
                                         std::size_t producers,
                                         std::size_t consumers) {
  auto q = rt::make_stage_queue<int>(4, producers, consumers, backend);
  std::atomic<int> ended{0};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < consumers; ++c) {
    threads.emplace_back([&q, &ended] {
      if (!q->pop().has_value()) ended.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(50ms);
  q->close();
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(ended.load(), static_cast<int>(consumers))
      << q->backend() << ": a parked consumer was not woken by close()";
}

TEST_F(FaultTest, CloseWakesParkedProducersLockingBackend) {
  expect_close_wakes_parked_producers(rt::QueueBackend::Locking, 2, 2);
}

TEST_F(FaultTest, CloseWakesParkedProducersSpscRing) {
  expect_close_wakes_parked_producers(rt::QueueBackend::Auto, 1, 1);
}

TEST_F(FaultTest, CloseWakesParkedProducersMpmcRing) {
  expect_close_wakes_parked_producers(rt::QueueBackend::Auto, 2, 2);
}

TEST_F(FaultTest, CloseWakesParkedConsumersAllBackends) {
  expect_close_wakes_parked_consumers(rt::QueueBackend::Locking, 2, 2);
  expect_close_wakes_parked_consumers(rt::QueueBackend::Auto, 1, 1);
  expect_close_wakes_parked_consumers(rt::QueueBackend::Auto, 2, 2);
}

// --- parallel_for fault domain ----------------------------------------------

rt::ParallelForTuning pf_tuning(std::int64_t grain = 2) {
  rt::ParallelForTuning t;
  t.threads = 4;
  t.grain = grain;
  return t;
}

TEST_F(FaultTest, ParallelForBodyExceptionReachesJoinExactlyOnce) {
  fp::arm("parallel_for.leaf", {fp::ActionKind::Throw, 1, 0});
  int exceptions = 0;
  try {
    rt::parallel_for(0, 64, [](std::int64_t) {}, pf_tuning());
  } catch (const fp::FailpointError& e) {
    ++exceptions;
    EXPECT_EQ(e.site(), "parallel_for.leaf");
  }
  EXPECT_EQ(exceptions, 1);
  // The pool is intact: a follow-up loop completes and covers the range.
  std::vector<std::atomic<int>> hitv(64);
  rt::parallel_for(0, 64, [&](std::int64_t i) { ++hitv[static_cast<std::size_t>(i)]; },
                   pf_tuning());
  for (auto& h : hitv) EXPECT_EQ(h.load(), 1);
}

TEST_F(FaultTest, ParallelForEveryChunkThrowingStillYieldsOneException) {
  // All leaves throw concurrently; the slot's first-claim protocol must
  // surface exactly one and swallow the rest.
  int exceptions = 0;
  std::string what;
  try {
    rt::parallel_for_blocked(
        0, 64,
        [](std::int64_t lo, std::int64_t) {
          throw std::runtime_error("chunk " + std::to_string(lo));
        },
        pf_tuning());
  } catch (const std::runtime_error& e) {
    ++exceptions;
    what = e.what();
  }
  EXPECT_EQ(exceptions, 1);
  EXPECT_EQ(what.rfind("chunk ", 0), 0u) << what;
}

TEST_F(FaultTest, ParallelForFallbackRerunsSequentially) {
  observe::set_enabled(true);
  const std::uint64_t fallbacks_before = counter("fault.fallbacks");
  fp::arm("parallel_for.leaf", {fp::ActionKind::Throw, 1, 0});
  auto tuning = pf_tuning();
  tuning.fallback_sequential = true;
  std::vector<std::atomic<int>> hitv(64);
  rt::parallel_for(0, 64, [&](std::int64_t i) { ++hitv[static_cast<std::size_t>(i)]; },
                   tuning);
  // Degradation contract: every index covered (the sequential rerun spans
  // the whole range; the body is idempotent in the sense that reruns are
  // observable but benign — here we just require full coverage).
  for (auto& h : hitv) EXPECT_GE(h.load(), 1);
  EXPECT_EQ(counter("fault.fallbacks"), fallbacks_before + 1);
  observe::set_enabled(false);
}

TEST_F(FaultTest, ParallelForDeadlineCancelsRegion) {
  auto tuning = pf_tuning(/*grain=*/1);
  tuning.deadline_ms = 25;
  EXPECT_THROW(rt::parallel_for(
                   0, 12,
                   [](std::int64_t) { std::this_thread::sleep_for(15ms); },
                   tuning),
               rt::OperationCancelled);
}

TEST_F(FaultTest, ParallelForDeadlineWithFallbackCompletes) {
  auto tuning = pf_tuning(/*grain=*/1);
  tuning.deadline_ms = 20;
  tuning.fallback_sequential = true;
  std::vector<std::atomic<int>> hitv(8);
  rt::parallel_for(0, 8,
                   [&](std::int64_t i) {
                     std::this_thread::sleep_for(10ms);
                     ++hitv[static_cast<std::size_t>(i)];
                   },
                   tuning);
  for (auto& h : hitv) EXPECT_GE(h.load(), 1);
}

TEST_F(FaultTest, ParallelForHonoursInheritedCancellation) {
  rt::StopSource outer;
  outer.request_stop();
  rt::StopScope ambient(outer.token());
  EXPECT_THROW(rt::parallel_for(0, 64, [](std::int64_t) {}, pf_tuning()),
               rt::OperationCancelled);
}

TEST_F(FaultTest, FaultCountersBalanceOnRethrow) {
  observe::set_enabled(true);
  const std::uint64_t captured = counter("fault.captured");
  const std::uint64_t rethrown = counter("fault.rethrown");
  const std::uint64_t faults = counter("parallel_for.faults");
  EXPECT_THROW(rt::parallel_for_blocked(
                   0, 64,
                   [](std::int64_t, std::int64_t) {
                     throw std::runtime_error("boom");
                   },
                   pf_tuning()),
               std::runtime_error);
  // Exactly one capture and one rethrow per faulted region, however many
  // chunks threw — the "no leaked exceptions" balance.
  EXPECT_EQ(counter("fault.captured"), captured + 1);
  EXPECT_EQ(counter("fault.rethrown"), rethrown + 1);
  EXPECT_EQ(counter("parallel_for.faults"), faults + 1);
  observe::set_enabled(false);
}

// --- master/worker fault domain ---------------------------------------------

TEST_F(FaultTest, MasterWorkerSharedPoolTaskFaultReachesJoin) {
  fp::arm("master_worker.task", {fp::ActionKind::Throw, 3, 0});
  rt::MasterWorker mw(0);  // shared-pool path
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks(8, [&ran] { ran.fetch_add(1); });
  int exceptions = 0;
  try {
    mw.run(tasks);
  } catch (const fp::FailpointError&) {
    ++exceptions;
  }
  EXPECT_EQ(exceptions, 1);
  EXPECT_LE(ran.load(), 8);
  // Fault domain is per-run: the next run on the same instance is clean.
  mw.run(tasks);
}

TEST_F(FaultTest, MasterWorkerDedicatedCrewTaskFaultReachesJoin) {
  rt::MasterWorker mw(2);  // dedicated-crew path
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back([&ran, i] {
      if (i == 2) throw std::runtime_error("crew task boom");
      ran.fetch_add(1);
    });
  }
  int exceptions = 0;
  try {
    mw.run(tasks);
  } catch (const std::runtime_error& e) {
    ++exceptions;
    EXPECT_STREQ(e.what(), "crew task boom");
  }
  EXPECT_EQ(exceptions, 1);
}

TEST_F(FaultTest, MasterWorkerHonoursInheritedCancellation) {
  rt::StopSource outer;
  outer.request_stop();
  rt::StopScope ambient(outer.token());
  rt::MasterWorker mw(0);
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks(4, [&ran] { ran.fetch_add(1); });
  EXPECT_THROW(mw.run(tasks), rt::OperationCancelled);
  EXPECT_EQ(ran.load(), 0);
}

// --- pipeline fault domain ---------------------------------------------------

struct Elem {
  int id = 0;
  int value = 0;
};

std::function<std::optional<Elem>()> counting_source(int n) {
  auto i = std::make_shared<int>(0);
  return [i, n]() -> std::optional<Elem> {
    if (*i >= n) return std::nullopt;
    Elem e{*i, *i};
    ++*i;
    return e;
  };
}

rt::PipelineConfig small_buffers(const char* name) {
  rt::PipelineConfig cfg;
  cfg.buffer_capacity = 4;
  cfg.name = name;
  return cfg;
}

/// Build add1/add1/add1 with a throw-on-element-k body at `thrower`;
/// replication applies to the throwing stage.
std::vector<rt::Pipeline<Elem>::Stage> throwing_stages(std::size_t thrower,
                                                       int replication) {
  std::vector<rt::Pipeline<Elem>::Stage> stages;
  for (std::size_t s = 0; s < 3; ++s) {
    rt::Pipeline<Elem>::Stage stage;
    stage.name = "s" + std::to_string(s);
    if (s == thrower) {
      stage.fn = [](Elem& e) {
        if (e.id == 7) throw std::runtime_error("stage boom");
        e.value += 1;
      };
      stage.replication = replication;
      stage.preserve_order = replication > 1;
    } else {
      stage.fn = [](Elem& e) { e.value += 1; };
    }
    stages.push_back(std::move(stage));
  }
  return stages;
}

/// One exception at run()'s caller, whatever the faulting stage position;
/// every worker/generator thread joined (the test would hang otherwise).
void expect_stage_fault_propagates(std::size_t thrower, int replication) {
  rt::Pipeline<Elem> p(throwing_stages(thrower, replication),
                       small_buffers("fault.position"));
  int exceptions = 0;
  std::vector<Elem> out;
  try {
    p.run(counting_source(300), [&](Elem&& e) { out.push_back(e); });
  } catch (const std::runtime_error& e) {
    ++exceptions;
    EXPECT_STREQ(e.what(), "stage boom") << "thrower=" << thrower;
  }
  EXPECT_EQ(exceptions, 1) << "thrower=" << thrower;
}

TEST_F(FaultTest, PipelineFirstStageFaultPropagates) {
  expect_stage_fault_propagates(0, 1);
}

TEST_F(FaultTest, PipelineMiddleStageFaultPropagates) {
  expect_stage_fault_propagates(1, 1);
}

TEST_F(FaultTest, PipelineLastStageFaultPropagates) {
  expect_stage_fault_propagates(2, 1);
}

TEST_F(FaultTest, PipelineReplicatedStageFaultPropagates) {
  expect_stage_fault_propagates(1, 3);
}

TEST_F(FaultTest, PipelineGeneratorFaultPropagates) {
  rt::Pipeline<Elem> p({{"id", [](Elem&) {}, 1, false, false}},
                       small_buffers("fault.generator"));
  auto n = std::make_shared<int>(0);
  EXPECT_THROW(p.run(
                   [n]() -> std::optional<Elem> {
                     if (++*n == 5) throw std::runtime_error("source boom");
                     return Elem{*n, *n};
                   },
                   [](Elem&&) {}),
               std::runtime_error);
}

TEST_F(FaultTest, PipelineSinkFaultPropagates) {
  rt::Pipeline<Elem> p({{"id", [](Elem&) {}, 1, false, false}},
                       small_buffers("fault.sink"));
  EXPECT_THROW(p.run(counting_source(300),
                     [](Elem&& e) {
                       if (e.id == 3) throw std::runtime_error("sink boom");
                     }),
               std::runtime_error);
}

TEST_F(FaultTest, PipelinePoisonDrainUnblocksBackpressuredProducers) {
  // Long stream, tiny buffers: upstream stages are parked on full queues
  // when the failpoint fires between pop and push. The poison protocol
  // (close every queue) must wake them all or this test hangs.
  fp::arm("pipeline.worker.push", {fp::ActionKind::Throw, 5, 0});
  std::vector<rt::Pipeline<Elem>::Stage> stages;
  for (int s = 0; s < 3; ++s)
    stages.push_back({"s" + std::to_string(s),
                      [](Elem& e) { e.value += 1; }, 1, false, false});
  rt::PipelineConfig cfg = small_buffers("fault.poison");
  cfg.buffer_capacity = 2;
  rt::Pipeline<Elem> p(std::move(stages), cfg);
  EXPECT_THROW(p.run(counting_source(5000), [](Elem&&) {}),
               fp::FailpointError);
}

TEST_F(FaultTest, PipelineWorkerBodyFailpointPropagates) {
  fp::arm("pipeline.worker.body", {fp::ActionKind::Throw, 2, 0});
  std::vector<rt::Pipeline<Elem>::Stage> stages{
      {"a", [](Elem& e) { e.value += 1; }, 1, false, false},
      {"b", [](Elem& e) { e.value *= 2; }, 1, false, false},
  };
  rt::Pipeline<Elem> p(std::move(stages), small_buffers("fault.body"));
  EXPECT_THROW(p.run(counting_source(1000), [](Elem&&) {}),
               fp::FailpointError);
}

TEST_F(FaultTest, PipelineRunOverFallsBackSequentially) {
  observe::set_enabled(true);
  const std::uint64_t fallbacks_before = counter("fault.fallbacks");
  fp::arm("pipeline.worker.body", {fp::ActionKind::Throw, 1, 0});
  rt::PipelineConfig cfg = small_buffers("fault.fallback");
  cfg.fallback_sequential = true;
  rt::Pipeline<Elem> p({{"double", [](Elem& e) { e.value *= 2; }, 1, false,
                         false},
                        {"inc", [](Elem& e) { e.value += 1; }, 1, false,
                         false}},
                       cfg);
  std::vector<Elem> input;
  for (int i = 0; i < 50; ++i) input.push_back(Elem{i, i});
  std::vector<Elem> out = p.run_over(std::move(input));
  EXPECT_TRUE(p.degraded());
  EXPECT_NE(p.degrade_reason().find("pipeline.worker.body"),
            std::string::npos)
      << p.degrade_reason();
  ASSERT_EQ(out.size(), 50u);
  for (const Elem& e : out) EXPECT_EQ(e.value, e.id * 2 + 1);
  EXPECT_EQ(counter("fault.fallbacks"), fallbacks_before + 1);
  observe::set_enabled(false);

  // The degradation is per-call: a clean run_over resets it.
  std::vector<Elem> input2;
  for (int i = 0; i < 10; ++i) input2.push_back(Elem{i, i});
  out = p.run_over(std::move(input2));
  EXPECT_FALSE(p.degraded());
  ASSERT_EQ(out.size(), 10u);
}

TEST_F(FaultTest, PipelineDeadlineCancelsRun) {
  rt::PipelineConfig cfg = small_buffers("fault.deadline");
  cfg.deadline_ms = 40;
  rt::Pipeline<Elem> p({{"slow",
                         [](Elem&) { std::this_thread::sleep_for(5ms); }, 1,
                         false, false}},
                       cfg);
  EXPECT_THROW(p.run(counting_source(1000), [](Elem&&) {}),
               rt::OperationCancelled);
}

TEST_F(FaultTest, PipelineHonoursInheritedCancellation) {
  rt::StopSource outer;
  outer.request_stop();
  rt::StopScope ambient(outer.token());
  rt::Pipeline<Elem> p({{"id", [](Elem&) {}, 1, false, false}},
                       small_buffers("fault.inherited"));
  EXPECT_THROW(p.run(counting_source(100), [](Elem&&) {}),
               rt::OperationCancelled);
}

TEST_F(FaultTest, PipelineSpuriousQueueWakeupsAreHarmless) {
  // A spurious park wakeup on either side of a ring queue must re-check
  // state and carry on: results stay complete and ordered.
  fp::arm("stage_queue.push.park", {fp::ActionKind::Wake, 1, 0});
  fp::arm("stage_queue.pop.park", {fp::ActionKind::Wake, 1, 0});
  rt::PipelineConfig cfg = small_buffers("fault.spurious");
  cfg.buffer_capacity = 2;  // force parks on both sides
  rt::Pipeline<Elem> p({{"inc", [](Elem& e) { e.value += 1; }, 1, false,
                         false},
                        {"dbl", [](Elem& e) { e.value *= 2; }, 1, false,
                         false}},
                       cfg);
  std::vector<Elem> out;
  p.run(counting_source(200), [&](Elem&& e) { out.push_back(e); });
  ASSERT_EQ(out.size(), 200u);
  for (const Elem& e : out) EXPECT_EQ(e.value, (e.id + 1) * 2);
}

TEST_F(FaultTest, NestedRegionChainsCancellationFromEnclosingPipeline) {
  // A pipeline stage runs a nested parallel_for; a sibling stage faults.
  // The nested loop inherits the pipeline's ambient StopToken, so it either
  // completed before the fault or was cancelled — and the pipeline still
  // rethrows exactly one exception (the sibling's).
  std::vector<rt::Pipeline<Elem>::Stage> stages;
  stages.push_back({"nested",
                    [](Elem& e) {
                      rt::parallel_for(
                          0, 8, [&](std::int64_t) { e.value += 1; },
                          pf_tuning(1));
                    },
                    1, false, false});
  stages.push_back({"boom",
                    [](Elem& e) {
                      if (e.id == 5) throw std::runtime_error("sibling boom");
                    },
                    1, false, false});
  rt::Pipeline<Elem> p(std::move(stages), small_buffers("fault.nested"));
  int exceptions = 0;
  try {
    p.run(counting_source(400), [](Elem&&) {});
  } catch (const std::exception& e) {
    ++exceptions;
    const std::string what = e.what();
    EXPECT_TRUE(what == "sibling boom" ||
                what.find("operation cancelled") != std::string::npos)
        << what;
  }
  EXPECT_EQ(exceptions, 1);
}

// --- thread pool / TaskGroup exception safety --------------------------------

TEST_F(FaultTest, RawSubmitFastExceptionDoesNotKillWorker) {
  const std::uint64_t before = rt::ThreadPool::task_exception_count();
  std::atomic<bool> reached{false};
  rt::ThreadPool::shared().submit_fast([&reached] {
    reached.store(true);
    throw std::runtime_error("raw task boom");
  });
  // The worker swallows and counts it; poll until the count moves.
  const auto deadline = std::chrono::steady_clock::now() + 2s;
  while (rt::ThreadPool::task_exception_count() == before &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(reached.load());
  EXPECT_GT(rt::ThreadPool::task_exception_count(), before);
  // The pool still runs work to completion.
  std::atomic<int> sum{0};
  rt::parallel_for(0, 32, [&](std::int64_t i) { sum.fetch_add(static_cast<int>(i)); },
                   pf_tuning());
  EXPECT_EQ(sum.load(), 32 * 31 / 2);
}

TEST_F(FaultTest, TaskGroupRunOnCapturesFirstFaultAndCancelsSiblings) {
  rt::TaskGroup group;
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) {
    group.run_on(rt::ThreadPool::shared(), [&ran] {
      ran.fetch_add(1);
      throw std::runtime_error("task boom");
    });
  }
  rt::ThreadPool::shared().wait_on(group);
  EXPECT_TRUE(group.faulted());
  EXPECT_TRUE(group.cancelled());
  EXPECT_THROW(group.rethrow_if_faulted(), std::runtime_error);
  // cancel() is cooperative: tasks that started before the first fault all
  // finished; ones scheduled after it were skipped, not leaked (wait_on
  // returned, so the outstanding count reached zero either way).
  EXPECT_GE(ran.load(), 1);
}

// --- tuner hardening ----------------------------------------------------------

rt::TuningConfig one_knob_config() {
  rt::TuningConfig config;
  rt::TuningParameter p;
  p.name = "loop.grain";
  p.kind = rt::TuningKind::Int;
  p.value = 1;
  p.min = 1;
  p.max = 4;
  p.step = 1;
  config.define(p);
  return config;
}

TEST_F(FaultTest, TunerScoresThrowingCandidateAsFailedAndContinues) {
  auto tuner = tuning::make_linear_tuner();
  const tuning::MeasureFn measure = [](const rt::TuningConfig& c) -> double {
    const std::int64_t g = c.get_or("loop.grain", 1);
    if (g == 2) throw std::runtime_error("candidate boom");
    return 10.0 - static_cast<double>(g);  // best at grain=4
  };
  tuning::TuningRun run = tuner->tune(one_knob_config(), measure, 16);
  EXPECT_GE(run.failed_evaluations, 1u);
  EXPECT_EQ(run.best.get_or("loop.grain", -1), 4);
  EXPECT_LT(run.best_score, std::numeric_limits<double>::infinity());
  bool saw_failure = false;
  for (const tuning::Evaluation& e : run.history) {
    if (!e.failed) continue;
    saw_failure = true;
    EXPECT_EQ(e.score, std::numeric_limits<double>::infinity());
    EXPECT_NE(e.failure.find("candidate boom"), std::string::npos)
        << e.failure;
  }
  EXPECT_TRUE(saw_failure);
}

TEST_F(FaultTest, TunerDeadlineCancelsHungCandidate) {
  auto tuner = tuning::make_linear_tuner();
  tuning::TunerOptions options;
  options.candidate_deadline_ms = 30;
  tuner->set_options(options);
  const tuning::MeasureFn measure = [](const rt::TuningConfig& c) -> double {
    const std::int64_t g = c.get_or("loop.grain", 1);
    if (g == 3) {
      // A hung candidate: spins until the tuner's watchdog cancels it via
      // the ambient StopToken (bounded as a safety net for broken builds).
      const rt::StopToken token = rt::current_stop_token();
      const auto give_up = std::chrono::steady_clock::now() + 5s;
      while (!token.stop_requested() &&
             std::chrono::steady_clock::now() < give_up)
        std::this_thread::sleep_for(1ms);
    }
    return 10.0 - static_cast<double>(g);
  };
  tuning::TuningRun run = tuner->tune(one_knob_config(), measure, 16);
  EXPECT_GE(run.failed_evaluations, 1u);
  bool saw_deadline = false;
  for (const tuning::Evaluation& e : run.history)
    if (e.failed && e.failure == "deadline exceeded") saw_deadline = true;
  EXPECT_TRUE(saw_deadline);
  // The hung value never wins.
  EXPECT_NE(run.best.get_or("loop.grain", -1), 3);
}

// --- plan executor: end-to-end degradation ------------------------------------

TEST_F(FaultTest, PlanExecutorDegradesFaultedRegionToSequential) {
  DiagnosticSink diags;
  auto program = lang::parse_and_check(corpus::avistream().source, diags);
  ASSERT_TRUE(program) << diags.to_string();
  auto model = analysis::SemanticModel::build(*program);
  auto candidates = patterns::detect_all(*model).candidates;
  ASSERT_FALSE(candidates.empty());

  analysis::Interpreter reference(*program);
  reference.run_main();
  const std::string expected = reference.output();

  // First pipeline stage body to run faults once; the plan executor must
  // catch the region fault, rerun the loop on the interpreter, and still
  // produce the reference output.
  fp::arm("pipeline.worker.body", {fp::ActionKind::Throw, 1, 0});
  transform::ParallelPlanExecutor executor(*program, candidates);
  executor.run_main();
  EXPECT_EQ(executor.output(), expected);

  bool saw_fault_fallback = false;
  for (const transform::PlanReport& r : executor.reports()) {
    if (r.note.find("parallel region faulted") != std::string::npos) {
      saw_fault_fallback = true;
      EXPECT_FALSE(r.ran_parallel);
    }
  }
  EXPECT_TRUE(saw_fault_fallback);
}

}  // namespace
}  // namespace patty
